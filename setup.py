"""Legacy setuptools entry point (fallback only).

The supported install path is ``pip install -e .``, served by the
vendored stdlib-only backend in ``_build_backend/backend.py`` (see
pyproject.toml).  This file exists so ``python setup.py develop`` also
works as a last-resort fallback in unusual environments; metadata for
that path lives in setup.cfg and mirrors the backend's.
"""

from setuptools import setup

setup()
