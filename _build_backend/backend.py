"""Vendored PEP 517 build backend — stdlib only, zero build requires.

``pyproject.toml`` points at this module (``backend-path``) so
``pip install -e .`` works with build isolation in fully offline
environments: there is nothing to download because ``requires = []``.

Supports the three standard flows:

* ``build_editable`` — a wheel holding one ``.pth`` file pointing at
  ``src/`` (the classic path-insertion editable install);
* ``build_wheel`` / ``prepare_metadata_for_build_wheel`` — a regular
  purelib wheel of ``src/repro``;
* ``build_sdist`` — a ``repro-{VERSION}`` source tarball.

Package metadata below mirrors ``setup.cfg`` (kept by hand; the test
suite cross-checks the load-bearing fields).
"""

from __future__ import annotations

import base64
import hashlib
import io
import tarfile
import zipfile
from pathlib import Path

VERSION = "1.0.0"
NAME = "repro"
_TAG = "py3-none-any"

#: repo root (this file lives in <root>/_build_backend/)
_ROOT = Path(__file__).resolve().parent.parent

_REQUIRES = ["numpy>=1.24"]
_EXTRAS = {"test": ["pytest", "pytest-benchmark", "hypothesis"]}

_ENTRY_POINTS = """\
[console_scripts]
repro = repro.cli:main
"""


def _dist_info_name() -> str:
    return f"{NAME}-{VERSION}.dist-info"


def _metadata_text() -> str:
    lines = [
        "Metadata-Version: 2.1",
        f"Name: {NAME}",
        f"Version: {VERSION}",
        "Summary: HPBD: swapping to remote memory over InfiniBand "
        "(CLUSTER 2005) - full-system reproduction via discrete-event "
        "simulation",
        "License: MIT",
        "Requires-Python: >=3.10",
    ]
    for req in _REQUIRES:
        lines.append(f"Requires-Dist: {req}")
    for extra, reqs in _EXTRAS.items():
        lines.append(f"Provides-Extra: {extra}")
        for req in reqs:
            lines.append(f'Requires-Dist: {req}; extra == "{extra}"')
    readme = _ROOT / "README.md"
    body = readme.read_text() if readme.exists() else ""
    return "\n".join(lines) + "\nDescription-Content-Type: text/markdown\n\n" + body


def _wheel_text() -> str:
    return (
        "Wheel-Version: 1.0\n"
        "Generator: repro-inline-backend\n"
        "Root-Is-Purelib: true\n"
        f"Tag: {_TAG}\n"
    )


# -- PEP 517 requires hooks (the whole point: nothing to install) -----------


def get_requires_for_build_wheel(config_settings=None):
    return []


def get_requires_for_build_editable(config_settings=None):
    return []


def get_requires_for_build_sdist(config_settings=None):
    return []


# -- wheel assembly ----------------------------------------------------------


def _record_row(path: str, data: bytes) -> str:
    digest = (
        base64.urlsafe_b64encode(hashlib.sha256(data).digest())
        .rstrip(b"=")
        .decode()
    )
    return f"{path},sha256={digest},{len(data)}"


def _write_wheel(wheel_path: Path, contents: dict[str, bytes]) -> None:
    """Write a wheel: ``contents`` maps archive paths to bytes; the
    dist-info RECORD is appended automatically."""
    record_path = f"{_dist_info_name()}/RECORD"
    rows = [_record_row(p, data) for p, data in contents.items()]
    rows.append(f"{record_path},,")
    contents = dict(contents)
    contents[record_path] = ("\n".join(rows) + "\n").encode()
    with zipfile.ZipFile(wheel_path, "w", zipfile.ZIP_DEFLATED) as zf:
        for path, data in contents.items():
            zf.writestr(path, data)


def _dist_info_files() -> dict[str, bytes]:
    di = _dist_info_name()
    return {
        f"{di}/METADATA": _metadata_text().encode(),
        f"{di}/WHEEL": _wheel_text().encode(),
        f"{di}/entry_points.txt": _ENTRY_POINTS.encode(),
    }


def _package_files() -> dict[str, bytes]:
    src = _ROOT / "src"
    out: dict[str, bytes] = {}
    for path in sorted(src.rglob("*")):
        if path.is_dir() or "__pycache__" in path.parts:
            continue
        out[path.relative_to(src).as_posix()] = path.read_bytes()
    return out


def build_wheel(wheel_directory, config_settings=None, metadata_directory=None):
    name = f"{NAME}-{VERSION}-{_TAG}.whl"
    contents = _package_files()
    contents.update(_dist_info_files())
    _write_wheel(Path(wheel_directory) / name, contents)
    return name


def build_editable(wheel_directory, config_settings=None, metadata_directory=None):
    name = f"{NAME}-{VERSION}-{_TAG}.whl"
    contents = {f"__editable__.{NAME}.pth": f"{_ROOT / 'src'}\n".encode()}
    contents.update(_dist_info_files())
    _write_wheel(Path(wheel_directory) / name, contents)
    return name


def prepare_metadata_for_build_wheel(metadata_directory, config_settings=None):
    di = Path(metadata_directory) / _dist_info_name()
    di.mkdir(parents=True, exist_ok=True)
    (di / "METADATA").write_text(_metadata_text())
    (di / "WHEEL").write_text(_wheel_text())
    return _dist_info_name()


prepare_metadata_for_build_editable = prepare_metadata_for_build_wheel


# -- sdist -------------------------------------------------------------------


def _pkg_info_text() -> str:
    return _metadata_text()


def build_sdist(sdist_directory, config_settings=None):
    name = f"{NAME}-{VERSION}.tar.gz"
    base = f"{NAME}-{VERSION}"
    files: dict[str, bytes] = {f"{base}/PKG-INFO": _pkg_info_text().encode()}
    for rel in ("pyproject.toml", "setup.cfg", "README.md", "pytest.ini"):
        path = _ROOT / rel
        if path.exists():
            files[f"{base}/{rel}"] = path.read_bytes()
    for arc, data in _package_files().items():
        files[f"{base}/src/{arc}"] = data
    with tarfile.open(Path(sdist_directory) / name, "w:gz") as tar:
        for arc, data in sorted(files.items()):
            info = tarfile.TarInfo(arc)
            info.size = len(data)
            tar.addfile(info, io.BytesIO(data))
    return name
