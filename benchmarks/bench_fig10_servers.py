"""Fig. 10 — quick sort vs number of memory servers (1–16).

Paper: "HPBD performs similarly up to 8 servers.  For 16 nodes server
there is some degradation.  This is due to the HCA design for multiple
queue pair processing." — reproduced via the QP-context-cache penalty in
the HCA model.
"""

from __future__ import annotations

from conftest import record, scale

from repro.analysis import format_table
from repro.experiments import fig10_servers


def test_fig10_multi_server_scaling(benchmark):
    s = scale()
    results = benchmark.pedantic(fig10_servers, args=(s,), rounds=1, iterations=1)
    base = results[0][1]
    print(f"\nFig. 10 — quick sort vs #servers (scale=1/{s})")
    print(format_table(
        ["servers", f"time (s, x{s})", "vs 1 server"],
        [[n, r.elapsed_sec * s, r.slowdown_vs(base)] for n, r in results],
    ))

    by = dict(results)
    # Flat through 8 servers (±5 %).
    for n in (2, 4, 8):
        assert abs(by[n].slowdown_vs(base) - 1.0) < 0.05
    # Visible degradation at 16.
    ratio16 = by[16].slowdown_vs(base)
    assert 1.01 < ratio16 < 1.25
    record(
        benchmark,
        degradation_at_16=ratio16,
        paper_observation="similar up to 8, some degradation at 16",
    )
