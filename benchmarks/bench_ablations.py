"""Ablations of HPBD's design decisions (beyond the paper's figures).

Each ablation flips one §4 design choice and measures quick sort (the
workload with a synchronous read path, where per-request costs can't
hide behind kswapd's asynchrony):

* **registration pool vs register-on-the-fly** (§4.1) — the pool must
  win: Fig. 3 shows registration costs dominate copies at swap sizes;
* **blocking distribution vs striping** (§4.2.5) — the paper argues the
  128 KiB request bound makes striping's parallelism not worth its
  overhead: striping must not win decisively;
* **credit water-mark sensitivity** (§4.2.4) — starving the driver of
  credits must hurt; the default must sit on the flat part of the curve;
* **pool-size sensitivity** (§4.2.2) — the 1 MiB default must not be a
  measurable bottleneck vs a 4 MiB pool.
"""

from __future__ import annotations

from conftest import record, scale

from repro import HPBD, QuicksortWorkload, ScenarioConfig, run_scenario
from repro.analysis import format_table
from repro.units import GiB, KiB, MiB


def _run(device, s):
    cfg = ScenarioConfig(
        [QuicksortWorkload(nelems=256 * 1024 * 1024 // s)],
        device,
        mem_bytes=512 * MiB // s,
        swap_bytes=GiB // s,
        mem_reserved_bytes=24 * MiB // s,
    )
    return run_scenario(cfg)


def test_ablation_registration_pool(benchmark):
    s = scale()

    def run_pair():
        return _run(HPBD(), s), _run(HPBD(register_on_fly=True), s)

    pool, onfly = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print("\nAblation §4.1 — pool copy vs register-on-the-fly (quick sort)")
    print(format_table(
        ["variant", "time (s)"],
        [["registered pool (paper)", pool.elapsed_sec],
         ["register on the fly", onfly.elapsed_sec]],
    ))
    # The paper's choice must win.
    assert onfly.elapsed_usec > pool.elapsed_usec
    record(benchmark, pool_sec=pool.elapsed_sec, onfly_sec=onfly.elapsed_sec,
           onfly_penalty=onfly.slowdown_vs(pool))


def test_ablation_striping(benchmark):
    s = scale()

    def run_pair():
        return (
            _run(HPBD(nservers=4), s),
            _run(HPBD(nservers=4, stripe_bytes=32 * KiB), s),
        )

    blocking, striped = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print("\nAblation §4.2.5 — blocking distribution vs 32 KiB striping")
    print(format_table(
        ["layout", "time (s)", "physical requests"],
        [
            ["blocking (paper)", blocking.elapsed_sec,
             blocking.registry.get("hpbd0.physical_requests").count],
            ["striped 32 KiB", striped.elapsed_sec,
             striped.registry.get("hpbd0.physical_requests").count],
        ],
    ))
    # Striping multiplies control traffic...
    assert (
        striped.registry.get("hpbd0.physical_requests").count
        > 1.5 * blocking.registry.get("hpbd0.physical_requests").count
    )
    # ...without a decisive win (the paper's argument for rejecting it).
    assert striped.elapsed_usec > 0.95 * blocking.elapsed_usec
    record(benchmark, blocking_sec=blocking.elapsed_sec,
           striped_sec=striped.elapsed_sec)


def test_ablation_credit_watermark(benchmark):
    s = scale()

    def run_sweep():
        return {
            c: _run(HPBD(credits_per_server=c), s) for c in (1, 2, 4, 16)
        }

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print("\nAblation §4.2.4 — credit water-mark sensitivity (quick sort)")
    print(format_table(
        ["credits", "time (s)"],
        [[c, r.elapsed_sec] for c, r in sorted(results.items())],
    ))
    # Finding: the water-mark is a *correctness* mechanism (it is what
    # keeps sends inside the pre-posted receive window — remove it and
    # the RC connection RNR-NAKs); performance is flat across the sweep
    # because a single faulting task rarely has >1 read outstanding and
    # write-back absorbs its latency asynchronously.
    for c, r in results.items():
        assert r.swapin_pages > 0  # every setting completes correctly
        assert abs(r.slowdown_vs(results[16]) - 1.0) < 0.10
    record(benchmark, **{f"credits_{c}_sec": r.elapsed_sec
                         for c, r in results.items()})


def test_ablation_pool_size(benchmark):
    s = scale()

    def run_sweep():
        return {
            kib: _run(HPBD(pool_bytes=kib * KiB), s)
            for kib in (256, 1024, 4096)
        }

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print("\nAblation §4.2.2 — registration pool size (quick sort)")
    print(format_table(
        ["pool (KiB)", "time (s)", "alloc stalls"],
        [
            [kib, r.elapsed_sec,
             r.registry.get("hpbd0.pool.alloc_stall_usec").count
             and int(r.registry.get("hpbd0.pool.alloc_stall_usec").values().astype(bool).sum())]
            for kib, r in sorted(results.items())
        ],
    ))
    # The paper's 1 MiB default is not the bottleneck: quadrupling the
    # pool buys < 5 %.
    assert abs(results[1024].slowdown_vs(results[4096]) - 1.0) < 0.05
    record(benchmark, **{f"pool_{k}k_sec": r.elapsed_sec
                         for k, r in results.items()})


def test_ablation_mirroring(benchmark):
    """Reliability extension: what does synchronous mirroring cost?

    The paper scopes mirroring out (§4.1, citing NRD/RRMP); this
    measures it: every swap-out is RDMA-read by two servers, so
    outbound data doubles while run time barely moves (the write path
    is asynchronous behind kswapd).
    """
    s = scale()

    def run_pair():
        return (
            _run(HPBD(nservers=2), s),
            _run(HPBD(nservers=2, mirror=True), s),
        )

    plain, mirrored = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print("\nAblation (ext) — plain vs mirrored writes (quick sort)")
    print(format_table(
        ["variant", "time (s)", "rdma_read bytes"],
        [
            ["plain", plain.elapsed_sec, plain.network_bytes["rdma_read"]],
            ["mirrored", mirrored.elapsed_sec,
             mirrored.network_bytes["rdma_read"]],
        ],
    ))
    assert mirrored.network_bytes["rdma_read"] > 1.8 * plain.network_bytes["rdma_read"]
    assert 1.0 <= mirrored.slowdown_vs(plain) < 1.5
    record(benchmark, plain_sec=plain.elapsed_sec,
           mirrored_sec=mirrored.elapsed_sec)
