"""Micro-benchmarks of the simulation kernel itself.

Unlike the figure benches (single deterministic runs), these measure
the host-side speed of the DES — useful when deciding how large a
``REPRO_SCALE=1`` run is affordable.  pytest-benchmark runs them with
real statistical rounds.
"""

from __future__ import annotations

from repro.simulator import Resource, Simulator, Store


def test_event_loop_throughput(benchmark):
    """Raw timeout churn: one process sleeping 10k times."""

    def run():
        sim = Simulator()

        def proc(sim):
            for _ in range(10_000):
                yield sim.timeout(1.0)

        p = sim.spawn(proc(sim))
        sim.run(until=p)
        return sim.events_processed

    events = benchmark(run)
    assert events >= 10_000


def test_resource_handoff_throughput(benchmark):
    """Contended acquire/release ping-pong between 8 processes."""

    def run():
        sim = Simulator()
        res = Resource(sim, 1)

        def proc(sim):
            for _ in range(500):
                yield res.acquire()
                yield sim.timeout(0.1)
                res.release()

        procs = [sim.spawn(proc(sim)) for _ in range(8)]
        sim.run_all(procs)
        return sim.events_processed

    events = benchmark(run)
    assert events > 4_000


def test_store_pipeline_throughput(benchmark):
    """Producer/consumer handoff through a Store."""

    def run():
        sim = Simulator()
        st = Store(sim)

        def producer(sim):
            for i in range(5_000):
                st.put(i)
                yield sim.timeout(0.1)

        def consumer(sim):
            for _ in range(5_000):
                yield st.get()

        sim.spawn(producer(sim))
        c = sim.spawn(consumer(sim))
        sim.run(until=c)
        return sim.events_processed

    events = benchmark(run)
    assert events > 5_000


def test_relay_resume_throughput(benchmark):
    """Yielding an already-processed event: the pooled relay fast path."""

    def run():
        sim = Simulator()
        done = sim.event("done")
        done.succeed(1)

        def warm(sim):
            yield done

        sim.run(until=sim.spawn(warm(sim)))

        def proc(sim):
            for _ in range(10_000):
                yield done

        p = sim.spawn(proc(sim))
        sim.run(until=p)
        return sim.events_processed

    events = benchmark(run)
    assert events >= 10_000


def test_warm_pool_timeout_throughput(benchmark):
    """Timeout churn on a pre-warmed simulator: pure free-list reuse.

    Compare against ``test_event_loop_throughput`` (cold allocations
    amortized in) to see what the pool is worth on its own.
    """
    sim = Simulator()

    def proc(sim):
        for _ in range(10_000):
            yield sim.timeout(1.0)

    sim.run(until=sim.spawn(proc(sim)))  # fill the free list

    def run():
        p = sim.spawn(proc(sim))
        sim.run(until=p)
        return True

    assert benchmark(run)
