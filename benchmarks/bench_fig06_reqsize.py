"""Fig. 6 — testswap average request size per request cluster.

The paper profiles the HPBD request stream during testswap and finds
"mostly ... messages around 120K": kswapd's clustered page-outs merge
into near-128 KiB block requests.  This bench regenerates the
per-cluster average-size series.
"""

from __future__ import annotations

from conftest import record, scale

from repro.analysis import cluster_requests, format_table, size_histogram
from repro.experiments import fig06_reqsize_run
from repro.units import KiB


def test_fig06_request_size_per_cluster(benchmark):
    s = scale()
    result = benchmark.pedantic(
        fig06_reqsize_run, args=(s,), rounds=1, iterations=1
    )
    clusters = cluster_requests(result.request_trace, op="write")
    print(f"\nFig. 6 — request clusters (testswap over HPBD, scale=1/{s})")
    shown = clusters[:: max(1, len(clusters) // 20)]
    print(
        format_table(
            ["cluster", "t (ms)", "requests", "avg size (KiB)"],
            [
                [c.index, c.start_usec / 1000.0, c.count, c.mean_bytes / KiB]
                for c in shown
            ],
        )
    )
    hist = size_histogram(result.request_trace, op="write")
    print("size histogram (KiB: count):",
          {k // KiB: v for k, v in hist.items()})

    # The paper's observation: requests are predominantly ~120-128 KiB.
    overall_mean = result.mean_write_request
    assert overall_mean > 100 * KiB
    big_clusters = [c for c in clusters if c.mean_bytes > 100 * KiB]
    assert len(big_clusters) / len(clusters) > 0.8
    record(
        benchmark,
        mean_write_request_kib=overall_mean / KiB,
        paper_observation="mostly around 120K",
        clusters=len(clusters),
    )
