"""Fig. 9 — two concurrent quick sorts under memory contention.

Paper: vs the 2 GiB local case, HPBD is 1.7x slower with 50 % of memory
and 2.5x with 25 %; disk paging is ~36x slower — the headline "up to 21
times faster than local disk" comes from this configuration.
"""

from __future__ import annotations

from conftest import record, scale

from repro.analysis import format_table
from repro.experiments import PAPER_FIG9, fig09_concurrent


def test_fig09_concurrent_quicksorts(benchmark):
    s = scale()
    cells = benchmark.pedantic(fig09_concurrent, args=(s,), rounds=1, iterations=1)
    print(f"\nFig. 9 — two concurrent quick sorts (scale=1/{s})")
    rows = []
    for c in cells:
        paper = PAPER_FIG9.get((c.label, c.memory), 1.0 if c.label == "local" else None)
        rows.append(
            [c.label, c.memory, c.result.elapsed_sec * s, c.slowdown,
             paper if paper is not None else "-"]
        )
    print(format_table(
        ["device", "memory", f"time (s, x{s})", "vs local", "paper ratio"], rows
    ))

    by = {(c.label, c.memory): c for c in cells}
    hpbd50 = by[("hpbd", "50%")].slowdown
    hpbd25 = by[("hpbd", "25%")].slowdown
    disk25 = by[("disk", "25%")].slowdown
    # Shape: HPBD stays "reasonable", degrades monotonically with less
    # memory; disk is catastrophic.
    assert 1.2 < hpbd50 < 2.5  # paper 1.7
    assert hpbd25 > hpbd50  # paper 2.5 > 1.7
    assert disk25 > 10.0  # paper 36
    assert disk25 / hpbd25 > 8.0  # "up to 21x faster than disk"
    record(
        benchmark,
        hpbd50=hpbd50, hpbd25=hpbd25, disk25=disk25,
        paper_hpbd50=1.7, paper_hpbd25=2.5, paper_disk25=36.0,
        hpbd_vs_disk_at_25=disk25 / hpbd25,
    )
