"""GF(256) Reed-Solomon codec throughput (the real data-plane math).

The simulator only models the *cost* of erasure coding (``rs_encode_
usec``/``rs_decode_usec`` in :mod:`repro.redundancy.policy`); this
benchmark runs the actual numpy codec those cost models stand in for —
encode k data shards into m parity rows, then reconstruct m erased
shards from any k survivors — and asserts a conservative throughput
floor so a vectorization regression (say, a per-byte Python loop
sneaking into ``gf_matmul``) fails fast.  ``repro bench`` records the
same numbers into ``BENCH_simulator.json``.
"""

from __future__ import annotations

import pytest

from conftest import record

from repro.bench import bench_rs_encode

np = pytest.importorskip("numpy")

# This host measures ~50 MB/s encode on one CPU; the table-lookup
# construction should never fall below 10 MB/s anywhere unless the
# vectorization breaks (a per-byte loop lands in the kB/s range).
MIN_ENCODE_MB_S = 10.0


def test_rs_encode_throughput(benchmark):
    """Encode + reconstruct 4 MiB of data through rs(4,2)."""

    def run():
        return bench_rs_encode(k=4, m=2, shard_bytes=1 << 20, rounds=3)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result is not None
    record(
        benchmark,
        encode_mb_s=result["encode_mb_s"],
        reconstruct_mb_s=result["reconstruct_mb_s"],
        roundtrip_ok=result["roundtrip_ok"],
    )
    assert result["roundtrip_ok"], "RS reconstruct did not round-trip"
    assert result["encode_mb_s"] >= MIN_ENCODE_MB_S
