"""Fig. 8 — Barnes (SPLASH-2) execution time across devices.

The paper's Fig. 8 y-axis values are not recoverable from the text; the
reproduction targets are the stated trends: "similar trends are
observed" (same device ordering as quick sort) but "the improvement is
less evident" because Barnes barely exceeds local memory (516 MiB peak
vs 512 MiB RAM).
"""

from __future__ import annotations

import dataclasses

from conftest import record, scale

from repro.analysis import comparison_table
from repro.experiments import fig08_barnes


def test_fig08_barnes(benchmark):
    s = max(1, scale() // 2)  # Barnes's 4 MiB margin is noise below 1/4
    results = benchmark.pedantic(fig08_barnes, args=(s,), rounds=1, iterations=1)
    by = {r.label: r for r in results}
    print(f"\nFig. 8 — Barnes (scale=1/{s}; seconds shown x{s})")
    scaled = [
        dataclasses.replace(r, elapsed_usec=r.elapsed_usec * s)
        for r in results
    ]
    print(comparison_table(scaled))

    local, hpbd = by["local"], by["hpbd"]
    # Same ordering as the other workloads...
    assert (
        local.elapsed_usec
        <= hpbd.elapsed_usec
        < by["nbd-gige"].elapsed_usec
        < by["disk"].elapsed_usec
    )
    # ...but the gaps are small ("less evident"): HPBD within 15 % of
    # local, disk within 2x (vs 4.5x for quick sort).
    assert hpbd.slowdown_vs(local) < 1.15
    assert by["disk"].slowdown_vs(local) < 2.5
    # Barnes does swap (the figure exists because it swaps a little).
    assert hpbd.swapout_pages > 0
    record(
        benchmark,
        hpbd_vs_local=hpbd.slowdown_vs(local),
        disk_vs_local=by["disk"].slowdown_vs(local),
        paper_observation="similar trends, less evident improvement",
    )
