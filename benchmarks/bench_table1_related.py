"""Table 1 — the related-work taxonomy, regenerated from data."""

from __future__ import annotations

from repro.analysis import TABLE1, render_table1


def test_table1_related_work(benchmark):
    text = benchmark.pedantic(render_table1, rounds=1, iterations=1)
    print("\nTable 1 — modern work in designing remote memory systems")
    print(text)
    assert len(TABLE1) == 10
    hpbd = next(s for s in TABLE1 if s.name == "HPBD")
    # HPBD's distinguishing cell pattern in the paper's table:
    # implementation-based, no global management, kernel level, ULP.
    assert (hpbd.simulation_based, hpbd.global_management,
            hpbd.kernel_level, hpbd.tcp_based, hpbd.ulp_based) == (
        False, "N", "Y", "N", "Y")
