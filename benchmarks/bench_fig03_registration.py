"""Fig. 3 — memory registration vs memcpy cost.

The crossover argument behind HPBD's copy-through-pool design (§4.1):
registering on the fly costs more than copying for every size a swap
request can take (4 KiB – 127 KiB).
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.experiments import fig03_registration


def test_fig03_registration_vs_memcpy(benchmark):
    data = benchmark.pedantic(fig03_registration, rounds=1, iterations=1)
    rows = [
        [int(s), data["registration"][i], data["memcpy"][i],
         data["registration"][i] / data["memcpy"][i]]
        for i, s in enumerate(data["sizes"])
    ]
    print("\nFig. 3 — registration vs memcpy cost (µs)")
    print(format_table(["size", "registration", "memcpy", "ratio"], rows))

    # The paper's claim: registration dominates across the swap range.
    assert all(
        data["registration"][i] > data["memcpy"][i]
        for i in range(len(data["sizes"]))
    )
    benchmark.extra_info["ratio_at_4k"] = float(
        data["registration"][0] / data["memcpy"][0]
    )
