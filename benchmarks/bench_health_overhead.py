"""Always-on health overhead: what a cluster run pays for live SLOs.

The fleet health model (``repro.obs.health``) is on by default for
every cluster scenario — each completed request lands in a windowed
quantile sketch, each acknowledged attempt updates a per-server EWMA,
and a periodic tick scores every objective and detector.  All of that
is O(1) per sample against bounded state, so a run with the engine
enabled must stay within a few percent of one with ``health=None``.
This benchmark measures that gap on the three-tenant fair cluster and
enforces the documented <10% floor; ``repro bench`` records the same
numbers into ``BENCH_simulator.json``.
"""

from __future__ import annotations

from conftest import record

from repro.bench import bench_health_overhead

# Per-request work is a handful of float ops plus one log() per sketch
# record; the tick walks a dozen sketches per millisecond of simulated
# time.  Measured overhead on the fair cluster is a few percent; 10%
# is the documented gate — above that, always-on SLOs would no longer
# be a defensible default.
MAX_HEALTH_OVERHEAD = 0.10


def test_health_overhead(benchmark):
    """Fair cluster run, monitors-only vs. the always-on SLO engine."""

    def run():
        return bench_health_overhead(scale=64, rounds=5)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        benchmark,
        baseline_wall_sec=result["baseline_wall_sec"],
        health_wall_sec=result["health_wall_sec"],
        baseline_events_per_sec=result["baseline_events_per_sec"],
        health_events_per_sec=result["health_events_per_sec"],
        overhead_frac=result["overhead_frac"],
    )
    assert result["overhead_frac"] < MAX_HEALTH_OVERHEAD
