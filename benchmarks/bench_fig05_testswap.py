"""Fig. 5 — testswap execution time across all five configurations.

Paper numbers: local 5.8 s, HPBD 8.4 s, NBD-IPoIB 10.8 s, NBD-GigE
12.2 s, disk ~18.5 s.  Measured values are scaled back to full size
(`time * scale`) for the side-by-side table; the reproduction targets
are the *ratios* (1.45x, 1.29x, 1.45x, 2.2x).
"""

from __future__ import annotations

import dataclasses

from conftest import record, scale

from repro.analysis import comparison_table
from repro.experiments import PAPER_FIG5, fig05_testswap


def test_fig05_testswap(benchmark):
    s = scale()
    results = benchmark.pedantic(fig05_testswap, args=(s,), rounds=1, iterations=1)
    by = {r.label: r for r in results}
    print(f"\nFig. 5 — testswap (scale=1/{s}; seconds shown x{s})")
    scaled = [
        dataclasses.replace(r, elapsed_usec=r.elapsed_usec * s)
        for r in results
    ]
    print(comparison_table(scaled, paper=PAPER_FIG5))

    local, hpbd = by["local"], by["hpbd"]
    # Paper ratios (±35% tolerance on a scaled simulated system).
    assert 1.1 < hpbd.slowdown_vs(local) < 2.0  # paper 1.45
    assert by["disk"].slowdown_vs(hpbd) > 1.5  # paper 2.2
    assert by["nbd-gige"].slowdown_vs(hpbd) > 1.15  # paper 1.45
    assert by["nbd-ipoib"].slowdown_vs(hpbd) > 1.05  # paper 1.29
    for label, r in by.items():
        record(
            benchmark,
            **{
                f"{label}_sec_fullscale": r.elapsed_sec * s,
                f"{label}_paper_sec": PAPER_FIG5[label],
            },
        )
