"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures and
records measured-vs-paper values in ``benchmark.extra_info`` (visible in
``pytest-benchmark``'s JSON output) as well as printing a table.

Scale: set ``REPRO_SCALE`` (a divisor on data/memory sizes; default 8,
Barnes uses max(scale/2, 1)).  ``REPRO_SCALE=1`` reproduces the paper's
full sizes — expect several minutes per figure.
"""

from __future__ import annotations

import os

import pytest


def scale() -> int:
    return int(os.environ.get("REPRO_SCALE", "8"))


@pytest.fixture(scope="session")
def repro_scale() -> int:
    return scale()


def record(benchmark, **info) -> None:
    """Stash measured/paper values in the benchmark JSON."""
    for key, value in info.items():
        benchmark.extra_info[key] = value
