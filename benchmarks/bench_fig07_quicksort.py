"""Fig. 7 — quick sort (256 Mi ints) execution time across devices.

Paper numbers: local 94 s, HPBD 138 s (1.47x), NBD-IPoIB 1.13x HPBD,
NBD-GigE 1.36x HPBD, disk 4.5x HPBD.
"""

from __future__ import annotations

import dataclasses

from conftest import record, scale

from repro.analysis import comparison_table
from repro.experiments import PAPER_FIG7, fig07_quicksort


def test_fig07_quicksort(benchmark):
    s = scale()
    results = benchmark.pedantic(
        fig07_quicksort, args=(s,), rounds=1, iterations=1
    )
    by = {r.label: r for r in results}
    print(f"\nFig. 7 — quick sort (scale=1/{s}; seconds shown x{s})")
    scaled = [
        dataclasses.replace(r, elapsed_usec=r.elapsed_usec * s)
        for r in results
    ]
    print(comparison_table(scaled, paper=PAPER_FIG7))

    local, hpbd = by["local"], by["hpbd"]
    assert 1.2 < hpbd.slowdown_vs(local) < 2.0  # paper 1.47
    assert by["disk"].slowdown_vs(hpbd) > 2.5  # paper 4.5
    assert by["nbd-gige"].slowdown_vs(hpbd) > 1.2  # paper 1.36
    assert by["nbd-ipoib"].slowdown_vs(hpbd) > 1.05  # paper 1.13
    # ordering
    assert (
        local.elapsed_usec
        < hpbd.elapsed_usec
        < by["nbd-ipoib"].elapsed_usec
        < by["nbd-gige"].elapsed_usec
        < by["disk"].elapsed_usec
    )
    for label, r in by.items():
        record(
            benchmark,
            **{
                f"{label}_sec_fullscale": r.elapsed_sec * s,
                f"{label}_paper_sec": PAPER_FIG7[label],
            },
        )
