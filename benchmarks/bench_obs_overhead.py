"""Observability overhead: what an untraced run pays for tracing to exist.

Every instrumented site in the package guards its span emission with
``if sim.trace.enabled:`` against the NULL_TRACE singleton, so a run
without tracing should cost within a few percent of a hypothetical
build with no observability at all.  This benchmark measures that gap
two ways — a hot-loop microbenchmark (the guard itself) and a full
scenario pair (untraced vs. traced) — and asserts the disabled-trace
overhead stays small.  ``repro bench`` records the same numbers into
``BENCH_simulator.json``.
"""

from __future__ import annotations

from conftest import record

from repro.bench import bench_obs_overhead

# The guard costs two attribute loads and a branch (~80 ns) per event.
# Against a bare timeout loop — the cheapest event the DES can process
# — that measures ~8-9%, a deliberate worst-case upper bound: real
# scenario events do orders of magnitude more work each, so scenario-
# level overhead is a small fraction of this.  15% catches a regression
# (say, building span args before checking enabled) without flaking.
MAX_DISABLED_OVERHEAD = 0.15


def test_disabled_trace_overhead(benchmark):
    """Bare event loop vs. the same loop with the trace-enabled guard."""

    def run():
        return bench_obs_overhead(nevents=50_000, rounds=3)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        benchmark,
        bare_events_per_sec=result["bare_events_per_sec"],
        guarded_events_per_sec=result["guarded_events_per_sec"],
        overhead_frac=result["overhead_frac"],
    )
    assert result["overhead_frac"] < MAX_DISABLED_OVERHEAD


def test_scenario_untraced_vs_traced(benchmark):
    """Full fig07-style HPBD point: untraced wall time vs. traced.

    The untraced run is the product configuration; the traced run buys
    the span tree, the metrics sampler, and per-request blame.  Records
    both so the BENCH history shows what tracing costs when you ask
    for it (informational — traced runs are allowed to be slower).
    """
    import time

    from repro.config import HPBD
    from repro.experiments import fig07_points
    from repro.runner import run_scenario

    cfg = fig07_points(64, [HPBD()])[0].cfg

    def run():
        t0 = time.perf_counter()
        run_scenario(cfg)
        untraced_sec = time.perf_counter() - t0
        t0 = time.perf_counter()
        traced = run_scenario(cfg, trace=True)
        traced_sec = time.perf_counter() - t0
        return untraced_sec, traced_sec, len(traced.trace)

    untraced_sec, traced_sec, nspans = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    record(
        benchmark,
        untraced_sec=untraced_sec,
        traced_sec=traced_sec,
        trace_events=nspans,
        traced_slowdown=traced_sec / untraced_sec if untraced_sec else None,
    )
    assert nspans > 0
