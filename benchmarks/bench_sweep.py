"""Benchmarks of the sweep engine: cache hit path and end-to-end grids.

The figure benches measure single scenarios; these measure the machinery
that runs *grids* of them — the serial baseline, and the cached re-run
that must be orders of magnitude faster (it only deserializes pickles).
``REPRO_SCALE`` scales the scenario sizes as usual.
"""

from __future__ import annotations

import pytest

from conftest import record, scale

from repro.config import HPBD, NBD
from repro.experiments import fig05_points
from repro.sweep import ResultCache, SweepPoint, run_sweep, sweep_key


@pytest.fixture(scope="module")
def sweep_scale() -> int:
    # Engine overhead does not depend on scenario size; keep the grid
    # cheap even when REPRO_SCALE asks for big runs.
    return max(scale(), 32)


def test_sweep_serial_wall(benchmark, sweep_scale):
    """A full fig05 device grid through the engine, serial, no cache."""
    points = fig05_points(sweep_scale)

    def run():
        return run_sweep(points, workers=1)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.simulated == len(points)
    record(
        benchmark,
        points=len(points),
        wall_sec=report.wall_sec,
        scale=sweep_scale,
    )


def test_sweep_cached_rerun(benchmark, sweep_scale, tmp_path_factory):
    """Re-running an unchanged grid: zero re-simulated points."""
    cache_dir = tmp_path_factory.mktemp("sweep-cache")
    points = fig05_points(sweep_scale)
    warm = run_sweep(points, cache=cache_dir)
    assert warm.simulated == len(points)

    def run():
        return run_sweep(points, cache=cache_dir)

    report = benchmark(run)
    assert report.simulated == 0
    assert report.cached == len(points)
    record(benchmark, points=len(points), scale=sweep_scale)


def test_fingerprint_cost(benchmark, sweep_scale):
    """Keying a config must stay cheap relative to simulating it."""
    point = fig05_points(sweep_scale)[1]  # hpbd
    key = benchmark(lambda: sweep_key(point.cfg))
    assert len(key) == 64


def test_cache_get_cost(benchmark, sweep_scale, tmp_path_factory):
    """Loading one cached ScenarioResult from disk."""
    cache = ResultCache(tmp_path_factory.mktemp("one-point-cache"))
    cfg = fig05_points(sweep_scale)[1].cfg
    run_sweep([SweepPoint("hpbd", cfg)], cache=cache)
    key = sweep_key(cfg)
    result = benchmark(lambda: cache.get(key))
    assert result is not None and result.label == "hpbd"


def test_duplicate_grid_dedup(sweep_scale, tmp_path):
    """Same config under different names simulates once (no benchmark:
    a correctness guard that belongs next to the perf numbers)."""
    cfg = fig05_points(sweep_scale)[1].cfg
    report = run_sweep(
        [SweepPoint("a", cfg), SweepPoint("b", cfg)], cache=tmp_path
    )
    assert report.simulated == 1


def test_device_grid_keys_unique(sweep_scale):
    points = fig05_points(sweep_scale) + [
        SweepPoint("hpbd4", fig05_points(sweep_scale)[0].cfg.with_device(HPBD(nservers=4))),
        SweepPoint("nbd", fig05_points(sweep_scale)[0].cfg.with_device(NBD("ipoib"))),
    ]
    keys = [sweep_key(p.cfg) for p in points]
    assert len(set(keys)) == len(keys)
