"""§6.2 — the Amdahl's-law decomposition of swap overhead.

Paper: with testswap's ~120 KiB messages, "network overhead is about 48
percent of the overhead of GigE and only 34.5 % for IPoIB" and "with
HPBD, the network cost is less than 30 %, thus host overhead is more
dominant" — the paper's central conclusion.

Two calculations are printed: the simulator's ground-truth wire-time
share, and the paper's own inference method applied to the simulated
run times (NBD-GigE vs NBD-IPoIB share one code path; the wire speed
ratio for 120 KiB messages comes from the calibrated models).
"""

from __future__ import annotations

from conftest import record, scale

from repro.analysis import format_table
from repro.analysis.amdahl import (
    direct_network_fraction,
    infer_network_fraction,
    tcp_wire_cost,
)
from repro.experiments import sec62_runs
from repro.net import GIGE_DEFAULT, IB_DEFAULT, IPOIB_DEFAULT
from repro.units import KiB


def test_sec62_network_share(benchmark):
    s = scale()
    runs = benchmark.pedantic(sec62_runs, args=(s,), rounds=1, iterations=1)
    local = runs["local"]

    gige_f = direct_network_fraction(
        runs["nbd-gige"], local, tcp_wire_cost(GIGE_DEFAULT)
    )
    ipoib_f = direct_network_fraction(
        runs["nbd-ipoib"], local, tcp_wire_cost(IPOIB_DEFAULT)
    )
    hpbd_f = direct_network_fraction(
        runs["hpbd"], local, lambda n: IB_DEFAULT.rdma_write_cost(n)
    )

    # The paper's inference: GigE vs IPoIB run times + relative wire
    # speed for the dominant 120 KiB message size.
    msg = 120 * KiB
    wire_speedup = (
        tcp_wire_cost(GIGE_DEFAULT)(msg) / tcp_wire_cost(IPOIB_DEFAULT)(msg)
    )
    inferred_gige = infer_network_fraction(
        runs["nbd-gige"].elapsed_sec,
        runs["nbd-ipoib"].elapsed_sec,
        local.elapsed_sec,
        wire_speedup,
    )

    print("\n§6.2 — wire-time share of swap overhead (simulator ground truth)")
    print(format_table(
        ["transport", "wire share", "host share", "paper ('network')"],
        [
            ["NBD-GigE", gige_f, 1 - gige_f, "48%"],
            ["NBD-IPoIB", ipoib_f, 1 - ipoib_f, "34.5%"],
            ["HPBD", hpbd_f, 1 - hpbd_f, "<30%"],
        ],
    ))
    print(f"paper-method inference for GigE (from run-time pair): "
          f"{inferred_gige:.0%} (paper: 48%)")
    print("note: the paper's 'network' share for IPoIB includes IB-stack "
          "processing below IP; the ground-truth wire share isolates "
          "serialization+latency, making IPoIB's host dominance even "
          "starker — the same conclusion, sharper.")

    # The paper's §6.2 claims, on ground-truth wire time:
    # 1. "with HPBD, the network cost is less than 30%, thus host
    #    overhead is more dominant".
    assert hpbd_f < 0.30
    # 2. For slow-wire TCP (GigE) the wire genuinely dominates overhead.
    assert gige_f > 0.45
    assert gige_f > hpbd_f
    # 3. "simply using TCP/IP over high performance network can not
    #    benefit from the low latency feature": IPoIB's overhead is
    #    mostly host-side stack processing.
    assert (1 - ipoib_f) > 0.60
    record(
        benchmark,
        gige_fraction=gige_f,
        ipoib_fraction=ipoib_f,
        hpbd_fraction=hpbd_f,
        inferred_gige_fraction=inferred_gige,
        paper_gige=0.48, paper_ipoib=0.345, paper_hpbd_bound=0.30,
    )
