"""Fig. 1 — latency vs message size: memcpy, RDMA write, IPoIB, GigE.

Regenerates the paper's microbenchmark curves from the calibrated cost
models and checks the orderings the paper's narrative relies on.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.experiments import fig01_latency
from repro.units import KiB


def test_fig01_latency_curves(benchmark):
    data = benchmark.pedantic(fig01_latency, rounds=1, iterations=1)
    sizes = data["sizes"]
    rows = [
        [int(s), data["memcpy"][i], data["rdma_write"][i],
         data["ipoib"][i], data["gige"][i]]
        for i, s in enumerate(sizes)
    ]
    print("\nFig. 1 — one-way latency (µs) vs size (B)")
    print(format_table(["size", "memcpy", "rdma_write", "ipoib", "gige"], rows))

    # Shape assertions: the orderings visible in the paper's figure.
    for i in range(len(sizes)):
        assert data["memcpy"][i] < data["rdma_write"][i]
        assert data["rdma_write"][i] < data["ipoib"][i]
        assert data["ipoib"][i] < data["gige"][i]
    # RDMA write at 128 KiB is within ~2.5x of memcpy ("comparable").
    assert data["rdma_write"][-1] < 2.5 * data["memcpy"][-1]
    benchmark.extra_info["rdma_write_128k_usec"] = float(data["rdma_write"][-1])
    benchmark.extra_info["memcpy_128k_usec"] = float(data["memcpy"][-1])
