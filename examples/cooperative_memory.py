#!/usr/bin/env python3
"""Cooperative cluster memory: the paper's §7 future work, running.

A small cluster where nodes advertise their idle memory to a broker;
a memory-starved node asks for remote swap and the broker picks the
richest lenders (memory ushering), sizing each server's share to what it
can spare.  The resulting weighted HPBD device then absorbs a quick sort
that is 2x the client's RAM.

Run:  python examples/cooperative_memory.py
"""

from repro import QuicksortWorkload, ScenarioConfig
from repro.hpbd import HPBDClient, HPBDServer, MemoryBroker, WeightedDistribution
from repro.kernel import Node
from repro.net import Fabric
from repro.simulator import Simulator
from repro.units import MiB, fmt_bytes
from repro.workloads import execute


def main() -> None:
    sim = Simulator()
    fabric = Fabric(sim)
    broker = MemoryBroker(sim, self_reserve_bytes=16 * MiB)

    # The cluster: nodes with different amounts of free memory.
    cluster_free = {"nodeA": 96 * MiB, "nodeB": 48 * MiB, "nodeC": 20 * MiB}
    for name, free in cluster_free.items():
        ad = broker.advertise(name, free)
        print(f"{name}: {fmt_bytes(free)} free -> advertises "
              f"{fmt_bytes(ad.idle_bytes)} lendable")

    # A starved client wants 96 MiB of remote swap.
    want = 96 * MiB
    chosen = broker.select_servers(want)
    print(f"\nbroker grants {fmt_bytes(want)} from: "
          + ", ".join(f"{n} ({fmt_bytes(s)})" for n, s in chosen))

    servers = [
        HPBDServer(sim, fabric, name, store_bytes=share)
        for name, share in chosen
    ]
    dist = WeightedDistribution([share for _n, share in chosen])
    client_node = Node(sim, fabric, "client", mem_bytes=32 * MiB)
    client = HPBDClient(
        sim, client_node, servers, total_bytes=want, distribution=dist
    )

    workload = QuicksortWorkload(nelems=(64 * MiB) // 4, target_inmem_sec=6.0)
    aspace = client_node.vmm.create_address_space(workload.npages, "sort")

    def main_proc(sim):
        yield from client.connect()
        client_node.swapon(client.queue, want)
        elapsed = yield from execute(workload, client_node, aspace)
        yield from client_node.vmm.quiesce()
        return elapsed

    proc = sim.spawn(main_proc(sim))
    elapsed = sim.run(until=proc)
    print(f"\nquick sort of {fmt_bytes(64 * MiB)} on a "
          f"{fmt_bytes(32 * MiB)} node: {elapsed / 1e6:.2f} s")
    for srv, (name, share) in zip(servers, chosen):
        used = srv.ramdisk.pages_stored * 4096
        print(f"  {name}: holds {fmt_bytes(used)} of its "
              f"{fmt_bytes(share)} share")
    print(f"\nremaining cluster idle memory: {fmt_bytes(broker.total_idle)}")


if __name__ == "__main__":
    main()
