#!/usr/bin/env python3
"""Bring your own workload: an in-memory key-value store with a skewed
(Zipf-like) access pattern, swapped to remote memory.

Shows the extension surface a downstream user has: subclass
``repro.Workload``, emit ``SeqTouch``/``RandomTouch``/``Compute`` ops,
and every device model, the VM, and the result machinery just work.
Skewed random access is also the regime where the paper's read-ahead
helps least — compare the mean read-request size with testswap's 128 KiB
writes.

Run:  python examples/custom_workload.py
"""

from collections.abc import Iterable

import numpy as np

from repro import HPBD, LocalDisk, ScenarioConfig, Workload, run_scenario
from repro.units import KiB, MiB, PAGE_SIZE, bytes_to_pages, fmt_bytes
from repro.workloads import RandomTouch, SeqTouch, TraceOp


class KVStoreWorkload(Workload):
    """Load a store sequentially, then serve skewed point queries."""

    name = "kvstore"

    def __init__(
        self,
        store_bytes: int = 96 * MiB,
        queries: int = 200_000,
        hot_fraction: float = 0.1,
        hot_probability: float = 0.9,
        query_usec: float = 2.0,
        seed: int = 1234,
    ) -> None:
        self._npages = bytes_to_pages(store_bytes)
        self.queries = queries
        self.hot_fraction = hot_fraction
        self.hot_probability = hot_probability
        self.query_usec = query_usec
        self.seed = seed

    @property
    def npages(self) -> int:
        return self._npages

    def ops(self) -> Iterable[TraceOp]:
        rng = np.random.default_rng(self.seed)
        # Phase 1: bulk load (sequential writes, ~1 µs per page of work).
        yield SeqTouch(0, self._npages, write=True,
                       compute_usec=float(self._npages))
        # Phase 2: skewed reads in batches of 512 queries.
        hot_pages = max(1, int(self._npages * self.hot_fraction))
        batch = 512
        for _ in range(self.queries // batch):
            is_hot = rng.random(batch) < self.hot_probability
            pages = np.where(
                is_hot,
                rng.integers(0, hot_pages, size=batch),
                rng.integers(0, self._npages, size=batch),
            )
            yield RandomTouch(pages, write=False,
                              compute_usec=self.query_usec * batch)


def main() -> None:
    workload = KVStoreWorkload()
    print(f"KV store: {fmt_bytes(workload.npages * PAGE_SIZE)} data, "
          f"{workload.queries:,} skewed queries, node RAM 48 MiB\n")
    for device in (HPBD(), LocalDisk()):
        cfg = ScenarioConfig(
            workloads=[workload],
            device=device,
            mem_bytes=48 * MiB,
            swap_bytes=256 * MiB,
            mem_reserved_bytes=4 * MiB,
        )
        result = run_scenario(cfg)
        print(f"[{result.label}]")
        print(f"  total time        : {result.elapsed_sec:.2f} s")
        print(f"  major faults      : {result.instances[0].major_faults}")
        print(f"  mean read request : "
              f"{result.mean_read_request / KiB:.0f} KiB "
              f"(random access defeats read-ahead clustering)")
        print()


if __name__ == "__main__":
    main()
