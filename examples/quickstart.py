#!/usr/bin/env python3
"""Quickstart: swap a 128 MiB sequential workload to remote memory.

Builds one compute node with 64 MiB of RAM, one HPBD memory server, and
runs the paper's testswap microbenchmark against it — then against the
local disk for contrast.

Run:  python examples/quickstart.py
"""

from repro import (
    HPBD,
    LocalDisk,
    ScenarioConfig,
    TestswapWorkload,
    run_scenario,
)
from repro.units import MiB, fmt_bytes, fmt_usec


def main() -> None:
    workload = TestswapWorkload(size_bytes=128 * MiB)
    print(f"workload: sequential store of {fmt_bytes(128 * MiB)} "
          f"({workload.npages} pages), node RAM 64 MiB\n")

    for device in (HPBD(), LocalDisk()):
        cfg = ScenarioConfig(
            workloads=[workload],
            device=device,
            mem_bytes=64 * MiB,
            swap_bytes=256 * MiB,
            mem_reserved_bytes=4 * MiB,
        )
        result = run_scenario(cfg)
        inst = result.instances[0]
        print(f"[{result.label}]")
        print(f"  execution time : {fmt_usec(result.elapsed_usec)}")
        print(f"  pages swapped  : out={result.swapout_pages} "
              f"in={result.swapin_pages}")
        print(f"  write requests : mean "
              f"{fmt_bytes(result.mean_write_request)} "
              f"(merged by the block layer)")
        print(f"  fault stalls   : {fmt_usec(inst.stall_usec)}")
        if result.network_bytes:
            moved = sum(result.network_bytes.values())
            print(f"  network bytes  : {fmt_bytes(moved)} "
                  f"({dict(sorted(result.network_bytes.items()))})")
        print()


if __name__ == "__main__":
    main()
