#!/usr/bin/env python3
"""Replay a recorded page-access trace against remote memory.

Demonstrates two library features together:

* ``ReplayWorkload`` — drive the simulated VM from a text trace (the
  format a pin/valgrind post-processor would emit);
* ``vmstat`` — /proc-style snapshots sampled while the trace runs.

The synthetic trace below models a three-phase analytics job: bulk load,
a sequential aggregation pass, then skewed random lookups.

Run:  python examples/trace_replay.py
"""

from repro.hpbd import HPBDClient, HPBDServer
from repro.kernel import Node, format_vmstat, vmstat
from repro.net import Fabric
from repro.simulator import Simulator
from repro.units import MiB
from repro.workloads import ReplayWorkload, execute

TRACE = """
# phase 1: bulk load 64 MiB (16384 pages), ~0.8 us of work per page
seq 0 16384 w 13000.0
# phase 2: aggregation pass (read everything back)
seq 0 16384 r 26000.0
# phase 3: skewed lookups — the hot head plus scattered cold pages
rand 1,2,3,4,5,6,7,8,2000,9000,16000 r 500.0
rand 1,2,3,4,5,6,7,8,4000,11000,15500 r 500.0
rand 1,2,3,4,5,6,7,8,700,8700,12345 r 500.0
cpu 2000.0
"""


def main() -> None:
    sim = Simulator()
    fabric = Fabric(sim)
    node = Node(sim, fabric, "client", mem_bytes=32 * MiB)
    server = HPBDServer(sim, fabric, "mem0", store_bytes=128 * MiB,
                        stats=node.stats)
    client = HPBDClient(sim, node, [server], total_bytes=128 * MiB)
    workload = ReplayWorkload.from_text(TRACE)
    aspace = node.vmm.create_address_space(workload.npages, "replay")
    snapshots = []

    def sampler(sim):
        while True:
            yield sim.timeout(500_000.0)  # every 0.5 s
            snapshots.append(vmstat(node))

    def main_proc(sim):
        yield from client.connect()
        node.swapon(client.queue, 128 * MiB)
        elapsed = yield from execute(workload, node, aspace)
        yield from node.vmm.quiesce()
        return elapsed

    sim.spawn(sampler(sim))
    proc = sim.spawn(main_proc(sim))
    elapsed = sim.run(until=proc)

    print(f"trace replay finished in {elapsed / 1e6:.2f} s "
          f"({workload.npages} pages over 32 MiB RAM)\n")
    print("final VM state:")
    print(format_vmstat(vmstat(node)))
    print("\nsampled during the run:")
    for stat in snapshots:
        print(f"  t={stat.time_usec / 1e6:5.1f}s  "
              f"free={stat.free_bytes >> 20:3d} MiB  "
              f"pswpout={stat.pswpout_pages}  pswpin={stat.pswpin_pages}")


if __name__ == "__main__":
    main()
