#!/usr/bin/env python3
"""Sorting under memory pressure: the paper's headline experiment.

Quick sort of a 1 GiB-class array (scaled to 1/8 by default) on a node
with half that much RAM, swapping to each of the paper's four devices.
This is Fig. 7 of the paper as a runnable example — the shape to look
for: HPBD lands close to local memory, the TCP transports trail it, and
the disk collapses.

Run:  python examples/memory_pressure_sort.py [scale]
"""

import sys

from repro import (
    HPBD,
    LocalDisk,
    LocalMemory,
    NBD,
    QuicksortWorkload,
    ScenarioConfig,
    run_scenario,
)
from repro.analysis import comparison_table
from repro.units import GiB, MiB


def main(scale: int = 8) -> None:
    nelems = 256 * 1024 * 1024 // scale
    print(f"quick sort of {nelems:,} integers "
          f"({nelems * 4 // MiB} MiB), RAM {512 // scale} MiB "
          f"(scale=1/{scale})\n")
    results = []
    for device in (LocalMemory(), HPBD(), NBD("ipoib"), NBD("gige"),
                   LocalDisk()):
        mem = 2 * GiB if isinstance(device, LocalMemory) else 512 * MiB
        cfg = ScenarioConfig(
            workloads=[QuicksortWorkload(nelems=nelems)],
            device=device,
            mem_bytes=mem // scale,
            swap_bytes=GiB // scale,
            mem_reserved_bytes=24 * MiB // scale,
        )
        result = run_scenario(cfg)
        results.append(result)
        print(f"  {result.label:10s} done: {result.elapsed_sec:8.2f} s "
              f"(in={result.swapin_pages} out={result.swapout_pages} pages)")
    print()
    print(comparison_table(results))
    hpbd = next(r for r in results if r.label == "hpbd")
    disk = next(r for r in results if r.label == "disk")
    print(f"\nHPBD is {disk.elapsed_usec / hpbd.elapsed_usec:.1f}x faster "
          f"than swapping to local disk (paper: 4.5x).")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
