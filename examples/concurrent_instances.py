#!/usr/bin/env python3
"""Two memory-hungry applications sharing one starved node (Fig. 9).

Runs two concurrent quick sorts whose combined working set is 4x the
node's RAM, swapping over four HPBD memory servers — then over the local
disk.  The global LRU interleaves both address spaces and the swap area
serves them both; remote memory keeps the node usable where disk paging
makes it ~30x slower.

Run:  python examples/concurrent_instances.py [scale]
"""

import sys

from repro import (
    HPBD,
    LocalDisk,
    LocalMemory,
    QuicksortWorkload,
    ScenarioConfig,
    run_scenario,
)
from repro.analysis import format_table
from repro.units import GiB, MiB


def main(scale: int = 16) -> None:
    def two():
        return [
            QuicksortWorkload(nelems=256 * 1024 * 1024 // scale, seed=7 + i)
            for i in range(2)
        ]

    base = run_scenario(ScenarioConfig(
        workloads=two(),
        device=LocalMemory(),
        mem_bytes=(2 * GiB + 256 * MiB) // scale,
        mem_reserved_bytes=24 * MiB // scale,
    ))
    print(f"baseline (enough RAM for both): {base.elapsed_sec:.2f} s\n")

    rows = []
    for device in (HPBD(nservers=4), LocalDisk()):
        result = run_scenario(ScenarioConfig(
            workloads=two(),
            device=device,
            mem_bytes=512 * MiB // scale,  # 25 % of the working set
            swap_bytes=2 * GiB // scale,
            mem_reserved_bytes=24 * MiB // scale,
        ))
        per_app = ", ".join(
            f"{i.elapsed_usec / 1e6:.2f}s" for i in result.instances
        )
        rows.append([
            result.label,
            result.elapsed_sec,
            result.elapsed_usec / base.elapsed_usec,
            per_app,
        ])
        print(f"  {result.label} done")
    print()
    print(format_table(
        ["device", "time (s)", "vs baseline", "per-app times"], rows
    ))
    print("\npaper (25% memory): HPBD 2.5x slower than local; disk ~36x — "
          "'with only disk paging, the execution time is tremendously high'.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 16)
