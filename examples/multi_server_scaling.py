#!/usr/bin/env python3
"""Multi-server scaling: spreading the swap area over 1–16 memory servers.

Reproduces the paper's Fig. 10 as an example: the blocking distribution
keeps per-request costs flat up to 8 servers; at 16 the HCA's QP-context
cache starts to thrash and a small degradation appears.

Run:  python examples/multi_server_scaling.py [scale]
"""

import sys

from repro import HPBD, QuicksortWorkload, ScenarioConfig, run_scenario
from repro.analysis import format_table
from repro.units import GiB, MiB


def main(scale: int = 16) -> None:
    print(f"quick sort, 512/{scale} MiB RAM, swap striped over N servers "
          f"in contiguous chunks (scale=1/{scale})\n")
    rows = []
    base = None
    for nservers in (1, 2, 4, 8, 16):
        cfg = ScenarioConfig(
            workloads=[QuicksortWorkload(nelems=256 * 1024 * 1024 // scale)],
            device=HPBD(nservers=nservers),
            mem_bytes=512 * MiB // scale,
            swap_bytes=GiB // scale,
            mem_reserved_bytes=24 * MiB // scale,
        )
        result = run_scenario(cfg)
        if base is None:
            base = result
        splits = result.registry.get("hpbd0.split_requests")
        rows.append([
            nservers,
            result.elapsed_sec,
            result.elapsed_usec / base.elapsed_usec,
            splits.count if splits else 0,
        ])
        print(f"  {nservers:2d} servers done ({result.elapsed_sec:.2f} s)")
    print()
    print(format_table(
        ["servers", "time (s)", "vs 1 server", "split requests"], rows
    ))
    print("\npaper: 'HPBD performs similarly up to 8 servers. For 16 "
          "nodes server there is some degradation.'")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 16)
