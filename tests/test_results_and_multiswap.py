"""Result-object behaviour and multi-swap-device (priority) integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.disk import DiskDevice
from repro.hpbd import HPBDClient, HPBDServer
from repro.kernel import Node
from repro.results import InstanceResult, ScenarioResult
from repro.simulator import StatsRegistry
from repro.units import KiB, MiB


def make_result(label="x", elapsed=2e6, wreq=(), rreq=()):
    return ScenarioResult(
        label=label,
        instances=[
            InstanceResult(
                workload="w", elapsed_usec=elapsed, major_faults=1,
                minor_faults=2, stall_usec=3.0,
            )
        ],
        elapsed_usec=elapsed,
        swapout_pages=10,
        swapin_pages=5,
        read_request_bytes=np.array(rreq, dtype=float),
        write_request_bytes=np.array(wreq, dtype=float),
        request_trace=[],
        network_bytes={},
        client_copy_usec=0.0,
        registry=StatsRegistry(),
    )


class TestScenarioResult:
    def test_elapsed_sec(self):
        assert make_result(elapsed=2.5e6).elapsed_sec == 2.5

    def test_mean_requests_empty(self):
        r = make_result()
        assert r.mean_read_request == 0.0
        assert r.mean_write_request == 0.0

    def test_mean_requests(self):
        r = make_result(wreq=[128 * KiB, 64 * KiB], rreq=[32 * KiB])
        assert r.mean_write_request == 96 * KiB
        assert r.mean_read_request == 32 * KiB

    def test_slowdown_vs(self):
        a = make_result(elapsed=4e6)
        b = make_result(elapsed=2e6)
        assert a.slowdown_vs(b) == 2.0
        with pytest.raises(ValueError):
            a.slowdown_vs(make_result(elapsed=0.0))

    def test_summary_mentions_requests(self):
        r = make_result(wreq=[128 * KiB])
        assert "wreq~128KiB" in r.summary()

    def test_instance_elapsed_sec(self):
        assert make_result().instances[0].elapsed_sec == 2.0


class TestComparisonTable:
    def test_with_paper_columns(self):
        from repro.analysis import comparison_table

        rs = [make_result("local", 1e6), make_result("hpbd", 1.5e6)]
        text = comparison_table(rs, paper={"local": 5.8, "hpbd": 8.4})
        assert "paper" in text
        assert "1.50" in text  # measured ratio
        assert "1.45" in text  # paper ratio 8.4/5.8

    def test_without_paper(self):
        from repro.analysis import comparison_table

        rs = [make_result("local", 1e6), make_result("disk", 3e6)]
        text = comparison_table(rs)
        assert "3.00" in text

    def test_missing_paper_entries_dash(self):
        from repro.analysis import comparison_table

        rs = [make_result("local", 1e6), make_result("weird", 2e6)]
        text = comparison_table(rs, paper={"local": 5.8})
        assert "-" in text


class TestMultipleSwapDevices:
    def test_higher_priority_fills_first(self, sim, fabric):
        """Linux semantics: the higher-priority swap device takes all
        traffic until it fills, then the next one spills over."""
        node = Node(sim, fabric, "n0", mem_bytes=8 * MiB)
        srv = HPBDServer(sim, fabric, "mem0", store_bytes=8 * MiB,
                         stats=node.stats)
        client = HPBDClient(sim, node, [srv], total_bytes=4 * MiB)
        disk = DiskDevice(sim, swap_partition_bytes=64 * MiB, stats=node.stats)

        def setup(sim):
            yield from client.connect()

        sim.run(until=sim.spawn(setup(sim)))
        # HPBD small but high priority; disk big, low priority.
        node.swapon(client.queue, 4 * MiB, priority=5)
        node.swapon(disk.queue, 64 * MiB, priority=0)
        aspace = node.vmm.create_address_space((24 * MiB) // 4096, "a")

        def app(sim):
            for start in range(0, aspace.npages, 64):
                stop = min(start + 64, aspace.npages)
                yield from node.vmm.touch_run(aspace, start, stop, write=True)
            yield from node.vmm.quiesce()

        sim.run(until=sim.spawn(app(sim)))
        areas = node.vmm.swap.areas
        hp = next(a for a in areas if a.priority == 5)
        lo = next(a for a in areas if a.priority == 0)
        assert hp.used > 0
        assert hp.free < hp.nslots * 0.15  # high-priority nearly full
        assert lo.used > 0  # spill-over happened
        node.vmm.check_frame_accounting()

    def test_swapoff_like_destroy_returns_all_slots(self, sim, fabric):
        node = Node(sim, fabric, "n0", mem_bytes=8 * MiB)
        disk = DiskDevice(sim, swap_partition_bytes=32 * MiB, stats=node.stats)
        node.swapon(disk.queue, 32 * MiB)
        aspace = node.vmm.create_address_space((16 * MiB) // 4096, "a")

        def app(sim):
            for start in range(0, aspace.npages, 64):
                stop = min(start + 64, aspace.npages)
                yield from node.vmm.touch_run(aspace, start, stop, write=True)
            yield from node.vmm.destroy_address_space(aspace)

        sim.run(until=sim.spawn(app(sim)))
        area = node.vmm.swap.areas[0]
        assert area.used == 0
