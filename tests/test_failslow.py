"""Tests for the limping-server machinery: ``ServerSlow`` injection,
EWMA replica selection, hedged mirror reads, and quarantine.

Unit coverage drives a two-server mirrored driver directly (steering,
hedging, credit accounting, the watchdog's re-aim fix) and the fleet
registry's quarantine verdicts with synthetic health feeds.  The
acceptance scenario is the ISSUE gate: the seeded three-tenant mirrored
cluster with one fail-slow server costs < 2x the healthy worst tenant
p99 under mitigation, while the unmitigated run breaches that cliff —
with hedge-win time on the critical path and zero conservation
violations, byte-identical under replay.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.faults import FaultInjector, FaultPlan, ServerSlow
from repro.hpbd import HPBDClient, HPBDServer
from repro.hpbd.client import _Attempt
from repro.kernel import Node
from repro.kernel.blockdev import Bio, READ, WRITE
from repro.obs.health import HealthConfig, HealthHub
from repro.simulator import Event
from repro.units import MiB

CLUSTER_SCALE = 64
P99_RATIO = 2.0


# -- fault-plan / injector unit coverage ---------------------------------


class TestServerSlowEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServerSlow(at=-1.0)
        with pytest.raises(ValueError):
            ServerSlow(at=0.0, duration=0.0)
        with pytest.raises(ValueError):
            ServerSlow(at=0.0, service_mult=0.5)
        with pytest.raises(ValueError):
            ServerSlow(at=0.0, extra_rtt_usec=-1.0)

    def test_injector_applies_and_restores(self, sim, fabric):
        from repro.simulator import StatsRegistry

        srv = HPBDServer(sim, fabric, "mem0", store_bytes=MiB)
        plan = FaultPlan(events=(
            ServerSlow(at=10.0, server=0, duration=100.0,
                       service_mult=4.0, extra_rtt_usec=50.0),
        ))
        inj = FaultInjector(
            sim, plan, stats=StatsRegistry(), hpbd_servers=[srv]
        )

        def probe(sim):
            inj.start()
            yield sim.timeout(50.0)
            assert srv.slow_mult == 4.0
            assert srv.slow_extra_usec == 50.0
            yield sim.timeout(200.0)
            assert srv.slow_mult == 1.0
            assert srv.slow_extra_usec == 0.0

        sim.run(until=sim.spawn(probe(sim)))
        assert inj.stats.get("fault.server_slowdowns").count == 1
        assert inj.stats.get("fault.server_slow_restores").count == 1
        assert srv.slowdowns == 1

    def test_injector_event_log_deterministic(self, sim, fabric):
        """Same plan, two runs: identical (time, event) sequences."""
        from repro.net import Fabric
        from repro.simulator import Simulator, StatsRegistry

        plan = FaultPlan(events=(
            ServerSlow(at=5.0, server=1, duration=20.0, service_mult=2.0),
            ServerSlow(at=40.0, server=0, duration=10.0, service_mult=8.0,
                       extra_rtt_usec=7.0),
        ))

        def one_run():
            sim2 = Simulator()
            sim2.enable_tracing()
            fab = Fabric(sim2)
            servers = [
                HPBDServer(sim2, fab, f"mem{i}", store_bytes=MiB)
                for i in range(2)
            ]
            inj = FaultInjector(
                sim2, plan, stats=StatsRegistry(), hpbd_servers=servers
            )

            def main(sim2):
                inj.start()
                yield sim2.timeout(100.0)

            sim2.run(until=sim2.spawn(main(sim2)))
            log = [
                (t, name, tuple(sorted((args or {}).items())))
                for comp, _track, name, t, args in sim2.trace.instants
                if comp == "faults"
            ]
            log += [
                (s.start, s.name, s.dur)
                for s in sim2.trace.spans
                if s.cat.startswith("fault")
            ]
            return log

        assert one_run() == one_run()


# -- driver countermeasures (two-server mirror) --------------------------


@pytest.fixture
def mitigating(sim, fabric):
    node = Node(sim, fabric, "client", mem_bytes=16 * MiB)
    servers = [
        HPBDServer(sim, fabric, f"mem{i}", store_bytes=32 * MiB,
                   stats=node.stats)
        for i in range(2)
    ]
    client = HPBDClient(
        sim, node, servers, total_bytes=32 * MiB, mirror=True,
        ewma_select=True, hedge_reads=True,
    )
    sim.run(until=sim.spawn(client.connect()))
    return node, servers, client


def do_io(sim, client, op, sector, nsectors):
    done = Event(sim)

    def proc(sim):
        client.queue.submit_bio(
            Bio(op=op, sector=sector, nsectors=nsectors, done=done)
        )
        client.queue.unplug()
        yield done
        return sim.now

    return sim.run(until=sim.spawn(proc(sim)))


def counter(client, name: str) -> int:
    c = client.stats.get(f"hpbd0.{name}")
    return int(c.total) if c is not None else 0


class TestCountermeasures:
    def test_requires_mirror(self, sim, fabric):
        node = Node(sim, fabric, "c", mem_bytes=16 * MiB)
        servers = [
            HPBDServer(sim, fabric, f"m{i}", store_bytes=32 * MiB)
            for i in range(2)
        ]
        with pytest.raises(ValueError, match="mirror"):
            HPBDClient(sim, node, servers, total_bytes=32 * MiB,
                       ewma_select=True)

    def test_ewma_steers_reads_off_slow_primary(self, sim, mitigating):
        _node, servers, client = mitigating
        # Warm both estimators past SELECT_MIN_SAMPLES (mirrored writes
        # observe an RTT on each copy).
        for i in range(12):
            do_io(sim, client, WRITE, sector=i * 8, nsectors=8)
        servers[0].slow(service_mult=8.0, extra_usec=500.0)
        for _ in range(20):
            do_io(sim, client, READ, sector=0, nsectors=8)
        assert counter(client, "steered_reads") > 0
        # Steered reads land on the replica's copy of chunk 0.
        assert servers[1].requests_served > 12

    def test_hedge_wins_and_reclaims_credits(self, sim, mitigating):
        """A stalled primary read is rescued by the tied request at the
        mirror; when the loser's late reply finally arrives, its credit
        is already back and nothing leaks."""
        _node, servers, client = mitigating
        for i in range(8):
            do_io(sim, client, WRITE, sector=i * 8, nsectors=8)
        for _ in range(6):
            do_io(sim, client, READ, sector=0, nsectors=8)
        # Stall every op on the primary far past the hedge deadline.
        servers[0].slow(service_mult=1.0, extra_usec=20_000.0)
        t = do_io(sim, client, READ, sector=0, nsectors=8)
        # The read completed on the mirror's timescale, not the stall's.
        assert t < 20_000.0
        assert counter(client, "hedges") >= 1
        assert counter(client, "hedge_wins") >= 1

        def settle(sim):
            # Outlive the loser's stalled reply, then drain stragglers.
            yield sim.timeout(50_000.0)
            yield from client.drain()

        sim.run(until=sim.spawn(settle(sim)))
        assert counter(client, "stale_replies") >= 1
        client.audit_teardown()
        client.pool.check_invariants()
        assert sim.monitors.summary() == []

    def test_watchdog_reaims_for_shorter_deadline(self, sim, fabric):
        """Regression: an attempt posted mid-sleep with an earlier
        deadline than the watchdog's current target must still expire on
        time (the old dog slept to the first attempt's deadline)."""
        node = Node(sim, fabric, "c", mem_bytes=16 * MiB)
        servers = [
            HPBDServer(sim, fabric, f"m{i}", store_bytes=32 * MiB)
            for i in range(2)
        ]
        client = HPBDClient(
            sim, node, servers, total_bytes=32 * MiB, mirror=True,
            request_timeout_usec=10_000.0,
        )
        sim.run(until=sim.spawn(client.connect()))
        expired = []
        client._fail_attempt = (
            lambda att, cause: expired.append((att.server, sim.now))
        )

        def fake_attempt(server, deadline):
            entry = SimpleNamespace(op=WRITE, live_rids=set())
            return _Attempt(entry=entry, server=server, offset=0,
                            sent_at=sim.now, deadline=deadline)

        posted = {}

        def proc(sim):
            yield client._credits[0].acquire()
            client._inflight[1] = fake_attempt(0, sim.now + 10_000.0)
            client._arm_watchdog(sim.now + 10_000.0, None)
            yield sim.timeout(100.0)
            # Watchdog is now asleep aiming 10 ms out; undercut it.
            yield client._credits[1].acquire()
            posted["short"] = sim.now
            client._inflight[2] = fake_attempt(1, sim.now + 200.0)
            client._arm_watchdog(sim.now + 200.0, None)
            yield sim.timeout(5_000.0)

        sim.run(until=sim.spawn(proc(sim)))
        assert expired == [(1, pytest.approx(posted["short"] + 200.0))]


# -- quarantine (health hub -> registry -> placement) --------------------


def _drive(sim, hub: HealthHub, feed, steps: int, dt: float = 1_000.0):
    def proc():
        for i in range(steps):
            feed(i)
            yield sim.timeout(dt)

    hub.start()
    sim.run(until=sim.spawn(proc()))


class TestQuarantine:
    def _fleet(self, sim, fabric):
        from repro.cluster.registry import FleetRegistry

        servers = [
            HPBDServer(sim, fabric, f"mem{i}", store_bytes=4 * MiB)
            for i in range(3)
        ]
        registry = FleetRegistry(sim, servers, capacity_bytes=4 * MiB)
        hub = HealthHub(
            sim, [s.name for s in servers], ["t"],
            cfg=HealthConfig(min_samples=5),
        )
        registry.health = hub
        return servers, registry, hub

    def test_flag_quarantines_and_recovery_lifts(self, sim, fabric):
        from repro.cluster.placement import _alive_with_room

        _servers, registry, hub = self._fleet(sim, fabric)

        def slow_feed(i):
            hub.record_server_rtt(0, 100.0)
            hub.record_server_rtt(1, 110.0)
            hub.record_server_rtt(2, 100.0 if i < 20 else 900.0)

        _drive(sim, hub, slow_feed, steps=40)
        registry.poll()
        assert registry.quarantined == [False, False, True]
        assert registry.stats.get("cluster.quarantines").count == 1
        # Placement avoids the limping server while alternatives exist.
        assert _alive_with_room(registry) == [0, 1]

        def recovered_feed(i):
            hub.record_server_rtt(0, 100.0)
            hub.record_server_rtt(1, 110.0)
            hub.record_server_rtt(2, 100.0)

        _drive(sim, hub, recovered_feed, steps=200)
        registry.poll()
        assert registry.quarantined == [False, False, False]
        assert registry.stats.get("cluster.quarantine_lifts").count == 1
        assert _alive_with_room(registry) == [0, 1, 2]

    def test_all_quarantined_falls_back_to_alive(self, sim, fabric):
        from repro.cluster.placement import _alive_with_room

        _servers, registry, _hub = self._fleet(sim, fabric)
        registry.quarantined = [True, True, True]
        # A limping server still beats a NACK.
        assert _alive_with_room(registry) == [0, 1, 2]


class TestHealthRestartReset:
    def test_dead_to_alive_resets_service_stats(self, sim):
        hub = HealthHub(
            sim, ["s0", "s1", "s2"], ["t"],
            cfg=HealthConfig(min_samples=5),
        )

        def feed(i):
            hub.record_server_rtt(0, 100.0)
            hub.record_server_rtt(1, 110.0)
            hub.record_server_rtt(2, 900.0)

        _drive(sim, hub, feed, steps=40)
        s2 = hub.servers[2]
        assert s2.samples > 0 and s2.ewma.count > 0
        hub.set_server_alive(2, False)
        hub.set_server_alive(2, True)
        # A restarted server must not inherit its pre-crash EWMA/streak
        # (it would be flagged slow, or exonerated, on stale evidence).
        assert s2.samples == 0
        assert s2.streak == 0
        assert s2.ewma.count == 0


# -- acceptance: the mitigation gate -------------------------------------


@pytest.fixture(scope="module")
def failslow_runs():
    """Healthy baseline, unmitigated cliff, and mitigated run of the
    seeded mirrored fleet (mitigated traced for blame)."""
    from repro.experiments import cluster_failslow_mitigated_config
    from repro.runner import run_scenario

    out = {}
    for name, slow, mitigate in (
        ("healthy", False, True),
        ("unmitigated", True, False),
        ("mitigated", True, True),
    ):
        cfg = cluster_failslow_mitigated_config(
            CLUSTER_SCALE, slow=slow, mitigate=mitigate
        )
        out[name] = run_scenario(cfg, trace=(name == "mitigated"))
    return out


def worst_p99(result) -> float:
    return max(
        t["p99_usec"] or 0.0 for t in result.health["tenants"].values()
    )


class TestMitigationGate:
    def test_unmitigated_run_breaches(self, failslow_runs):
        healthy = worst_p99(failslow_runs["healthy"])
        assert worst_p99(failslow_runs["unmitigated"]) >= (
            P99_RATIO * healthy
        )

    def test_mitigated_run_stays_under_gate(self, failslow_runs):
        healthy = worst_p99(failslow_runs["healthy"])
        assert worst_p99(failslow_runs["mitigated"]) < P99_RATIO * healthy

    def test_countermeasures_engaged(self, failslow_runs):
        stats = failslow_runs["mitigated"].registry

        def total(key):
            return sum(
                int(stats.get(f"t{i}-hpbd.{key}").total)
                for i in range(3)
                if stats.get(f"t{i}-hpbd.{key}") is not None
            )

        assert total("hedges") > 0
        assert total("hedge_wins") > 0
        assert total("steered_reads") > 0
        assert int(stats.get("fault.server_slowdowns").total) == 1

    def test_hedge_win_time_on_critical_path(self, failslow_runs):
        from repro.analysis.critpath import aggregate_blame, request_paths

        blame = aggregate_blame(
            request_paths(failslow_runs["mitigated"].trace)
        )
        assert blame.get("hedge_win", 0.0) > 0.0
        assert blame.get("server_slow", 0.0) > 0.0

    def test_no_conservation_violations(self, failslow_runs):
        for name, result in failslow_runs.items():
            assert result.invariant_violations == [], name

    def test_mitigated_replay_byte_identical(self, failslow_runs):
        from repro.experiments import cluster_failslow_mitigated_config
        from repro.runner import run_scenario

        cfg = cluster_failslow_mitigated_config(CLUSTER_SCALE)
        second = run_scenario(cfg)
        a = json.dumps(failslow_runs["mitigated"].health, sort_keys=True)
        b = json.dumps(second.health, sort_keys=True)
        assert a == b
