"""Tests for the vendored stdlib-only build backend."""

from __future__ import annotations

import base64
import hashlib
import sys
import zipfile
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "_build_backend"))
import backend  # noqa: E402


class TestEditableWheel:
    def test_builds_valid_editable_wheel(self, tmp_path):
        name = backend.build_editable(str(tmp_path))
        assert name.endswith(".whl")
        with zipfile.ZipFile(tmp_path / name) as zf:
            names = zf.namelist()
            pth = [n for n in names if n.endswith(".pth")]
            assert len(pth) == 1
            target = zf.read(pth[0]).decode().strip()
            assert target.endswith("src")
            assert (Path(target) / "repro" / "__init__.py").exists()
            di = backend._dist_info_name()
            assert f"{di}/METADATA" in names
            assert f"{di}/WHEEL" in names
            assert f"{di}/RECORD" in names
            assert f"{di}/entry_points.txt" in names

    def test_record_hashes_verify(self, tmp_path):
        name = backend.build_editable(str(tmp_path))
        with zipfile.ZipFile(tmp_path / name) as zf:
            record = zf.read(f"{backend._dist_info_name()}/RECORD").decode()
            for line in record.strip().splitlines():
                path, digest, _size = line.rsplit(",", 2)
                if not digest:
                    continue  # RECORD's own row
                algo, b64 = digest.split("=", 1)
                assert algo == "sha256"
                data = zf.read(path)
                expect = (
                    base64.urlsafe_b64encode(hashlib.sha256(data).digest())
                    .rstrip(b"=")
                    .decode()
                )
                assert b64 == expect, f"hash mismatch for {path}"

    def test_metadata_fields(self):
        text = backend._metadata_text()
        assert "Name: repro" in text
        assert "Requires-Dist: numpy>=1.24" in text
        assert 'Requires-Dist: pytest; extra == "test"' in text

    def test_requires_hooks_empty(self):
        assert backend.get_requires_for_build_wheel() == []
        assert backend.get_requires_for_build_editable() == []
        assert backend.get_requires_for_build_sdist() == []


class TestRegularWheel:
    def test_contains_full_package(self, tmp_path):
        name = backend.build_wheel(str(tmp_path))
        with zipfile.ZipFile(tmp_path / name) as zf:
            names = zf.namelist()
            assert "repro/__init__.py" in names
            assert "repro/hpbd/client.py" in names
            assert not any("__pycache__" in n for n in names)

    def test_prepare_metadata(self, tmp_path):
        di_name = backend.prepare_metadata_for_build_wheel(str(tmp_path))
        di = tmp_path / di_name
        assert (di / "METADATA").exists()
        assert (di / "WHEEL").exists()


class TestSdist:
    def test_builds_tarball(self, tmp_path):
        import tarfile

        name = backend.build_sdist(str(tmp_path))
        with tarfile.open(tmp_path / name) as tar:
            names = tar.getnames()
            assert f"repro-{backend.VERSION}/PKG-INFO" in names
            assert any("src/repro/__init__.py" in n for n in names)
            assert not any("__pycache__" in n for n in names)
