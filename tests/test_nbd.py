"""Integration tests for the NBD baseline (client + server over TCP)."""

from __future__ import annotations

import pytest

from repro.kernel import Node
from repro.kernel.blockdev import Bio, READ, WRITE
from repro.nbd import NBDClient, NBDServer
from repro.net import GIGE_DEFAULT, IPOIB_DEFAULT
from repro.simulator import Event
from repro.units import KiB, MiB


@pytest.fixture
def setup(sim, fabric):
    node = Node(sim, fabric, "client", mem_bytes=16 * MiB)
    server = NBDServer(
        sim, fabric, "nbdsrv", store_bytes=64 * MiB,
        tcp_params=GIGE_DEFAULT, stats=node.stats,
    )
    client = NBDClient(
        sim, node, server, total_bytes=64 * MiB, tcp_params=GIGE_DEFAULT
    )
    return node, server, client


def connect(sim, client):
    sim.run(until=sim.spawn(client.connect()))


def do_io(sim, client, op, sector, nsectors):
    done = Event(sim)
    bio = Bio(op=op, sector=sector, nsectors=nsectors, done=done)

    def proc(sim):
        client.queue.submit_bio(bio)
        client.queue.unplug()
        yield done
        return sim.now

    return sim.run(until=sim.spawn(proc(sim)))


class TestNBD:
    def test_write_read_roundtrip(self, sim, setup):
        _node, server, client = setup
        connect(sim, client)
        do_io(sim, client, WRITE, sector=0, nsectors=8)
        assert server.ramdisk.pages_stored == 1
        do_io(sim, client, READ, sector=0, nsectors=8)
        assert server.requests_served == 2

    def test_double_connect_rejected(self, sim, setup):
        _node, _server, client = setup
        connect(sim, client)
        with pytest.raises(Exception):
            sim.run(until=sim.spawn(client.connect()))

    def test_undersized_store_rejected(self, sim, fabric):
        node = Node(sim, fabric, "c", mem_bytes=16 * MiB)
        server = NBDServer(
            sim, fabric, "s", store_bytes=MiB,
            tcp_params=GIGE_DEFAULT, stats=node.stats,
        )
        with pytest.raises(ValueError):
            NBDClient(sim, node, server, total_bytes=64 * MiB,
                      tcp_params=GIGE_DEFAULT)

    def test_strictly_serial_service(self, sim, setup):
        """2.4 NBD: one request at a time — total time for N concurrent
        bios is ~N times a single round trip."""
        _node, _server, client = setup
        connect(sim, client)
        t_single = do_io(sim, client, WRITE, sector=0, nsectors=256)
        t0 = sim.now
        events = []

        def proc(sim):
            for i in range(4):
                done = Event(sim)
                events.append(done)
                client.queue.submit_bio(
                    Bio(op=WRITE, sector=1024 + i * 256, nsectors=256, done=done)
                )
            client.queue.unplug()
            for evt in events:
                yield evt
            return sim.now - t0

        t_four = sim.run(until=sim.spawn(proc(sim)))
        assert t_four > 3.0 * t_single

    def test_gige_slower_than_ipoib_for_bulk(self, sim, fabric):
        def one_write(params):
            from repro.simulator import Simulator

            s2 = Simulator()
            from repro.net import Fabric as F

            f2 = F(s2)
            node = Node(s2, f2, "c", mem_bytes=16 * MiB)
            server = NBDServer(s2, f2, "s", store_bytes=64 * MiB,
                               tcp_params=params, stats=node.stats)
            client = NBDClient(s2, node, server, total_bytes=64 * MiB,
                               tcp_params=params)
            s2.run(until=s2.spawn(client.connect()))
            t0 = s2.now
            done = Event(s2)

            def proc(s2):
                client.queue.submit_bio(
                    Bio(op=WRITE, sector=0, nsectors=256, done=done)
                )
                client.queue.unplug()
                yield done
                return s2.now - t0

            return s2.run(until=s2.spawn(proc(s2)))

        assert one_write(GIGE_DEFAULT) > one_write(IPOIB_DEFAULT)

    def test_request_latency_recorded(self, sim, setup):
        _node, _server, client = setup
        connect(sim, client)
        do_io(sim, client, WRITE, sector=0, nsectors=8)
        tally = client.stats.get("nbd0.request_usec")
        assert tally.count == 1
        assert tally.mean > 0

    def test_read_returns_stored_data_token(self, sim, setup):
        _node, server, client = setup
        connect(sim, client)
        do_io(sim, client, WRITE, sector=8, nsectors=8)
        tokens, _ = server.ramdisk.read(8 * 512, 4 * KiB)
        assert tokens[0] is not None

    def test_deadlock_hazard_detected_under_pressure(self, sim, fabric):
        """§3.3's NBD footnote: swap-outs sent while free memory sits at
        the min watermark are exactly the TCP-allocation-under-reclaim
        deadlock condition — the client counts them."""
        node = Node(sim, fabric, "c", mem_bytes=8 * MiB)
        server = NBDServer(sim, fabric, "s", store_bytes=64 * MiB,
                           tcp_params=GIGE_DEFAULT, stats=node.stats)
        client = NBDClient(sim, node, server, total_bytes=64 * MiB,
                           tcp_params=GIGE_DEFAULT)
        connect(sim, client)
        node.swapon(client.queue, 64 * MiB)
        aspace = node.vmm.create_address_space((32 * MiB) // 4096, "a")

        def app(sim):
            for start in range(0, aspace.npages, 64):
                stop = min(start + 64, aspace.npages)
                yield from node.vmm.touch_run(aspace, start, stop, write=True)
            yield from node.vmm.quiesce()

        sim.run(until=sim.spawn(app(sim)))
        # GigE is slower than the store stream: memory bottoms out and
        # the hazard window is hit.
        assert node.stats.get("nbd0.deadlock_hazards").count > 0


class TestNBDTimeoutRecovery:
    @pytest.fixture
    def timed(self, sim, fabric):
        node = Node(sim, fabric, "client", mem_bytes=16 * MiB)
        server = NBDServer(
            sim, fabric, "nbdsrv", store_bytes=64 * MiB,
            tcp_params=GIGE_DEFAULT, stats=node.stats,
        )
        client = NBDClient(
            sim, node, server, total_bytes=64 * MiB,
            tcp_params=GIGE_DEFAULT,
            request_timeout_usec=2_000.0, max_retries=3,
        )
        connect(sim, client)
        return node, server, client

    def test_crashed_then_restarted_server_served_by_resend(self, sim, timed):
        """The daemon eats a request while down; the driver's re-send
        after restart completes the I/O instead of blocking forever."""
        _node, server, client = timed
        do_io(sim, client, WRITE, sector=0, nsectors=8)

        def outage(sim):
            server.crash(wipe=False)
            yield sim.timeout(3_000.0)
            server.restart()

        sim.spawn(outage(sim))
        t = do_io(sim, client, READ, sector=0, nsectors=8)
        assert t > 0
        assert client.stats.get("nbd0.retries").count >= 1
        assert server.stats.get("nbdsrv.dropped_requests").count >= 1
        assert server.crashes == 1

    def test_permanent_crash_raises_after_bounded_retries(self, sim, timed):
        from repro.simulator import SimulationError

        _node, server, client = timed
        server.crash()
        done = Event(sim)

        def proc(sim):
            client.queue.submit_bio(
                Bio(op=WRITE, sector=0, nsectors=8, done=done)
            )
            client.queue.unplug()
            yield done

        sim.spawn(proc(sim))
        with pytest.raises(SimulationError, match="timed out after 3 retries"):
            sim.run()

    def test_no_timeout_keeps_legacy_blocking(self, sim, setup):
        """Without a timeout the 2.4 driver blocks forever on a dead
        daemon — the simulation just drains (no error, no progress)."""
        _node, server, client = setup
        connect(sim, client)
        server.crash()
        done = Event(sim)

        def proc(sim):
            client.queue.submit_bio(
                Bio(op=WRITE, sector=0, nsectors=8, done=done)
            )
            client.queue.unplug()
            yield done

        sim.spawn(proc(sim))

        def much_later(sim):
            yield sim.timeout(1_000_000.0)

        sim.run(until=sim.spawn(much_later(sim)))
        assert not done.processed  # still blocked, no error raised
