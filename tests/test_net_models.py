"""Unit tests for cost models, calibrated fabrics, ports and transfers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net import (
    GIGE_DEFAULT,
    IB_DEFAULT,
    IPOIB_DEFAULT,
    LinearCost,
    MEMCPY,
    PiecewiseLinearCost,
    memcpy_cost,
    registration_cost,
)
from repro.units import KiB


class TestLinearCost:
    def test_cost_formula(self):
        m = LinearCost(alpha=5.0, beta=0.01)
        assert m.cost(0) == 5.0
        assert m.cost(1000) == 15.0

    def test_negative_params_rejected(self):
        with pytest.raises(ValueError):
            LinearCost(alpha=-1, beta=0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            LinearCost(1, 1).cost(-1)

    def test_from_bandwidth(self):
        m = LinearCost.from_bandwidth(alpha_usec=2.0, mb_per_s=100.0)
        # 100 MB/s = 100 B/µs
        assert m.cost(1000) == pytest.approx(2.0 + 10.0)
        assert m.bandwidth_mb_s == pytest.approx(100.0)

    def test_cost_array_matches_scalar(self):
        m = LinearCost(3.0, 0.5)
        sizes = np.array([0, 10, 100])
        np.testing.assert_allclose(
            m.cost_array(sizes), [m.cost(int(s)) for s in sizes]
        )


class TestPiecewiseLinearCost:
    def test_needs_two_knots(self):
        with pytest.raises(ValueError):
            PiecewiseLinearCost(knots=((0, 1),))

    def test_knots_must_increase(self):
        with pytest.raises(ValueError):
            PiecewiseLinearCost(knots=((10, 1), (10, 2)))

    def test_interpolation(self):
        m = PiecewiseLinearCost(knots=((0, 0.0), (100, 10.0)))
        assert m.cost(50) == pytest.approx(5.0)

    def test_extrapolation_beyond_last_knot(self):
        m = PiecewiseLinearCost(knots=((0, 0.0), (100, 10.0)))
        assert m.cost(200) == pytest.approx(20.0)

    def test_cost_array_matches_scalar(self):
        m = MEMCPY
        sizes = np.array([0, 4096, 10_000, 128 * KiB, 256 * KiB])
        np.testing.assert_allclose(
            m.cost_array(sizes), [m.cost(int(s)) for s in sizes], rtol=1e-12
        )


class TestCalibration:
    """The Fig. 1 / Fig. 3 relationships the models must satisfy."""

    def test_fig1_small_message_ordering(self):
        # memcpy < RDMA write < IPoIB < GigE at small sizes
        s = 64
        assert (
            MEMCPY.cost(s)
            < IB_DEFAULT.rdma_write_cost(s)
            < IPOIB_DEFAULT.one_way_cost(s)
            < GIGE_DEFAULT.one_way_cost(s)
        )

    def test_fig1_large_message_ordering(self):
        s = 128 * KiB
        assert (
            MEMCPY.cost(s)
            < IB_DEFAULT.rdma_write_cost(s)
            < IPOIB_DEFAULT.one_way_cost(s)
            < GIGE_DEFAULT.one_way_cost(s)
        )

    def test_rdma_write_comparable_to_memcpy(self):
        # "RDMA_WRITE latency between two nodes is quite comparable to
        # local memcpy latency" — same order of magnitude across the
        # plotted range, converging for large messages.
        assert IB_DEFAULT.rdma_write_cost(4 * KiB) < 5.0 * MEMCPY.cost(4 * KiB)
        assert IB_DEFAULT.rdma_write_cost(32 * KiB) < 3.0 * MEMCPY.cost(32 * KiB)
        assert IB_DEFAULT.rdma_write_cost(128 * KiB) < 2.5 * MEMCPY.cost(128 * KiB)

    def test_fig3_registration_dominates_memcpy_in_swap_range(self):
        # "registration on-the-fly ... is very costly compared with copy
        # cost ... especially within the range of 4K - 127K"
        for s in (4 * KiB, 16 * KiB, 64 * KiB, 127 * KiB):
            assert registration_cost(s) > memcpy_cost(s)

    def test_rdma_read_costs_more_than_write(self):
        assert IB_DEFAULT.rdma_read_cost(4096) > IB_DEFAULT.rdma_write_cost(4096)

    def test_send_costs_more_than_rdma_write(self):
        assert IB_DEFAULT.send_cost(64) > IB_DEFAULT.rdma_write_cost(64)

    def test_qp_penalty_kicks_in_past_cache(self):
        assert IB_DEFAULT.qp_penalty(8) == 0.0
        assert IB_DEFAULT.qp_penalty(9) > 0.0
        assert IB_DEFAULT.qp_penalty(16) > IB_DEFAULT.qp_penalty(9)

    def test_ipoib_stack_bound_not_wire_bound(self):
        # IPoIB's wire is IB-fast; its effective bandwidth must be far
        # below the raw wire rate (the paper's central point).
        wire_mb_s = 1.0 / IPOIB_DEFAULT.wire_byte_time
        assert IPOIB_DEFAULT.effective_bandwidth_mb_s < wire_mb_s / 3

    def test_gige_wire_bound(self):
        # GigE's host work is lighter than its wire serialization.
        host_per_byte = 2 * GIGE_DEFAULT.host_per_byte
        assert host_per_byte < GIGE_DEFAULT.wire_byte_time

    def test_tcp_segments(self):
        assert GIGE_DEFAULT.segments(0) == 1
        assert GIGE_DEFAULT.segments(1500) == 1
        assert GIGE_DEFAULT.segments(1501) == 2


class TestFabricTransfers:
    def test_transfer_timing(self, sim, fabric):
        a, b = fabric.port("a"), fabric.port("b")

        def proc(sim):
            yield fabric.transfer(a, b, 1000, byte_time=0.01, latency=5.0)
            return sim.now

        p = sim.spawn(proc(sim))
        assert sim.run(until=p) == pytest.approx(15.0)

    def test_zero_byte_transfer(self, sim, fabric):
        a, b = fabric.port("a"), fabric.port("b")

        def proc(sim):
            yield fabric.transfer(a, b, 0, byte_time=0.01, latency=3.0)
            return sim.now

        p = sim.spawn(proc(sim))
        assert sim.run(until=p) == pytest.approx(3.0)

    def test_negative_size_rejected(self, sim, fabric):
        a, b = fabric.port("a"), fabric.port("b")
        with pytest.raises(ValueError):
            fabric.transfer(a, b, -1, 0.01, 1.0)

    def test_self_transfer_rejected(self, sim, fabric):
        a = fabric.port("a")
        with pytest.raises(ValueError):
            fabric.transfer(a, a, 10, 0.01, 1.0)

    def test_port_serialization(self, sim, fabric):
        # Two transfers out of one port serialize on its tx unit.
        a, b, c = fabric.port("a"), fabric.port("b"), fabric.port("c")

        def proc(sim):
            e1 = fabric.transfer(a, b, 1000, byte_time=0.1, latency=0.0)
            e2 = fabric.transfer(a, c, 1000, byte_time=0.1, latency=0.0)
            yield e1
            yield e2
            return sim.now

        p = sim.spawn(proc(sim))
        assert sim.run(until=p) == pytest.approx(200.0)

    def test_full_duplex_no_serialization(self, sim, fabric):
        # Opposite directions do not contend (tx vs rx pools).
        a, b = fabric.port("a"), fabric.port("b")

        def proc(sim):
            e1 = fabric.transfer(a, b, 1000, byte_time=0.1, latency=0.0)
            e2 = fabric.transfer(b, a, 1000, byte_time=0.1, latency=0.0)
            yield e1
            yield e2
            return sim.now

        p = sim.spawn(proc(sim))
        assert sim.run(until=p) == pytest.approx(100.0)

    def test_byte_accounting(self, sim, fabric):
        a, b = fabric.port("a"), fabric.port("b")

        def proc(sim):
            yield fabric.transfer(a, b, 500, 0.01, 1.0)

        p = sim.spawn(proc(sim))
        sim.run(until=p)
        assert a.bytes_out == 500
        assert b.bytes_in == 500

    def test_port_identity(self, sim, fabric):
        assert fabric.port("x") is fabric.port("x")
        assert "x" in fabric.ports()
