"""Unit tests for swap-slot management (cluster allocation, reverse map)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernel import OutOfSwap, SwapArea, SwapManager
from repro.kernel.vmm import AddressSpace
from repro.simulator import SimulationError
from repro.units import SECTORS_PER_PAGE


def make_area(nslots=1024, priority=0, name="sw0"):
    # queue=None: allocation logic never touches it.
    return SwapArea(None, nslots, priority, name)


def make_aspace(npages=2048):
    return AddressSpace(npages, "a")


class TestSwapArea:
    def test_needs_slots(self):
        with pytest.raises(ValueError):
            make_area(nslots=0)

    def test_contiguous_allocation(self):
        area = make_area()
        aspace = make_aspace()
        slots = area.alloc_cluster(32, aspace, np.arange(32))
        np.testing.assert_array_equal(slots, np.arange(32))
        assert area.used == 32
        assert area.free == 1024 - 32

    def test_sequential_clusters_are_adjacent(self):
        area = make_area()
        aspace = make_aspace()
        s1 = area.alloc_cluster(32, aspace, np.arange(32))
        s2 = area.alloc_cluster(32, aspace, np.arange(32, 64))
        assert s2[0] == s1[-1] + 1

    def test_reverse_map(self):
        area = make_area()
        aspace = make_aspace()
        pages = np.array([100, 200, 300])
        slots = area.alloc_cluster(3, aspace, pages)
        for slot, page in zip(slots, pages):
            owner, opage = area.owner(int(slot))
            assert owner is aspace
            assert opage == page

    def test_free_clears_reverse_map(self):
        area = make_area()
        aspace = make_aspace()
        slots = area.alloc_cluster(4, aspace, np.arange(4))
        area.free_slots(slots)
        assert area.used == 0
        assert area.owner(int(slots[0])) == (None, -1)

    def test_double_free_detected(self):
        area = make_area()
        aspace = make_aspace()
        slots = area.alloc_cluster(4, aspace, np.arange(4))
        area.free_slots(slots)
        with pytest.raises(SimulationError):
            area.free_slots(slots)

    def test_fragmented_fallback_to_singles(self):
        area = make_area(nslots=8)
        aspace = make_aspace()
        area.alloc_cluster(8, aspace, np.arange(8))
        # free every other slot: no contiguous run of 4 exists
        area.free_slots(np.array([0, 2, 4, 6]))
        got = area.alloc_cluster(4, aspace, np.arange(10, 14))
        assert sorted(int(s) for s in got) == [0, 2, 4, 6]
        assert area.fallback_scans >= 1

    def test_wraparound_scan(self):
        area = make_area(nslots=16)
        aspace = make_aspace()
        first = area.alloc_cluster(12, aspace, np.arange(12))
        area.free_slots(first[:8])  # free the start; pointer is at 12
        got = area.alloc_cluster(8, aspace, np.arange(20, 28))
        np.testing.assert_array_equal(np.sort(got), np.arange(8))

    def test_out_of_swap(self):
        area = make_area(nslots=4)
        aspace = make_aspace()
        area.alloc_cluster(4, aspace, np.arange(4))
        with pytest.raises(OutOfSwap):
            area.alloc_cluster(1, aspace, np.arange(1))

    def test_slot_to_sector(self):
        area = make_area()
        assert area.slot_to_sector(5) == 5 * SECTORS_PER_PAGE

    def test_window_alignment(self):
        area = make_area(nslots=20)
        np.testing.assert_array_equal(area.window(11, 8), np.arange(8, 16))
        np.testing.assert_array_equal(area.window(17, 8), np.arange(16, 20))

    def test_pages_slots_length_mismatch(self):
        area = make_area()
        with pytest.raises(ValueError):
            area.alloc_cluster(3, make_aspace(), np.arange(2))


class TestSwapManager:
    def test_priority_order(self):
        mgr = SwapManager()
        low = make_area(name="low", priority=0)
        high = make_area(name="high", priority=5)
        mgr.add(low)
        mgr.add(high)
        aspace = make_aspace()
        area, _slots = mgr.alloc(8, aspace, np.arange(8))
        assert area is high

    def test_spill_to_next_area(self):
        mgr = SwapManager()
        small = make_area(nslots=4, priority=5, name="small")
        big = make_area(nslots=100, priority=0, name="big")
        mgr.add(small)
        mgr.add(big)
        aspace = make_aspace()
        area, slots = mgr.alloc(8, aspace, np.arange(8))
        assert area is big  # whole cluster preferred over splitting

    def test_partial_when_nothing_fits_whole(self):
        mgr = SwapManager()
        a = make_area(nslots=4, name="a")
        mgr.add(a)
        aspace = make_aspace()
        area, slots = mgr.alloc(8, aspace, np.arange(8))
        assert area is a
        assert len(slots) == 4  # caller loops for the rest

    def test_exhaustion(self):
        mgr = SwapManager()
        a = make_area(nslots=2)
        mgr.add(a)
        aspace = make_aspace()
        mgr.alloc(2, aspace, np.arange(2))
        with pytest.raises(OutOfSwap):
            mgr.alloc(1, aspace, np.arange(1))

    def test_total_free(self):
        mgr = SwapManager()
        mgr.add(make_area(nslots=10))
        mgr.add(make_area(nslots=20))
        assert mgr.total_free == 30
