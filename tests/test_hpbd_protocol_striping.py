"""Unit tests for HPBD protocol messages, striping and the RamDisk."""

from __future__ import annotations

import pytest

from repro.hpbd import (
    BlockingDistribution,
    Chunk,
    ChunkMapDistribution,
    CTRL_MSG_BYTES,
    OP_READ,
    OP_WRITE,
    PageReply,
    PageRequest,
    ProtocolError,
    RamDisk,
    RamDiskError,
    STATUS_ERROR,
    STATUS_NACK,
)
from repro.hpbd.ramdisk import SPILL_BYTES_PER_USEC
from repro.hpbd.striping import Segment
from repro.units import KiB, MiB, PAGE_SIZE


class TestProtocol:
    def test_request_signed_and_validates(self):
        req = PageRequest(op=OP_WRITE, offset=0, nbytes=4096, buf_addr=100, buf_rkey=1)
        req.validate()

    def test_tampered_request_detected(self):
        req = PageRequest(op=OP_WRITE, offset=0, nbytes=4096, buf_addr=100, buf_rkey=1)
        req.offset = 4096
        with pytest.raises(ProtocolError):
            req.validate()

    def test_reply_signed_and_validates(self):
        rep = PageReply(req_id=42)
        rep.validate()
        assert rep.ok

    def test_tampered_reply_detected(self):
        rep = PageReply(req_id=42)
        rep.status = STATUS_ERROR
        with pytest.raises(ProtocolError):
            rep.validate()

    def test_bad_opcode_rejected(self):
        with pytest.raises(ProtocolError):
            PageRequest(op="erase", offset=0, nbytes=1, buf_addr=0, buf_rkey=0)

    def test_bad_extent_rejected(self):
        with pytest.raises(ProtocolError):
            PageRequest(op=OP_READ, offset=-1, nbytes=1, buf_addr=0, buf_rkey=0)
        with pytest.raises(ProtocolError):
            PageRequest(op=OP_READ, offset=0, nbytes=0, buf_addr=0, buf_rkey=0)

    def test_req_ids_unique(self):
        a = PageRequest(op=OP_READ, offset=0, nbytes=1, buf_addr=0, buf_rkey=0)
        b = PageRequest(op=OP_READ, offset=0, nbytes=1, buf_addr=0, buf_rkey=0)
        assert a.req_id != b.req_id

    def test_control_message_small(self):
        # Control messages must stay tiny relative to a page.
        assert CTRL_MSG_BYTES < PAGE_SIZE // 8

    def test_nack_is_typed_and_distinct(self):
        rep = PageReply(req_id=7, status=STATUS_NACK)
        rep.validate()
        assert rep.nack and not rep.ok
        err = PageReply(req_id=8, status=STATUS_ERROR)
        assert not err.nack and not err.ok
        assert PageReply(req_id=9).ok


class TestBlockingDistribution:
    def test_single_server_identity(self):
        d = BlockingDistribution(MiB, 1)
        segs = d.split(1000, 5000)
        assert len(segs) == 1
        assert segs[0].server == 0
        assert segs[0].server_offset == 1000
        assert segs[0].nbytes == 5000

    def test_chunks_are_contiguous_blocks(self):
        # §4.2.5: blocking pattern, NOT striping — consecutive offsets
        # inside one chunk map to the same server.
        d = BlockingDistribution(4 * MiB, 4)
        assert d.locate(0) == (0, 0)
        assert d.locate(MiB - 1) == (0, MiB - 1)
        assert d.locate(MiB) == (1, 0)
        assert d.locate(4 * MiB - 1) == (3, MiB - 1)

    def test_straddling_request_splits(self):
        d = BlockingDistribution(4 * MiB, 4)
        segs = d.split(MiB - 64 * KiB, 128 * KiB)
        assert len(segs) == 2
        assert segs[0].server == 0 and segs[0].nbytes == 64 * KiB
        assert segs[1].server == 1 and segs[1].server_offset == 0

    def test_split_covers_extent_exactly(self):
        d = BlockingDistribution(16 * MiB, 16)
        segs = d.split(3 * MiB - 1, 2 * MiB + 2)
        assert sum(s.nbytes for s in segs) == 2 * MiB + 2
        # server order must be ascending and contiguous
        servers = [s.server for s in segs]
        assert servers == sorted(servers)

    def test_interior_request_never_splits(self):
        # A 128 KiB request entirely inside a chunk stays whole — the
        # common case that motivates the non-striped layout.
        d = BlockingDistribution(1 << 30, 8)
        segs = d.split(10 * MiB, 128 * KiB)
        assert len(segs) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockingDistribution(MiB, 0)
        with pytest.raises(ValueError):
            BlockingDistribution(MiB + 1, 2)  # not divisible
        d = BlockingDistribution(MiB, 2)
        with pytest.raises(ValueError):
            d.split(MiB, 1)
        with pytest.raises(ValueError):
            d.split(0, 0)
        with pytest.raises(ValueError):
            d.locate(MiB)


def _alternating_map(total=8 * MiB, chunk=2 * MiB):
    """total/chunk chunks alternating between servers 0 and 1."""
    chunks = []
    offsets = {0: 0, 1: 0}
    pos, server = 0, 0
    while pos < total:
        chunks.append(Chunk(pos, chunk, server, offsets[server]))
        offsets[server] += chunk
        pos += chunk
        server ^= 1
    return ChunkMapDistribution(total, 2, chunks)


class TestChunkMapDistribution:
    def test_locate_follows_the_map(self):
        d = _alternating_map()
        assert d.locate(0) == (0, 0)
        assert d.locate(2 * MiB) == (1, 0)
        # server 0's second device chunk starts at store offset 2 MiB
        assert d.locate(4 * MiB) == (0, 2 * MiB)
        assert d.locate(8 * MiB - 1) == (1, 4 * MiB - 1)

    def test_share_and_servers_used(self):
        d = _alternating_map()
        assert d.share_of(0) == 4 * MiB
        assert d.share_of(1) == 4 * MiB
        assert d.servers_used == [0, 1]
        one_sided = ChunkMapDistribution(MiB, 2, [Chunk(0, MiB, 1, 0)])
        assert one_sided.share_of(0) == 0
        assert one_sided.servers_used == [1]

    def test_split_across_chunk_boundary(self):
        d = _alternating_map()
        segs = d.split(2 * MiB - 64 * KiB, 128 * KiB)
        assert len(segs) == 2
        assert segs[0] == Segment(0, 2 * MiB - 64 * KiB, 64 * KiB)
        assert segs[1] == Segment(1, 0, 64 * KiB)

    def test_split_coalesces_contiguous_same_server_chunks(self):
        # two device chunks that happen to be adjacent in one server's
        # store collapse into a single physical request
        chunks = [
            Chunk(0, MiB, 0, 0),
            Chunk(MiB, MiB, 0, MiB),
            Chunk(2 * MiB, MiB, 1, 0),
        ]
        d = ChunkMapDistribution(3 * MiB, 2, chunks)
        segs = d.split(0, 2 * MiB)
        assert segs == [Segment(0, 0, 2 * MiB)]

    def test_absolute_offset_inverts_locate(self):
        d = _alternating_map()
        for off in (0, MiB, 2 * MiB, 5 * MiB - 4096, 8 * MiB - 4096):
            (seg,) = d.split(off, 4096)
            assert d.absolute_offset(seg) == off
        with pytest.raises(ValueError):
            d.absolute_offset(Segment(0, 64 * MiB, 4096))

    def test_rejects_gaps_overlaps_and_short_maps(self):
        with pytest.raises(ValueError):  # gap at MiB
            ChunkMapDistribution(
                2 * MiB, 2,
                [Chunk(0, MiB, 0, 0), Chunk(MiB + 4096, MiB - 4096, 1, 0)],
            )
        with pytest.raises(ValueError):  # doesn't cover the device
            ChunkMapDistribution(2 * MiB, 2, [Chunk(0, MiB, 0, 0)])
        with pytest.raises(ValueError):  # store extents overlap
            ChunkMapDistribution(
                2 * MiB, 1,
                [Chunk(0, MiB, 0, 0), Chunk(MiB, MiB, 0, 512 * KiB)],
            )
        with pytest.raises(ValueError):  # names a server out of range
            ChunkMapDistribution(MiB, 1, [Chunk(0, MiB, 3, 0)])
        with pytest.raises(ValueError):
            ChunkMapDistribution(MiB, 1, [])


class TestRamDiskSpill:
    def test_residency_cap_evicts_fifo(self):
        rd = RamDisk(MiB, resident_bytes=2 * PAGE_SIZE)
        rd.write(0, PAGE_SIZE, token="a")
        rd.write(PAGE_SIZE, PAGE_SIZE, token="b")
        rd.write(2 * PAGE_SIZE, PAGE_SIZE, token="c")
        assert rd.pages_resident == 2
        assert rd.pages_spilled == 1
        assert rd.evictions == 1
        assert rd.spill_bytes_written == PAGE_SIZE
        assert rd.pages_stored == 3

    def test_spill_cost_accrues_and_drains(self):
        rd = RamDisk(MiB, resident_bytes=PAGE_SIZE)
        rd.write(0, PAGE_SIZE)
        rd.write(PAGE_SIZE, PAGE_SIZE)  # evicts page 0
        expect = PAGE_SIZE / SPILL_BYTES_PER_USEC
        assert rd.pending_spill_usec == pytest.approx(expect)
        assert rd.drain_spill_usec() == pytest.approx(expect)
        assert rd.pending_spill_usec == 0.0

    def test_read_faults_spilled_page_back_in(self):
        rd = RamDisk(MiB, resident_bytes=2 * PAGE_SIZE)
        rd.write(0, PAGE_SIZE, token="a")
        rd.write(PAGE_SIZE, PAGE_SIZE, token="b")
        rd.write(2 * PAGE_SIZE, PAGE_SIZE, token="c")  # spills "a"
        rd.drain_spill_usec()
        tokens, _ = rd.read(0, PAGE_SIZE)
        assert tokens == (("a", 0),)
        assert rd.spill_bytes_read == PAGE_SIZE
        # faulting "a" back in pushed another page over the cap
        assert rd.pages_resident == 2
        assert rd.pending_spill_usec > 0

    def test_overwrite_supersedes_spilled_copy(self):
        rd = RamDisk(MiB, resident_bytes=2 * PAGE_SIZE)
        rd.write(0, PAGE_SIZE, token="old")
        rd.write(PAGE_SIZE, PAGE_SIZE)
        rd.write(2 * PAGE_SIZE, PAGE_SIZE)  # spills page 0
        rd.write(0, PAGE_SIZE, token="new")
        tokens, _ = rd.read(0, PAGE_SIZE)
        assert tokens == (("new", 0),)

    def test_uncapped_ramdisk_never_spills(self):
        rd = RamDisk(MiB)
        for i in range(16):
            rd.write(i * PAGE_SIZE, PAGE_SIZE)
        assert rd.evictions == 0
        assert rd.pages_spilled == 0
        assert rd.pending_spill_usec == 0.0

    def test_wipe_clears_spill_state(self):
        rd = RamDisk(MiB, resident_bytes=PAGE_SIZE)
        rd.write(0, PAGE_SIZE)
        rd.write(PAGE_SIZE, PAGE_SIZE)
        rd.wipe()
        assert rd.pages_stored == 0
        assert rd.pending_spill_usec == 0.0

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            RamDisk(MiB, resident_bytes=0)
        with pytest.raises(ValueError):
            RamDisk(MiB, resident_bytes=PAGE_SIZE + 1)


class TestRamDisk:
    def test_roundtrip_tokens(self):
        rd = RamDisk(MiB)
        rd.write(0, 8 * KiB, token="X")
        tokens, cost = rd.read(0, 8 * KiB)
        assert tokens == (("X", 0), ("X", 1))
        assert cost > 0

    def test_partial_overwrite_of_stale_extent(self):
        # Freed-and-reused swap slots produce partially overlapping
        # writes; later reads see the newest data per page.
        rd = RamDisk(MiB)
        rd.write(0, 16 * KiB, token="old")
        rd.write(0, 8 * KiB, token="new")
        tokens, _ = rd.read(0, 16 * KiB)
        assert tokens[0][0] == "new" and tokens[1][0] == "new"
        assert tokens[2][0] == "old" and tokens[3][0] == "old"

    def test_never_written_reads_none(self):
        rd = RamDisk(MiB)
        tokens, _ = rd.read(64 * KiB, 4 * KiB)
        assert tokens == (None,)

    def test_bounds(self):
        rd = RamDisk(64 * KiB)
        with pytest.raises(RamDiskError):
            rd.write(60 * KiB, 8 * KiB)
        with pytest.raises(RamDiskError):
            rd.read(-4096, 4096)

    def test_alignment_enforced(self):
        rd = RamDisk(MiB)
        with pytest.raises(RamDiskError):
            rd.write(100, 4096)
        with pytest.raises(RamDiskError):
            rd.read(0, 100)

    def test_cost_scales_with_size(self):
        rd = RamDisk(MiB)
        small = rd.write(0, 4 * KiB)
        large = rd.write(0, 128 * KiB)
        assert large > small * 5

    def test_accounting(self):
        rd = RamDisk(MiB)
        rd.write(0, 4 * KiB)
        rd.read(0, 4 * KiB)
        assert rd.bytes_written == 4 * KiB
        assert rd.bytes_read == 4 * KiB
        assert rd.pages_stored == 1
