"""Unit tests for HPBD protocol messages, striping and the RamDisk."""

from __future__ import annotations

import pytest

from repro.hpbd import (
    BlockingDistribution,
    CTRL_MSG_BYTES,
    OP_READ,
    OP_WRITE,
    PageReply,
    PageRequest,
    ProtocolError,
    RamDisk,
    RamDiskError,
    STATUS_ERROR,
)
from repro.units import KiB, MiB, PAGE_SIZE


class TestProtocol:
    def test_request_signed_and_validates(self):
        req = PageRequest(op=OP_WRITE, offset=0, nbytes=4096, buf_addr=100, buf_rkey=1)
        req.validate()

    def test_tampered_request_detected(self):
        req = PageRequest(op=OP_WRITE, offset=0, nbytes=4096, buf_addr=100, buf_rkey=1)
        req.offset = 4096
        with pytest.raises(ProtocolError):
            req.validate()

    def test_reply_signed_and_validates(self):
        rep = PageReply(req_id=42)
        rep.validate()
        assert rep.ok

    def test_tampered_reply_detected(self):
        rep = PageReply(req_id=42)
        rep.status = STATUS_ERROR
        with pytest.raises(ProtocolError):
            rep.validate()

    def test_bad_opcode_rejected(self):
        with pytest.raises(ProtocolError):
            PageRequest(op="erase", offset=0, nbytes=1, buf_addr=0, buf_rkey=0)

    def test_bad_extent_rejected(self):
        with pytest.raises(ProtocolError):
            PageRequest(op=OP_READ, offset=-1, nbytes=1, buf_addr=0, buf_rkey=0)
        with pytest.raises(ProtocolError):
            PageRequest(op=OP_READ, offset=0, nbytes=0, buf_addr=0, buf_rkey=0)

    def test_req_ids_unique(self):
        a = PageRequest(op=OP_READ, offset=0, nbytes=1, buf_addr=0, buf_rkey=0)
        b = PageRequest(op=OP_READ, offset=0, nbytes=1, buf_addr=0, buf_rkey=0)
        assert a.req_id != b.req_id

    def test_control_message_small(self):
        # Control messages must stay tiny relative to a page.
        assert CTRL_MSG_BYTES < PAGE_SIZE // 8


class TestBlockingDistribution:
    def test_single_server_identity(self):
        d = BlockingDistribution(MiB, 1)
        segs = d.split(1000, 5000)
        assert len(segs) == 1
        assert segs[0].server == 0
        assert segs[0].server_offset == 1000
        assert segs[0].nbytes == 5000

    def test_chunks_are_contiguous_blocks(self):
        # §4.2.5: blocking pattern, NOT striping — consecutive offsets
        # inside one chunk map to the same server.
        d = BlockingDistribution(4 * MiB, 4)
        assert d.locate(0) == (0, 0)
        assert d.locate(MiB - 1) == (0, MiB - 1)
        assert d.locate(MiB) == (1, 0)
        assert d.locate(4 * MiB - 1) == (3, MiB - 1)

    def test_straddling_request_splits(self):
        d = BlockingDistribution(4 * MiB, 4)
        segs = d.split(MiB - 64 * KiB, 128 * KiB)
        assert len(segs) == 2
        assert segs[0].server == 0 and segs[0].nbytes == 64 * KiB
        assert segs[1].server == 1 and segs[1].server_offset == 0

    def test_split_covers_extent_exactly(self):
        d = BlockingDistribution(16 * MiB, 16)
        segs = d.split(3 * MiB - 1, 2 * MiB + 2)
        assert sum(s.nbytes for s in segs) == 2 * MiB + 2
        # server order must be ascending and contiguous
        servers = [s.server for s in segs]
        assert servers == sorted(servers)

    def test_interior_request_never_splits(self):
        # A 128 KiB request entirely inside a chunk stays whole — the
        # common case that motivates the non-striped layout.
        d = BlockingDistribution(1 << 30, 8)
        segs = d.split(10 * MiB, 128 * KiB)
        assert len(segs) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockingDistribution(MiB, 0)
        with pytest.raises(ValueError):
            BlockingDistribution(MiB + 1, 2)  # not divisible
        d = BlockingDistribution(MiB, 2)
        with pytest.raises(ValueError):
            d.split(MiB, 1)
        with pytest.raises(ValueError):
            d.split(0, 0)
        with pytest.raises(ValueError):
            d.locate(MiB)


class TestRamDisk:
    def test_roundtrip_tokens(self):
        rd = RamDisk(MiB)
        rd.write(0, 8 * KiB, token="X")
        tokens, cost = rd.read(0, 8 * KiB)
        assert tokens == (("X", 0), ("X", 1))
        assert cost > 0

    def test_partial_overwrite_of_stale_extent(self):
        # Freed-and-reused swap slots produce partially overlapping
        # writes; later reads see the newest data per page.
        rd = RamDisk(MiB)
        rd.write(0, 16 * KiB, token="old")
        rd.write(0, 8 * KiB, token="new")
        tokens, _ = rd.read(0, 16 * KiB)
        assert tokens[0][0] == "new" and tokens[1][0] == "new"
        assert tokens[2][0] == "old" and tokens[3][0] == "old"

    def test_never_written_reads_none(self):
        rd = RamDisk(MiB)
        tokens, _ = rd.read(64 * KiB, 4 * KiB)
        assert tokens == (None,)

    def test_bounds(self):
        rd = RamDisk(64 * KiB)
        with pytest.raises(RamDiskError):
            rd.write(60 * KiB, 8 * KiB)
        with pytest.raises(RamDiskError):
            rd.read(-4096, 4096)

    def test_alignment_enforced(self):
        rd = RamDisk(MiB)
        with pytest.raises(RamDiskError):
            rd.write(100, 4096)
        with pytest.raises(RamDiskError):
            rd.read(0, 100)

    def test_cost_scales_with_size(self):
        rd = RamDisk(MiB)
        small = rd.write(0, 4 * KiB)
        large = rd.write(0, 128 * KiB)
        assert large > small * 5

    def test_accounting(self):
        rd = RamDisk(MiB)
        rd.write(0, 4 * KiB)
        rd.read(0, 4 * KiB)
        assert rd.bytes_written == 4 * KiB
        assert rd.bytes_read == 4 * KiB
        assert rd.pages_stored == 1
