"""Sweep engine: fingerprints, caching, parallelism, picklability."""

from __future__ import annotations

import pickle

import pytest

from repro.config import HPBD, NBD, ScenarioConfig
from repro.runner import run_scenario
from repro.sweep import (
    ResultCache,
    SweepPoint,
    config_fingerprint,
    resolve_workers,
    run_sweep,
    sweep_key,
)
from repro.units import GiB, MiB
from repro.workloads import TestswapWorkload

SCALE = 64


def _cfg(device=None, size_bytes=GiB // SCALE) -> ScenarioConfig:
    return ScenarioConfig(
        [TestswapWorkload(size_bytes=size_bytes)],
        device if device is not None else HPBD(),
        mem_bytes=512 * MiB // SCALE,
        swap_bytes=GiB // SCALE,
        mem_reserved_bytes=24 * MiB // SCALE,
    )


def _points(n=2):
    devices = [HPBD(), NBD("gige")]
    return [SweepPoint(d.label, _cfg(d)) for d in devices[:n]]


class TestFingerprint:
    def test_reconstruction_is_stable(self):
        # Two independently constructed identical configs hash alike.
        assert config_fingerprint(_cfg()) == config_fingerprint(_cfg())

    def test_workload_size_changes_hash(self):
        a = config_fingerprint(_cfg(size_bytes=GiB // SCALE))
        b = config_fingerprint(_cfg(size_bytes=GiB // SCALE + 4096))
        assert a != b

    def test_device_changes_hash(self):
        assert config_fingerprint(_cfg(HPBD())) != config_fingerprint(
            _cfg(NBD("gige"))
        )
        assert config_fingerprint(_cfg(HPBD())) != config_fingerprint(
            _cfg(HPBD(nservers=2))
        )

    def test_sweep_key_includes_code_version(self):
        # sweep_key folds the package source hash in on top of the config.
        assert sweep_key(_cfg()) != config_fingerprint(_cfg())

    def test_unknown_types_rejected(self):
        with pytest.raises(TypeError):
            config_fingerprint(object())


class TestResultPickling:
    def test_round_trip_preserves_counters(self):
        result = run_scenario(_cfg())
        clone = pickle.loads(pickle.dumps(result))
        assert clone.label == result.label
        assert clone.elapsed_usec == result.elapsed_usec
        assert clone.swapout_pages == result.swapout_pages
        assert clone.swapin_pages == result.swapin_pages
        assert clone.request_trace == result.request_trace
        assert clone.network_bytes == result.network_bytes
        # The registry serializes collector-for-collector.
        assert clone.registry.snapshot() == result.registry.snapshot()

    def test_traced_result_drops_live_trace(self):
        result = run_scenario(_cfg(), trace=True)
        assert result.trace is not None
        clone = pickle.loads(pickle.dumps(result))
        assert clone.trace is None  # the recorder closes over sim.now
        assert clone.elapsed_usec == result.elapsed_usec


class TestCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("00" * 32) is None
        cache.put("00" * 32, {"x": 1})
        assert cache.get("00" * 32) == {"x": 1}
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" * 32
        cache.put(key, {"x": 1})
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert not path.exists()  # dropped

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("cd" * 32, 1)
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_counters_and_summary(self, tmp_path):
        """hits/misses/puts/evictions tick, and the one-line summary
        (what ``repro sweep`` prints at exit) reports all four; a
        corrupt entry counts as both a miss and an eviction."""
        cache = ResultCache(tmp_path)
        key = "ef" * 32
        cache.get(key)                       # miss
        cache.put(key, {"x": 1})             # put
        cache.get(key)                       # hit
        cache._path(key).write_bytes(b"garbage")
        cache.get(key)                       # miss + eviction
        assert (cache.hits, cache.misses, cache.puts, cache.evictions) \
            == (1, 2, 1, 1)
        line = cache.summary()
        assert "1 hits" in line and "2 misses" in line
        assert "1 writes" in line and "1 evictions" in line
        assert str(tmp_path) in line


class TestRunSweep:
    def test_cached_rerun_is_bit_identical(self, tmp_path):
        points = _points()
        first = run_sweep(points, cache=tmp_path)
        assert first.simulated == len(points) and first.cached == 0
        second = run_sweep(points, cache=tmp_path)
        assert second.simulated == 0 and second.cached == len(points)
        fresh = run_sweep(points)  # no cache: simulate from scratch
        for a, b, c in zip(first.results, second.results, fresh.results):
            assert a.elapsed_usec == b.elapsed_usec == c.elapsed_usec
            assert a.swapout_pages == b.swapout_pages == c.swapout_pages
            assert a.swapin_pages == b.swapin_pages == c.swapin_pages
            assert b.registry.snapshot() == c.registry.snapshot()

    def test_traced_points_cache_separately(self, tmp_path):
        """A traced sweep must not be served blame-less untraced
        entries (and vice versa): the cache keys are distinct."""
        points = _points(1)
        plain = run_sweep(points, cache=tmp_path)
        assert plain.results[0].blame_usec == {}
        traced = run_sweep(points, cache=tmp_path, trace=True)
        assert traced.simulated == 1  # untraced entry did not satisfy it
        blame = traced.results[0].blame_usec
        assert blame and sum(blame.values()) > 0
        # and the traced entry is itself cached, blame intact
        again = run_sweep(points, cache=tmp_path, trace=True)
        assert again.simulated == 0 and again.cached == 1
        assert again.results[0].blame_usec == blame
        assert again.results[0].invariant_violations == []
        # untraced lookups still hit the untraced entry
        assert run_sweep(points, cache=tmp_path).simulated == 0

    def test_force_resimulates(self, tmp_path):
        points = _points(1)
        run_sweep(points, cache=tmp_path)
        forced = run_sweep(points, cache=tmp_path, force=True)
        assert forced.simulated == 1 and forced.cached == 0

    def test_duplicate_points_simulated_once(self, tmp_path):
        point = _points(1)[0]
        report = run_sweep([point, point], cache=tmp_path)
        assert report.simulated == 1
        assert report.results[0].elapsed_usec == report.results[1].elapsed_usec

    def test_parallel_matches_serial(self):
        points = _points()
        serial = run_sweep(points, workers=1)
        parallel = run_sweep(points, workers=2)
        assert parallel.workers == 2
        for a, b in zip(serial.results, parallel.results):
            assert a.elapsed_usec == b.elapsed_usec
            assert a.swapout_pages == b.swapout_pages
            assert a.registry.snapshot() == b.registry.snapshot()

    def test_results_in_input_order(self, tmp_path):
        points = _points()
        report = run_sweep(points, cache=tmp_path)
        assert [p.name for p in report.points] == [
            r.label for r in report.results
        ]

    def test_progress_callback(self, tmp_path):
        seen = []
        points = _points(1)
        run_sweep(points, cache=tmp_path, progress=lambda n, how: seen.append((n, how)))
        run_sweep(points, cache=tmp_path, progress=lambda n, how: seen.append((n, how)))
        assert seen == [(points[0].name, "simulated"), (points[0].name, "cached")]


class TestCampaignEmission:
    def test_run_sweep_appends_run_records(self, tmp_path):
        """``run_sweep(campaign=...)`` writes one RunRecord per point —
        including cache hits, which are equally valid runs."""
        from repro.obs.campaign import CampaignStore

        points = _points(2)
        store = tmp_path / "camp.jsonl"
        run_sweep(points, cache=tmp_path / "cache", campaign=store)
        records = CampaignStore(store).load()
        assert [r.point for r in records] == [p.name for p in points]
        assert all(r.metrics["elapsed_usec"] > 0 for r in records)
        # second sweep is fully cached yet still appends records
        run_sweep(points, cache=tmp_path / "cache", campaign=store)
        again = CampaignStore(store).load()
        assert len(again) == 2 * len(points)
        assert again[0].metrics == again[len(points)].metrics


class TestResolveWorkers:
    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
        assert resolve_workers(None) == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "3")
        assert resolve_workers(None) == 3

    def test_auto(self):
        import os

        assert resolve_workers("auto") == (os.cpu_count() or 1)
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)

    def test_env_garbage_falls_back_to_serial(self, monkeypatch):
        """A typo'd $REPRO_SWEEP_WORKERS must not crash a sweep that
        never asked for parallelism: warn and run serial."""
        for junk in ("lots", "", "2.5", "-3"):
            monkeypatch.setenv("REPRO_SWEEP_WORKERS", junk)
            with pytest.warns(RuntimeWarning, match="REPRO_SWEEP_WORKERS"):
                assert resolve_workers(None) == 1

    def test_env_auto_still_works(self, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "auto")
        assert resolve_workers(None) == (os.cpu_count() or 1)


class TestUnwritableCache:
    @staticmethod
    def _unwritable_root(tmp_path):
        # A regular file as a path component defeats mkdir even when the
        # test runs as root (where permission bits alone would not).
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        return blocker / "cache"

    def test_put_disables_instead_of_crashing(self, tmp_path):
        from repro.sweep.cache import ResultCache

        cache = ResultCache(self._unwritable_root(tmp_path))
        with pytest.warns(RuntimeWarning, match="unwritable"):
            cache.put("ab" + "0" * 62, {"x": 1})
        assert cache.disabled
        # Subsequent gets/puts are silent no-ops, not crashes.
        assert cache.get("ab" + "0" * 62) is None
        cache.put("cd" + "0" * 62, {"y": 2})

    def test_sweep_completes_with_unwritable_cache(self, tmp_path):
        from repro.sweep.cache import ResultCache

        cache = ResultCache(self._unwritable_root(tmp_path))
        points = _points(1)
        with pytest.warns(RuntimeWarning, match="unwritable"):
            report = run_sweep(points, cache=cache)
        assert report.simulated == 1
        assert report.results[0] is not None


class TestExperimentsIntegration:
    def test_fig05_through_engine_with_cache(self, tmp_path):
        from repro.experiments import fig05_points, fig05_testswap

        results = fig05_testswap(scale=64, cache=tmp_path)
        assert [r.label for r in results] == [
            "local", "hpbd", "nbd-ipoib", "nbd-gige", "disk",
        ]
        # Second run: every point served from cache, same numbers.
        report = run_sweep(fig05_points(scale=64), cache=tmp_path)
        assert report.simulated == 0
        for a, b in zip(results, report.results):
            assert a.elapsed_usec == b.elapsed_usec

    def test_fig10_preserves_counts(self, tmp_path):
        from repro.experiments import fig10_servers

        out = fig10_servers(scale=64, counts=(1, 2), cache=tmp_path)
        assert [n for n, _ in out] == [1, 2]
