"""Runtime invariant monitors: recording, strictness, and the wiring
into resources, the block layer, and full scenarios."""

from __future__ import annotations

import pytest

from repro.obs.monitors import InvariantViolation, MonitorHub, Violation
from repro.simulator import (
    Resource,
    SimulationError,
    Simulator,
    TokenBucket,
)


class TestMonitorHub:
    def test_attached_to_every_simulator(self):
        sim = Simulator()
        assert isinstance(sim.monitors, MonitorHub)
        assert sim.monitors.ok
        assert sim.monitors.violations == []

    def test_violation_records_sim_time(self, sim, runner):
        def proc(sim):
            yield sim.timeout(42.0)
            sim.monitors.violation(
                "pool.leak", "hpbd0", "bytes still allocated", allocated=4096
            )

        runner(proc(sim))
        (v,) = sim.monitors.violations
        assert isinstance(v, Violation)
        assert v.t == 42.0
        assert v.monitor == "pool.leak"
        assert v.component == "hpbd0"
        assert v.details == {"allocated": 4096}
        assert not sim.monitors.ok

    def test_summary_is_plain_dicts(self, sim):
        sim.monitors.violation("m", "c", "msg", tokens=-1)
        (d,) = sim.monitors.summary()
        assert d == {
            "t_usec": 0.0, "monitor": "m", "component": "c",
            "message": "msg", "tokens": -1,
        }

    def test_strict_raises_at_point_of_damage(self, sim):
        sim.monitors.strict = True
        with pytest.raises(InvariantViolation):
            sim.monitors.violation("credits.negative", "c", "went negative")
        # recorded anyway, so post-mortem still sees it
        assert len(sim.monitors.violations) == 1

    def test_check_passes_through(self, sim):
        assert sim.monitors.check(True, "m", "c", "fine") is True
        assert sim.monitors.ok
        assert sim.monitors.check(False, "m", "c", "broken") is False
        assert len(sim.monitors.violations) == 1

    def test_watermark_tracks_maximum(self, sim):
        sim.monitors.watermark("rq.depth", 3)
        sim.monitors.watermark("rq.depth", 7)
        sim.monitors.watermark("rq.depth", 5)
        assert sim.monitors.watermarks == {"rq.depth": 7}

    def test_violation_emits_invariant_span_when_tracing(self, sim):
        rec = sim.enable_tracing()
        sim.monitors.violation("pool.leak", "hpbd0", "leaked", allocated=64)
        (span,) = [s for s in rec.spans if s.cat == "invariant"]
        assert span.dur == 0.0
        assert span.component == "hpbd0"
        assert span.name == "pool.leak"
        assert span.args["message"] == "leaked"
        assert span.args["allocated"] == 64

    def test_no_span_when_untraced(self, sim):
        sim.monitors.violation("m", "c", "msg")
        assert len(sim.trace) == 0


class TestResourceWiring:
    def test_token_bucket_overflow_recorded_then_raised(self, sim):
        bucket = TokenBucket(sim, 2, name="credits")
        with pytest.raises(SimulationError):
            bucket.release()
        (v,) = sim.monitors.violations
        assert v.monitor == "credits.overflow"
        assert v.details["capacity"] == 2

    def test_resource_over_release_recorded_then_raised(self, sim):
        res = Resource(sim, 1, name="slots")
        with pytest.raises(SimulationError):
            res.release()
        assert any(
            v.monitor == "resource.over_release"
            for v in sim.monitors.violations
        )

    def test_request_queue_over_complete(self, sim):
        from repro.kernel.blockdev import BlockRequest, RequestQueue

        q = RequestQueue(sim, "rq", capacity_sectors=1 << 20)
        req = BlockRequest(op="read", sector=0, nsectors=8, bios=[])
        with pytest.raises(SimulationError):
            q.complete(req)
        assert any(
            v.monitor == "blk.in_flight" for v in sim.monitors.violations
        )


class TestScenarioAudits:
    def test_fig07_hpbd_clean(self, traced_fig07_hpbd):
        """Acceptance: invariant monitors pass clean on the ISSUE's
        reference scenario, and the teardown audits did run (the
        watermarks they record are present)."""
        assert traced_fig07_hpbd.invariant_violations == []
        marks = traced_fig07_hpbd.monitor_watermarks
        assert any(k.endswith(".in_flight") for k in marks)
        assert all(v >= 0 for v in marks.values())

    def test_untraced_scenario_clean(self, local_base_fig07):
        assert local_base_fig07.invariant_violations == []

    def test_teardown_audit_flags_leak(self, sim):
        """A pool with bytes still allocated at teardown must fire."""
        from repro.hpbd.pool import RegisteredPool

        pool = RegisteredPool(sim, 1 << 20, name="pool")
        buf = pool.try_alloc(4096)
        assert buf is not None
        pool.audit_teardown()
        assert any(
            v.monitor == "pool.leak" for v in sim.monitors.violations
        )
