"""Unit tests for the discrete-event kernel: events, processes, time."""

from __future__ import annotations

import pytest

from repro.simulator import (
    AlreadyTriggered,
    DeadProcess,
    Event,
    Interrupted,
    LAZY,
    NORMAL,
    SchedulingInPast,
    SimulationError,
    Simulator,
    Timeout,
    URGENT,
)


class TestEvent:
    def test_starts_pending(self, sim):
        evt = sim.event("e")
        assert not evt.triggered
        assert not evt.processed

    def test_value_before_trigger_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.event().value

    def test_ok_before_trigger_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.event().ok

    def test_succeed_carries_value(self, sim):
        evt = sim.event().succeed(42)
        assert evt.triggered
        assert evt.ok
        assert evt.value == 42

    def test_double_succeed_raises(self, sim):
        evt = sim.event().succeed()
        with pytest.raises(AlreadyTriggered):
            evt.succeed()

    def test_fail_then_succeed_raises(self, sim):
        evt = sim.event().fail(RuntimeError("x"))
        with pytest.raises(AlreadyTriggered):
            evt.succeed()

    def test_fail_requires_exception(self, sim):
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_callbacks_run_on_step(self, sim):
        seen = []
        evt = sim.event()
        evt.callbacks.append(lambda e: seen.append(e.value))
        evt.succeed("v")
        assert seen == []  # not yet processed
        sim.run()
        assert seen == ["v"]
        assert evt.processed

    def test_trigger_mirrors_success(self, sim):
        src = sim.event().succeed(7)
        dst = sim.event()
        dst.trigger(src)
        assert dst.ok and dst.value == 7

    def test_trigger_mirrors_failure(self, sim):
        exc = ValueError("boom")
        src = sim.event().fail(exc)
        dst = sim.event()
        dst.trigger(src)
        assert not dst.ok and dst.value is exc


class TestTimeout:
    def test_advances_clock(self, sim, runner):
        def proc(sim):
            yield sim.timeout(5.0)
            return sim.now

        assert runner(proc(sim)) == 5.0

    def test_zero_delay_allowed(self, sim, runner):
        def proc(sim):
            yield sim.timeout(0.0)
            return sim.now

        assert runner(proc(sim)) == 0.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SchedulingInPast):
            Timeout(sim, -1.0)

    def test_timeout_value_passthrough(self, sim, runner):
        def proc(sim):
            got = yield sim.timeout(1.0, value="tick")
            return got

        assert runner(proc(sim)) == "tick"

    def test_sequential_timeouts_accumulate(self, sim, runner):
        def proc(sim):
            for _ in range(10):
                yield sim.timeout(1.5)
            return sim.now

        assert runner(proc(sim)) == pytest.approx(15.0)


class TestProcess:
    def test_return_value_is_event_value(self, sim):
        def proc(sim):
            yield sim.timeout(1)
            return "done"

        p = sim.spawn(proc(sim))
        assert sim.run(until=p) == "done"

    def test_join_another_process(self, sim):
        def child(sim):
            yield sim.timeout(3)
            return 99

        def parent(sim):
            result = yield sim.spawn(child(sim))
            return (result, sim.now)

        p = sim.spawn(parent(sim))
        assert sim.run(until=p) == (99, 3.0)

    def test_join_already_finished_process(self, sim):
        def child(sim):
            yield sim.timeout(1)
            return "early"

        def parent(sim, c):
            yield sim.timeout(10)
            result = yield c  # already processed
            return result

        c = sim.spawn(child(sim))
        p = sim.spawn(parent(sim, c))
        assert sim.run(until=p) == "early"

    def test_spawn_rejects_non_generator(self, sim):
        with pytest.raises(TypeError):
            sim.spawn(lambda: None)

    def test_yield_non_event_fails_strict(self, sim):
        def proc(sim):
            yield 42

        p = sim.spawn(proc(sim))
        with pytest.raises(SimulationError):
            sim.run(until=p)

    def test_exception_propagates_strict(self, sim):
        def proc(sim):
            yield sim.timeout(1)
            raise RuntimeError("kaboom")

        sim.spawn(proc(sim))
        with pytest.raises(RuntimeError, match="kaboom"):
            sim.run()

    def test_exception_nonstrict_fails_event(self):
        sim = Simulator(strict=False)

        def proc(sim):
            yield sim.timeout(1)
            raise RuntimeError("quiet")

        p = sim.spawn(proc(sim))
        sim.run()
        assert p.triggered and not p.ok

    def test_failed_event_raises_in_waiter(self, sim):
        evt = sim.event()

        def failer(sim):
            yield sim.timeout(1)
            evt.fail(ValueError("bad"))

        def waiter(sim):
            try:
                yield evt
            except ValueError:
                return "caught"
            return "missed"

        sim.spawn(failer(sim))
        p = sim.spawn(waiter(sim))
        assert sim.run(until=p) == "caught"

    def test_is_alive_lifecycle(self, sim):
        def proc(sim):
            yield sim.timeout(5)

        p = sim.spawn(proc(sim))
        assert p.is_alive
        sim.run()
        assert not p.is_alive


class TestInterrupt:
    def test_interrupt_delivers_cause(self, sim):
        def sleeper(sim):
            try:
                yield sim.timeout(100)
            except Interrupted as e:
                return ("interrupted", e.cause, sim.now)
            return "slept"

        def interrupter(sim, target):
            yield sim.timeout(2)
            target.interrupt("wakeup")

        p = sim.spawn(sleeper(sim))
        sim.spawn(interrupter(sim, p))
        assert sim.run(until=p) == ("interrupted", "wakeup", 2.0)

    def test_interrupt_dead_process_raises(self, sim):
        def proc(sim):
            yield sim.timeout(1)

        p = sim.spawn(proc(sim))
        sim.run()
        with pytest.raises(DeadProcess):
            p.interrupt()

    def test_self_interrupt_rejected(self, sim):
        caught = []

        def proc(sim):
            try:
                me.interrupt()
            except SimulationError as e:
                caught.append(str(e))
            yield sim.timeout(1)

        me = sim.spawn(proc(sim))
        sim.run()
        assert caught and "itself" in caught[0]

    def test_interrupted_process_detaches_from_event(self, sim):
        evt = sim.event()

        def sleeper(sim):
            try:
                yield evt
            except Interrupted:
                yield sim.timeout(5)
                return "recovered"

        def interrupter(sim, target):
            yield sim.timeout(1)
            target.interrupt()
            yield sim.timeout(1)
            evt.succeed("late")  # must not resume the detached sleeper

        p = sim.spawn(sleeper(sim))
        sim.spawn(interrupter(sim, p))
        assert sim.run(until=p) == "recovered"


class TestRun:
    def test_run_until_time(self, sim):
        hits = []

        def proc(sim):
            for _ in range(10):
                yield sim.timeout(1)
                hits.append(sim.now)

        sim.spawn(proc(sim))
        sim.run(until=4.5)
        assert sim.now == 4.5
        assert hits == [1, 2, 3, 4]

    def test_run_until_past_raises(self, sim):
        sim.run(until=10.0)
        with pytest.raises(SchedulingInPast):
            sim.run(until=5.0)

    def test_run_dry_before_event(self, sim):
        evt = sim.event()  # never triggered
        with pytest.raises(SimulationError, match="ran dry"):
            sim.run(until=evt)

    def test_simultaneous_events_fire_in_priority_order(self, sim):
        order = []
        for prio, tag in ((LAZY, "lazy"), (URGENT, "urgent"), (NORMAL, "normal")):
            evt = Event(sim, tag)
            evt.callbacks.append(lambda e: order.append(e.name))
            evt._ok = True
            evt._value = None
            sim._enqueue(evt, 1.0, prio)
        sim.run()
        assert order == ["urgent", "normal", "lazy"]

    def test_fifo_among_equal_priority(self, sim):
        order = []
        for i in range(5):
            evt = Event(sim, str(i))
            evt.callbacks.append(lambda e: order.append(e.name))
            evt._ok = True
            evt._value = None
            sim._enqueue(evt, 2.0, NORMAL)
        sim.run()
        assert order == ["0", "1", "2", "3", "4"]

    def test_schedule_call(self, sim):
        seen = []
        sim.schedule_call(3.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.0]

    def test_events_processed_counter(self, sim, runner):
        def proc(sim):
            for _ in range(7):
                yield sim.timeout(1)

        runner(proc(sim))
        assert sim.events_processed >= 7

    def test_peek_empty_heap(self, sim):
        assert sim.peek() == float("inf")

    def test_run_all(self, sim):
        def proc(sim, d):
            yield sim.timeout(d)
            return d

        procs = [sim.spawn(proc(sim, d)) for d in (3, 1, 2)]
        assert sim.run_all(procs) == [3, 1, 2]


class TestEventPooling:
    """The free-list recycler must never reuse an event user code holds."""

    def test_unreferenced_timeouts_are_recycled(self, sim):
        def proc(sim):
            for _ in range(50):
                yield sim.timeout(1)

        sim.run(until=sim.spawn(proc(sim)))
        assert len(sim._timeout_pool) > 0

    def test_pool_reuse_draws_down_the_free_list(self, sim):
        def proc(sim):
            for _ in range(10):
                yield sim.timeout(1)

        sim.run(until=sim.spawn(proc(sim)))
        before = len(sim._timeout_pool)
        assert before > 0
        to = sim.timeout(3.0, value="fresh")
        assert len(sim._timeout_pool) == before - 1
        assert not to.processed
        assert to.delay == 3.0

        def reader(sim):
            got = yield to
            return got

        assert sim.run(until=sim.spawn(reader(sim))) == "fresh"

    def test_held_timeout_is_never_recycled(self, sim):
        held = sim.timeout(1.0, value="mine")

        def proc(sim):
            for _ in range(20):
                yield sim.timeout(1)

        sim.run(until=sim.spawn(proc(sim)))
        # ``held`` was processed but this frame still references it, so
        # it must keep its identity and value no matter how many new
        # timeouts are created.
        for _ in range(30):
            assert sim.timeout(1) is not held
        assert held.processed
        assert held.value == "mine"

    def test_run_until_event_is_not_recycled(self, sim):
        def child(sim):
            yield sim.timeout(2)
            return "done"

        p = sim.spawn(child(sim))
        assert sim.run(until=p) == "done"
        assert p.value == "done"  # still readable after the run

    def test_recycled_events_preserve_determinism(self):
        """Two identical sims (one pre-warmed pool) fire identically."""

        def workload(sim, log):
            def ping(sim, name):
                for _ in range(5):
                    yield sim.timeout(1)
                    log.append((sim.now, name))

            procs = [sim.spawn(ping(sim, i)) for i in range(3)]
            sim.run_all(procs)

        cold_log: list = []
        cold = Simulator()
        workload(cold, cold_log)

        warm = Simulator()
        warmup: list = []
        workload(warm, warmup)  # fills the free lists
        warm_log: list = []
        workload(warm, warm_log)
        assert [(t - 5.0, n) for t, n in warm_log] == cold_log

    def test_interrupt_still_works_with_pooling(self, sim):
        def sleeper(sim):
            try:
                yield sim.timeout(100)
            except Interrupted:
                return "woken"

        def interrupter(sim, target):
            yield sim.timeout(1)
            target.interrupt()

        p = sim.spawn(sleeper(sim))
        sim.spawn(interrupter(sim, p))
        assert sim.run(until=p) == "woken"
        # the interrupt's internal event went back to the free list
        assert len(sim._event_pool) > 0
