"""Unit tests for the workload trace generators and executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.disk import DiskDevice
from repro.kernel import Node
from repro.units import GiB, MiB, PAGE_SIZE
from repro.workloads import (
    BarnesWorkload,
    Compute,
    QuicksortWorkload,
    RandomTouch,
    SeqTouch,
    TestswapWorkload,
    execute,
)


class TestOps:
    def test_seqtouch_validation(self):
        with pytest.raises(ValueError):
            SeqTouch(5, 5, write=True)
        with pytest.raises(ValueError):
            SeqTouch(0, 1, write=True, compute_usec=-1)

    def test_randomtouch_validation(self):
        with pytest.raises(ValueError):
            RandomTouch(np.array([]), write=False)

    def test_compute_validation(self):
        with pytest.raises(ValueError):
            Compute(-1.0)

    def test_npages(self):
        assert SeqTouch(0, 10, write=True).npages == 10
        assert RandomTouch(np.array([1, 2, 3]), write=False).npages == 3


class TestTestswap:
    def test_geometry(self):
        w = TestswapWorkload(size_bytes=GiB)
        assert w.npages == 262144
        ops = list(w.ops())
        assert len(ops) == 1
        assert ops[0].write is True
        assert ops[0].start == 0 and ops[0].stop == w.npages

    def test_calibration_full_size(self):
        # In-memory compute + faults must add to ~5.8 s at 1 GiB.
        from repro.kernel.params import DEFAULT_VM_PARAMS

        w = TestswapWorkload(size_bytes=GiB)
        total = w.total_compute_usec() + w.npages * DEFAULT_VM_PARAMS.fault_overhead
        assert total == pytest.approx(5.8e6, rel=0.01)

    def test_scales_linearly(self):
        w8 = TestswapWorkload(size_bytes=GiB // 8)
        w1 = TestswapWorkload(size_bytes=GiB)
        assert w1.total_compute_usec() == pytest.approx(
            8 * w8.total_compute_usec(), rel=1e-6
        )

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            TestswapWorkload(size_bytes=100)


class TestQuicksort:
    def test_geometry_1gib(self):
        w = QuicksortWorkload(nelems=256 * 1024 * 1024)
        assert w.npages == 262144  # 1 GiB of 4-byte ints

    def test_calibrated_to_94s(self):
        w = QuicksortWorkload(nelems=256 * 1024 * 1024)
        assert w.total_compute_usec() == pytest.approx(94e6, rel=1e-6)

    def test_deterministic_per_seed(self):
        a = QuicksortWorkload(nelems=1 << 22, seed=5)
        b = QuicksortWorkload(nelems=1 << 22, seed=5)
        assert [(o.start, o.stop) for o in a.ops()] == [
            (o.start, o.stop) for o in b.ops()
        ]

    def test_different_seed_different_pivots(self):
        a = QuicksortWorkload(nelems=1 << 22, seed=5)
        b = QuicksortWorkload(nelems=1 << 22, seed=6)
        assert [(o.start, o.stop) for o in a.ops()] != [
            (o.start, o.stop) for o in b.ops()
        ]

    def test_first_ops_cover_whole_array(self):
        w = QuicksortWorkload(nelems=1 << 22)
        ops = list(w.ops())
        # init pass + level-0 partition both sweep everything
        assert ops[0].start == 0 and ops[0].stop == w.npages
        assert ops[1].start == 0 and ops[1].stop == w.npages

    def test_depth_first_recursion_order(self):
        # After the top-level partition, work proceeds on the LEFT
        # segment before the right one (DFS).
        w = QuicksortWorkload(nelems=1 << 22)
        ops = list(w.ops())
        third = ops[2]
        assert third.start == 0  # left child first

    def test_all_ops_write_mode(self):
        w = QuicksortWorkload(nelems=1 << 22)
        assert all(op.write for op in w.ops())

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            QuicksortWorkload(nelems=100)


class TestBarnes:
    def test_peak_footprint(self):
        w = BarnesWorkload(nbodies=2_097_152)
        assert w.npages * PAGE_SIZE == pytest.approx(516 * MiB, rel=0.02)

    def test_trace_touches_full_footprint(self):
        w = BarnesWorkload(nbodies=2_097_152 // 8)
        touched = np.zeros(w.npages, dtype=bool)
        for op in w.ops():
            if isinstance(op, SeqTouch):
                touched[op.start : op.stop] = True
            elif isinstance(op, RandomTouch):
                touched[op.pages] = True
        assert touched.mean() > 0.99

    def test_working_set_grows_per_timestep(self):
        w = BarnesWorkload(nbodies=2_097_152 // 8, timesteps=4)
        ops = list(w.ops())
        # cell-region build sweeps grow monotonically
        builds = [
            op for op in ops
            if isinstance(op, SeqTouch) and op.start == w.body_pages
        ]
        sizes = [op.npages for op in builds]
        assert sizes == sorted(sizes)
        assert len(builds) == 4

    def test_deterministic(self):
        a = BarnesWorkload(nbodies=1 << 18, seed=3)
        b = BarnesWorkload(nbodies=1 << 18, seed=3)
        assert a.total_compute_usec() == b.total_compute_usec()

    def test_validation(self):
        with pytest.raises(ValueError):
            BarnesWorkload(nbodies=10)
        with pytest.raises(ValueError):
            BarnesWorkload(nbodies=1 << 18, timesteps=0)


class TestExecutor:
    def test_elapsed_matches_compute_when_resident(self, sim, fabric):
        node = Node(sim, fabric, "n", mem_bytes=64 * MiB)
        w = TestswapWorkload(size_bytes=4 * MiB)
        aspace = node.vmm.create_address_space(w.npages, "a")
        p = sim.spawn(execute(w, node, aspace))
        elapsed = sim.run(until=p)
        floor = w.total_compute_usec()
        assert elapsed >= floor
        assert elapsed < floor * 1.5  # only fault overhead on top

    def test_undersized_address_space_rejected(self, sim, fabric):
        node = Node(sim, fabric, "n", mem_bytes=64 * MiB)
        w = TestswapWorkload(size_bytes=4 * MiB)
        aspace = node.vmm.create_address_space(10, "a")
        with pytest.raises(ValueError):
            next(iter(execute(w, node, aspace)))

    def test_random_touch_execution(self, sim, fabric):
        node = Node(sim, fabric, "n", mem_bytes=64 * MiB)

        class Rand:
            name = "rand"
            npages = 1000

            def ops(self):
                rng = np.random.default_rng(1)
                yield RandomTouch(
                    rng.integers(0, 1000, size=500), write=True, compute_usec=100.0
                )

            def total_compute_usec(self):
                return 100.0

        aspace = node.vmm.create_address_space(1000, "a")
        p = sim.spawn(execute(Rand(), node, aspace))
        sim.run(until=p)
        assert aspace.resident_pages > 0

    def test_swapping_execution_on_disk(self, sim, fabric):
        node = Node(sim, fabric, "n", mem_bytes=8 * MiB)
        disk = DiskDevice(sim, swap_partition_bytes=64 * MiB, stats=node.stats)
        node.swapon(disk.queue, 64 * MiB)
        w = TestswapWorkload(size_bytes=24 * MiB)
        aspace = node.vmm.create_address_space(w.npages, "a")
        p = sim.spawn(execute(w, node, aspace))
        elapsed = sim.run(until=p)
        assert elapsed > w.total_compute_usec()  # paid for swapping
        assert node.stats.get("n.vm.swapout_pages").total > 0
