"""vmstat snapshots + the server's RDMA/memcpy overlap property."""

from __future__ import annotations

from repro.disk import DiskDevice
from repro.hpbd import HPBDClient, HPBDServer
from repro.kernel import Node, format_vmstat, vmstat
from repro.kernel.blockdev import Bio, WRITE
from repro.simulator import Event
from repro.units import MiB, PAGE_SIZE


class TestVMStat:
    def test_fresh_node_snapshot(self, sim, fabric, node):
        stat = vmstat(node)
        assert stat.free_bytes == stat.total_bytes
        assert stat.resident_bytes == 0
        assert stat.pgfault_minor == 0
        assert stat.swaps == ()

    def test_snapshot_after_swapping(self, sim, fabric):
        n = Node(sim, fabric, "n0", mem_bytes=8 * MiB)
        disk = DiskDevice(sim, swap_partition_bytes=32 * MiB, stats=n.stats)
        n.swapon(disk.queue, 32 * MiB, priority=3)
        aspace = n.vmm.create_address_space((16 * MiB) // PAGE_SIZE, "a")

        def app(sim):
            for start in range(0, aspace.npages, 64):
                stop = min(start + 64, aspace.npages)
                yield from n.vmm.touch_run(aspace, start, stop, write=True)
            yield from n.vmm.quiesce()

        sim.run(until=sim.spawn(app(sim)))
        stat = vmstat(n)
        assert stat.pgfault_minor == aspace.npages
        assert stat.pswpout_pages > 0
        assert stat.resident_bytes + stat.free_bytes <= stat.total_bytes
        assert len(stat.swaps) == 1
        assert stat.swaps[0].priority == 3
        assert stat.swaps[0].used_bytes > 0
        assert 0 < stat.swaps[0].used_frac <= 1.0

    def test_format_is_readable(self, sim, fabric):
        n = Node(sim, fabric, "n0", mem_bytes=8 * MiB)
        disk = DiskDevice(sim, swap_partition_bytes=16 * MiB, stats=n.stats)
        n.swapon(disk.queue, 16 * MiB)
        text = format_vmstat(vmstat(n))
        assert "free" in text
        assert "swap" in text
        assert "pswpout" in text

    def test_accounting_identity(self, sim, fabric):
        """used = resident + writeback + swapin-flight (quiesced:
        used = resident)."""
        n = Node(sim, fabric, "n0", mem_bytes=8 * MiB)
        disk = DiskDevice(sim, swap_partition_bytes=32 * MiB, stats=n.stats)
        n.swapon(disk.queue, 32 * MiB)
        aspace = n.vmm.create_address_space((16 * MiB) // PAGE_SIZE, "a")

        def app(sim):
            for start in range(0, aspace.npages, 64):
                stop = min(start + 64, aspace.npages)
                yield from n.vmm.touch_run(aspace, start, stop, write=True)
            yield from n.vmm.quiesce()

        sim.run(until=sim.spawn(app(sim)))
        stat = vmstat(n)
        assert stat.used_bytes == stat.resident_bytes


class TestServerOverlap:
    """§4.2.1: "By allowing multiple outstanding RDMA operations, RDMA
    and memcpy overlap is supported" — with several requests in flight,
    the server pipeline beats strict serialization."""

    def _run_burst(self, sim, fabric, max_rdma):
        node = Node(sim, fabric, f"c{max_rdma}", mem_bytes=16 * MiB)
        srv = HPBDServer(
            sim, fabric, f"m{max_rdma}", store_bytes=32 * MiB,
            max_outstanding_rdma=max_rdma, stats=node.stats,
        )
        client = HPBDClient(sim, node, [srv], total_bytes=32 * MiB,
                            name=f"h{max_rdma}")
        sim.run(until=sim.spawn(client.connect()))
        events = [Event(sim) for _ in range(16)]
        t0 = sim.now

        def proc(sim):
            for i, done in enumerate(events):
                client.queue.submit_bio(
                    Bio(op=WRITE, sector=i * 256, nsectors=256, done=done)
                )
            client.queue.unplug()
            for evt in events:
                yield evt
            return sim.now - t0

        return sim.run(until=sim.spawn(proc(sim)))

    def test_overlap_beats_serialization(self, sim, fabric):
        serial = self._run_burst(sim, fabric, max_rdma=1)
        overlapped = self._run_burst(sim, fabric, max_rdma=8)
        assert overlapped < serial * 0.9

    def test_single_slot_still_correct(self, sim, fabric):
        # max_outstanding_rdma=1 must remain functionally correct.
        t = self._run_burst(sim, fabric, max_rdma=1)
        assert t > 0
