"""Unit tests for the stats collectors."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.simulator import Counter, StatsRegistry, Tally, TimeSeries


class TestCounter:
    def test_basic_accumulation(self):
        c = Counter("x")
        c.add()
        c.add(10)
        assert c.count == 2
        assert c.total == 11


class TestTally:
    def test_empty_statistics_are_nan(self):
        t = Tally("t")
        assert math.isnan(t.mean)
        assert math.isnan(t.min)
        assert math.isnan(t.percentile(50))
        assert t.total == 0.0

    def test_record_and_summaries(self):
        t = Tally("t")
        for v in (1.0, 2.0, 3.0, 4.0):
            t.record(v)
        assert t.count == 4
        assert t.mean == pytest.approx(2.5)
        assert t.min == 1.0
        assert t.max == 4.0
        assert t.total == 10.0

    def test_growth_beyond_initial_capacity(self):
        t = Tally("t", initial_capacity=4)
        for v in range(1000):
            t.record(float(v))
        assert t.count == 1000
        assert t.max == 999.0

    def test_record_many(self):
        t = Tally("t", initial_capacity=2)
        t.record_many(np.arange(100, dtype=float))
        t.record(100.0)
        assert t.count == 101
        assert t.mean == pytest.approx(50.0)

    def test_percentile(self):
        t = Tally("t")
        t.record_many(np.arange(101, dtype=float))
        assert t.percentile(50) == pytest.approx(50.0)
        assert t.percentile(90) == pytest.approx(90.0)

    def test_histogram(self):
        t = Tally("t")
        t.record_many(np.array([1.0, 1.0, 2.0, 9.0]))
        counts, edges = t.histogram(bins=2)
        assert counts.sum() == 4

    def test_values_view_excludes_spare_capacity(self):
        t = Tally("t", initial_capacity=64)
        t.record(5.0)
        assert len(t.values()) == 1


class TestTimeSeries:
    def test_time_weighted_mean_piecewise(self):
        ts = TimeSeries("f")
        ts.record(0.0, 10.0)
        ts.record(10.0, 20.0)  # value 10 held for 10
        ts.record(20.0, 0.0)  # value 20 held for 10
        assert ts.time_weighted_mean() == pytest.approx(15.0)

    def test_single_sample(self):
        ts = TimeSeries("f")
        ts.record(5.0, 42.0)
        assert ts.time_weighted_mean() == 42.0

    def test_empty_is_nan(self):
        assert math.isnan(TimeSeries("f").time_weighted_mean())

    def test_growth(self):
        ts = TimeSeries("f", initial_capacity=2)
        for i in range(100):
            ts.record(float(i), float(i))
        assert ts.count == 100
        assert ts.times()[-1] == 99.0


class TestStatsRegistry:
    def test_same_name_returns_same_collector(self):
        reg = StatsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.tally("b") is reg.tally("b")

    def test_kind_conflict_rejected(self):
        reg = StatsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.tally("x")

    def test_get_missing_returns_none(self):
        assert StatsRegistry().get("nope") is None

    def test_contains_and_names(self):
        reg = StatsRegistry()
        reg.counter("z")
        reg.counter("a")
        assert "z" in reg
        assert reg.names() == ["a", "z"]

    def test_snapshot_shapes(self):
        reg = StatsRegistry()
        reg.counter("c").add(5)
        reg.tally("t").record(1.0)
        reg.timeseries("s").record(0.0, 1.0)
        snap = reg.snapshot()
        assert snap["c"]["total"] == 5
        assert snap["t"]["count"] == 1
        assert "time_weighted_mean" in snap["s"]
