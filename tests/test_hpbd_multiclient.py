"""One memory server serving multiple client nodes (§5).

"The server is a typical daemon program.  It is able to serve multiple
clients using different swap areas."
"""

from __future__ import annotations

import pytest

from repro.hpbd import HPBDClient, HPBDServer
from repro.kernel import Node
from repro.kernel.blockdev import Bio, WRITE
from repro.simulator import Event, SimulationError
from repro.units import KiB, MiB


@pytest.fixture
def two_clients(sim, fabric):
    """Two nodes sharing one 64 MiB server, 16 MiB area each."""
    server = HPBDServer(sim, fabric, "mem0", store_bytes=64 * MiB)
    nodes = []
    clients = []
    for i in range(2):
        node = Node(sim, fabric, f"node{i}", mem_bytes=16 * MiB)
        client = HPBDClient(
            sim,
            node,
            [server],
            total_bytes=16 * MiB,
            name=f"hpbd{i}",
            server_area_base=i * 16 * MiB,
        )
        nodes.append(node)
        clients.append(client)

    def wire(sim):
        for c in clients:
            yield from c.connect()

    sim.run(until=sim.spawn(wire(sim)))
    return server, nodes, clients


def do_io(sim, client, op, sector, nsectors):
    done = Event(sim)

    def proc(sim):
        client.queue.submit_bio(
            Bio(op=op, sector=sector, nsectors=nsectors, done=done)
        )
        client.queue.unplug()
        yield done

    sim.run(until=sim.spawn(proc(sim)))


class TestMultiClient:
    def test_both_clients_served(self, sim, two_clients):
        server, _nodes, clients = two_clients
        do_io(sim, clients[0], WRITE, sector=0, nsectors=8)
        do_io(sim, clients[1], WRITE, sector=0, nsectors=8)
        assert server.requests_served == 2

    def test_areas_do_not_collide(self, sim, two_clients):
        """Both clients write their own sector 0; each must read back
        its own data, not the other's."""
        server, _nodes, clients = two_clients
        do_io(sim, clients[0], WRITE, sector=0, nsectors=8)
        do_io(sim, clients[1], WRITE, sector=0, nsectors=8)
        # Distinct pages stored (two separate areas written).
        assert server.ramdisk.pages_stored == 2
        t0, _ = server.ramdisk.read(0, 4 * KiB)
        t1, _ = server.ramdisk.read(16 * MiB, 4 * KiB)
        assert t0 != t1
        assert t0[0] is not None and t1[0] is not None

    def test_concurrent_traffic_from_both(self, sim, two_clients):
        server, _nodes, clients = two_clients
        events = []

        def flood(sim, client):
            for i in range(16):
                done = Event(sim)
                events.append(done)
                client.queue.submit_bio(
                    Bio(op=WRITE, sector=i * 8, nsectors=8, done=done)
                )
            client.queue.unplug()
            for _ in range(0):
                yield  # pragma: no cover
            return

        def waiter(sim):
            for c in clients:
                # submit both floods in one process context
                pass
            for i in range(16):
                done = Event(sim)
                events.append(done)
                clients[0].queue.submit_bio(
                    Bio(op=WRITE, sector=i * 8, nsectors=8, done=done)
                )
                done2 = Event(sim)
                events.append(done2)
                clients[1].queue.submit_bio(
                    Bio(op=WRITE, sector=i * 8, nsectors=8, done=done2)
                )
            clients[0].queue.unplug()
            clients[1].queue.unplug()
            for evt in events:
                yield evt

        p = sim.spawn(waiter(sim))
        sim.run(until=p)
        assert server.requests_served >= 2
        for c in clients:
            assert c.pool.allocated_bytes == 0

    def test_bad_area_base_rejected(self, sim, fabric):
        # Caught at construction: base + share exceeds the store.
        server = HPBDServer(sim, fabric, "m", store_bytes=MiB)
        node = Node(sim, fabric, "n", mem_bytes=16 * MiB)
        with pytest.raises(ValueError, match="too small"):
            HPBDClient(
                sim, node, [server], total_bytes=MiB, server_area_base=2 * MiB
            )

    def test_bad_area_base_rejected_at_server(self, sim, fabric):
        # The server-side guard still exists for raw (non-driver) users.
        server = HPBDServer(sim, fabric, "m", store_bytes=MiB)
        with pytest.raises(SimulationError, match="area base"):
            server.register_client(object(), area_base=4 * MiB)
