"""Seeded property-fuzz for the layout engines in ``hpbd/striping.py``.

Each case builds a random-but-valid layout from a seeded RNG and checks
the invariants every driver and the repair path rely on: ``split``
covers the requested extent exactly and in order, ``locate`` agrees
with single-byte splits, segments never cross chunk boundaries,
coalescing is maximal, ``absolute_offset`` inverts ``locate``, shares
account for every byte, overlap validation rejects corrupt maps, and
``remap_server`` preserves the layout modulo renaming.  Seeds are
fixed — a failure reproduces exactly.
"""

from __future__ import annotations

import random

import pytest

from repro.hpbd.striping import (
    BlockingDistribution,
    Chunk,
    ChunkMapDistribution,
    StripedDistribution,
    group_chunk_maps,
)
from repro.redundancy.policy import RedundancyPolicy, ShardGroup

PAGE = 4096
SEEDS = range(12)


def random_chunk_map(rng: random.Random):
    """A valid random chunk map: the device is cut at random page
    boundaries and each piece lands on a random server, packed
    bottom-up in that server's store."""
    nservers = rng.randint(1, 8)
    npieces = rng.randint(1, 12)
    pieces = [rng.randint(1, 16) * PAGE for _ in range(npieces)]
    total = sum(pieces)
    cursor = dict.fromkeys(range(nservers), 0)
    chunks = []
    pos = 0
    for nbytes in pieces:
        server = rng.randrange(nservers)
        chunks.append(Chunk(pos, nbytes, server, cursor[server]))
        cursor[server] += nbytes
        pos += nbytes
    return ChunkMapDistribution(total, nservers, chunks), chunks


def check_split_properties(dist, rng: random.Random, cases: int = 50):
    total = dist.total_bytes
    for _ in range(cases):
        nbytes = rng.randint(1, total)
        offset = rng.randint(0, total - nbytes)
        segs = dist.split(offset, nbytes)
        # exact coverage, in device order
        assert sum(s.nbytes for s in segs) == nbytes
        pos = offset
        for s in segs:
            server, soff = dist.locate(pos)
            assert (server, soff) == (s.server, s.server_offset)
            # the whole segment stays contiguous on that server's store
            server2, soff2 = dist.locate(pos + s.nbytes - 1)
            assert (server2, soff2) == (s.server, s.server_offset + s.nbytes - 1)
            pos += s.nbytes
        assert pos == offset + nbytes
        # store extents of one request never overlap
        spans = sorted(
            (s.server, s.server_offset, s.nbytes) for s in segs
        )
        for (sv1, o1, n1), (sv2, o2, _n2) in zip(spans, spans[1:]):
            if sv1 == sv2:
                assert o1 + n1 <= o2


@pytest.mark.parametrize("seed", SEEDS)
def test_chunk_map_fuzz(seed):
    rng = random.Random(seed)
    dist, chunks = random_chunk_map(rng)
    check_split_properties(dist, rng)
    # every byte is accounted to exactly one server share
    assert sum(dist.share_of(s) for s in range(dist.nservers)) == dist.total_bytes
    # coalescing is maximal: adjacent segments are never contiguous
    for _ in range(20):
        nbytes = rng.randint(1, dist.total_bytes)
        offset = rng.randint(0, dist.total_bytes - nbytes)
        segs = dist.split(offset, nbytes)
        for a, b in zip(segs, segs[1:]):
            assert not (
                a.server == b.server
                and a.server_offset + a.nbytes == b.server_offset
            )
    # absolute_offset inverts locate for every split segment
    for _ in range(20):
        nbytes = rng.randint(1, dist.total_bytes)
        offset = rng.randint(0, dist.total_bytes - nbytes)
        pos = offset
        for s in dist.split(offset, nbytes):
            assert dist.absolute_offset(s) == pos
            pos += s.nbytes


@pytest.mark.parametrize("seed", SEEDS)
def test_chunk_map_remap_preserves_layout(seed):
    rng = random.Random(seed)
    dist, _chunks = random_chunk_map(rng)
    used = dist.servers_used
    if len(used) == dist.nservers:
        return  # no spare to remap onto
    old = rng.choice(used)
    spare = next(s for s in range(dist.nservers) if s not in used)
    before = [dist.locate(o) for o in range(0, dist.total_bytes, PAGE)]
    dist.remap_server(old, spare)
    after = [dist.locate(o) for o in range(0, dist.total_bytes, PAGE)]
    for (s1, o1), (s2, o2) in zip(before, after):
        assert o2 == o1
        assert s2 == (spare if s1 == old else s1)
    assert dist.share_of(old) == 0 and dist.parity_share_of(old) == 0


@pytest.mark.parametrize("seed", SEEDS)
def test_chunk_map_rejects_corruption(seed):
    rng = random.Random(seed)
    _dist, chunks = random_chunk_map(rng)
    total = chunks[-1].end
    nservers = max(c.server for c in chunks) + 1
    # a gap (or, for single-chunk maps, wrong total) must be rejected
    bad = list(chunks)
    bad[-1] = Chunk(
        bad[-1].start + PAGE, bad[-1].nbytes, bad[-1].server,
        bad[-1].server_offset,
    )
    with pytest.raises(ValueError):
        ChunkMapDistribution(total + PAGE, nservers, bad)
    # an overlapping store extent must be rejected: double-book the
    # first chunk's store bytes as a parity chunk on the same server
    first = chunks[0]
    with pytest.raises(ValueError):
        ChunkMapDistribution(
            total, nservers, chunks,
            parity_chunks=[
                Chunk(0, first.nbytes, first.server, first.server_offset)
            ],
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_blocking_and_striped_fuzz(seed):
    rng = random.Random(seed)
    nservers = rng.randint(1, 8)
    chunk = rng.randint(1, 32) * PAGE
    total = nservers * chunk
    check_split_properties(BlockingDistribution(total, nservers), rng)
    stripe = rng.choice([PAGE, 2 * PAGE, 4 * PAGE])
    rows = rng.randint(1, 8)
    striped = StripedDistribution(nservers * stripe * rows, nservers, stripe)
    check_split_properties(striped, rng)


@pytest.mark.parametrize("seed", SEEDS)
def test_group_chunk_maps_fuzz(seed):
    """rs/nway layouts from ``group_chunk_maps`` always validate and
    account shares exactly."""
    rng = random.Random(seed)
    if rng.random() < 0.5:
        k = rng.randint(2, 6)
        m = rng.randint(1, 3)
        pol = RedundancyPolicy("rs", k=k, m=m)
        width = k + m
    else:
        r = rng.randint(2, 4)
        pol = RedundancyPolicy("nway", k=1, m=r - 1)
        width = rng.randint(r, r + 4)
    share = rng.randint(1, 8) * PAGE
    members = rng.sample(range(width + 4), width)
    group = ShardGroup(policy=pol, servers=members, share_bytes=share)
    total = share * (pol.k if pol.kind == "rs" else width)
    data, parity = group_chunk_maps(group, total)
    dist = ChunkMapDistribution(total, width + 4, data, parity)
    assert sum(dist.share_of(s) for s in range(dist.nservers)) == total
    parity_total = sum(
        dist.parity_share_of(s) for s in range(dist.nservers)
    )
    if pol.kind == "rs":
        assert parity_total == pol.m * share
    else:
        assert parity_total == pol.m * total
    # every member stores exactly member_need_bytes
    for s in members:
        assert (
            dist.share_of(s) + dist.parity_share_of(s)
            == group.member_need_bytes()
        )
    check_split_properties(dist, rng, cases=20)
