"""The tracing/metrics subsystem: recorder semantics, exporter schema,
metrics sampling, and the near-zero disabled path."""

from __future__ import annotations

import io
import json

import pytest

from repro.disk import DiskDevice
from repro.kernel import Node
from repro.obs import (
    NULL_TRACE,
    MetricsHub,
    TraceRecorder,
    chrome_trace,
    chrome_trace_json,
    spans_from_csv,
    spans_to_csv,
    write_chrome_trace,
)
from repro.simulator import Simulator
from repro.units import MiB, PAGE_SIZE


def make_recorder(sim: Simulator) -> TraceRecorder:
    return TraceRecorder(clock=lambda: sim.now)


class TestRecorder:
    def test_complete_span(self, sim):
        rec = make_recorder(sim)
        rec.complete("vm", "as0", "fault", "vm.fault", 10.0, 35.0, page=7)
        (span,) = rec.spans
        assert span.start == 10.0
        assert span.dur == 25.0
        assert span.end == 35.0
        assert span.args == {"page": 7}
        assert len(rec) == 1

    def test_open_end_span_uses_clock(self, sim, runner):
        rec = make_recorder(sim)

        def proc(sim):
            handle = rec.span("blk", "q", "wait", "blk.queue", op="read")
            yield sim.timeout(42.0)
            handle.end(nbytes=4096)

        runner(proc(sim))
        (span,) = rec.spans
        assert span.dur == 42.0
        assert span.args == {"op": "read", "nbytes": 4096}

    def test_context_manager_across_yields(self, sim, runner):
        rec = make_recorder(sim)

        def proc(sim):
            with rec.span("net", "p0", "xfer", "wire"):
                yield sim.timeout(5.0)
                yield sim.timeout(5.0)

        runner(proc(sim))
        assert rec.spans[0].dur == 10.0

    def test_stage_usec_aggregates_by_cat(self, sim):
        rec = make_recorder(sim)
        rec.complete("a", "t", "x", "wire", 0.0, 3.0)
        rec.complete("b", "t", "y", "wire", 1.0, 5.0)
        rec.complete("a", "t", "z", "reg", 0.0, 2.0)
        assert rec.stage_usec() == {"wire": 7.0, "reg": 2.0}

    def test_instants_and_counters(self, sim):
        rec = make_recorder(sim)
        rec.instant("vm", "as0", "oom", level=3)
        rec.counter("node", "vmstat", free=100.0, used=28.0)
        assert rec.instants[0][2] == "oom"
        assert rec.counters[0][3] == {"free": 100.0, "used": 28.0}


class TestNullTrace:
    def test_disabled_and_inert(self, sim):
        assert not NULL_TRACE.enabled
        NULL_TRACE.complete("a", "t", "x", "wire", 0.0, 1.0)
        NULL_TRACE.counter("a", "c", v=1.0)
        NULL_TRACE.instant("a", "t", "i")
        with NULL_TRACE.span("a", "t", "x", "wire") as h:
            h.set(op="read")
        assert len(NULL_TRACE) == 0
        assert NULL_TRACE.spans == []
        assert NULL_TRACE.stage_usec() == {}

    def test_simulator_defaults_to_null(self):
        sim = Simulator()
        assert sim.trace is NULL_TRACE
        assert not sim.trace.enabled

    def test_enable_tracing_idempotent(self):
        sim = Simulator()
        rec = sim.enable_tracing()
        assert rec.enabled
        assert sim.trace is rec
        assert sim.enable_tracing() is rec


class TestChromeExport:
    def _recorded(self, sim) -> TraceRecorder:
        rec = make_recorder(sim)
        rec.complete(
            "hpbd0", "sender", "copy_in", "hpbd.copy", 2.0, 9.0,
            req_id=5, op="write", nbytes=131072,
        )
        rec.complete("fabric", "compute", "rdma_read", "wire", 9.0, 150.0)
        rec.instant("vm", "as0", "oom")
        rec.counter("compute", "vmstat.pages", pswpin=3.0)
        return rec

    def test_schema(self, sim):
        doc = chrome_trace(self._recorded(sim))
        events = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        # every event carries the Chrome trace-event required keys
        for evt in events:
            assert evt["ph"] in ("M", "X", "i", "C")
            assert isinstance(evt["pid"], int)
            assert isinstance(evt["tid"], int)
            if evt["ph"] != "M":
                assert isinstance(evt["ts"], float)
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 2
        assert xs[0]["ts"] == 2.0 and xs[0]["dur"] == 7.0
        assert xs[0]["args"]["req_id"] == 5
        assert [e["ph"] for e in events if e["ph"] == "i"] == ["i"]
        assert [e["ph"] for e in events if e["ph"] == "C"] == ["C"]

    def test_process_thread_metadata(self, sim):
        events = chrome_trace(self._recorded(sim))["traceEvents"]
        procs = {
            e["args"]["name"]: e["pid"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        threads = {
            (e["pid"], e["args"]["name"])
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert set(procs) == {"hpbd0", "fabric", "vm", "compute"}
        # distinct components get distinct pids
        assert len(set(procs.values())) == len(procs)
        assert (procs["hpbd0"], "sender") in threads
        # every X event's pid/tid resolves to declared metadata
        for evt in events:
            if evt["ph"] == "X":
                assert evt["pid"] in procs.values()

    def test_json_round_trip_and_file(self, sim, tmp_path):
        rec = self._recorded(sim)
        doc = json.loads(chrome_trace_json(rec))
        assert doc == chrome_trace(rec)
        path = tmp_path / "trace.json"
        write_chrome_trace(rec, str(path))
        assert json.loads(path.read_text()) == doc
        buf = io.StringIO()
        write_chrome_trace(rec, buf)
        assert json.loads(buf.getvalue()) == doc

    def test_csv(self, sim):
        text = spans_to_csv(self._recorded(sim))
        lines = text.strip().splitlines()
        assert lines[0] == (
            "start_usec,dur_usec,component,track,cat,name,"
            "req_id,op,sector,nbytes,args"
        )
        assert len(lines) == 3  # header + 2 spans
        assert lines[1].split(",")[6] == "5"  # req_id carried through


class TestCSVRoundTrip:
    def _roundtrip(self, rec: TraceRecorder) -> list:
        parsed = spans_from_csv(spans_to_csv(rec))
        assert len(parsed) == len(rec.spans)
        for got, want in zip(parsed, rec.spans):
            assert got.component == want.component
            assert got.track == want.track
            assert got.name == want.name
            assert got.cat == want.cat
            # timestamps survive at the export precision (1 ns)
            assert got.start == pytest.approx(want.start, abs=1e-3)
            assert got.dur == pytest.approx(want.dur, abs=1e-3)
        return parsed

    def test_promoted_columns_retyped(self, sim):
        rec = TraceRecorder(clock=lambda: sim.now)
        rec.complete(
            "hpbd0", "sender", "copy_in", "hpbd.copy", 2.0, 9.5,
            req_id=5, op="write", sector=128, nbytes=131072,
        )
        (span,) = self._roundtrip(rec)
        assert span.args == {
            "req_id": 5, "op": "write", "sector": 128, "nbytes": 131072,
        }

    def test_extra_args_escaping(self, sim):
        """Free-form args with commas, quotes and newlines survive."""
        rec = TraceRecorder(clock=lambda: sim.now)
        nasty = 'a,b "quoted"\nnewline'
        rec.complete(
            "mon", "monitors", "pool.leak", "invariant", 1.0, 1.0,
            req_id=9, message=nasty, allocated=4096,
        )
        (span,) = self._roundtrip(rec)
        assert span.args["message"] == nasty
        assert span.args["allocated"] == 4096
        assert span.args["req_id"] == 9

    def test_argless_span(self, sim):
        rec = TraceRecorder(clock=lambda: sim.now)
        rec.complete("fabric", "compute", "rdma_read", "wire", 0.0, 150.125)
        (span,) = self._roundtrip(rec)
        assert span.args is None

    def test_empty_recorder(self, sim):
        rec = TraceRecorder(clock=lambda: sim.now)
        assert spans_from_csv(spans_to_csv(rec)) == []

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError):
            spans_from_csv("not,a,span,csv\n1,2,3,4\n")

    def test_recorder_matches_traced_scenario(self, traced_fig07_hpbd):
        """Full-scenario round trip: every span of a real traced run."""
        rec = traced_fig07_hpbd.trace
        parsed = spans_from_csv(spans_to_csv(rec))
        assert len(parsed) == len(rec.spans)
        sample = parsed[len(parsed) // 2]
        want = rec.spans[len(parsed) // 2]
        assert (sample.cat, sample.name) == (want.cat, want.name)
        assert sample.args == want.args


class TestMetricsHub:
    def _swapping_node(self, sim, fabric):
        n = Node(sim, fabric, "n0", mem_bytes=8 * MiB)
        disk = DiskDevice(sim, swap_partition_bytes=32 * MiB, stats=n.stats)
        n.swapon(disk.queue, 32 * MiB)
        return n

    def test_samples_timeseries(self, sim, fabric, runner):
        n = self._swapping_node(sim, fabric)
        hub = MetricsHub(n, interval_usec=500.0)
        hub.start()
        aspace = n.vmm.create_address_space((16 * MiB) // PAGE_SIZE, "a")

        def app(sim):
            for start in range(0, aspace.npages, 64):
                yield from n.vmm.touch_run(
                    aspace, start, min(start + 64, aspace.npages), write=True
                )
            hub.stop()

        runner(app(sim))
        ts = hub.series("free_bytes")
        assert ts.count >= 2
        assert ts.times()[0] < ts.times()[-1]
        # the workload overcommits 2x, so free memory must have dipped
        assert ts.values().min() < n.frames.total_frames * PAGE_SIZE / 2

    def test_emits_trace_counters_when_tracing(self, sim, fabric, runner):
        rec = sim.enable_tracing()
        n = self._swapping_node(sim, fabric)
        hub = MetricsHub(n, interval_usec=500.0)
        hub.start()

        def app(sim):
            yield sim.timeout(2000.0)
            hub.stop()

        runner(app(sim))
        names = {name for (_c, name, _t, _v) in rec.counters}
        assert "vmstat.memory_bytes" in names
        assert "vmstat.pages" in names

    def test_start_stop_idempotent(self, sim, fabric, runner):
        n = self._swapping_node(sim, fabric)
        hub = MetricsHub(n, interval_usec=100.0)
        hub.start()
        hub.start()  # no second sampler process

        def app(sim):
            yield sim.timeout(250.0)
            hub.stop()
            hub.stop()
            yield sim.timeout(500.0)

        runner(app(sim))
        assert not hub.running
        # one sampler at 100 µs over 250 µs => exactly 3 samples
        assert hub.samples == 3

    def test_bad_interval_rejected(self, node):
        with pytest.raises(ValueError):
            MetricsHub(node, interval_usec=0.0)

    def test_watch_gauges_sampled(self, sim, fabric, runner):
        rec = sim.enable_tracing()
        n = self._swapping_node(sim, fabric)
        hub = MetricsHub(n, interval_usec=100.0)
        depth = {"value": 0.0}
        hub.watch("rq", lambda: {"in_flight": depth["value"]})
        hub.start()

        def app(sim):
            depth["value"] = 3.0
            yield sim.timeout(250.0)
            hub.stop()

        runner(app(sim))
        ts = n.stats.get("obs.util.rq.in_flight")
        assert ts is not None and ts.count == hub.samples
        assert ts.values().max() == 3.0
        assert any(name == "rq" for (_c, name, _t, _v) in rec.counters)

    def test_watch_duplicate_name_rejected(self, node):
        hub = MetricsHub(node)
        hub.watch("rq", lambda: {})
        with pytest.raises(ValueError):
            hub.watch("rq", lambda: {})

    def test_watch_empty_sample_skipped(self, sim, fabric, runner):
        n = self._swapping_node(sim, fabric)
        hub = MetricsHub(n, interval_usec=100.0)
        hub.watch("pool", lambda: {})
        hub.start()

        def app(sim):
            yield sim.timeout(150.0)
            hub.stop()

        runner(app(sim))
        assert n.stats.get("obs.util.pool.free_bytes") is None
