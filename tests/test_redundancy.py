"""The redundancy subsystem: policies, the GF(256) codec, degraded
reads, and background repair.

Three layers of coverage:

* unit — policy parsing/accounting and the real Reed-Solomon codec
  (the simulator only models its *cost*; here the math itself must
  round-trip);
* component — a standalone client + repair manager over wiped-and-
  restarted servers, checked at page-token granularity (the RamDisk
  write tokens are the data-integrity oracle: a rebuilt shard must
  carry exactly the tokens the lost one did, plus any writes that
  landed during the outage);
* acceptance — the cluster scenario the ISSUE gates on: an rs(4,2)
  tenant survives two staggered mid-run server crashes with zero
  invariant violations, degraded reads while members are down, repair
  traffic within 10% of lost x (k+m)/k, and 1.5x memory overhead
  against 2x for mirroring.
"""

from __future__ import annotations

import pytest

from repro.cluster import run_cluster_scenario
from repro.cluster.migration import ChunkMigrator
from repro.cluster.registry import FleetRegistry
from repro.config import ClusterScenarioConfig, FaultConfig, TenantSpec
from repro.experiments import cluster_redundancy_config, redundancy_points
from repro.faults import FaultPlan, ServerCrash
from repro.hpbd import HPBDClient, HPBDServer
from repro.kernel import Node
from repro.kernel.blockdev import Bio, READ, WRITE
from repro.net import Fabric
from repro.redundancy import RepairManager
from repro.redundancy.policy import (
    RedundancyPolicy,
    ShardGroup,
    parse_policy,
)
from repro.simulator import Event, Simulator
from repro.units import MiB, PAGE_SIZE
from repro.workloads import QuicksortWorkload


# -- policy units ----------------------------------------------------------


def test_parse_policy():
    assert parse_policy("none").kind == "none"
    p = parse_policy("nway(3)")
    assert (p.kind, p.m, p.width, p.overhead) == ("nway", 2, 3, 3.0)
    p = parse_policy("rs(4,2)")
    assert (p.kind, p.k, p.m, p.width) == ("rs", 4, 2, 6)
    assert p.overhead == 1.5
    assert p.fault_tolerance == 2
    assert parse_policy(p) is p


@pytest.mark.parametrize(
    "bad", ["", "nway", "nway(1)", "rs(1,1)", "rs(4,0)", "raid(5)"]
)
def test_parse_policy_rejects(bad):
    with pytest.raises(ValueError):
        parse_policy(bad)


def test_repair_traffic_model():
    rs = parse_policy("rs(4,2)")
    # aggregated partial-sum regeneration: (k+m)/k per lost byte
    assert rs.repair_traffic_bytes(4 * MiB) == 6 * MiB
    assert rs.repair_traffic_bytes(1) == 2  # ceil
    assert parse_policy("nway(2)").repair_traffic_bytes(4 * MiB) == 4 * MiB


def test_group_roles():
    g = ShardGroup(
        policy=parse_policy("rs(2,1)"), servers=[5, 3, 8],
        share_bytes=MiB,
    )
    assert g.data_servers == [5, 3]
    assert g.parity_servers == [8]
    assert g.shard_index(8) == 2
    assert g.member_need_bytes() == MiB


# -- the real codec --------------------------------------------------------


def test_rs_codec_roundtrip():
    np = pytest.importorskip("numpy")
    from repro.redundancy.gf256 import rs_encode, rs_matrix, rs_reconstruct

    rng = np.random.default_rng(7)
    for k, m in ((2, 1), (4, 2), (5, 3)):
        data = rng.integers(0, 256, size=(k, 2048), dtype=np.uint8)
        matrix = rs_matrix(k, m)
        parity = rs_encode(matrix, data)
        shards = [data[i] for i in range(k)] + [parity[j] for j in range(m)]
        # erase every m-subset's worth: drop the first m shards, then a
        # mixed data+parity set — any k survivors must recover all
        for dead in (list(range(m)), [0, k + m - 1][: m + 1][:m]):
            holed = [
                None if i in dead else shards[i] for i in range(k + m)
            ]
            out = rs_reconstruct(matrix, holed)
            for i in range(k + m):
                assert np.array_equal(out[i], shards[i]), (k, m, dead, i)


def test_rs_codec_needs_k_survivors():
    pytest.importorskip("numpy")
    from repro.redundancy.gf256 import rs_matrix, rs_reconstruct

    matrix = rs_matrix(2, 1)
    with pytest.raises(ValueError):
        rs_reconstruct(matrix, [None, None, None])


# -- standalone client + repair manager ------------------------------------


class Harness:
    """Four 16 MiB servers, an rs(2,1) group on [0, 1, 2], a repair
    manager scanning every 500 us; server 3 is the spare."""

    def __init__(self):
        self.sim = sim = Simulator()
        fabric = Fabric(sim)
        self.node = Node(sim, fabric, "client", mem_bytes=16 * MiB)
        self.servers = [
            HPBDServer(
                sim, fabric, f"mem{i}", store_bytes=16 * MiB,
                stats=self.node.stats,
            )
            for i in range(4)
        ]
        self.registry = FleetRegistry(
            sim, self.servers, capacity_bytes=16 * MiB,
            stats=self.node.stats,
        )
        for i in range(3):
            self.registry.reserve("t0", i, 8 * MiB)
        self.migrator = ChunkMigrator(
            sim, self.registry, stats=self.node.stats,
            throttle_mib_s=400.0,
        )
        self.group = ShardGroup(
            policy=RedundancyPolicy("rs", k=2, m=1),
            servers=[0, 1, 2], share_bytes=8 * MiB,
        )
        self.client = HPBDClient(
            sim, self.node, self.servers, total_bytes=16 * MiB,
            redundancy=self.group, request_timeout_usec=2000.0,
            tenant="t0",
        )
        self.repair = RepairManager(
            sim, self.registry, self.migrator, self.servers,
            interval_usec=500.0,
        )
        self.repair.watch("t0", self.client, self.group)
        sim.run(until=sim.spawn(self.client.connect()))
        self.repair.start()

    def io(self, op, sector, nsectors=8):
        done = Event(self.sim)

        def proc(sim):
            self.client.queue.submit_bio(
                Bio(op=op, sector=sector, nsectors=nsectors, done=done)
            )
            self.client.queue.unplug()
            yield done

        self.sim.run(until=self.sim.spawn(proc(self.sim)))

    def wait(self, usec):
        def proc(sim):
            yield sim.timeout(usec)

        self.sim.run(until=self.sim.spawn(proc(self.sim)))

    def counter(self, name):
        c = self.client.stats.get(name)
        return int(c.count) if c is not None else 0


@pytest.fixture
def harness():
    h = Harness()
    # fill the first 1024 rows of both data shards
    for s in range(0, 1024 * 8, 8):
        h.io(WRITE, s)
        h.io(WRITE, 2048 * 8 + s)
    return h


def test_degraded_read_and_inplace_rebuild(harness):
    h = harness
    snap = h.servers[0].ramdisk.peek(0, 8 * MiB)
    h.servers[0].crash(wipe=True)

    def restarter(sim):
        yield sim.timeout(5000.0)
        h.servers[0].restart()

    h.sim.spawn(restarter(h.sim))
    # the repair manager's edge scan dead-marks the member within one
    # interval — no request has to time out first
    h.wait(800.0)
    assert 0 in h.client._dead

    before = h.counter("hpbd0.degraded_reads")
    h.io(READ, 0)
    assert h.counter("hpbd0.degraded_reads") == before + 1
    assert h.counter("hpbd0.reconstructs") >= 1

    # a write during the outage lands parity-only (new row 1500)
    h.io(WRITE, 1500 * 8)
    tok, _ = h.servers[2].ramdisk.read(1500 * PAGE_SIZE, PAGE_SIZE)
    assert tok is not None

    # restart at t+5 ms, 12 MiB of repair at 400 MiB/s ~ 30 ms
    h.wait(50_000.0)
    assert h.repair.pending == 0
    assert h.counter("repair.rebuilds") == 1
    moved = h.client.stats.get("repair.bytes_moved").total
    assert moved == 12 * MiB  # 8 MiB lost x (k+m)/k = 1.5
    assert 0 not in h.client._dead

    # byte-exact: every pre-crash token restored, plus the outage write
    rebuilt = h.servers[0].ramdisk.peek(0, 8 * MiB)
    diffs = [
        i for i, (a, b) in enumerate(zip(snap, rebuilt)) if a != b
    ]
    assert diffs == [1500]
    assert rebuilt[1500] is not None

    # reads are whole again
    before = h.counter("hpbd0.degraded_reads")
    h.io(READ, 0)
    assert h.counter("hpbd0.degraded_reads") == before


def test_spare_rebuild_replaces_member(harness):
    h = harness
    snap2 = h.servers[2].ramdisk.peek(0, 8 * MiB)
    h.repair.spare_after_usec = 1000.0
    h.servers[2].crash(wipe=True)  # parity member, stays down
    h.wait(50_000.0)
    assert h.repair.pending == 0
    assert h.counter("repair.spare_rebuilds") == 1
    assert h.group.servers == [0, 1, 3]

    # the spare carries the exact parity content the dead member held
    base = h.client.server_area_bases[3]
    rebuilt = h.servers[3].ramdisk.peek(base, 8 * MiB)
    assert sum(1 for a, b in zip(snap2, rebuilt) if a != b) == 0

    # new writes land their parity on the spare
    before = h.servers[3].ramdisk.pages_stored
    h.io(WRITE, 1030 * 8)
    assert h.servers[3].ramdisk.pages_stored == before + 1


# -- cluster acceptance ----------------------------------------------------


def run_config(cfg):
    return run_cluster_scenario(cfg)


def test_rs42_survives_two_crashes():
    """The headline gate: rs(4,2) absorbs two staggered crashes with
    zero data loss at 1.5x overhead (mirroring pays 2x)."""
    cfg = cluster_redundancy_config(
        redundancy="rs(4,2)",
        crashes=((120_000.0, 2), (200_000.0, 3)),
    )
    result = run_config(cfg)
    assert result.invariant_violations == []
    red = result.redundancy
    assert red["policies"] == {"t0": "rs(4,2)"}
    assert red["overhead"] <= 1.55
    # degraded reads served while members were down
    assert red["degraded_reads"] > 0
    assert red["reconstructs"] == red["degraded_reads"]
    rep = red["repair"]
    assert rep["rebuilds"] == 2
    assert rep["pending"] == 0
    assert rep["lost_bytes"] == 2 * cfg.tenants[0].swap_bytes // 4
    expect = parse_policy("rs(4,2)").repair_traffic_bytes(rep["lost_bytes"])
    assert abs(rep["bytes_moved"] - expect) <= 0.10 * expect
    # the workload itself completed and verified its data
    assert all(not t.disk_fallback for t in result.tenants)


def test_nway_crash_fails_over_and_recopies():
    cfg = cluster_redundancy_config(
        redundancy="nway(2)", crashes=((90_000.0, 2),)
    )
    result = run_config(cfg)
    assert result.invariant_violations == []
    red = result.redundancy
    assert red["overhead"] == 2.0
    # nway's degraded path is ring failover, not reconstruction
    assert red["read_failovers"] > 0
    assert red["degraded_reads"] == 0
    rep = red["repair"]
    assert rep["rebuilds"] == 1
    assert rep["pending"] == 0
    assert rep["bytes_moved"] == rep["lost_bytes"]  # plain re-copy, 1x


def test_tight_throttle_contends():
    cfg = cluster_redundancy_config(
        redundancy="rs(2,1)",
        crashes=((140_000.0, 1),),
        throttle_mib_s=128.0,
    )
    result = run_config(cfg)
    assert result.invariant_violations == []
    rep = result.redundancy["repair"]
    assert rep["rebuilds"] == 1
    assert rep["pending"] == 0
    assert rep["throttle_waits"] > 0


def test_redundancy_replay_deterministic():
    cfg_a = cluster_redundancy_config()
    cfg_b = cluster_redundancy_config()
    a = run_config(cfg_a).fairness_report()
    b = run_config(cfg_b).fairness_report()
    assert a == b


def test_redundancy_points_shape():
    points = redundancy_points()
    names = [p.name for p in points]
    assert "redundancy/none" in names
    assert "redundancy/rs42-crash2" in names
    for p in points:
        assert isinstance(p.cfg, ClusterScenarioConfig)


# -- config validation -----------------------------------------------------


def _tenant(redundancy="rs(2,1)", swap=8 * MiB):
    return TenantSpec(
        name="t0",
        workload=QuicksortWorkload(nelems=1024, seed=7),
        mem_bytes=2 * MiB,
        swap_bytes=swap,
        redundancy=redundancy,
    )


def test_config_rejects_redundancy_plus_mirror():
    with pytest.raises(ValueError, match="exclusive"):
        ClusterScenarioConfig(
            tenants=[_tenant()], nservers=4, mirror=True,
            mem_reserved_bytes=MiB,
        )


def test_config_rejects_degraded_mode():
    with pytest.raises(ValueError, match="degraded"):
        ClusterScenarioConfig(
            tenants=[_tenant()], nservers=4,
            faults=FaultConfig(degraded_mode="remap"),
            mem_reserved_bytes=MiB,
        )


def test_config_rejects_narrow_fleet():
    with pytest.raises(ValueError, match="needs"):
        ClusterScenarioConfig(
            tenants=[_tenant("rs(4,2)")], nservers=4,
            mem_reserved_bytes=MiB,
        )


def test_config_rejects_unstripeable_swap():
    with pytest.raises(ValueError, match="ring"):
        ClusterScenarioConfig(
            tenants=[_tenant("nway(2)", swap=7 * MiB)], nservers=6,
            mem_reserved_bytes=MiB,
        )


def test_crash_needs_fault_plan_inside_tolerance():
    # the experiments helper never schedules more than m concurrent
    # outages; a plan beyond tolerance is a scenario bug, and the
    # invariant monitors plus SimulationError would surface it
    plan = FaultPlan(events=(
        ServerCrash(at=1000.0, server=0, down_for=5000.0),
    ))
    cfg = ClusterScenarioConfig(
        tenants=[_tenant()], nservers=4,
        faults=FaultConfig(plan=plan),
        mem_reserved_bytes=MiB,
    )
    assert cfg.repair is True  # repair defaults on for redundant tenants
