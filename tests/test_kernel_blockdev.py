"""Unit tests for bios, request merging, plugging and the elevator."""

from __future__ import annotations

import pytest

from repro.kernel import READ, WRITE, Bio, RequestQueue
from repro.simulator import Event, SimulationError
from repro.units import MAX_REQUEST_SECTORS, SECTORS_PER_PAGE


def make_queue(sim, **kw):
    kw.setdefault("capacity_sectors", 1 << 20)
    return RequestQueue(sim, "rq", **kw)


def bio(sim, op, sector, nsectors=SECTORS_PER_PAGE):
    return Bio(op=op, sector=sector, nsectors=nsectors, done=Event(sim))


class TestBio:
    def test_validation(self, sim):
        with pytest.raises(ValueError):
            bio(sim, "erase", 0)
        with pytest.raises(ValueError):
            Bio(op=READ, sector=-1, nsectors=8, done=Event(sim))
        with pytest.raises(ValueError):
            Bio(op=READ, sector=0, nsectors=0, done=Event(sim))

    def test_geometry(self, sim):
        b = bio(sim, READ, 8, 16)
        assert b.end_sector == 24
        assert b.nbytes == 8192


class TestMerging:
    def test_back_merge(self, sim):
        rq = make_queue(sim)
        rq.submit_bio(bio(sim, WRITE, 0))
        rq.submit_bio(bio(sim, WRITE, 8))
        rq.submit_bio(bio(sim, WRITE, 16))
        rq.unplug()
        req = rq.try_next_request()
        assert req.nsectors == 24
        assert len(req.bios) == 3
        assert rq.merge_count == 2

    def test_front_merge(self, sim):
        rq = make_queue(sim)
        rq.submit_bio(bio(sim, WRITE, 16))
        rq.submit_bio(bio(sim, WRITE, 8))
        rq.unplug()
        req = rq.try_next_request()
        assert req.sector == 8
        assert req.nsectors == 16

    def test_no_cross_direction_merge(self, sim):
        rq = make_queue(sim)
        rq.submit_bio(bio(sim, WRITE, 0))
        rq.submit_bio(bio(sim, READ, 8))
        rq.unplug()
        reqs = [rq.try_next_request(), rq.try_next_request()]
        assert sorted(r.op for r in reqs) == [READ, WRITE]

    def test_no_merge_with_gap(self, sim):
        rq = make_queue(sim)
        rq.submit_bio(bio(sim, WRITE, 0))
        rq.submit_bio(bio(sim, WRITE, 24))  # hole at 8..24
        rq.unplug()
        assert rq.try_next_request().nsectors == 8

    def test_128k_cap(self, sim):
        rq = make_queue(sim, unplug_threshold=10_000)
        for i in range(MAX_REQUEST_SECTORS // SECTORS_PER_PAGE + 5):
            rq.submit_bio(bio(sim, WRITE, i * SECTORS_PER_PAGE))
        rq.unplug()
        first = rq.try_next_request()
        assert first.nsectors == MAX_REQUEST_SECTORS
        second = rq.try_next_request()
        assert second is not None  # overflow went to a second request

    def test_beyond_capacity_rejected(self, sim):
        rq = make_queue(sim, capacity_sectors=16)
        with pytest.raises(SimulationError):
            rq.submit_bio(bio(sim, WRITE, 16))


class TestPlugging:
    def test_plug_timer_fires(self, sim):
        rq = make_queue(sim, plug_delay=50.0)
        rq.submit_bio(bio(sim, WRITE, 0))
        assert rq.try_next_request() is None  # still plugged
        sim.run(until=49.0)
        assert rq.try_next_request() is None
        sim.run(until=51.0)
        assert rq.try_next_request() is not None

    def test_unplug_threshold(self, sim):
        rq = make_queue(sim, unplug_threshold=3)
        rq.submit_bio(bio(sim, WRITE, 0))
        rq.submit_bio(bio(sim, WRITE, 100))
        assert rq.dispatch_depth == 0
        rq.submit_bio(bio(sim, WRITE, 200))  # third request: unplug
        assert rq.dispatch_depth == 3

    def test_explicit_unplug(self, sim):
        rq = make_queue(sim)
        rq.submit_bio(bio(sim, READ, 0))
        rq.unplug()
        assert rq.dispatch_depth == 1

    def test_merging_window_while_plugged(self, sim):
        # Bios arriving during the plug window coalesce; after unplug a
        # new bio starts a fresh request.
        rq = make_queue(sim)
        rq.submit_bio(bio(sim, WRITE, 0))
        rq.submit_bio(bio(sim, WRITE, 8))
        rq.unplug()
        rq.submit_bio(bio(sim, WRITE, 16))  # contiguous but too late
        rq.unplug()
        r1 = rq.try_next_request()
        r2 = rq.try_next_request()
        assert r1.nsectors == 16
        assert r2.nsectors == 8


class TestElevatorAndPriority:
    def test_reads_dispatch_before_writes(self, sim):
        rq = make_queue(sim)
        rq.submit_bio(bio(sim, WRITE, 0))
        rq.submit_bio(bio(sim, READ, 1000))
        rq.unplug()
        assert rq.try_next_request().op == READ

    def test_ascending_sector_order(self, sim):
        rq = make_queue(sim, unplug_threshold=100)
        for sector in (800, 80, 8000, 8):
            rq.submit_bio(bio(sim, WRITE, sector))
        rq.unplug()
        sectors = [rq.try_next_request().sector for _ in range(4)]
        assert sectors == [8, 80, 800, 8000]

    def test_cscan_wrap(self, sim):
        rq = make_queue(sim, unplug_threshold=100)
        rq.submit_bio(bio(sim, WRITE, 5000))
        rq.unplug()
        rq.try_next_request()  # head now at 5008
        for sector in (400, 6000):
            rq.submit_bio(bio(sim, WRITE, sector))
        rq.unplug()
        assert rq.try_next_request().sector == 6000  # ahead of head first
        assert rq.try_next_request().sector == 400

    def test_waiting_driver_woken_by_unplug(self, sim):
        rq = make_queue(sim, plug_delay=30.0)
        got = []

        def driver(sim):
            req = yield rq.next_request()
            got.append((req.sector, sim.now))

        p = sim.spawn(driver(sim))
        rq.submit_bio(bio(sim, WRITE, 8))
        sim.run(until=p)
        assert got == [(8, 30.0)]


class TestCompletion:
    def test_complete_fires_all_bios(self, sim):
        rq = make_queue(sim)
        bios = [bio(sim, WRITE, i * 8) for i in range(3)]
        for b in bios:
            rq.submit_bio(b)
        rq.unplug()
        req = rq.try_next_request()
        rq.complete(req)
        sim.run()
        assert all(b.done.processed for b in bios)

    def test_over_complete_detected(self, sim):
        rq = make_queue(sim)
        rq.submit_bio(bio(sim, WRITE, 0))
        rq.unplug()
        req = rq.try_next_request()
        rq.complete(req)
        with pytest.raises(SimulationError):
            rq.complete(req)

    def test_in_flight_accounting(self, sim):
        rq = make_queue(sim)
        rq.submit_bio(bio(sim, WRITE, 0))
        rq.unplug()
        assert rq.in_flight == 1
        rq.complete(rq.try_next_request())
        assert rq.in_flight == 0

    def test_request_trace_and_size_tallies(self, sim):
        rq = make_queue(sim)
        rq.submit_bio(bio(sim, WRITE, 0))
        rq.submit_bio(bio(sim, WRITE, 8))
        rq.submit_bio(bio(sim, READ, 100))
        rq.unplug()
        trace = rq.request_trace()
        assert len(trace) == 2
        assert {op for (_t, op, _n) in trace} == {READ, WRITE}
        assert rq.stats.get("rq.req_bytes.write").total == 8192
        assert rq.stats.get("rq.req_bytes.read").total == 4096
