"""Unit tests for the registration buffer pool (§4.2.2)."""

from __future__ import annotations

import pytest

from repro.hpbd import PoolError, RegisteredPool
from repro.units import KiB, MiB


@pytest.fixture
def pool(sim):
    return RegisteredPool(sim, size=MiB, base_addr=0x10000, rkey=7)


class TestFirstFit:
    def test_default_pool_is_1mib(self, sim):
        # §4.2.2: "initialized at device load time with a default pool
        # size of 1MB"
        assert RegisteredPool(sim).size == MiB

    def test_first_fit_takes_lowest_offset(self, sim, pool):
        a = pool.try_alloc(128 * KiB)
        assert a.offset == 0
        b = pool.try_alloc(4 * KiB)
        assert b.offset == 128 * KiB

    def test_first_fit_skips_small_holes(self, sim, pool):
        a = pool.try_alloc(4 * KiB)
        pool.try_alloc(128 * KiB)
        c = pool.try_alloc(4 * KiB)
        pool.free(a)  # 4K hole at 0
        d = pool.try_alloc(8 * KiB)  # does not fit the hole
        assert d.offset == c.end
        e = pool.try_alloc(4 * KiB)  # fits the hole exactly
        assert e.offset == 0

    def test_exhaustion_returns_none(self, sim, pool):
        assert pool.try_alloc(MiB) is not None
        assert pool.try_alloc(1) is None

    def test_oversized_rejected(self, sim, pool):
        with pytest.raises(PoolError):
            pool.try_alloc(MiB + 1)

    def test_zero_size_rejected(self, sim, pool):
        with pytest.raises(PoolError):
            pool.try_alloc(0)

    def test_buffer_addr(self, sim, pool):
        buf = pool.try_alloc(4 * KiB)
        assert pool.buffer_addr(buf) == 0x10000 + buf.offset


class TestMergeOnFree:
    def test_merge_with_previous(self, sim, pool):
        a = pool.try_alloc(4 * KiB)
        b = pool.try_alloc(4 * KiB)
        pool.try_alloc(4 * KiB)
        pool.free(a)
        pool.free(b)
        assert pool.fragments == 2  # [0,8K) + tail
        pool.check_invariants()

    def test_merge_with_next(self, sim, pool):
        a = pool.try_alloc(4 * KiB)
        b = pool.try_alloc(4 * KiB)
        c = pool.try_alloc(4 * KiB)
        pool.free(b)
        assert pool.fragments == 2  # b-hole + tail
        pool.free(c)  # merges with both the b-hole and the tail
        assert pool.fragments == 1
        pool.free(a)
        assert pool.fragments == 1
        assert pool.largest_free == MiB

    def test_merge_both_sides(self, sim, pool):
        a = pool.try_alloc(4 * KiB)
        b = pool.try_alloc(4 * KiB)
        c = pool.try_alloc(4 * KiB)
        pool.try_alloc(4 * KiB)  # d pins the tail
        pool.free(a)
        pool.free(c)
        assert pool.fragments == 3
        pool.free(b)  # bridges a-hole and c-hole
        assert pool.fragments == 2
        pool.check_invariants()

    def test_full_cycle_restores_whole_pool(self, sim, pool):
        bufs = [pool.try_alloc(64 * KiB) for _ in range(16)]
        for buf in bufs[::2] + bufs[1::2]:  # interleaved frees
            pool.free(buf)
        assert pool.fragments == 1
        assert pool.free_bytes == MiB

    def test_double_free_detected(self, sim, pool):
        a = pool.try_alloc(4 * KiB)
        pool.free(a)
        with pytest.raises(PoolError):
            pool.free(a)

    def test_foreign_buffer_detected(self, sim, pool):
        from repro.hpbd import PoolBuffer

        with pytest.raises(PoolError):
            pool.free(PoolBuffer(offset=12345, nbytes=10))

    def test_size_mismatch_detected(self, sim, pool):
        from repro.hpbd import PoolBuffer

        a = pool.try_alloc(4 * KiB)
        with pytest.raises(PoolError):
            pool.free(PoolBuffer(offset=a.offset, nbytes=8 * KiB))


class TestWaitQueue:
    def test_blocked_alloc_served_on_free(self, sim, pool):
        order = []

        def hog(sim):
            buf = yield from pool.alloc(MiB)
            yield sim.timeout(10)
            order.append("hog-free")
            pool.free(buf)

        def waiter(sim):
            buf = yield from pool.alloc(128 * KiB)
            order.append(f"waiter@{sim.now}")
            pool.free(buf)

        sim.spawn(hog(sim))
        p = sim.spawn(waiter(sim))
        sim.run(until=p)
        assert order == ["hog-free", "waiter@10.0"]
        assert pool.stall_count == 1

    def test_fifo_wakeups(self, sim, pool):
        got = []

        def hog(sim):
            buf = yield from pool.alloc(MiB)
            yield sim.timeout(10)
            pool.free(buf)

        def waiter(sim, name, size):
            buf = yield from pool.alloc(size)
            got.append(name)
            yield sim.timeout(1)
            pool.free(buf)

        sim.spawn(hog(sim))
        procs = [
            sim.spawn(waiter(sim, "first", 512 * KiB)),
            sim.spawn(waiter(sim, "second", 512 * KiB)),
            sim.spawn(waiter(sim, "third", 512 * KiB)),
        ]
        sim.run_all(procs)
        assert got == ["first", "second", "third"]

    def test_head_of_line_blocking_is_fifo(self, sim, pool):
        """A large queued request blocks later small ones (no barging) —
        the simple fairness the paper's wait queue gives."""
        got = []

        def hog(sim):
            buf = yield from pool.alloc(MiB)
            yield sim.timeout(10)
            pool.free(buf)  # frees everything at once

        def big(sim):
            buf = yield from pool.alloc(MiB)
            got.append("big")
            pool.free(buf)

        def small(sim):
            buf = yield from pool.alloc(4 * KiB)
            got.append("small")
            pool.free(buf)

        sim.spawn(hog(sim))

        def stagger(sim):
            yield sim.timeout(1)
            sim.spawn(big(sim))
            yield sim.timeout(1)
            sim.spawn(small(sim))

        sim.spawn(stagger(sim))
        sim.run()
        assert got == ["big", "small"]

    def test_stall_time_recorded(self, sim, pool):
        def hog(sim):
            buf = yield from pool.alloc(MiB)
            yield sim.timeout(25)
            pool.free(buf)

        def waiter(sim):
            buf = yield from pool.alloc(4 * KiB)
            pool.free(buf)

        sim.spawn(hog(sim))
        p = sim.spawn(waiter(sim))
        sim.run(until=p)
        stall = pool.stats.get("pool.alloc_stall_usec")
        assert stall.max == pytest.approx(25.0)


class TestInvariants:
    def test_ledger_balances_through_random_workload(self, sim, pool):
        import random

        rng = random.Random(7)
        live = []
        for _ in range(500):
            if live and (rng.random() < 0.45 or pool.free_bytes < 64 * KiB):
                pool.free(live.pop(rng.randrange(len(live))))
            else:
                buf = pool.try_alloc(rng.choice([4, 8, 32, 64, 128]) * KiB)
                if buf is not None:
                    live.append(buf)
            pool.check_invariants()
        for buf in live:
            pool.free(buf)
        assert pool.free_bytes == MiB
        assert pool.fragments == 1
