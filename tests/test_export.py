"""Tests for CSV export helpers."""

from __future__ import annotations

import csv
import io

import numpy as np
import pytest

from repro.analysis import (
    clusters_to_csv,
    results_to_csv,
    series_to_csv,
    trace_to_csv,
    write_csv,
)
from repro.experiments import fig01_latency


def parse(text: str) -> list[list[str]]:
    return list(csv.reader(io.StringIO(text)))


class TestSeriesCSV:
    def test_fig01_roundtrip(self):
        data = fig01_latency(max_bytes=16 * 1024)
        rows = parse(series_to_csv(data))
        assert rows[0][0] == "sizes"
        assert "rdma_write" in rows[0]
        assert len(rows) == len(data["sizes"]) + 1

    def test_missing_x_rejected(self):
        with pytest.raises(KeyError):
            series_to_csv({"y": np.array([1.0])})

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            series_to_csv(
                {"sizes": np.array([1, 2]), "y": np.array([1.0])}
            )


class TestResultsCSV:
    def test_scenario_rows(self):
        from tests.test_results_and_multiswap import make_result

        text = results_to_csv(
            [make_result("local", 1e6), make_result("hpbd", 2e6)]
        )
        rows = parse(text)
        assert rows[0][0] == "device"
        assert rows[1][0] == "local"
        assert rows[2][1] == "2.000000"


class TestClusterAndTraceCSV:
    def trace(self):
        return [
            (0.0, "write", 131072),
            (100.0, "write", 131072),
            (50_000.0, "write", 65536),
            (60_000.0, "read", 32768),
        ]

    def test_clusters(self):
        rows = parse(clusters_to_csv(self.trace()))
        assert rows[0] == ["cluster", "start_usec", "count", "mean_bytes"]
        assert len(rows) == 3  # two write clusters + header
        assert rows[1][2] == "2"

    def test_trace(self):
        rows = parse(trace_to_csv(self.trace()))
        assert len(rows) == 5
        assert rows[4][1] == "read"

    def test_write_csv_creates_dirs(self, tmp_path):
        path = write_csv(
            tmp_path / "deep" / "out.csv", ["a", "b"], [[1, 2], [3, 4]]
        )
        rows = parse(path.read_text())
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]


class TestChromeTraceCounters:
    def test_counter_track_roundtrip(self):
        """Counter samples survive the Chrome-trace encode: every
        recorded ``(component, name, t, series)`` sample comes back as
        a ``"C"`` event with the values intact, co-plotted series
        staying in one event's args."""
        import json

        from repro.obs import TraceRecorder, chrome_trace_json

        t = [0.0]
        rec = TraceRecorder(lambda: t[0])
        samples = [
            ("kernel", "vmstat", 100.0, {"pswpin": 3.0, "pswpout": 7.0}),
            ("kernel", "vmstat", 200.0, {"pswpin": 5.0, "pswpout": 9.0}),
            ("hpbd0", "queue_depth", 150.0, {"depth": 12.0}),
        ]
        for component, name, ts, values in samples:
            t[0] = ts
            rec.counter(component, name, **values)
        doc = json.loads(chrome_trace_json(rec))
        counters = [e for e in doc["traceEvents"] if e.get("ph") == "C"]
        assert [
            (c["name"], c["ts"], c["args"]) for c in counters
        ] == [(name, ts, values) for _comp, name, ts, values in samples]
        # each counter's pid maps back to its component name
        names = {
            e["pid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "process_name"
        }
        assert [names[c["pid"]] for c in counters] == [
            s[0] for s in samples
        ]


class TestWriteJsonReport:
    def test_non_finite_raises_cleanly(self, tmp_path):
        """NaN/Inf have no JSON encoding parsers agree on; the writer
        must refuse them with ``ValueError`` and leave neither a
        partial artifact nor a stray temp file behind."""
        from repro.analysis import write_json_report

        target = tmp_path / "report.json"
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                write_json_report(str(target), {"metric": bad})
            assert not target.exists()
            assert list(tmp_path.iterdir()) == []

    def test_finite_payload_roundtrips_deterministically(self, tmp_path):
        import json

        from repro.analysis import write_json_report

        target = tmp_path / "report.json"
        payload = {"b": 2.5, "a": [1, 2]}
        write_json_report(str(target), payload)
        first = target.read_bytes()
        write_json_report(str(target), dict(reversed(payload.items())))
        assert target.read_bytes() == first  # sorted keys -> stable bytes
        assert json.loads(first) == payload
