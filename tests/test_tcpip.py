"""Unit tests for the TCP/IP stack and stream sockets."""

from __future__ import annotations

import pytest

from repro.net import Fabric, GIGE_DEFAULT, IPOIB_DEFAULT
from repro.simulator import Simulator
from repro.tcpip import Listener, SocketError, TCPStack, connect_tcp


@pytest.fixture
def stacks(sim, fabric):
    c = TCPStack(sim, fabric, "client", GIGE_DEFAULT)
    s = TCPStack(sim, fabric, "server", GIGE_DEFAULT)
    return c, s


class TestConnectionSetup:
    def test_connect_accept(self, sim, stacks):
        c, s = stacks
        listener = Listener(s)

        def client(sim):
            conn = yield from connect_tcp(c, listener)
            return conn

        def server(sim):
            conn = yield listener.accept()
            return conn

        pc = sim.spawn(client(sim))
        ps = sim.spawn(server(sim))
        cc = sim.run(until=pc)
        sc = sim.run(until=ps)
        assert cc.peer is sc and sc.peer is cc
        assert sim.now >= 300.0  # handshake charged

    def test_multiple_clients_one_listener(self, sim, stacks):
        c, s = stacks
        listener = Listener(s)
        accepted = []

        def server(sim):
            for _ in range(2):
                conn = yield listener.accept()
                accepted.append(conn)

        def client(sim):
            yield from connect_tcp(c, listener)

        ps = sim.spawn(server(sim))
        sim.spawn(client(sim))
        sim.spawn(client(sim))
        sim.run(until=ps)
        assert len(accepted) == 2


class TestDataTransfer:
    def _connected(self, sim, stacks):
        c, s = stacks
        listener = Listener(s)
        holder = {}

        def client(sim):
            holder["c"] = yield from connect_tcp(c, listener)

        def server(sim):
            holder["s"] = yield listener.accept()

        sim.run(until=sim.spawn(client(sim)))
        sim.run(until=sim.spawn(server(sim)))
        return holder["c"], holder["s"]

    def test_message_roundtrip(self, sim, stacks):
        cc, sc = self._connected(sim, stacks)

        def client(sim):
            yield from cc.send(1000, payload="ping")
            reply = yield cc.recv()
            return reply.payload

        def server(sim):
            msg = yield sc.recv()
            assert msg.payload == "ping"
            assert msg.nbytes == 1000
            yield from sc.send(500, payload="pong")

        sim.spawn(server(sim))
        p = sim.spawn(client(sim))
        assert sim.run(until=p) == "pong"

    def test_ordering_preserved(self, sim, stacks):
        cc, sc = self._connected(sim, stacks)

        def client(sim):
            for i in range(5):
                yield from cc.send(100, payload=i)

        def server(sim):
            got = []
            for _ in range(5):
                msg = yield sc.recv()
                got.append(msg.payload)
            return got

        sim.spawn(client(sim))
        p = sim.spawn(server(sim))
        assert sim.run(until=p) == [0, 1, 2, 3, 4]

    def test_send_costs_scale_with_size(self, sim, stacks):
        cc, sc = self._connected(sim, stacks)

        def sender(sim, n):
            start = sim.now
            yield from cc.send(n)
            return sim.now - start

        small = sim.run(until=sim.spawn(sender(sim, 100)))
        large = sim.run(until=sim.spawn(sender(sim, 100_000)))
        assert large > small * 10

    def test_byte_accounting(self, sim, stacks):
        cc, sc = self._connected(sim, stacks)

        def client(sim):
            yield from cc.send(1234)

        def server(sim):
            yield sc.recv()

        sim.spawn(client(sim))
        p = sim.spawn(server(sim))
        sim.run(until=p)
        assert cc.bytes_sent == 1234
        assert sc.bytes_received == 1234

    def test_send_on_closed_rejected(self, sim, stacks):
        cc, _sc = self._connected(sim, stacks)
        cc.close()
        with pytest.raises(SocketError):
            next(iter(cc.send(10)))  # generator: force first step

    def test_double_close_rejected(self, sim, stacks):
        cc, _sc = self._connected(sim, stacks)
        cc.close()
        with pytest.raises(SocketError):
            cc.close()

    def test_negative_size_rejected(self, sim, stacks):
        cc, _sc = self._connected(sim, stacks)
        with pytest.raises(ValueError):
            next(iter(cc.send(-1)))

    def test_ipoib_faster_than_gige_large_messages(self, sim, fabric):
        """End-to-end: IPoIB beats GigE for 128 KiB messages (Fig. 1)."""

        def one_way(params):
            s2 = Simulator()
            f2 = Fabric(s2)
            a = TCPStack(s2, f2, "a", params)
            b = TCPStack(s2, f2, "b", params)
            listener = Listener(b)
            out = {}

            def client(s2):
                conn = yield from connect_tcp(a, listener)
                t0 = s2.now
                yield from conn.send(128 * 1024)
                out["send_done"] = s2.now - t0

            def server(s2):
                conn = yield listener.accept()
                t0 = s2.now
                yield conn.recv()
                out["recv_done"] = s2.now - t0

            s2.run(until=s2.spawn(client(s2)))
            s2.run(until=s2.spawn(server(s2)))
            return out["recv_done"]

        assert one_way(IPOIB_DEFAULT) < one_way(GIGE_DEFAULT)
