"""Unit tests for the analysis package: Amdahl, clustering, Table 1."""

from __future__ import annotations

import pytest

from repro.analysis import (
    TABLE1,
    cluster_requests,
    format_table,
    infer_network_fraction,
    render_table1,
    size_histogram,
)


class TestAmdahlInference:
    def test_recovers_known_fraction(self):
        """Construct synthetic times from a known network share and
        verify the paper's inference recovers it."""
        t_base = 5.8
        overhead_slow = 6.4  # GigE swap overhead
        f = 0.48  # network share of the slow transport
        speedup = 3.0  # the fast wire moves messages 3x faster
        overhead_fast = overhead_slow * (1 - f + f / speedup)
        got = infer_network_fraction(
            t_base + overhead_slow, t_base + overhead_fast, t_base, speedup
        )
        assert got == pytest.approx(f)

    def test_validation(self):
        with pytest.raises(ValueError):
            infer_network_fraction(10, 9, 5, wire_speedup=1.0)
        with pytest.raises(ValueError):
            infer_network_fraction(5, 6, 5, wire_speedup=2.0)  # no overhead
        with pytest.raises(ValueError):
            infer_network_fraction(8, 9, 5, wire_speedup=2.0)  # fast slower


class TestClustering:
    def trace(self):
        # two bursts of three requests, 10 ms apart
        out = []
        for burst_start in (0.0, 10_000.0):
            for i in range(3):
                out.append((burst_start + i * 100.0, "write", 128 * 1024))
        return out

    def test_two_clusters_found(self):
        clusters = cluster_requests(self.trace(), gap_usec=2_000.0)
        assert len(clusters) == 2
        assert all(c.count == 3 for c in clusters)
        assert all(c.mean_bytes == 128 * 1024 for c in clusters)

    def test_single_cluster_with_huge_gap(self):
        clusters = cluster_requests(self.trace(), gap_usec=1e9)
        assert len(clusters) == 1
        assert clusters[0].count == 6

    def test_op_filter(self):
        trace = self.trace() + [(5.0, "read", 4096)]
        reads = cluster_requests(trace, op="read")
        assert len(reads) == 1 and reads[0].count == 1

    def test_empty_trace(self):
        assert cluster_requests([]) == []

    def test_gap_validation(self):
        with pytest.raises(ValueError):
            cluster_requests([], gap_usec=0)

    def test_unsorted_input_handled(self):
        trace = list(reversed(self.trace()))
        clusters = cluster_requests(trace, gap_usec=2_000.0)
        assert len(clusters) == 2

    def test_size_histogram(self):
        h = size_histogram(self.trace())
        assert h == {128 * 1024: 6}


class TestTable1:
    def test_hpbd_row_matches_paper(self):
        hpbd = next(s for s in TABLE1 if s.name == "HPBD")
        assert not hpbd.simulation_based
        assert hpbd.global_management == "N"
        assert hpbd.kernel_level == "Y"
        assert hpbd.tcp_based == "N"
        assert hpbd.ulp_based == "Y"

    def test_all_ten_systems_present(self):
        assert len(TABLE1) == 10
        names = {s.name for s in TABLE1}
        assert {"COCA", "PNR", "JMNRM", "NRAM", "NRD", "RRMP", "MOSIX",
                "GMM", "DoDo", "HPBD"} == names

    def test_simulation_rows_have_na_fields(self):
        for s in TABLE1:
            if s.simulation_based:
                assert s.kernel_level == "N/A"
                assert s.tcp_based == "N/A"

    def test_render(self):
        text = render_table1()
        assert "HPBD" in text
        assert len(text.splitlines()) == 12  # header + rule + 10 rows


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xyz", 3.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])


class TestAmdahlReport:
    def test_report_from_scenario_runs(self):
        """amdahl_report on real (tiny) runs produces sane fractions."""
        from repro.analysis import amdahl_report
        from repro.experiments import fig05_testswap
        from repro.net import GIGE_DEFAULT, IB_DEFAULT, IPOIB_DEFAULT

        runs = {r.label: r for r in fig05_testswap(scale=32)}
        report = amdahl_report(
            runs["local"],
            runs["hpbd"],
            runs["nbd-ipoib"],
            runs["nbd-gige"],
            GIGE_DEFAULT,
            IPOIB_DEFAULT,
            lambda n: IB_DEFAULT.rdma_write_cost(n),
        )
        for _name, frac, _paper in report.rows():
            assert 0.0 < frac <= 1.0
        # the paper's HPBD bound
        assert report.hpbd_fraction < 0.35
        assert len(report.rows()) == 3
