"""Per-request critical-path reconstruction and blame attribution."""

from __future__ import annotations

import pytest

from repro.analysis.critpath import (
    BLAME_CLASSES,
    QUEUEING_CLASSES,
    REQUEST_PATH_CATS,
    aggregate_blame,
    blame_split,
    format_critpath,
    orphan_spans,
    request_paths,
    slowest,
)
from repro.obs import TraceRecorder


def make_recorder() -> TraceRecorder:
    return TraceRecorder(clock=lambda: 0.0)


def one_request(rec: TraceRecorder, rid: int = 1) -> None:
    """A hand-built HPBD-ish request: queue 0-10, service 10-100."""
    rec.complete("rq", "queue", "queue_wait", "blk.queue", 0.0, 10.0,
                 req_id=rid, op="write", sector=64, nbytes=131072)
    rec.complete("rq", "inflight", "service", "blk.service", 10.0, 100.0,
                 req_id=rid, op="write", sector=64, nbytes=131072)
    rec.complete("hpbd0", "driver", "copy_in", "hpbd.copy", 10.0, 30.0,
                 req_id=rid)
    # umbrella covering the transfer: must NOT absorb the wire time
    rec.complete("mem0", "handler", "handle", "srv.handle", 30.0, 90.0,
                 req_id=rid)
    rec.complete("fabric", "compute", "rdma_read", "wire", 40.0, 80.0,
                 req_id=rid)


class TestPartition:
    def test_blame_partitions_window_exactly(self):
        rec = make_recorder()
        one_request(rec)
        (path,) = request_paths(rec)
        assert path.e2e == 100.0
        assert sum(path.blame.values()) == pytest.approx(path.e2e)

    def test_precedence_most_specific_wins(self):
        """wire (40-80) nested in srv.handle (30-90): the overlap is
        charged to wire; only the uncovered srv.handle flanks remain."""
        rec = make_recorder()
        one_request(rec)
        (path,) = request_paths(rec)
        assert path.blame["wire"] == pytest.approx(40.0)
        assert path.blame["server"] == pytest.approx(20.0)  # 30-40 + 80-90
        assert path.blame["copy"] == pytest.approx(20.0)
        assert path.blame["queue"] == pytest.approx(10.0)
        assert path.blame["other"] == pytest.approx(10.0)  # 90-100 gap

    def test_uncovered_window_is_other(self):
        rec = make_recorder()
        rec.complete("rq", "q", "w", "blk.queue", 0.0, 5.0, req_id=1)
        rec.complete("rq", "i", "s", "blk.service", 5.0, 50.0, req_id=1)
        (path,) = request_paths(rec)
        # blk.service is an umbrella, not a blame source
        assert path.blame["other"] == pytest.approx(45.0)
        assert path.blame["queue"] == pytest.approx(5.0)

    def test_spans_clipped_to_window(self):
        """A span leaking past the service end must not inflate blame."""
        rec = make_recorder()
        rec.complete("rq", "q", "w", "blk.queue", 0.0, 10.0, req_id=1)
        rec.complete("rq", "i", "s", "blk.service", 10.0, 40.0, req_id=1)
        rec.complete("fabric", "c", "x", "wire", 30.0, 70.0, req_id=1)
        (path,) = request_paths(rec)
        assert path.blame["wire"] == pytest.approx(10.0)  # 30-40 only
        assert sum(path.blame.values()) == pytest.approx(path.e2e)

    def test_incomplete_requests_skipped(self):
        rec = make_recorder()
        rec.complete("rq", "q", "w", "blk.queue", 0.0, 10.0, req_id=1)
        # no blk.service span — still in flight when recording stopped
        assert request_paths(rec) == []

    def test_geometry_from_queue_span(self):
        rec = make_recorder()
        one_request(rec, rid=7)
        (path,) = request_paths(rec)
        assert (path.req_id, path.op, path.sector) == (7, "write", 64)
        assert path.nbytes == 131072
        assert path.queue_wait == pytest.approx(10.0)
        assert path.service == pytest.approx(90.0)


class TestAggregation:
    def test_aggregate_and_split(self):
        rec = make_recorder()
        one_request(rec, rid=1)
        one_request(rec, rid=2)
        agg = aggregate_blame(request_paths(rec))
        assert agg["wire"] == pytest.approx(80.0)
        assert sum(agg.values()) == pytest.approx(200.0)
        split = blame_split(agg)
        assert split["wire_frac"] == pytest.approx(0.4)
        assert split["queueing_frac"] == pytest.approx(0.1)  # queue only

    def test_split_of_empty_blame(self):
        assert blame_split({}) == {"queueing_frac": 0.0, "wire_frac": 0.0}

    def test_queueing_classes_are_blame_classes(self):
        assert set(QUEUEING_CLASSES) <= set(BLAME_CLASSES)

    def test_slowest_ordering(self):
        rec = make_recorder()
        one_request(rec, rid=1)
        rec.complete("rq", "q", "w", "blk.queue", 0.0, 10.0, req_id=2)
        rec.complete("rq", "i", "s", "blk.service", 10.0, 500.0, req_id=2)
        top = slowest(request_paths(rec), 1)
        assert [p.req_id for p in top] == [2]

    def test_format_report(self):
        rec = make_recorder()
        one_request(rec)
        text = format_critpath(request_paths(rec), top=5)
        assert "aggregate blame" in text
        assert "wire" in text and "queueing" in text
        assert format_critpath([]) == "no completed block requests in trace\n"


class TestOrphans:
    def test_orphan_detection(self):
        rec = make_recorder()
        rec.complete("fabric", "c", "x", "wire", 0.0, 5.0)  # no req_id
        rec.complete("fabric", "c", "x", "wire", 0.0, 5.0, req_id=1)
        rec.complete("hca", "mr", "register", "reg.setup", 0.0, 5.0)  # exempt
        assert len(orphan_spans(rec)) == 1

    def test_request_path_cats_cover_blame_sources(self):
        from repro.analysis.critpath import _BLAME_PRECEDENCE

        for _label, cats in _BLAME_PRECEDENCE:
            assert cats <= REQUEST_PATH_CATS


class TestTracedFig07Acceptance:
    """The ISSUE acceptance criteria, on the real fig07 HPBD scenario."""

    def test_blame_sums_to_e2e_per_request(self, traced_fig07_hpbd):
        paths = request_paths(traced_fig07_hpbd.trace)
        assert len(paths) > 100
        for path in paths:
            assert sum(path.blame.values()) == pytest.approx(
                path.e2e, rel=1e-9, abs=1e-6
            )

    def test_zero_orphan_spans(self, traced_fig07_hpbd):
        assert orphan_spans(traced_fig07_hpbd.trace) == []

    def test_wire_share_agrees_with_breakdown(self, traced_fig07_hpbd):
        """Aggregate wire blame vs the §6.2 stage total, within 5 %.

        (The stage total sums every wire span; blame counts covered
        wall-clock inside request windows — they differ only where wire
        transfers overlap each other or leak outside a window.)"""
        from repro.analysis.breakdown import stage_totals

        agg = aggregate_blame(request_paths(traced_fig07_hpbd.trace))
        wire_stage = stage_totals(traced_fig07_hpbd)["wire"]
        assert agg["wire"] > 0
        assert agg["wire"] == pytest.approx(wire_stage, rel=0.05)

    def test_result_carries_blame(self, traced_fig07_hpbd, local_base_fig07):
        blame = traced_fig07_hpbd.blame_usec
        assert blame and blame["wire"] > 0
        agg = aggregate_blame(request_paths(traced_fig07_hpbd.trace))
        assert blame == agg
        assert local_base_fig07.blame_usec == {}

    def test_utilization_timelines_sampled(self, traced_fig07_hpbd):
        reg = traced_fig07_hpbd.registry
        for name in (
            "obs.util.cpus.busy",
            "obs.util.rq.in_flight",
            "obs.util.credits.tokens",
        ):
            ts = reg.get(name)
            assert ts is not None and ts.count > 10, name


class TestTracedNBD:
    """A second transport exercises the TCP-side spans (tcp.host)."""

    @pytest.fixture(scope="class")
    def traced_nbd(self):
        from repro.config import NBD
        from repro.experiments import _scenario
        from repro.runner import run_scenario
        from repro.units import GiB, MiB
        from repro.workloads import TestswapWorkload

        scale = 128
        wl = TestswapWorkload(size_bytes=GiB // scale)
        cfg = _scenario([wl], NBD("gige"), scale, 512 * MiB, GiB)
        return run_scenario(cfg, trace=True)

    def test_clean_and_partitioned(self, traced_nbd):
        paths = request_paths(traced_nbd.trace)
        assert paths
        assert orphan_spans(traced_nbd.trace) == []
        assert traced_nbd.invariant_violations == []
        for path in paths:
            assert sum(path.blame.values()) == pytest.approx(
                path.e2e, rel=1e-9, abs=1e-6
            )

    def test_tcp_host_time_attributed(self, traced_nbd):
        agg = aggregate_blame(request_paths(traced_nbd.trace))
        assert agg["host"] > 0  # tx/rx TCP stack CPU
        assert agg["wire"] > 0
