"""Unit tests for all_of / any_of composite events."""

from __future__ import annotations

import pytest

from repro.simulator import Simulator, all_of, any_of


class TestAllOf:
    def test_collects_values_in_order(self, sim):
        def child(sim, d):
            yield sim.timeout(d)
            return d

        procs = [sim.spawn(child(sim, d)) for d in (3.0, 1.0, 2.0)]

        def parent(sim):
            values = yield all_of(sim, procs)
            return (values, sim.now)

        p = sim.spawn(parent(sim))
        assert sim.run(until=p) == ([3.0, 1.0, 2.0], 3.0)

    def test_empty_succeeds_immediately(self, sim, runner):
        def parent(sim):
            values = yield all_of(sim, [])
            return values

        assert runner(parent(sim)) == []

    def test_failure_propagates(self, sim):
        def good(sim):
            yield sim.timeout(1)

        def bad(sim):
            yield sim.timeout(2)
            raise ValueError("child failed")

        sim2 = Simulator(strict=False)
        procs = [sim2.spawn(good(sim2)), sim2.spawn(bad(sim2))]

        def parent(sim2):
            try:
                yield all_of(sim2, procs)
            except ValueError:
                return "caught"
            return "missed"

        p = sim2.spawn(parent(sim2))
        assert sim2.run(until=p) == "caught"

    def test_already_processed_inputs(self, sim):
        def child(sim):
            yield sim.timeout(1)
            return "x"

        c = sim.spawn(child(sim))

        def parent(sim):
            yield sim.timeout(10)
            values = yield all_of(sim, [c])
            return values

        p = sim.spawn(parent(sim))
        assert sim.run(until=p) == ["x"]


class TestAnyOf:
    def test_first_wins(self, sim):
        def child(sim, d):
            yield sim.timeout(d)
            return d

        procs = [sim.spawn(child(sim, d)) for d in (5.0, 2.0, 9.0)]

        def parent(sim):
            idx, value = yield any_of(sim, procs)
            return (idx, value, sim.now)

        p = sim.spawn(parent(sim))
        assert sim.run(until=p) == (1, 2.0, 2.0)

    def test_empty_rejected(self, sim):
        with pytest.raises(ValueError):
            any_of(sim, [])

    def test_already_processed_wins_instantly(self, sim):
        def child(sim):
            yield sim.timeout(1)
            return "fast"

        c = sim.spawn(child(sim))

        def parent(sim):
            yield sim.timeout(5)
            idx, value = yield any_of(sim, [c, sim.event()])
            return (idx, value)

        p = sim.spawn(parent(sim))
        assert sim.run(until=p) == (0, "fast")

    def test_losers_unaffected(self, sim):
        evt_slow = sim.event()

        def parent(sim):
            fast = sim.timeout(1, value="f")
            result = yield any_of(sim, [evt_slow, fast])
            return result

        p = sim.spawn(parent(sim))
        assert sim.run(until=p) == (1, "f")
        assert not evt_slow.triggered  # still usable by someone else
