"""Campaign observability: the longitudinal run-series store and its
cross-seed analytics (``repro.obs.campaign``, ``repro.analysis.campaign``,
``repro.analysis.compare``, ``repro.analysis.htmlreport``).

The acceptance spine is a real 3-seed x 3-point cluster campaign at
tiny scale (module-scoped fixture, run once): aggregated p99s must
carry nonzero confidence intervals, merged-sketch quantiles must match
the pooled exact samples within the sketch's relative-error bound, the
comparator must flag the degraded-link point as a significant latency
regression against the fair baseline while passing a self-comparison
across disjoint seed sets, and the HTML dashboard must render
byte-identically for a fixed store.
"""

from __future__ import annotations

import dataclasses
import json
import math

import numpy as np
import pytest

from repro.analysis.campaign import (
    aggregate,
    dedupe,
    t_critical,
)
from repro.analysis.compare import (
    check_floors,
    compare_summaries,
    metric_direction,
)
from repro.analysis.htmlreport import render_campaign_html
from repro.config import ClusterScenarioConfig
from repro.experiments import campaign_points, cluster_fair_config
from repro.obs.campaign import (
    SCHEMA,
    SKETCH_REL_ERR,
    CampaignStore,
    RunRecord,
    record_from_result,
    reseed_config,
    run_campaign,
)
from repro.obs.sketch import QuantileSketch

SCALE = 256
SEEDS = [1, 2, 3]


def _record(point="p", seed=1, **over) -> RunRecord:
    base = dict(
        point=point,
        seed=seed,
        config_key="c" * 16,
        label="lbl",
        scheduler="wheel",
        git_commit=None,
        git_dirty=None,
        elapsed_usec=100.0,
        metrics={"elapsed_usec": 100.0, "violations": 0.0},
        blame_usec={"wire": 40.0},
        violations=0,
        health={},
        sketches={},
    )
    base.update(over)
    return RunRecord(**base)


class TestStore:
    def test_append_load_roundtrip(self, tmp_path):
        store = CampaignStore(tmp_path / "c.jsonl")
        sk = QuantileSketch("lat", rel_err=SKETCH_REL_ERR)
        sk.record_many([10.0, 20.0, 300.0])
        rec = _record(sketches={"lat": sk.to_dict()})
        store.append(rec)
        store.append(_record(point="q", seed=2))
        loaded = store.load()
        assert len(store) == 2
        assert [r.point for r in loaded] == ["p", "q"]
        assert loaded[0].schema == SCHEMA
        assert loaded[0].metrics == rec.metrics
        clone = loaded[0].sketch("lat")
        assert clone.count == 3 and clone.quantile(100) == sk.quantile(100)

    def test_load_missing_store_is_empty(self, tmp_path):
        assert CampaignStore(tmp_path / "absent.jsonl").load() == []

    def test_torn_final_line_skipped_with_warning(self, tmp_path):
        path = tmp_path / "c.jsonl"
        store = CampaignStore(path)
        store.append(_record())
        with open(path, "a") as fh:
            fh.write('{"schema": "repro-campaign/1", "point": "tor')
        with pytest.warns(RuntimeWarning, match="torn"):
            loaded = store.load()
        assert len(loaded) == 1  # crashed writer's tail dropped

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "c.jsonl"
        store = CampaignStore(path)
        store.append(_record())
        with open(path, "a") as fh:
            fh.write("not json\n")
        store.append(_record(seed=2))
        with pytest.raises(ValueError):
            store.load()

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "c.jsonl"
        line = json.dumps({**_record().to_dict(), "schema": "repro-campaign/9"})
        path.write_text(line + "\n")
        with pytest.raises(ValueError, match="schema"):
            CampaignStore(path).load()

    def test_lines_are_single_writes(self, tmp_path):
        """Every line is complete JSON ending in newline — the property
        O_APPEND atomicity hinges on."""
        path = tmp_path / "c.jsonl"
        store = CampaignStore(path)
        for seed in range(5):
            store.append(_record(seed=seed))
        raw = path.read_bytes()
        assert raw.endswith(b"\n")
        for line in raw.decode().splitlines():
            assert json.loads(line)["schema"] == SCHEMA


class TestReseed:
    def test_cluster_reseed_rebuilds_workloads(self):
        cfg = cluster_fair_config(SCALE)
        r1 = reseed_config(cfg, 1)
        r2 = reseed_config(cfg, 2)
        assert isinstance(r1, ClusterScenarioConfig)
        assert r1.seed == 1 and r2.seed == 2
        # workloads are rebuilt (op traces are baked at construction,
        # so mutating .seed would be a silent no-op)
        for spec, orig in zip(r1.tenants, cfg.tenants):
            assert spec.workload is not orig.workload
        # identical tenants stay identical, and the campaign seed
        # actually moves the derived workload seed
        w1 = {s.workload.seed for s in r1.tenants}
        w2 = {s.workload.seed for s in r2.tenants}
        assert len(w1) == 1 and len(w2) == 1 and w1 != w2

    def test_workload_reseed_changes_trace(self):
        from repro.workloads import QuicksortWorkload

        w = QuicksortWorkload(nelems=4 * 1024 * 1024, seed=7)
        r = w.reseed(8)
        assert r.seed == 8 and r.nelems == w.nelems
        assert r._ops != w._ops  # pivot choices actually differ
        assert w.reseed(7)._ops == w._ops  # same seed -> same trace

    def test_rejects_unknown_config_type(self):
        with pytest.raises(TypeError):
            reseed_config(object(), 1)


class TestAggregateUnits:
    def test_t_critical_table_and_asymptote(self):
        assert t_critical(2, 0.95) == pytest.approx(4.303, abs=5e-3)
        assert t_critical(10_000, 0.95) == pytest.approx(1.960, abs=2e-2)
        with pytest.raises(ValueError):
            t_critical(3, 0.42)

    def test_single_seed_ci_degenerates(self):
        summary = aggregate([_record()])
        stats = summary.get("p", "elapsed_usec")
        assert stats.n == 1
        assert stats.ci_lo == stats.ci_hi == stats.mean

    def test_t_interval_matches_hand_computation(self):
        values = [100.0, 110.0, 120.0]
        records = [
            _record(seed=s, metrics={"elapsed_usec": v})
            for s, v in enumerate(values)
        ]
        stats = aggregate(records).get("p", "elapsed_usec")
        mean = np.mean(values)
        half = t_critical(2, 0.95) * np.std(values, ddof=1) / math.sqrt(3)
        assert stats.mean == pytest.approx(mean)
        assert stats.ci_lo == pytest.approx(mean - half)
        assert stats.ci_hi == pytest.approx(mean + half)

    def test_bootstrap_is_deterministic_and_sane(self):
        records = [
            _record(seed=s, metrics={"elapsed_usec": v})
            for s, v in enumerate([90.0, 100.0, 105.0, 120.0, 95.0])
        ]
        a = aggregate(records, method="bootstrap").get("p", "elapsed_usec")
        b = aggregate(records, method="bootstrap").get("p", "elapsed_usec")
        assert (a.ci_lo, a.ci_hi) == (b.ci_lo, b.ci_hi)
        assert a.ci_lo <= a.mean <= a.ci_hi
        assert a.ci_lo > 80.0 and a.ci_hi < 130.0

    def test_dedupe_keeps_last_per_point_seed(self):
        records = [
            _record(seed=1, metrics={"elapsed_usec": 1.0}),
            _record(seed=2, metrics={"elapsed_usec": 2.0}),
            _record(seed=1, metrics={"elapsed_usec": 9.0}),  # re-run wins
        ]
        out = dedupe(records)
        assert len(out) == 2
        assert out[0].metrics["elapsed_usec"] == 9.0

    def test_metric_direction_registry(self):
        assert metric_direction("elapsed_usec") == "lower"
        assert metric_direction("tenant.t0.availability") == "higher"
        assert metric_direction("jain_index") == "higher"
        assert metric_direction("swapout_pages") is None


class TestCompareUnits:
    def _pair(self, base_vals, test_vals, metric="elapsed_usec"):
        base = aggregate(
            [_record(seed=s, metrics={metric: v})
             for s, v in enumerate(base_vals)]
        )
        test = aggregate(
            [_record(seed=s, metrics={metric: v})
             for s, v in enumerate(test_vals)]
        )
        return compare_summaries(base, test, threshold=0.05)

    def test_disjoint_cis_and_threshold_trip_the_gate(self):
        report = self._pair([100.0, 101.0, 99.0], [200.0, 201.0, 199.0])
        assert not report.ok
        (delta,) = report.regressions
        assert delta.metric == "elapsed_usec"
        assert delta.rel_change == pytest.approx(1.0, rel=0.05)

    def test_overlapping_cis_do_not_trip(self):
        # means 10% apart but huge spread -> overlapping intervals
        report = self._pair([100.0, 200.0, 300.0], [110.0, 220.0, 330.0])
        assert report.ok and not report.regressions

    def test_improvement_direction(self):
        report = self._pair([200.0, 201.0, 199.0], [100.0, 101.0, 99.0])
        assert report.ok  # improvements never fail the gate
        assert len(report.improvements) == 1

    def test_directionless_metric_is_a_shift(self):
        report = self._pair(
            [100.0, 101.0, 99.0], [200.0, 201.0, 199.0],
            metric="swapout_pages",
        )
        assert report.ok
        assert len(report.shifts) == 1

    def test_floors(self):
        records = [
            _record(point="campaign/fair-2s", seed=1,
                    metrics={"violations": 0.0}),
            _record(point="campaign/fair-2s", seed=2,
                    metrics={"violations": 3.0}),
        ]
        floors = [{"point": "campaign/*", "metric": "violations", "max": 0}]
        violations = check_floors(records, floors)
        assert len(violations) == 1
        assert violations[0].seed == 2 and violations[0].bound == "max"
        assert check_floors(records, [{"point": "other/*",
                                       "metric": "violations",
                                       "max": 0}]) == []


# -- the acceptance spine: one real campaign, inspected many ways ------


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    root = tmp_path_factory.mktemp("campaign")
    store = root / "campaign.jsonl"
    return run_campaign(campaign_points(SCALE), SEEDS, store, cache=False)


class TestCampaignRun:
    def test_one_record_per_point_seed(self, campaign):
        records = campaign.store.load()
        assert len(records) == 4 * len(SEEDS)
        assert {r.seed for r in records} == set(SEEDS)
        assert {r.point for r in records} == {
            "campaign/fair-2s", "campaign/fair-3s", "campaign/failslow",
            "campaign/redundancy",
        }
        for r in records:
            assert r.schema == SCHEMA
            assert r.config_key
            assert r.metrics["elapsed_usec"] > 0
            assert r.sketches  # latency distributions captured

    def test_p99_cis_are_nonzero(self, campaign):
        """Seed replication must actually move the distributions: the
        aggregated p99s (and elapsed) carry nonzero CI halfwidths."""
        summary = aggregate(campaign.store.load())
        for point in summary.points:
            stats = summary.get(point, "elapsed_usec")
            assert stats.n == len(SEEDS)
            assert stats.halfwidth > 0.0
            p99s = [m for m in summary.metrics(point) if m.endswith(".p99")]
            assert p99s
            if point == "campaign/redundancy":
                # single tenant, tail = the fixed RDMA service time: every
                # seed's p99 lands in the same 1% sketch bucket, so a zero
                # halfwidth is the *correct* outcome here, not frozen data
                # (elapsed_usec above already proved the seeds moved).
                continue
            assert any(summary.get(point, m).halfwidth > 0 for m in p99s)

    def test_merged_sketch_matches_pooled_exact_tally(self, campaign):
        """DDSketch merge = bucket addition, so pooling the three seeds'
        sketches must estimate the pooled exact sample quantiles within
        the single-sketch relative-error bound.  The exact side comes
        from re-running one point's replicas and pooling the raw
        registry tallies."""
        from repro.cluster import run_cluster_scenario

        cfg = cluster_fair_config(SCALE)
        merged: QuantileSketch | None = None
        pooled: list[np.ndarray] = []
        name = None
        for seed in SEEDS:
            result = run_cluster_scenario(reseed_config(cfg, seed))
            record = record_from_result(
                "campaign/fair-2s", reseed_config(cfg, seed), result,
                provenance=(None, None),
            )
            if name is None:
                name = sorted(record.sketches)[0]
            part = record.sketch(name)
            if merged is None:
                merged = part
            else:
                merged.merge(part)
            pooled.append(np.asarray(result.registry.get(name).values()))
        samples = np.sort(np.concatenate(pooled))
        assert merged.count == len(samples)
        for q in (50, 95, 99):
            rank = q / 100 * (len(samples) - 1)
            lo = float(samples[math.floor(rank)])
            hi = float(samples[math.ceil(rank)])
            estimate = merged.quantile(q)
            assert lo * (1 - SKETCH_REL_ERR) <= estimate, (q, estimate, lo)
            assert estimate <= hi * (1 + SKETCH_REL_ERR), (q, estimate, hi)

    def test_compare_flags_injected_slowdown(self, campaign):
        """The degraded-link point, relabeled onto the fair point's
        name, must read as a significant latency regression."""
        records = campaign.store.load()
        fair = [r for r in records if r.point == "campaign/fair-2s"]
        slow = [
            dataclasses.replace(r, point="campaign/fair-2s")
            for r in records
            if r.point == "campaign/failslow"
        ]
        report = compare_summaries(aggregate(fair), aggregate(slow))
        assert not report.ok
        regressed = {d.metric for d in report.regressions}
        assert any(m.endswith(".p99") for m in regressed)
        for delta in report.regressions:
            assert delta.rel_change > 0
            assert delta.direction == "lower"

    def test_self_compare_across_seed_sets_passes(self, campaign, tmp_path):
        """Same grid, disjoint seeds: statistical noise only — the gate
        must NOT fire (this is the false-positive guard)."""
        other = run_campaign(
            campaign_points(SCALE)[:2], [4, 5, 6],
            tmp_path / "other.jsonl", cache=False,
        )
        base = aggregate(campaign.store.load())
        test = aggregate(other.store.load())
        report = compare_summaries(base, test)
        assert report.ok, [d.to_dict() for d in report.regressions]
        assert "campaign/failslow" in report.missing_points

    def test_floors_clear_on_real_campaign(self, campaign):
        floors = [{"point": "*", "metric": "violations", "max": 0}]
        assert check_floors(campaign.store.load(), floors) == []

    def test_html_report_is_byte_deterministic(self, campaign):
        records = campaign.store.load()
        summary = aggregate(records)
        first = render_campaign_html(summary, records, title="t")
        second = render_campaign_html(
            aggregate(campaign.store.load()), campaign.store.load(),
            title="t",
        )
        assert first == second
        assert first.startswith("<!DOCTYPE html>")
        assert "<script" not in first  # self-contained, no external deps
        assert "http" not in first.split("</style>")[1]  # no remote fetches
        assert "SLO burn" in first  # failslow point produced a timeline

    def test_html_diff_table_renders_verdicts(self, campaign):
        records = campaign.store.load()
        fair = [r for r in records if r.point == "campaign/fair-2s"]
        slow = [
            dataclasses.replace(r, point="campaign/fair-2s")
            for r in records
            if r.point == "campaign/failslow"
        ]
        report = compare_summaries(aggregate(fair), aggregate(slow))
        html = render_campaign_html(
            aggregate(slow), slow, compare_report=report, title="t"
        )
        assert "verdict-regression" in html
