"""Unit + integration tests for the VM: faults, reclaim, write-back,
read-ahead, swap-cache economy, destruction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.disk import DiskDevice
from repro.kernel import Node, VMParams
from repro.simulator import SimulationError
from repro.units import MiB


@pytest.fixture
def swap_node(sim, fabric):
    """A small node with a disk swap area attached."""
    node = Node(sim, fabric, "n0", mem_bytes=8 * MiB)
    disk = DiskDevice(sim, swap_partition_bytes=64 * MiB, stats=node.stats)
    node.swapon(disk.queue, 64 * MiB)
    return node


def run(sim, gen):
    return sim.run(until=sim.spawn(gen))


class TestFirstTouch:
    def test_minor_faults_allocate_frames(self, sim, swap_node):
        vmm = swap_node.vmm
        aspace = vmm.create_address_space(100, "a")

        def proc(sim):
            yield from vmm.touch_run(aspace, 0, 50, write=True)

        run(sim, proc(sim))
        assert aspace.minor_faults == 50
        assert aspace.major_faults == 0
        assert aspace.resident_pages == 50
        assert swap_node.frames.used == 50

    def test_write_marks_dirty(self, sim, swap_node):
        vmm = swap_node.vmm
        aspace = vmm.create_address_space(100, "a")

        def proc(sim):
            yield from vmm.touch_run(aspace, 0, 10, write=True)
            yield from vmm.touch_run(aspace, 10, 20, write=False)

        run(sim, proc(sim))
        assert aspace.dirty[:10].all()
        assert not aspace.dirty[10:20].any()

    def test_retouch_no_new_faults(self, sim, swap_node):
        vmm = swap_node.vmm
        aspace = vmm.create_address_space(100, "a")

        def proc(sim):
            yield from vmm.touch_run(aspace, 0, 50, write=True)
            yield from vmm.touch_run(aspace, 0, 50, write=True)

        run(sim, proc(sim))
        assert aspace.minor_faults == 50

    def test_bad_range_rejected(self, sim, swap_node):
        vmm = swap_node.vmm
        aspace = vmm.create_address_space(10, "a")
        with pytest.raises(ValueError):
            next(iter(vmm.touch_run(aspace, 5, 5, False)))
        with pytest.raises(ValueError):
            next(iter(vmm.touch_run(aspace, 0, 11, False)))


class TestEvictionAndSwapIn:
    def overflow(self, sim, swap_node, npages=None):
        vmm = swap_node.vmm
        total = swap_node.frames.total_frames
        npages = npages or total * 2
        aspace = vmm.create_address_space(npages, "big")

        def proc(sim):
            for start in range(0, npages, 64):
                stop = min(start + 64, npages)
                yield from vmm.touch_run(aspace, start, stop, write=True)
            yield from vmm.quiesce()

        run(sim, proc(sim))
        return aspace

    def test_working_set_larger_than_memory_pages_out(self, sim, swap_node):
        aspace = self.overflow(sim, swap_node)
        assert aspace.resident_pages < aspace.npages
        assert aspace.swapped_pages > 0
        stats = swap_node.stats
        assert stats.get("n0.vm.swapout_pages").total > 0
        swap_node.vmm.check_frame_accounting()

    def test_swapin_on_refault(self, sim, swap_node):
        aspace = self.overflow(sim, swap_node)
        vmm = swap_node.vmm

        def proc(sim):
            yield from vmm.touch_run(aspace, 0, 64, write=False)
            yield from vmm.quiesce()

        run(sim, proc(sim))
        assert aspace.major_faults > 0
        assert aspace.resident[:64].all()
        vmm.check_frame_accounting()

    def test_readahead_brings_cluster(self, sim, swap_node):
        aspace = self.overflow(sim, swap_node)
        vmm = swap_node.vmm

        def proc(sim):
            # fault exactly one page
            yield from vmm.touch_run(aspace, 0, 1, write=False)
            yield from vmm.quiesce()

        before = aspace.major_faults
        run(sim, proc(sim))
        assert aspace.major_faults == before + 1
        # read-ahead made neighbours resident without faults
        swapped_in = swap_node.stats.get("n0.vm.swapin_pages").total
        assert swapped_in >= vmm.params.readahead_pages

    def test_clean_swapped_page_eviction_free(self, sim, swap_node):
        """Swap-cache economy: a page swapped in and only *read* keeps
        its slot, so its next eviction writes nothing."""
        aspace = self.overflow(sim, swap_node)
        vmm = swap_node.vmm
        stats = swap_node.stats

        def reread(sim):
            yield from vmm.touch_run(aspace, 0, 64, write=False)
            yield from vmm.quiesce()

        run(sim, reread(sim))

        def evict_again(sim):
            # Touch other pages to push [0,64) out again.
            hi = aspace.npages
            for start in range(hi - 4096, hi, 64):
                yield from vmm.touch_run(aspace, start, start + 64, write=False)
            yield from vmm.quiesce()

        run(sim, evict_again(sim))
        clean_drops = stats.get("n0.vm.reclaim_clean_pages").total
        assert clean_drops > 0  # clean re-evictions happened without I/O

    def test_write_invalidates_swap_slot(self, sim, swap_node):
        aspace = self.overflow(sim, swap_node)
        vmm = swap_node.vmm

        def proc(sim):
            yield from vmm.touch_run(aspace, 0, 8, write=True)

        run(sim, proc(sim))
        assert (aspace.swap_slot[:8] == -1).all()
        assert aspace.dirty[:8].all()

    def test_random_touch_pages(self, sim, swap_node):
        vmm = swap_node.vmm
        aspace = vmm.create_address_space(1000, "r")
        pages = np.array([1, 5, 900, 5, 333])

        def proc(sim):
            yield from vmm.touch_pages(aspace, pages, write=True)

        run(sim, proc(sim))
        assert aspace.resident[[1, 5, 333, 900]].all()
        assert aspace.minor_faults == 4  # deduplicated


class TestConcurrentAddressSpaces:
    def test_two_spaces_cross_readahead_race(self, sim, swap_node):
        """Two address spaces sharing one swap area: read-ahead for one
        space's fault can pull the other space's pages in while their
        owner is itself faulting them.  Regression test for the
        double-swap-in race found by the Fig. 9 configuration."""
        vmm = swap_node.vmm
        total = swap_node.frames.total_frames
        spaces = [
            vmm.create_address_space(total, f"a{i}") for i in range(2)
        ]

        def worker(sim, aspace, passes=3):
            for _ in range(passes):
                for start in range(0, aspace.npages, 32):
                    stop = min(start + 32, aspace.npages)
                    yield from vmm.touch_run(aspace, start, stop, write=True)
                    yield from swap_node.cpus.run(50.0)

        procs = [sim.spawn(worker(sim, a)) for a in spaces]
        sim.run_all(procs)

        def quiesce(sim):
            yield from vmm.quiesce()

        sim.run(until=sim.spawn(quiesce(sim)))
        vmm.check_frame_accounting()
        assert all(not a.swapin_pending for a in spaces)
        assert all(not a.writeback for a in spaces)


class TestDestroy:
    def test_destroy_releases_everything(self, sim, swap_node):
        vmm = swap_node.vmm
        aspace = vmm.create_address_space(500, "d")

        def proc(sim):
            yield from vmm.touch_run(aspace, 0, 500, write=True)
            yield from vmm.destroy_address_space(aspace)

        run(sim, proc(sim))
        assert swap_node.frames.used == 0
        assert all(a.free == a.nslots for a in vmm.swap.areas)

    def test_destroy_waits_for_writeback(self, sim, swap_node):
        vmm = swap_node.vmm
        total = swap_node.frames.total_frames
        aspace = vmm.create_address_space(total * 2, "d")

        def proc(sim):
            for start in range(0, aspace.npages, 64):
                yield from vmm.touch_run(
                    aspace, start, min(start + 64, aspace.npages), write=True
                )
            yield from vmm.destroy_address_space(aspace)

        run(sim, proc(sim))
        assert swap_node.frames.used == 0
        vmm.check_frame_accounting()


class TestAccountingGuards:
    def test_check_frame_accounting_detects_leak(self, sim, swap_node):
        vmm = swap_node.vmm
        aspace = vmm.create_address_space(10, "x")

        def proc(sim):
            yield from vmm.touch_run(aspace, 0, 5, write=True)

        run(sim, proc(sim))
        aspace.resident[0] = False  # corrupt the ledger
        with pytest.raises(SimulationError):
            vmm.check_frame_accounting()

    def test_touch_loop_guard_trips_on_impossible_config(self, sim, fabric):
        # Memory so small that one chunk cannot stay resident: converge
        # guard must fire instead of looping forever.
        params = VMParams(frac_min=0.3, frac_low=0.35, frac_high=0.45)
        node = Node(sim, fabric, "tiny", mem_bytes=64 * 4096, vm_params=params)
        disk = DiskDevice(sim, swap_partition_bytes=8 * MiB, stats=node.stats)
        node.swapon(disk.queue, 8 * MiB)
        aspace = node.vmm.create_address_space(256, "x")

        def proc(sim):
            yield from node.vmm.touch_run(aspace, 0, 256, write=True)

        sim.spawn(proc(sim))
        with pytest.raises(SimulationError):
            sim.run()


class _InstantDevice:
    """A block driver that completes every request after a fixed delay —
    isolates VM behaviour from device speed."""

    def __init__(self, sim, stats, delay=10.0, capacity_sectors=1 << 20):
        from repro.kernel import RequestQueue

        self.queue = RequestQueue(
            sim, "fastdev.rq", capacity_sectors=capacity_sectors, stats=stats
        )
        self.delay = delay
        sim.spawn(self._serve(sim), name="fastdev")

    def _serve(self, sim):
        while True:
            req = yield self.queue.next_request()
            yield sim.timeout(self.delay)
            self.queue.complete(req)


class TestKswapd:
    def test_fast_device_keeps_app_unblocked(self, sim, fabric):
        """With a fast swap device kswapd runs ahead and the app almost
        never sees empty memory — the asynchrony HPBD relies on."""
        node = Node(sim, fabric, "n0", mem_bytes=8 * MiB)
        dev = _InstantDevice(sim, node.stats)
        node.swapon(dev.queue, 64 * MiB)
        vmm, frames = node.vmm, node.frames
        aspace = vmm.create_address_space(frames.total_frames * 2, "k")
        seen = []

        def proc(sim):
            for start in range(0, aspace.npages, 32):
                stop = min(start + 32, aspace.npages)
                yield from vmm.touch_run(aspace, start, stop, write=True)
                yield from node.cpus.run(500.0)
                seen.append(frames.free)
            yield from vmm.quiesce()

        run(sim, proc(sim))
        assert node.kswapd.rounds > 0
        assert (np.array(seen) > 0).mean() > 0.95

    def test_slow_device_paces_the_app(self, sim, swap_node):
        """A slow disk cannot keep up: the app regularly blocks with
        zero free frames (direct-reclaim pacing), yet still completes
        with a balanced ledger."""
        vmm = swap_node.vmm
        frames = swap_node.frames
        aspace = vmm.create_address_space(frames.total_frames * 2, "k")
        seen = []

        def proc(sim):
            for start in range(0, aspace.npages, 32):
                stop = min(start + 32, aspace.npages)
                yield from vmm.touch_run(aspace, start, stop, write=True)
                yield from swap_node.cpus.run(200.0)
                seen.append(frames.free)
            yield from vmm.quiesce()

        run(sim, proc(sim))
        arr = np.array(seen)
        assert (arr == 0).any()  # pacing happened
        vmm.check_frame_accounting()
        # After quiescing, write-backs completed and freed their frames.
        assert frames.free > frames.wm_high


class TestReadaheadEdges:
    def test_window_clipped_at_area_end(self, sim, swap_node):
        """Faulting a slot near the end of the swap area must clip the
        read-ahead window, not run off the device."""
        vmm = swap_node.vmm
        total = swap_node.frames.total_frames
        aspace = vmm.create_address_space(total * 2, "e")

        def fill(sim):
            for start in range(0, aspace.npages, 64):
                stop = min(start + 64, aspace.npages)
                yield from vmm.touch_run(aspace, start, stop, write=True)
            yield from vmm.quiesce()

        sim.run(until=sim.spawn(fill(sim)))
        # Find a page whose slot is in the last (possibly short) window.
        import numpy as np

        slots = aspace.swap_slot
        swapped = np.flatnonzero(slots >= 0)
        assert len(swapped)
        victim = int(swapped[np.argmax(slots[swapped])])

        def refault(sim):
            yield from vmm.touch_run(aspace, victim, victim + 1, write=False)
            yield from vmm.quiesce()

        sim.run(until=sim.spawn(refault(sim)))
        assert aspace.resident[victim]
        vmm.check_frame_accounting()

    def test_stale_reverse_map_skipped(self, sim, swap_node):
        """A slot whose owner re-wrote the page (slot freed, possibly
        re-used) must not be read ahead into the wrong page."""
        vmm = swap_node.vmm
        total = swap_node.frames.total_frames
        aspace = vmm.create_address_space(total * 2, "s")

        def churn(sim):
            # Two full passes: plenty of slot free/realloc churn.
            for _ in range(2):
                for start in range(0, aspace.npages, 64):
                    stop = min(start + 64, aspace.npages)
                    yield from vmm.touch_run(aspace, start, stop, write=True)
            # Random re-reads pull read-ahead through recycled windows.
            import numpy as np

            rng = np.random.default_rng(3)
            for _ in range(32):
                pages = rng.integers(0, aspace.npages, size=16)
                yield from vmm.touch_pages(aspace, pages, write=False)
            yield from vmm.quiesce()

        sim.run(until=sim.spawn(churn(sim)))
        vmm.check_frame_accounting()
        # Invariant: every swapped page's slot reverse-maps to itself.
        import numpy as np

        area = vmm.swap.areas[0]
        for page in np.flatnonzero(aspace.swap_slot >= 0)[:200]:
            slot = int(aspace.swap_slot[page])
            owner, opage = area.owner(slot)
            assert owner is aspace and opage == page
