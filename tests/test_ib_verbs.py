"""Unit tests for the InfiniBand verbs layer: MRs, CQs, QPs, CM."""

from __future__ import annotations

import pytest

from repro.ib import (
    AccessFlags,
    CQE,
    CompletionQueue,
    ConnectionError_,
    HCA,
    Opcode,
    ProtectionDomain,
    QPError,
    RDMAReadWR,
    RDMAWriteWR,
    ReceiverNotReady,
    RecvWR,
    RemoteKeyError,
    SendWR,
    connect,
    connect_endpoints,
)
from repro.units import KiB


@pytest.fixture
def pair(sim, fabric):
    """Two connected HCAs with a QP pair and per-side CQs."""
    h1 = HCA(sim, fabric, "c")
    h2 = HCA(sim, fabric, "s")
    pd1, pd2 = h1.alloc_pd(), h2.alloc_pd()
    cqs = {
        "c_send": h1.create_cq("c.s"),
        "c_recv": h1.create_cq("c.r"),
        "s_send": h2.create_cq("s.s"),
        "s_recv": h2.create_cq("s.r"),
    }
    qp1 = h1.create_qp(pd1, cqs["c_send"], cqs["c_recv"])
    qp2 = h2.create_qp(pd2, cqs["s_send"], cqs["s_recv"])
    connect(qp1, qp2)
    return h1, h2, pd1, pd2, qp1, qp2, cqs


class TestMemoryRegions:
    def test_registration_charges_time(self, sim, fabric, runner):
        h = HCA(sim, fabric, "n")
        pd = h.alloc_pd()

        def proc(sim):
            mr = yield from h.register_mr(pd, 64 * KiB)
            return (mr, sim.now)

        mr, t = runner(proc(sim))
        assert t > 0
        assert mr.length == 64 * KiB
        assert pd.registered_bytes == 64 * KiB

    def test_rkey_resolution(self):
        pd = ProtectionDomain("n")
        mr = pd.register(0x1000, 4096)
        assert pd.resolve_rkey(mr.rkey) is mr
        with pytest.raises(RemoteKeyError):
            pd.resolve_rkey(999999)

    def test_bounds_checking(self):
        pd = ProtectionDomain("n")
        mr = pd.register(0x1000, 4096)
        mr.check_remote(0x1000, 4096, write=True)
        with pytest.raises(RemoteKeyError):
            mr.check_remote(0x1000, 4097, write=True)
        with pytest.raises(RemoteKeyError):
            mr.check_remote(0x0FFF, 10, write=False)

    def test_access_flags_enforced(self):
        pd = ProtectionDomain("n")
        mr = pd.register(0, 4096, access=AccessFlags.REMOTE_READ)
        mr.check_remote(0, 4096, write=False)
        with pytest.raises(RemoteKeyError):
            mr.check_remote(0, 4096, write=True)

    def test_deregistered_region_unusable(self):
        pd = ProtectionDomain("n")
        mr = pd.register(0, 4096)
        pd.deregister(mr)
        with pytest.raises(RemoteKeyError):
            mr.check_remote(0, 4096, write=False)
        with pytest.raises(RemoteKeyError):
            pd.resolve_rkey(mr.rkey)

    def test_double_deregister_rejected(self):
        pd = ProtectionDomain("n")
        mr = pd.register(0, 4096)
        pd.deregister(mr)
        with pytest.raises(RemoteKeyError):
            pd.deregister(mr)

    def test_va_allocator_non_overlapping(self):
        pd = ProtectionDomain("n")
        a = pd.allocate_va(10_000)
        b = pd.allocate_va(10_000)
        assert b >= a + 10_000

    def test_zero_length_rejected(self):
        pd = ProtectionDomain("n")
        with pytest.raises(ValueError):
            pd.register(0, 0)


class TestCompletionQueue:
    def make_cqe(self, solicited=False):
        return CQE(opcode=Opcode.RECV, wr_id=1, qp_num=1, solicited=solicited)

    def test_poll_order(self, sim):
        cq = CompletionQueue(sim, "cq")
        for i in range(3):
            cqe = self.make_cqe()
            cqe.wr_id = i
            cq.push(cqe)
        assert [c.wr_id for c in cq.poll()] == [0, 1, 2]
        assert len(cq) == 0

    def test_poll_max_entries(self, sim):
        cq = CompletionQueue(sim, "cq")
        for _ in range(5):
            cq.push(self.make_cqe())
        assert len(cq.poll(max_entries=2)) == 2
        assert len(cq) == 3

    def test_unarmed_push_no_event(self, sim):
        cq = CompletionQueue(sim, "cq")
        cq.push(self.make_cqe(solicited=True))
        assert cq.events_fired == 0

    def test_armed_any_completion_fires(self, sim):
        cq = CompletionQueue(sim, "cq")
        cq.request_notify()  # NEXT_COMP
        cq.push(self.make_cqe(solicited=False))
        assert cq.events_fired == 1

    def test_armed_solicited_only_ignores_unsolicited(self, sim):
        cq = CompletionQueue(sim, "cq")
        cq.request_notify(solicited_only=True)
        cq.push(self.make_cqe(solicited=False))
        assert cq.events_fired == 0
        cq.push(self.make_cqe(solicited=True))
        assert cq.events_fired == 1

    def test_one_event_per_arm(self, sim):
        cq = CompletionQueue(sim, "cq")
        cq.request_notify()
        cq.push(self.make_cqe())
        cq.push(self.make_cqe())
        assert cq.events_fired == 1

    def test_event_wakes_sleeper_with_cost(self, sim):
        cq = CompletionQueue(sim, "cq", event_notify_cost=6.0)

        def sleeper(sim):
            cq.request_notify()
            yield cq.wait_event()
            return sim.now

        def producer(sim):
            yield sim.timeout(10)
            cq.push(CQE(opcode=Opcode.RECV, wr_id=1, qp_num=1, solicited=True))

        p = sim.spawn(sleeper(sim))
        sim.spawn(producer(sim))
        assert sim.run(until=p) == pytest.approx(16.0)

    def test_latched_event_not_lost(self, sim):
        # Event arrives while consumer is busy; its next wait returns
        # immediately (the race-free arm/drain/sleep pattern).
        cq = CompletionQueue(sim, "cq", event_notify_cost=0.0)
        cq.request_notify()
        cq.push(self.make_cqe(solicited=True))

        def consumer(sim):
            yield sim.timeout(100)  # busy past the event
            yield cq.wait_event()  # latched token: immediate
            return sim.now

        p = sim.spawn(consumer(sim))
        assert sim.run(until=p) == 100.0


class TestQueuePairs:
    def test_send_recv_roundtrip(self, sim, pair, runner):
        _h1, _h2, _pd1, _pd2, qp1, qp2, cqs = pair

        def proc(sim):
            qp2.post_recv(RecvWR(capacity=256))
            yield qp1.post_send(SendWR(nbytes=64, payload="hello"))
            cqe = cqs["s_recv"].poll_one()
            return cqe

        cqe = runner(proc(sim))
        assert cqe.payload == "hello"
        assert cqe.opcode == Opcode.RECV
        assert cqe.byte_len == 64

    def test_send_without_recv_is_rnr(self, sim, pair):
        _h1, _h2, _pd1, _pd2, qp1, _qp2, _cqs = pair

        def proc(sim):
            yield qp1.post_send(SendWR(nbytes=64))

        sim.spawn(proc(sim))
        with pytest.raises(ReceiverNotReady):
            sim.run()

    def test_recv_buffer_too_small(self, sim, pair):
        _h1, _h2, _pd1, _pd2, qp1, qp2, _cqs = pair
        qp2.post_recv(RecvWR(capacity=16))

        def proc(sim):
            yield qp1.post_send(SendWR(nbytes=64))

        sim.spawn(proc(sim))
        with pytest.raises(QPError, match="too small"):
            sim.run()

    def test_rdma_write_validates_rkey(self, sim, pair, runner):
        h1, _h2, pd1, _pd2, _qp1, qp2, _cqs = pair

        def proc(sim):
            mr = yield from h1.register_mr(pd1, 64 * KiB)
            yield qp2.post_send(
                RDMAWriteWR(nbytes=4096, remote_addr=mr.addr, rkey=mr.rkey)
            )
            return sim.now

        assert runner(proc(sim)) > 0

    def test_rdma_write_bad_rkey_fails(self, sim, pair):
        _h1, _h2, _pd1, _pd2, _qp1, qp2, _cqs = pair

        def proc(sim):
            yield qp2.post_send(
                RDMAWriteWR(nbytes=4096, remote_addr=0, rkey=424242)
            )

        sim.spawn(proc(sim))
        with pytest.raises(RemoteKeyError):
            sim.run()

    def test_rdma_read_out_of_bounds_fails(self, sim, pair):
        h1, _h2, pd1, _pd2, _qp1, qp2, _cqs = pair

        def proc(sim):
            mr = yield from h1.register_mr(pd1, 4096)
            yield qp2.post_send(
                RDMAReadWR(nbytes=8192, remote_addr=mr.addr, rkey=mr.rkey)
            )

        sim.spawn(proc(sim))
        with pytest.raises(RemoteKeyError):
            sim.run()

    def test_per_qp_ordering(self, sim, pair):
        # An RDMA write posted before a send must land before the send's
        # CQE appears at the peer — the ordering HPBD's reply relies on.
        h1, _h2, pd1, _pd2, qp1, qp2, cqs = pair
        landed = []

        def proc(sim):
            mr = yield from h1.register_mr(pd1, 64 * KiB)
            qp1.post_recv(RecvWR(capacity=256))
            h1.memory_sink = lambda addr, n, payload: landed.append(payload)
            done_rdma = qp2.post_send(
                RDMAWriteWR(
                    nbytes=32 * KiB,
                    remote_addr=mr.addr,
                    rkey=mr.rkey,
                    payload="DATA",
                )
            )
            done_send = qp2.post_send(SendWR(nbytes=64, payload="reply"))
            yield done_send
            assert done_rdma.triggered  # ordered: RDMA finished first
            cqe = cqs["c_recv"].poll_one()
            return (landed, cqe.payload)

        p = sim.spawn(proc(sim))
        assert sim.run(until=p) == (["DATA"], "reply")

    def test_signaled_send_generates_cqe(self, sim, pair, runner):
        _h1, _h2, _pd1, _pd2, qp1, qp2, cqs = pair

        def proc(sim):
            qp2.post_recv(RecvWR(capacity=256))
            yield qp1.post_send(SendWR(nbytes=64, signaled=True))
            return len(cqs["c_send"])

        assert runner(proc(sim)) == 1

    def test_unsignaled_send_no_cqe(self, sim, pair, runner):
        _h1, _h2, _pd1, _pd2, qp1, qp2, cqs = pair

        def proc(sim):
            qp2.post_recv(RecvWR(capacity=256))
            yield qp1.post_send(SendWR(nbytes=64, signaled=False))
            return len(cqs["c_send"])

        assert runner(proc(sim)) == 0

    def test_post_send_unconnected_rejected(self, sim, fabric):
        h = HCA(sim, fabric, "x")
        pd = h.alloc_pd()
        qp = h.create_qp(pd, h.create_cq(), h.create_cq())
        with pytest.raises(QPError, match="not connected"):
            qp.post_send(SendWR(nbytes=1))

    def test_recv_queue_overflow(self, sim, fabric):
        h = HCA(sim, fabric, "x")
        pd = h.alloc_pd()
        qp = h.create_qp(pd, h.create_cq(), h.create_cq(), max_recv_wr=2)
        qp.post_recv(RecvWR(capacity=64))
        qp.post_recv(RecvWR(capacity=64))
        with pytest.raises(QPError, match="overflow"):
            qp.post_recv(RecvWR(capacity=64))

    def test_stats_counters(self, sim, pair, runner):
        h1, _h2, pd1, _pd2, qp1, qp2, _cqs = pair

        def proc(sim):
            mr = yield from h1.register_mr(pd1, 64 * KiB)
            qp2.post_recv(RecvWR(capacity=256))
            yield qp1.post_send(SendWR(nbytes=64))
            yield qp2.post_send(
                RDMAWriteWR(nbytes=4096, remote_addr=mr.addr, rkey=mr.rkey)
            )
            yield qp2.post_send(
                RDMAReadWR(nbytes=4096, remote_addr=mr.addr, rkey=mr.rkey)
            )

        runner(proc(sim))
        assert qp1.sends == 1
        assert qp2.rdma_writes == 1
        assert qp2.rdma_reads == 1
        assert qp2.bytes_sent == 8192


class TestConnectionManagement:
    def test_connect_endpoints_charges_handshake(self, sim, fabric, runner):
        h1, h2 = HCA(sim, fabric, "a"), HCA(sim, fabric, "b")
        pd1, pd2 = h1.alloc_pd(), h2.alloc_pd()

        def proc(sim):
            qa, qb = yield from connect_endpoints(
                h1, pd1, h1.create_cq(), h1.create_cq(),
                h2, pd2, h2.create_cq(), h2.create_cq(),
            )
            return (qa.peer is qb, qb.peer is qa, sim.now)

        a_ok, b_ok, t = runner(proc(sim))
        assert a_ok and b_ok and t >= 500.0

    def test_double_connect_rejected(self, sim, pair):
        _h1, _h2, _pd1, _pd2, qp1, qp2, _cqs = pair
        with pytest.raises(ConnectionError_):
            connect(qp1, qp2)

    def test_self_connect_rejected(self, sim, fabric):
        h = HCA(sim, fabric, "x")
        pd = h.alloc_pd()
        qp = h.create_qp(pd, h.create_cq(), h.create_cq())
        with pytest.raises(ConnectionError_):
            connect(qp, qp)

    def test_active_qp_count(self, sim, fabric):
        h = HCA(sim, fabric, "x")
        pd = h.alloc_pd()
        for _ in range(3):
            h.create_qp(pd, h.create_cq(), h.create_cq())
        assert h.active_qps == 3
