"""Tests for the fleet health model (``repro.obs.health``).

Unit coverage drives a :class:`HealthHub` with synthetic feeds — a
limping server must trip the fail-slow detector, liveness edges must
land in the per-server status, SLO breaches must open and close as
typed events.  The acceptance scenario is the ISSUE gate: the seeded
three-tenant cluster with one ``LinkDegrade``-limped server flags
exactly that server, every victim tenant breaches its p99 latency SLO
with a burn-rate timeline, and the same seed replays to a
byte-identical report.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.obs import HealthConfig, HealthHub

CLUSTER_SCALE = 64
# cluster_failslow_config degrades mem1 at mid-run for half as long
DEGRADE_START = 73_000_000.0 / CLUSTER_SCALE
DEGRADE_END = DEGRADE_START * 1.5


def _drive(sim, hub: HealthHub, feed, steps: int, dt: float = 1_000.0):
    """Run ``feed(i)`` every ``dt`` simulated µs with the hub ticking."""

    def proc():
        for i in range(steps):
            feed(i)
            yield sim.timeout(dt)

    hub.start()
    sim.run(until=sim.spawn(proc()))


@pytest.fixture
def cfg() -> HealthConfig:
    return HealthConfig(min_samples=5)


class TestFailSlowDetector:
    def test_limping_server_flagged(self, sim, cfg):
        hub = HealthHub(sim, ["s0", "s1", "s2"], ["t"], cfg=cfg)

        def feed(i):
            hub.record_server_rtt(0, 100.0)
            hub.record_server_rtt(1, 110.0)
            hub.record_server_rtt(2, 100.0 if i < 20 else 900.0)

        _drive(sim, hub, feed, steps=40)
        assert hub.flagged_servers == ["s2"]
        s2 = hub.servers[2]
        assert s2.status == "slow"
        assert s2.flagged_at is not None and s2.flagged_at > 20_000.0
        assert any(
            srv == "s2" and to == "slow"
            for _t, srv, _frm, to in hub.status_timeline
        )
        # healthy peers never score anywhere near the threshold
        assert hub.servers[0].peak_score < cfg.anomaly_threshold / 2

    def test_healthy_fleet_stays_quiet(self, sim, cfg):
        hub = HealthHub(sim, ["s0", "s1", "s2"], ["t"], cfg=cfg)

        def feed(i):
            for srv in range(3):
                hub.record_server_rtt(srv, 100.0 + (i + srv) % 7)

        _drive(sim, hub, feed, steps=40)
        assert hub.flagged_servers == []
        assert all(s.status == "ok" for s in hub.servers)

    def test_under_min_samples_not_scored(self, sim, cfg):
        hub = HealthHub(sim, ["s0", "s1"], ["t"], cfg=cfg)

        def feed(i):
            hub.record_server_rtt(0, 100.0)
            if i < 3:  # stays below min_samples
                hub.record_server_rtt(1, 50_000.0)

        _drive(sim, hub, feed, steps=30)
        assert hub.flagged_servers == []

    def test_liveness_edge_sets_down_status(self, sim, cfg):
        hub = HealthHub(sim, ["s0", "s1"], ["t"], cfg=cfg)

        def feed(i):
            hub.record_server_rtt(0, 100.0)
            hub.record_server_rtt(1, 100.0)
            if i == 10:
                hub.set_server_alive(1, False)
            if i == 20:
                hub.set_server_alive(1, True)

        _drive(sim, hub, feed, steps=30)
        edges = [
            (srv, frm, to) for _t, srv, frm, to in hub.status_timeline
        ]
        assert ("s1", "ok", "down") in edges
        assert ("s1", "down", "ok") in edges
        assert hub.servers[1].status == "ok"


class TestSLOEngine:
    def test_latency_breach_opens_and_closes(self, sim, cfg):
        hub = HealthHub(sim, ["s0"], ["t"], cfg=cfg)

        def feed(i):
            slow = 60 <= i < 90
            for _ in range(3):
                hub.record_request("t", 50_000.0 if slow else 100.0)

        _drive(sim, hub, feed, steps=200)
        edges = [(b.slo, b.edge) for b in hub.breaches]
        assert ("latency_p99", "start") in edges
        assert ("latency_p99", "end") in edges
        assert hub.breached_tenants() == ["t"]
        assert hub.burn_timeline  # burn > 0 while the breach was open
        start = next(b for b in hub.breaches if b.edge == "start")
        assert start.burn_rate > 1.0
        assert start.threshold == cfg.slo_latency_usec
        report = hub.report()
        assert report["tenants"]["t"]["breaches"] == 1
        assert not report["tenants"]["t"]["slo_met"]
        assert report["tenants"]["t"]["peak_burn_rate"] > 1.0

    def test_availability_breach(self, sim, cfg):
        hub = HealthHub(sim, ["s0"], ["t"], cfg=cfg)

        def feed(i):
            for _ in range(5):
                hub.record_request("t", 100.0)
            if 50 <= i < 70:
                hub.record_error("t", 0)

        _drive(sim, hub, feed, steps=120)
        assert any(
            b.slo == "availability" and b.edge == "start"
            for b in hub.breaches
        )
        report = hub.report()
        assert report["tenants"]["t"]["failed_attempts"] == 20

    def test_fast_tenant_meets_slo(self, sim, cfg):
        hub = HealthHub(sim, ["s0"], ["t"], cfg=cfg)

        def feed(i):
            for _ in range(3):
                hub.record_request("t", 200.0)

        _drive(sim, hub, feed, steps=100)
        assert hub.breaches == []
        report = hub.report()
        assert report["tenants"]["t"]["slo_met"]
        assert report["tenants"]["t"]["peak_burn_rate"] == 0.0

    def test_unknown_tenant_ignored(self, sim, cfg):
        hub = HealthHub(sim, ["s0"], ["t"], cfg=cfg)
        hub.record_request("ghost", 1.0)
        hub.record_error("ghost", 0)
        hub.record_error(None, None)
        assert hub.tenants["t"].good_total == 0

    def test_synthetic_report_deterministic(self, cfg):
        from repro.simulator import Simulator

        def run():
            sim = Simulator()
            hub = HealthHub(sim, ["s0", "s1"], ["a", "b"], cfg=cfg)

            def feed(i):
                hub.record_server_rtt(0, 100.0 + i % 5)
                hub.record_server_rtt(1, 110.0 if i < 30 else 2_000.0)
                hub.record_request("a", 150.0)
                hub.record_request("b", 5_000.0 if i % 3 else 100.0)
                if i % 11 == 0:
                    hub.record_error("b", 1)

            _drive(sim, hub, feed, steps=80)
            return hub.report()

        assert json.dumps(run(), sort_keys=True) == json.dumps(
            run(), sort_keys=True
        )


class TestHealthConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            HealthConfig(tick_usec=0.0)
        with pytest.raises(ValueError):
            HealthConfig(window_usec=1.0, tick_usec=10.0)
        with pytest.raises(ValueError):
            HealthConfig(slo_quantile=100.0)
        with pytest.raises(ValueError):
            HealthConfig(slo_availability=0.0)
        with pytest.raises(ValueError):
            HealthConfig(anomaly_consecutive=0)


@pytest.fixture(scope="session")
def failslow_result():
    from repro.experiments import cluster_failslow_config
    from repro.runner import run_scenario

    return run_scenario(cluster_failslow_config(CLUSTER_SCALE))


@pytest.fixture(scope="session")
def fair_health_result():
    from repro.experiments import cluster_fair_config
    from repro.runner import run_scenario

    return run_scenario(cluster_fair_config(CLUSTER_SCALE))


class TestFailSlowAcceptance:
    def test_detector_flags_exactly_the_degraded_server(self, failslow_result):
        health = failslow_result.health
        assert health["flagged_servers"] == ["mem1"]
        flagged_at = health["servers"]["mem1"]["flagged_at_usec"]
        assert DEGRADE_START <= flagged_at <= DEGRADE_END
        for name in ("mem0", "mem2"):
            srv = health["servers"][name]
            assert not srv["flagged"]
            assert srv["peak_score"] < HealthConfig().anomaly_threshold

    def test_victim_tenants_breach_with_burn_timeline(self, failslow_result):
        health = failslow_result.health
        assert health["breached_tenants"] == ["t0", "t1", "t2"]
        starts = [
            b for b in health["breach_timeline"]
            if b["slo"] == "latency_p99" and b["edge"] == "start"
        ]
        assert len(starts) == 3
        # the degrade window is where the budget burns
        assert all(
            DEGRADE_START <= b["t_usec"] <= DEGRADE_END + 100_000.0
            for b in starts
        )
        assert health["burn_timeline"]
        assert all(
            e["burn_rate"] > 0 for e in health["burn_timeline"]
        )
        for t in health["tenants"].values():
            assert t["peak_burn_rate"] > 1.0
            assert not t["slo_met"]

    def test_slo_and_health_series_registered(self, failslow_result):
        names = set(failslow_result.registry.names())
        for tenant in ("t0", "t1", "t2"):
            assert f"obs.slo.{tenant}.p99_usec" in names
            assert f"obs.slo.{tenant}.burn_rate" in names
            assert f"obs.slo.{tenant}.availability" in names
        for srv in ("mem0", "mem1", "mem2"):
            assert f"obs.health.server.{srv}.ewma_usec" in names
            assert f"obs.health.server.{srv}.score" in names
            assert f"obs.health.server.{srv}.status" in names

    def test_no_invariant_violations(self, failslow_result):
        assert failslow_result.invariant_violations == []

    def test_replay_byte_identical(self, failslow_result):
        from repro.experiments import cluster_failslow_config
        from repro.runner import run_scenario

        second = run_scenario(cluster_failslow_config(CLUSTER_SCALE))
        assert json.dumps(second.health, sort_keys=True) == json.dumps(
            failslow_result.health, sort_keys=True
        )

    def test_health_survives_pickling(self, failslow_result):
        clone = pickle.loads(pickle.dumps(failslow_result))
        assert clone.health == failslow_result.health
        # results cached before the field existed still unpickle
        state = failslow_result.__getstate__()
        state.pop("health")
        old = object.__new__(type(failslow_result))
        old.__setstate__(state)
        assert old.health == {}

    def test_fault_free_run_stays_quiet(self, fair_health_result):
        health = fair_health_result.health
        assert health["flagged_servers"] == []
        assert health["breached_tenants"] == []
        assert health["breach_timeline"] == []
        assert all(t["slo_met"] for t in health["tenants"].values())
        assert all(
            s["status"] == "ok" for s in health["servers"].values()
        )

    def test_health_disabled_when_config_none(self):
        import dataclasses

        from repro.experiments import cluster_fair_config
        from repro.runner import run_scenario

        cfg = dataclasses.replace(cluster_fair_config(256), health=None)
        result = run_scenario(cfg)
        assert result.health == {}


class TestHealthCLI:
    def test_health_command_expect_breach(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "health.json"
        status = main([
            "health",
            "--scale", str(CLUSTER_SCALE),
            "--expect-breach",
            "--json", str(out),
        ])
        printed = capsys.readouterr().out
        assert status == 0
        assert "expected breach confirmed" in printed
        assert not (tmp_path / "health.json.tmp").exists()
        payload = json.loads(out.read_text())
        assert payload["health"]["flagged_servers"] == ["mem1"]
        assert payload["health"]["breached_tenants"] == ["t0", "t1", "t2"]
        assert payload["status"] == 0
        # the shared report writer emits stable key order + newline
        assert out.read_text().endswith("\n")
        assert list(payload) == sorted(payload)
