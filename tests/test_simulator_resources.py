"""Unit tests for Resource, Mutex, Store, WaitQueue, TokenBucket."""

from __future__ import annotations

import pytest

from repro.simulator import (
    Mutex,
    Resource,
    SimulationError,
    Store,
    TokenBucket,
    WaitQueue,
)


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, 0)

    def test_immediate_acquire(self, sim, runner):
        res = Resource(sim, 2)

        def proc(sim):
            yield res.acquire()
            return (res.available, res.in_use)

        assert runner(proc(sim)) == (1, 1)

    def test_blocks_when_exhausted(self, sim):
        res = Resource(sim, 1)
        order = []

        def holder(sim):
            yield res.acquire()
            yield sim.timeout(10)
            order.append("holder-release")
            res.release()

        def waiter(sim):
            yield res.acquire()
            order.append(f"waiter-got@{sim.now}")
            res.release()

        sim.spawn(holder(sim))
        p = sim.spawn(waiter(sim))
        sim.run(until=p)
        assert order == ["holder-release", "waiter-got@10.0"]

    def test_fifo_no_barging(self, sim):
        res = Resource(sim, 2)
        got = []

        def taker(sim, name, units):
            yield res.acquire(units)
            got.append(name)

        def setup(sim):
            yield res.acquire(2)  # drain
            sim.spawn(taker(sim, "big", 2))
            yield sim.timeout(1)
            sim.spawn(taker(sim, "small", 1))
            yield sim.timeout(1)
            # Release one unit: 'small' COULD run but 'big' is queued
            # first — FIFO means nobody proceeds yet.
            res.release(1)
            yield sim.timeout(1)
            assert got == []
            res.release(1)
            yield sim.timeout(1)
            assert got == ["big"]

        p = sim.spawn(setup(sim))
        sim.run(until=p)

    def test_acquire_more_than_capacity_rejected(self, sim):
        res = Resource(sim, 2)
        with pytest.raises(ValueError):
            res.acquire(3)

    def test_over_release_detected(self, sim):
        res = Resource(sim, 1)
        with pytest.raises(SimulationError):
            res.release()

    def test_try_acquire(self, sim):
        res = Resource(sim, 1)
        assert res.try_acquire()
        assert not res.try_acquire()
        res.release()
        assert res.try_acquire()

    def test_try_acquire_respects_waiters(self, sim, runner):
        res = Resource(sim, 1)

        def proc(sim):
            yield res.acquire()
            res.acquire()  # queue a waiter
            res.release()
            return res.try_acquire()

        # After release the queued waiter got the unit; try must fail.
        assert runner(proc(sim)) is False

    def test_utilization_accounting(self, sim):
        res = Resource(sim, 1)

        def proc(sim):
            yield res.acquire()
            yield sim.timeout(50)
            res.release()
            yield sim.timeout(50)

        p = sim.spawn(proc(sim))
        sim.run(until=p)
        assert res.utilization() == pytest.approx(0.5)

    def test_queue_length(self, sim, runner):
        res = Resource(sim, 1)

        def proc(sim):
            yield res.acquire()
            res.acquire()
            res.acquire()
            return res.queue_length

        assert runner(proc(sim)) == 2


class TestMutex:
    def test_mutual_exclusion(self, sim):
        m = Mutex(sim)
        inside = []

        def critical(sim, name):
            yield m.lock()
            inside.append(name)
            assert len(inside) == 1
            yield sim.timeout(5)
            inside.remove(name)
            m.unlock()

        procs = [sim.spawn(critical(sim, i)) for i in range(4)]
        sim.run_all(procs)

    def test_locked_property(self, sim, runner):
        m = Mutex(sim)

        def proc(sim):
            assert not m.locked
            yield m.lock()
            assert m.locked
            m.unlock()
            return m.locked

        assert runner(proc(sim)) is False


class TestStore:
    def test_put_then_get(self, sim, runner):
        st = Store(sim)
        st.put("a")
        st.put("b")

        def proc(sim):
            x = yield st.get()
            y = yield st.get()
            return (x, y)

        assert runner(proc(sim)) == ("a", "b")

    def test_get_blocks_until_put(self, sim):
        st = Store(sim)

        def getter(sim):
            item = yield st.get()
            return (item, sim.now)

        def putter(sim):
            yield sim.timeout(7)
            st.put("late")

        p = sim.spawn(getter(sim))
        sim.spawn(putter(sim))
        assert sim.run(until=p) == ("late", 7.0)

    def test_put_front(self, sim, runner):
        st = Store(sim)
        st.put("second")
        st.put_front("first")

        def proc(sim):
            return (yield st.get())

        assert runner(proc(sim)) == "first"

    def test_waiting_getters_fifo(self, sim):
        st = Store(sim)
        got = []

        def getter(sim, name):
            item = yield st.get()
            got.append((name, item))

        procs = [sim.spawn(getter(sim, i)) for i in range(3)]

        def putter(sim):
            yield sim.timeout(1)
            for item in "abc":
                st.put(item)

        sim.spawn(putter(sim))
        sim.run_all(procs)
        assert got == [(0, "a"), (1, "b"), (2, "c")]

    def test_try_get(self, sim):
        st = Store(sim)
        assert st.try_get() is None
        st.put(1)
        assert st.try_get() == 1

    def test_drain(self, sim):
        st = Store(sim)
        for i in range(5):
            st.put(i)
        assert st.drain() == [0, 1, 2, 3, 4]
        assert len(st) == 0

    def test_depth_tracking(self, sim):
        st = Store(sim)
        for i in range(3):
            st.put(i)
        st.try_get()
        assert st.max_depth == 3
        assert st.total_put == 3


class TestWaitQueue:
    def test_wake_one_fifo(self, sim):
        wq = WaitQueue(sim)
        woken = []

        def waiter(sim, name):
            yield wq.wait()
            woken.append(name)

        procs = [sim.spawn(waiter(sim, i)) for i in range(3)]

        def waker(sim):
            yield sim.timeout(1)
            wq.wake_one()
            yield sim.timeout(1)
            wq.wake_all()

        sim.spawn(waker(sim))
        sim.run_all(procs)
        assert woken == [0, 1, 2]

    def test_wake_with_no_waiters_lost_without_latch(self, sim):
        wq = WaitQueue(sim)
        assert wq.wake_one() is False

        def waiter(sim):
            yield wq.wait()  # would hang forever
            return "woke"

        p = sim.spawn(waiter(sim))
        sim.run()
        assert p.is_alive  # never woken: the wakeup was lost (by design)

    def test_latch_remembers_one_wakeup(self, sim, runner):
        wq = WaitQueue(sim, latch=True)
        wq.wake_one()

        def waiter(sim):
            yield wq.wait()  # latched token satisfies immediately
            return sim.now

        assert runner(waiter(sim)) == 0.0

    def test_latch_holds_single_token(self, sim):
        wq = WaitQueue(sim, latch=True)
        wq.wake_one()
        wq.wake_one()  # collapses into the same token

        def waiter(sim, out):
            yield wq.wait()
            out.append(sim.now)

        out: list[float] = []
        sim.spawn(waiter(sim, out))
        p2 = sim.spawn(waiter(sim, out))
        sim.run()
        assert out == [0.0]  # second waiter still asleep
        assert p2.is_alive

    def test_wake_value_passthrough(self, sim, runner):
        wq = WaitQueue(sim)

        def waiter(sim):
            v = yield wq.wait()
            return v

        def waker(sim):
            yield sim.timeout(1)
            wq.wake_one("payload")

        sim.spawn(waker(sim))
        assert runner(waiter(sim)) == "payload"


class TestTokenBucket:
    def test_needs_positive_tokens(self, sim):
        with pytest.raises(ValueError):
            TokenBucket(sim, 0)

    def test_acquire_release_cycle(self, sim, runner):
        tb = TokenBucket(sim, 3)

        def proc(sim):
            yield tb.acquire(2)
            assert tb.tokens == 1
            tb.release(2)
            return tb.tokens

        assert runner(proc(sim)) == 3

    def test_blocks_without_credit(self, sim):
        tb = TokenBucket(sim, 1)

        def user(sim):
            yield tb.acquire()
            yield sim.timeout(10)
            tb.release()

        def waiter(sim):
            yield tb.acquire()
            return sim.now

        sim.spawn(user(sim))
        p = sim.spawn(waiter(sim))
        assert sim.run(until=p) == 10.0
        assert tb.stall_count == 1

    def test_overflow_release_detected(self, sim):
        tb = TokenBucket(sim, 2)
        with pytest.raises(SimulationError):
            tb.release()

    def test_fifo_handoff(self, sim):
        tb = TokenBucket(sim, 2)
        got = []

        def taker(sim, name, n):
            yield tb.acquire(n)
            got.append(name)

        def setup(sim):
            yield tb.acquire(2)
            sim.spawn(taker(sim, "two", 2))
            yield sim.timeout(1)
            sim.spawn(taker(sim, "one", 1))
            yield sim.timeout(1)
            tb.release(1)  # head needs 2: nobody runs
            yield sim.timeout(1)
            assert got == []
            tb.release(1)
            yield sim.timeout(1)
            assert got == ["two"]

        p = sim.spawn(setup(sim))
        sim.run(until=p)


class TestInterruptedWaiters:
    """Interrupting a process that waits in a queue must not leak the
    capacity that would later have been granted to it."""

    def test_resource_skips_abandoned_waiter(self, sim):
        from repro.simulator import Interrupted

        res = Resource(sim, 1)
        got = []

        def holder(sim):
            yield res.acquire()
            yield sim.timeout(10)
            res.release()

        def doomed(sim):
            try:
                yield res.acquire()
                got.append("doomed")  # must never run
                res.release()
            except Interrupted:
                return "killed"

        def patient(sim):
            yield res.acquire()
            got.append("patient")
            res.release()

        sim.spawn(holder(sim))
        d = sim.spawn(doomed(sim))
        p = sim.spawn(patient(sim))

        def killer(sim):
            yield sim.timeout(5)
            d.interrupt("cancel")

        sim.spawn(killer(sim))
        sim.run(until=p)
        assert got == ["patient"]
        assert res.available == 1  # no capacity leaked

    def test_tokenbucket_skips_abandoned_waiter(self, sim):
        from repro.simulator import Interrupted

        tb = TokenBucket(sim, 1)
        got = []

        def holder(sim):
            yield tb.acquire()
            yield sim.timeout(10)
            tb.release()

        def doomed(sim):
            try:
                yield tb.acquire()
                got.append("doomed")
            except Interrupted:
                pass

        def patient(sim):
            yield tb.acquire()
            got.append("patient")
            tb.release()

        sim.spawn(holder(sim))
        d = sim.spawn(doomed(sim))
        p = sim.spawn(patient(sim))
        sim.schedule_call(5.0, lambda: d.interrupt())
        sim.run(until=p)
        assert got == ["patient"]
        assert tb.tokens == 1

    def test_store_skips_abandoned_getter(self, sim):
        from repro.simulator import Interrupted

        st = Store(sim)
        got = []

        def doomed(sim):
            try:
                item = yield st.get()
                got.append(("doomed", item))
            except Interrupted:
                pass

        def patient(sim):
            item = yield st.get()
            got.append(("patient", item))

        d = sim.spawn(doomed(sim))
        p = sim.spawn(patient(sim))

        def producer(sim):
            yield sim.timeout(5)
            d.interrupt()
            yield sim.timeout(1)
            st.put("item")

        sim.spawn(producer(sim))
        sim.run(until=p)
        assert got == [("patient", "item")]

    def test_waitqueue_skips_abandoned_waiter(self, sim):
        from repro.simulator import Interrupted

        wq = WaitQueue(sim)
        got = []

        def doomed(sim):
            try:
                yield wq.wait()
                got.append("doomed")
            except Interrupted:
                pass

        def patient(sim):
            yield wq.wait()
            got.append("patient")

        d = sim.spawn(doomed(sim))
        p = sim.spawn(patient(sim))
        sim.schedule_call(5.0, lambda: d.interrupt())
        sim.schedule_call(6.0, lambda: wq.wake_one())
        sim.run(until=p)
        assert got == ["patient"]
