"""Integration tests asserting the paper's qualitative results.

These run the full system at 1/32 of the paper's sizes (seconds of wall
time) and assert the *shape* of every figure: orderings, crossovers and
rough magnitudes.  Exact paper-vs-measured numbers live in
EXPERIMENTS.md; these tests guarantee the shapes cannot silently rot.
"""

from __future__ import annotations

import pytest

from repro import (
    HPBD,
    LocalDisk,
    LocalMemory,
    NBD,
    QuicksortWorkload,
    ScenarioConfig,
    TestswapWorkload,
    run_scenario,
)
from repro.analysis import cluster_requests
from repro.units import GiB, KiB, MiB

SCALE = 32


def cfg(workloads, device, mem, swap=GiB // SCALE):
    return ScenarioConfig(
        workloads,
        device,
        mem_bytes=mem,
        swap_bytes=0 if isinstance(device, LocalMemory) else swap,
        mem_reserved_bytes=24 * MiB // SCALE,
    )


@pytest.fixture(scope="module")
def testswap_results():
    out = {}
    for dev in (LocalMemory(), HPBD(), NBD("ipoib"), NBD("gige"), LocalDisk()):
        w = TestswapWorkload(size_bytes=GiB // SCALE)
        mem = 2 * GiB // SCALE if isinstance(dev, LocalMemory) else 512 * MiB // SCALE
        out[dev.label] = run_scenario(cfg([w], dev, mem))
    return out


@pytest.fixture(scope="module")
def quicksort_results():
    out = {}
    for dev in (LocalMemory(), HPBD(), NBD("ipoib"), NBD("gige"), LocalDisk()):
        w = QuicksortWorkload(nelems=256 * 1024 * 1024 // SCALE)
        mem = 2 * GiB // SCALE if isinstance(dev, LocalMemory) else 512 * MiB // SCALE
        out[dev.label] = run_scenario(cfg([w], dev, mem))
    return out


class TestFig5Testswap:
    def test_device_ordering(self, testswap_results):
        r = testswap_results
        assert (
            r["local"].elapsed_usec
            < r["hpbd"].elapsed_usec
            < r["nbd-ipoib"].elapsed_usec
            < r["nbd-gige"].elapsed_usec
            < r["disk"].elapsed_usec
        )

    def test_hpbd_close_to_local(self, testswap_results):
        # Paper: local memory only 1.45x faster than HPBD.
        ratio = testswap_results["hpbd"].slowdown_vs(testswap_results["local"])
        assert 1.1 < ratio < 2.0

    def test_hpbd_beats_disk_clearly(self, testswap_results):
        # Paper: HPBD 2.2x faster than disk on testswap.
        ratio = testswap_results["disk"].slowdown_vs(testswap_results["hpbd"])
        assert ratio > 1.5

    def test_hpbd_beats_ipoib(self, testswap_results):
        # Paper: 1.29x — TCP over the same wire loses to native verbs.
        ratio = testswap_results["nbd-ipoib"].slowdown_vs(
            testswap_results["hpbd"]
        )
        assert ratio > 1.05

    def test_testswap_is_writeonly(self, testswap_results):
        r = testswap_results["hpbd"]
        assert r.swapout_pages > 0
        assert r.swapin_pages == 0


class TestFig6RequestSizes:
    def test_write_requests_near_128k(self, testswap_results):
        """'testswap involves mostly ... messages around 120K'."""
        r = testswap_results["hpbd"]
        assert r.mean_write_request > 100 * KiB

    def test_clusters_have_large_means(self, testswap_results):
        r = testswap_results["hpbd"]
        clusters = cluster_requests(r.request_trace, op="write")
        assert len(clusters) >= 3
        big = [c for c in clusters if c.mean_bytes > 100 * KiB]
        assert len(big) / len(clusters) > 0.8


class TestFig7Quicksort:
    def test_device_ordering(self, quicksort_results):
        r = quicksort_results
        assert (
            r["local"].elapsed_usec
            < r["hpbd"].elapsed_usec
            < r["nbd-ipoib"].elapsed_usec
            < r["nbd-gige"].elapsed_usec
            < r["disk"].elapsed_usec
        )

    def test_disk_catastrophic(self, quicksort_results):
        # Paper: HPBD 4.5x faster than disk for quick sort.
        ratio = quicksort_results["disk"].slowdown_vs(quicksort_results["hpbd"])
        assert ratio > 2.5

    def test_quicksort_swaps_both_ways(self, quicksort_results):
        r = quicksort_results["hpbd"]
        assert r.swapin_pages > 0
        assert r.swapout_pages > 0

    def test_reads_are_readahead_clusters(self, quicksort_results):
        r = quicksort_results["hpbd"]
        # mean read request ≈ read-ahead window (32 KiB), well below the
        # 128 KiB write clusters
        assert 8 * KiB <= r.mean_read_request <= 64 * KiB
        assert r.mean_write_request > r.mean_read_request


class TestFig10MultiServer:
    @pytest.fixture(scope="class")
    def by_servers(self):
        out = {}
        for n in (1, 4, 16):
            w = QuicksortWorkload(nelems=256 * 1024 * 1024 // SCALE)
            out[n] = run_scenario(
                cfg([w], HPBD(nservers=n), 512 * MiB // SCALE)
            )
        return out

    def test_flat_through_moderate_counts(self, by_servers):
        # "HPBD performs similarly up to 8 servers"
        ratio = by_servers[4].slowdown_vs(by_servers[1])
        assert 0.95 < ratio < 1.05

    def test_degradation_at_16(self, by_servers):
        # "For 16 nodes server there is some degradation"
        ratio = by_servers[16].slowdown_vs(by_servers[1])
        assert 1.01 < ratio < 1.3

    def test_data_distributed_across_servers(self):
        w = TestswapWorkload(size_bytes=GiB // SCALE)
        from repro.runner import build_scenario

        scn = build_scenario(cfg([w], HPBD(nservers=4), 512 * MiB // SCALE))
        scn.run()
        stored = [s.ramdisk.pages_stored for s in scn.hpbd_servers]
        assert sum(1 for s in stored if s > 0) >= 2  # blocking layout fills chunks in order


class TestSec62HostOverheadDominates:
    def test_hpbd_network_share_below_tcp_shares(self, testswap_results):
        """The paper's conclusion: for HPBD the wire is a small share of
        the swap overhead; for TCP transports it is much larger."""
        from repro.analysis.amdahl import direct_network_fraction, tcp_wire_cost
        from repro.net import GIGE_DEFAULT, IB_DEFAULT

        local = testswap_results["local"]
        gige_f = direct_network_fraction(
            testswap_results["nbd-gige"], local, tcp_wire_cost(GIGE_DEFAULT)
        )
        hpbd_f = direct_network_fraction(
            testswap_results["hpbd"],
            local,
            lambda n: IB_DEFAULT.rdma_write_cost(n),
        )
        assert hpbd_f < gige_f


class TestSeedRobustness:
    def test_quicksort_result_stable_across_seeds(self):
        """The headline result must not hinge on pivot luck: different
        quicksort seeds stay within a modest band (at 1/32 scale the
        pivot RNG matters more than at full size, where the spread
        shrinks below a few percent)."""
        times = []
        for seed in (1, 2, 3):
            w = QuicksortWorkload(nelems=256 * 1024 * 1024 // SCALE, seed=seed)
            r = run_scenario(cfg([w], HPBD(), 512 * MiB // SCALE))
            times.append(r.elapsed_usec)
        spread = (max(times) - min(times)) / min(times)
        assert spread < 0.20
