"""Heap-vs-wheel scheduler equivalence across every sweep scenario.

The calendar-queue scheduler is only allowed to exist because it is
*observationally identical* to the reference binary heap: same event
order, same clock, same counters, same blame, same health verdicts.
This module is the enforcement: every ``SWEEPS`` family runs under both
schedulers (traced, so per-request blame and invariant monitors are in
play) and the results must match field for field — including the pickled
result bytes, the same fingerprint the sweep cache stores.

A replay-check-style test re-runs the fault grid twice under the wheel
to catch nondeterminism *within* a scheduler, not just between them.
"""

from __future__ import annotations

import pickle

import pytest

from repro.experiments import SWEEPS
from repro.runner import run_scenario

SCALE = 64

#: points per family — the grids are large (cluster is clients x servers
#: x placement); the first/middle/last slice exercises every builder's
#: config shapes without running the whole grid twice per scheduler.
MAX_POINTS = 3


def _select_points(name):
    builder, _desc = SWEEPS[name]
    points = builder(SCALE)
    if len(points) <= MAX_POINTS:
        return points
    return [points[0], points[len(points) // 2], points[-1]]


def _run(cfg, scheduler, monkeypatch, trace=True):
    monkeypatch.setenv("REPRO_SCHEDULER", scheduler)
    return run_scenario(cfg, trace=trace)


def _fingerprint(result):
    """The cache's view of a result: pickled with the live trace dropped."""
    return pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)


def _assert_identical(name, heap, wheel):
    assert heap.elapsed_usec == wheel.elapsed_usec, name
    assert heap.swapout_pages == wheel.swapout_pages, name
    assert heap.swapin_pages == wheel.swapin_pages, name
    assert heap.request_trace == wheel.request_trace, name
    assert heap.network_bytes == wheel.network_bytes, name
    assert heap.client_copy_usec == wheel.client_copy_usec, name
    assert heap.blame_usec == wheel.blame_usec, name
    assert heap.invariant_violations == wheel.invariant_violations, name
    assert heap.monitor_watermarks == wheel.monitor_watermarks, name
    assert heap.health == wheel.health, name
    assert (heap.read_request_bytes == wheel.read_request_bytes).all()
    assert (heap.write_request_bytes == wheel.write_request_bytes).all()
    assert _fingerprint(heap) == _fingerprint(wheel), name


@pytest.mark.parametrize("family", sorted(SWEEPS))
def test_sweep_family_identical_under_both_schedulers(family, monkeypatch):
    for point in _select_points(family):
        heap = _run(point.cfg, "heap", monkeypatch)
        wheel = _run(point.cfg, "wheel", monkeypatch)
        _assert_identical(point.name, heap, wheel)


def test_fault_grid_replay_stable_under_wheel(monkeypatch):
    """--replay-check semantics: same config, same scheduler, twice.

    The fault grid is the adversarial case — recovery timers, crash
    windows, failovers — where a nondeterministic scheduler would show
    first.  Two wheel runs must be byte-identical.
    """
    point = _select_points("faults")[-1]
    first = _run(point.cfg, "wheel", monkeypatch)
    second = _run(point.cfg, "wheel", monkeypatch)
    _assert_identical(point.name, first, second)


def test_traced_and_untraced_clocks_agree(monkeypatch):
    """Tracing disables the fluid fast path and adds span recording;
    neither may move the simulated clock."""
    point = _select_points("fig07")[0]
    for scheduler in ("heap", "wheel"):
        traced = _run(point.cfg, scheduler, monkeypatch, trace=True)
        bare = _run(point.cfg, scheduler, monkeypatch, trace=False)
        assert traced.elapsed_usec == bare.elapsed_usec
        assert traced.swapout_pages == bare.swapout_pages
        assert traced.swapin_pages == bare.swapin_pages
