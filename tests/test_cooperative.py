"""Tests for the cooperative idle-memory extension (§7 future work)."""

from __future__ import annotations

import pytest

from repro.hpbd import HPBDClient, HPBDServer, MemoryBroker, WeightedDistribution
from repro.kernel import Node
from repro.simulator import SimulationError
from repro.units import KiB, MiB, PAGE_SIZE


class TestWeightedDistribution:
    def test_unequal_shares_layout(self):
        d = WeightedDistribution([2 * MiB, MiB, 4 * MiB])
        assert d.total_bytes == 7 * MiB
        assert d.locate(0) == (0, 0)
        assert d.locate(2 * MiB) == (1, 0)
        assert d.locate(3 * MiB) == (2, 0)
        assert d.locate(7 * MiB - 1) == (2, 4 * MiB - 1)

    def test_split_covers_extent(self):
        d = WeightedDistribution([MiB, 3 * MiB])
        segs = d.split(MiB - 64 * KiB, 128 * KiB)
        assert len(segs) == 2
        assert segs[0].server == 0 and segs[0].nbytes == 64 * KiB
        assert segs[1].server == 1 and segs[1].server_offset == 0
        assert sum(s.nbytes for s in segs) == 128 * KiB

    def test_share_of(self):
        d = WeightedDistribution([MiB, 2 * MiB])
        assert d.share_of(0) == MiB
        assert d.share_of(1) == 2 * MiB

    def test_validation(self):
        with pytest.raises(ValueError):
            WeightedDistribution([])
        with pytest.raises(ValueError):
            WeightedDistribution([MiB, 0])
        with pytest.raises(ValueError):
            WeightedDistribution([MiB + 1])  # unaligned
        d = WeightedDistribution([MiB])
        with pytest.raises(ValueError):
            d.locate(MiB)
        with pytest.raises(ValueError):
            d.split(0, 0)


class TestMemoryBroker:
    def test_advertise_applies_self_reserve(self, sim):
        broker = MemoryBroker(sim, self_reserve_bytes=64 * MiB)
        ad = broker.advertise("n1", 100 * MiB)
        assert ad.idle_bytes == 36 * MiB
        assert broker.idle_of("n1") == 36 * MiB

    def test_poor_node_advertises_zero(self, sim):
        broker = MemoryBroker(sim, self_reserve_bytes=64 * MiB)
        ad = broker.advertise("n1", 32 * MiB)
        assert ad.idle_bytes == 0

    def test_selection_is_richest_first(self, sim):
        broker = MemoryBroker(sim, self_reserve_bytes=0)
        broker.advertise("poor", 8 * MiB)
        broker.advertise("rich", 64 * MiB)
        broker.advertise("mid", 32 * MiB)
        chosen = broker.select_servers(70 * MiB)
        assert [n for n, _s in chosen] == ["rich", "mid"]
        assert chosen[0][1] == 64 * MiB
        assert chosen[1][1] == 6 * MiB

    def test_grants_reserve_memory(self, sim):
        broker = MemoryBroker(sim, self_reserve_bytes=0)
        broker.advertise("a", 32 * MiB)
        broker.select_servers(8 * MiB)
        assert broker.idle_of("a") == 24 * MiB
        broker.release("a", 8 * MiB)
        assert broker.idle_of("a") == 32 * MiB

    def test_insufficient_cluster_raises(self, sim):
        broker = MemoryBroker(sim, self_reserve_bytes=0)
        broker.advertise("a", 8 * MiB)
        with pytest.raises(SimulationError, match="cannot lend"):
            broker.select_servers(16 * MiB)

    def test_max_servers_bound(self, sim):
        broker = MemoryBroker(sim, self_reserve_bytes=0)
        for i in range(10):
            broker.advertise(f"n{i}", 4 * MiB)
        with pytest.raises(SimulationError):
            broker.select_servers(36 * MiB, max_servers=8)

    def test_bad_request_sizes(self, sim):
        broker = MemoryBroker(sim, self_reserve_bytes=0)
        with pytest.raises(ValueError):
            broker.select_servers(0)
        with pytest.raises(ValueError):
            broker.select_servers(PAGE_SIZE + 1)

    def test_withdraw(self, sim):
        broker = MemoryBroker(sim, self_reserve_bytes=0)
        broker.advertise("a", 8 * MiB)
        broker.withdraw("a")
        assert broker.total_idle == 0


class TestCooperativeEndToEnd:
    def test_broker_built_device_serves_swap(self, sim, fabric):
        """Full path: advertisements -> broker selection -> weighted
        HPBD device -> real swap traffic lands proportionally."""
        broker = MemoryBroker(sim, self_reserve_bytes=0)
        broker.advertise("mem0", 24 * MiB)
        broker.advertise("mem1", 8 * MiB)
        chosen = broker.select_servers(32 * MiB)
        servers = [
            HPBDServer(sim, fabric, name, store_bytes=share)
            for name, share in chosen
        ]
        dist = WeightedDistribution([share for _n, share in chosen])
        node = Node(sim, fabric, "client", mem_bytes=16 * MiB)
        client = HPBDClient(
            sim, node, servers, total_bytes=32 * MiB, distribution=dist
        )
        sim.run(until=sim.spawn(client.connect()))
        node.swapon(client.queue, 32 * MiB)
        aspace = node.vmm.create_address_space((28 * MiB) // PAGE_SIZE, "a")

        def app(sim):
            for start in range(0, aspace.npages, 64):
                stop = min(start + 64, aspace.npages)
                yield from node.vmm.touch_run(aspace, start, stop, write=True)
            yield from node.vmm.quiesce()

        sim.run(until=sim.spawn(app(sim)))
        stored = [s.ramdisk.pages_stored for s in servers]
        # The first (richest) server holds the front of the device and
        # takes the bulk of the sequential page-out stream.
        assert stored[0] > 0
        assert sum(stored) * PAGE_SIZE <= 32 * MiB
        node.vmm.check_frame_accounting()

    def test_distribution_mismatch_rejected(self, sim, fabric):
        node = Node(sim, fabric, "c", mem_bytes=16 * MiB)
        srv = HPBDServer(sim, fabric, "m", store_bytes=8 * MiB)
        with pytest.raises(ValueError, match="covers"):
            HPBDClient(
                sim, node, [srv], total_bytes=8 * MiB,
                distribution=WeightedDistribution([4 * MiB]),
            )
        with pytest.raises(ValueError, match="names"):
            HPBDClient(
                sim, node, [srv], total_bytes=8 * MiB,
                distribution=WeightedDistribution([4 * MiB, 4 * MiB]),
            )
