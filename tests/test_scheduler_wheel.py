"""Calendar-queue scheduler edge cases the equivalence sweep can't hit.

The sweep harness (test_scheduler_equivalence) proves heap and wheel
agree on realistic workloads; this module aims the wheel's internals at
the boundaries where a calendar queue classically goes wrong — bucket
edges, far-future cascades, empty-wheel spins, tombstone reuse — and at
the ordering contract (same-timestamp FIFO within and across priority
bands) both schedulers must uphold.
"""

from __future__ import annotations

import pytest

from repro.simulator import NORMAL, URGENT, Simulator
from repro.simulator.core import _NBUCKETS, _W
from repro.simulator.errors import SimulationError

pytestmark = pytest.mark.parametrize("scheduler", ["heap", "wheel"])


def make_sim(scheduler):
    return Simulator(scheduler=scheduler)


class TestSameTimestampOrdering:
    def test_fifo_within_priority(self, scheduler):
        sim = make_sim(scheduler)
        order = []
        for i in range(16):
            sim.schedule_call(5.0, lambda i=i: order.append(i))
        sim.run()
        assert order == list(range(16))

    def test_urgent_beats_normal_at_same_instant(self, scheduler):
        sim = make_sim(scheduler)
        order = []
        # interleave posts: normal, urgent, normal, urgent ...
        for i in range(8):
            sim.schedule_call(5.0, lambda i=i: order.append(("n", i)), NORMAL)
            sim.schedule_call(5.0, lambda i=i: order.append(("u", i)), URGENT)
        sim.run()
        # all urgent first (in post order), then all normal (in post order)
        assert order == [("u", i) for i in range(8)] + [("n", i) for i in range(8)]

    def test_priority_bands_spanning_bucket_boundary(self, scheduler):
        """Same-instant ordering must hold at a bucket edge exactly."""
        sim = make_sim(scheduler)
        edge = _W * 3  # exactly on a bucket boundary
        order = []
        sim.schedule_call(edge, lambda: order.append("n"), NORMAL)
        sim.schedule_call(edge, lambda: order.append("u"), URGENT)
        sim.run()
        assert order == ["u", "n"]
        assert sim.now == edge


class TestTombstones:
    def test_cancel_then_fire_is_skipped_and_pooled(self, scheduler):
        sim = make_sim(scheduler)
        fired = []

        def proc(sim):
            yield sim.timeout(10.0)
            fired.append(sim.now)

        victim = sim.timeout(5.0)
        victim.callbacks.append(lambda e: fired.append("victim"))
        victim.cancel()
        del victim  # recycling is refcount-gated; drop our handle
        sim.spawn(proc(sim))
        sim.run()
        assert fired == [10.0]
        # the tombstone was recycled into the pool, not leaked
        assert len(sim._timeout_pool) >= 1

    def test_cancelled_event_does_not_advance_clock(self, scheduler):
        sim = make_sim(scheduler)
        t = sim.timeout(50.0)
        t.cancel()
        sim.timeout(5.0)
        sim.run()
        assert sim.now == 5.0

    def test_pool_reuse_after_cancel(self, scheduler):
        """A cancelled-then-recycled Timeout must rearm clean."""
        sim = make_sim(scheduler)
        t = sim.timeout(3.0)
        t.cancel()
        del t  # recycling is refcount-gated; drop our handle
        sim.run()
        assert len(sim._timeout_pool) == 1
        reused = sim.timeout(7.0)  # LIFO pool hands the tombstone back
        assert len(sim._timeout_pool) == 0
        assert not reused.cancelled
        fired = []
        reused.callbacks.append(lambda e: fired.append(sim.now))
        sim.run()
        assert fired == [7.0]

    def test_cancel_processed_event_is_noop(self, scheduler):
        sim = make_sim(scheduler)
        t = sim.timeout(1.0)
        done = []
        t.callbacks.append(lambda e: done.append(1))
        sim.run()
        t.cancel()  # already processed: silently ignored
        assert done == [1]

    def test_cancel_owned_event_raises(self, scheduler):
        """An event a process is blocked on cannot be tombstoned — that
        would strand the generator forever."""
        sim = make_sim(scheduler)
        gate = sim.event("gate")

        def proc(sim):
            yield gate

        sim.spawn(proc(sim))
        sim.run()  # init event fires; proc is parked on gate
        with pytest.raises(SimulationError):
            gate.cancel()
        gate.succeed()  # unstick for a clean teardown
        sim.run()


class TestFarFutureCascade:
    def test_beyond_horizon_lands_and_fires_in_order(self, scheduler):
        """Entries past the wheel horizon park in the overflow heap and
        cascade back in as the wheel turns."""
        sim = make_sim(scheduler)
        horizon = _NBUCKETS * _W
        times = [horizon * 3 + 1.0, horizon + 0.5, horizon * 2, 3.0, horizon - 0.1]
        fired = []
        for t in times:
            sim.schedule_call(t, lambda t=t: fired.append(t))
        sim.run()
        assert fired == sorted(times)
        assert sim.now == max(times)

    def test_cascade_boundary_exact_horizon(self, scheduler):
        """An entry exactly at the horizon is far-future; one at
        horizon - epsilon is wheel-resident.  Both must fire, in order."""
        sim = make_sim(scheduler)
        horizon = _NBUCKETS * _W
        fired = []
        sim.schedule_call(horizon, lambda: fired.append("at"))
        sim.schedule_call(horizon - 1e-9, lambda: fired.append("below"))
        sim.run()
        assert fired == ["below", "at"]

    def test_interleaved_near_and_far(self, scheduler):
        """A process sleeping short intervals while far-future timers
        exist: every cascade must preserve the global order."""
        sim = make_sim(scheduler)
        horizon = _NBUCKETS * _W
        fired = []
        for k in range(1, 6):
            sim.schedule_call(horizon * k + 0.25, lambda k=k: fired.append(("far", k)))

        def ticker(sim):
            for i in range(int(horizon * 5 / 100.0) + 10):
                yield sim.timeout(100.0)
                fired.append(("tick", sim.now))

        sim.spawn(ticker(sim))
        sim.run()
        # reconstruct expected order by time (ticks at i*100, fars at k*horizon+.25)
        expected = sorted(
            [(k * horizon + 0.25, ("far", k)) for k in range(1, 6)]
            + [((i + 1) * 100.0, ("tick", (i + 1) * 100.0))
               for i in range(int(horizon * 5 / 100.0) + 10)],
            key=lambda kv: kv[0],
        )
        assert fired == [tag for _, tag in expected]


class TestEmptyWheelSpin:
    def test_far_only_jump_does_not_walk_buckets(self, scheduler):
        """With nothing on the wheel and one far-future entry, the
        scheduler must jump straight to it (guard against O(gap/width)
        bucket walking)."""
        sim = make_sim(scheduler)
        fired = []
        sim.schedule_call(1e9, lambda: fired.append(sim.now))  # ~125M buckets away
        sim.run()
        assert fired == [1e9]
        assert sim.now == 1e9

    def test_sparse_repeated_jumps(self, scheduler):
        sim = make_sim(scheduler)
        fired = []

        def proc(sim):
            for _ in range(50):
                yield sim.timeout(1e7)  # each sleep is ~2441 bucket widths
                fired.append(sim.now)

        sim.spawn(proc(sim))
        sim.run()
        assert len(fired) == 50
        assert fired[-1] == pytest.approx(50e7)

    def test_time_warp_then_dense_traffic(self, scheduler):
        """After a huge solo jump, new near-term entries must land in
        valid buckets (bucket ordinals are absolute, not wrapped state)."""
        sim = make_sim(scheduler)
        fired = []

        def proc(sim):
            yield sim.timeout(1e8)
            for i in range(200):
                yield sim.timeout(0.5)
                fired.append(sim.now)

        sim.spawn(proc(sim))
        sim.run()
        assert len(fired) == 200
        assert fired[-1] == pytest.approx(1e8 + 100.0)


class TestRunUntilMarker:
    def test_run_until_deadline_between_events(self, scheduler):
        sim = make_sim(scheduler)
        fired = []
        sim.schedule_call(3.0, lambda: fired.append(3.0))
        sim.schedule_call(9.0, lambda: fired.append(9.0))
        sim.run(until=5.0)
        assert fired == [3.0]
        assert sim.now == 5.0
        sim.run()
        assert fired == [3.0, 9.0]

    def test_run_until_same_instant_as_event(self, scheduler):
        """Events at exactly the deadline still fire (marker sorts after
        every real priority at that instant)."""
        sim = make_sim(scheduler)
        fired = []
        sim.schedule_call(5.0, lambda: fired.append("evt"))
        sim.run(until=5.0)
        assert fired == ["evt"]
        assert sim.now == 5.0

    def test_marker_not_counted_as_event(self, scheduler):
        sim = make_sim(scheduler)
        sim.schedule_call(1.0, lambda: None)
        before = sim.events_processed
        sim.run(until=10.0)
        assert sim.events_processed == before + 1


class TestEnvSelection:
    def test_env_var_selects_scheduler(self, scheduler, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", scheduler)
        sim = Simulator()
        assert sim.scheduler == scheduler

    def test_bad_scheduler_rejected(self, scheduler):
        with pytest.raises(ValueError):
            Simulator(scheduler="fibheap")
