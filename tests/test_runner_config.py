"""Unit + integration tests for scenario configuration and the runner."""

from __future__ import annotations

import pytest

from repro import (
    HPBD,
    LocalDisk,
    LocalMemory,
    NBD,
    ScenarioConfig,
    TestswapWorkload,
    build_scenario,
    run_scenario,
)
from repro.units import GiB, MiB


def small_workload():
    # Larger than the default 14 MiB of usable memory, so it swaps.
    return TestswapWorkload(size_bytes=24 * MiB)


def small_cfg(device, mem=16 * MiB, swap=32 * MiB):
    return ScenarioConfig(
        [small_workload()],
        device,
        mem_bytes=mem,
        swap_bytes=swap,
        mem_reserved_bytes=2 * MiB,
    )


class TestConfigValidation:
    def test_needs_workloads(self):
        with pytest.raises(ValueError):
            ScenarioConfig([], HPBD(), mem_bytes=16 * MiB)

    def test_memory_must_cover_reserve(self):
        with pytest.raises(ValueError):
            ScenarioConfig(
                [small_workload()], HPBD(), mem_bytes=MiB,
                mem_reserved_bytes=2 * MiB,
            )

    def test_local_memory_ignores_swap(self):
        cfg = ScenarioConfig(
            [small_workload()], LocalMemory(), mem_bytes=64 * MiB,
            swap_bytes=GiB, mem_reserved_bytes=2 * MiB,
        )
        assert cfg.swap_bytes == 0

    def test_nbd_transport_labels(self):
        assert NBD("gige").label == "nbd-gige"
        assert NBD("ipoib").label == "nbd-ipoib"
        with pytest.raises(ValueError):
            NBD("atm").params()

    def test_with_device(self):
        cfg = small_cfg(HPBD())
        cfg2 = cfg.with_device(LocalDisk())
        assert cfg2.label == "disk"
        assert cfg2.mem_bytes == cfg.mem_bytes

    def test_usable_memory(self):
        cfg = small_cfg(HPBD())
        assert cfg.usable_mem_bytes == 14 * MiB


class TestBuild:
    def test_hpbd_builds_servers(self):
        scn = build_scenario(small_cfg(HPBD(nservers=4)))
        assert len(scn.hpbd_servers) == 4
        assert scn.hpbd_client is not None
        assert scn.queue is scn.hpbd_client.queue

    def test_hpbd_server_store_covers_share(self):
        scn = build_scenario(small_cfg(HPBD(nservers=4)))
        share = scn.hpbd_servers[0].ramdisk.size
        assert share * 4 >= 32 * MiB

    def test_nbd_builds_single_server(self):
        scn = build_scenario(small_cfg(NBD("gige")))
        assert scn.nbd_client is not None
        assert scn.nbd_server is not None

    def test_disk_builds(self):
        scn = build_scenario(small_cfg(LocalDisk()))
        assert scn.disk is not None

    def test_local_requires_fit(self):
        with pytest.raises(ValueError):
            build_scenario(
                ScenarioConfig(
                    [small_workload()], LocalMemory(), mem_bytes=8 * MiB,
                    mem_reserved_bytes=2 * MiB,
                )
            )

    def test_swapless_device_config_rejected(self):
        with pytest.raises(ValueError):
            build_scenario(small_cfg(HPBD(), swap=0))


class TestRun:
    @pytest.mark.parametrize(
        "device",
        [LocalMemory(), HPBD(), HPBD(nservers=2), NBD("gige"),
         NBD("ipoib"), LocalDisk()],
        ids=["local", "hpbd1", "hpbd2", "gige", "ipoib", "disk"],
    )
    def test_every_device_completes(self, device):
        mem = 64 * MiB if isinstance(device, LocalMemory) else 16 * MiB
        result = run_scenario(small_cfg(device, mem=mem))
        assert result.elapsed_usec > 0
        assert len(result.instances) == 1
        assert result.instances[0].workload == "testswap"
        if not isinstance(device, LocalMemory):
            assert result.swapout_pages > 0
            assert result.mean_write_request > 0

    def test_local_never_swaps(self):
        result = run_scenario(small_cfg(LocalMemory(), mem=64 * MiB))
        assert result.swapout_pages == 0
        assert result.swapin_pages == 0
        assert len(result.request_trace) == 0

    def test_two_instances(self):
        cfg = ScenarioConfig(
            [small_workload(), small_workload()],
            HPBD(),
            mem_bytes=16 * MiB,
            swap_bytes=64 * MiB,
            mem_reserved_bytes=2 * MiB,
        )
        result = run_scenario(cfg)
        assert len(result.instances) == 2
        # wall time covers both instances
        assert result.elapsed_usec >= max(
            i.elapsed_usec for i in result.instances
        ) - 1e-6

    def test_network_bytes_reported_for_hpbd(self):
        result = run_scenario(small_cfg(HPBD()))
        assert result.network_bytes.get("rdma_read", 0) > 0
        assert result.network_bytes.get("ib_send", 0) > 0
        assert result.client_copy_usec > 0

    def test_network_bytes_reported_for_nbd(self):
        result = run_scenario(small_cfg(NBD("gige")))
        assert result.network_bytes.get("tcp_gige", 0) > 0

    def test_result_summary_string(self):
        result = run_scenario(small_cfg(HPBD()))
        s = result.summary()
        assert "hpbd" in s and "s" in s

    def test_slowdown_vs(self):
        local = run_scenario(small_cfg(LocalMemory(), mem=64 * MiB))
        disk = run_scenario(small_cfg(LocalDisk()))
        assert disk.slowdown_vs(local) > 1.0

    def test_determinism(self):
        a = run_scenario(small_cfg(HPBD()))
        b = run_scenario(small_cfg(HPBD()))
        assert a.elapsed_usec == b.elapsed_usec
        assert a.swapout_pages == b.swapout_pages
