"""Unit tests for the disk model and driver."""

from __future__ import annotations

import pytest

from repro.disk import DiskDevice, DiskModel, ST340014A
from repro.kernel.blockdev import Bio, WRITE
from repro.simulator import Event
from repro.units import MiB


class TestDiskModel:
    def test_sequential_stream_cheap(self):
        m = DiskModel()
        t1 = m.service_time(0, 256)
        t2 = m.service_time(256, 256)  # contiguous: no seek
        assert t2 < t1 or m.seeks == 0
        assert m.sequential_hits >= 1

    def test_far_seek_expensive(self):
        m = DiskModel()
        m.service_time(0, 256)
        near = m.service_time(256, 256)
        far = m.service_time(50_000_000, 256)
        assert far > near + 1000.0
        assert m.seeks == 1

    def test_seek_cost_grows_with_distance(self):
        p = ST340014A
        m = DiskModel(p)
        m.service_time(0, 8)
        t_short = m.service_time(100_000, 8)
        m2 = DiskModel(p)
        m2.service_time(0, 8)
        t_long = m2.service_time(10_000_000, 8)
        assert t_long > t_short

    def test_seek_capped_at_full_stroke(self):
        p = ST340014A
        m = DiskModel(p)
        m.service_time(0, 8)
        t = m.service_time(p.capacity_sectors - 8, 8)
        ceiling = (
            p.controller_overhead
            + p.max_seek
            + p.rot_miss_factor * p.rotation_usec
            + (8 * 512) / p.bytes_per_usec
        )
        assert t <= ceiling + 1e-9

    def test_transfer_scales_with_size(self):
        m = DiskModel()
        small = m.service_time(0, 8)
        m2 = DiskModel()
        large = m2.service_time(0, 256)
        assert large > small

    def test_head_position_tracked(self):
        m = DiskModel()
        m.service_time(100, 50)
        assert m.head == 150

    def test_bad_geometry_rejected(self):
        m = DiskModel()
        with pytest.raises(ValueError):
            m.service_time(-1, 8)
        with pytest.raises(ValueError):
            m.service_time(0, 0)

    def test_sequential_throughput_near_media_rate(self):
        """A pure sequential stream must achieve ~media rate — the
        regime that keeps testswap-on-disk only ~2.2x slower (Fig. 5)."""
        p = ST340014A
        m = DiskModel(p)
        total_time = 0.0
        nbytes = 0
        for i in range(100):
            total_time += m.service_time(i * 256, 256)
            nbytes += 256 * 512
        mb_s = nbytes / total_time
        assert mb_s > 0.7 * p.bytes_per_usec

    def test_alternating_regions_collapse(self):
        """Interleaved access to two distant regions (quick sort's
        read/write pattern) must collapse throughput several-fold."""
        p = ST340014A
        m = DiskModel(p)
        t_seq = sum(m.service_time(i * 256, 256) for i in range(40))
        m2 = DiskModel(p)
        t_alt = 0.0
        for i in range(20):
            t_alt += m2.service_time(i * 256, 256)
            t_alt += m2.service_time(10_000_000 + i * 256, 256)
        assert t_alt > 3.0 * t_seq


class TestDiskDevice:
    def test_serves_requests(self, sim, fabric):
        disk = DiskDevice(sim, swap_partition_bytes=64 * MiB)
        done = Event(sim)

        def proc(sim):
            disk.queue.submit_bio(Bio(op=WRITE, sector=0, nsectors=8, done=done))
            disk.queue.unplug()
            yield done
            return sim.now

        t = sim.run(until=sim.spawn(proc(sim)))
        assert t > 0
        assert disk.requests_served == 1
        assert disk.busy_usec > 0

    def test_one_at_a_time(self, sim):
        disk = DiskDevice(sim, swap_partition_bytes=64 * MiB)
        events = [Event(sim) for _ in range(4)]

        def proc(sim):
            for i, done in enumerate(events):
                disk.queue.submit_bio(
                    Bio(op=WRITE, sector=i * 10_000, nsectors=256, done=done)
                )
            disk.queue.unplug()
            for evt in events:
                yield evt
            return sim.now

        t = sim.run(until=sim.spawn(proc(sim)))
        # Four far-apart writes each pay seek+rotation: strictly serial.
        assert t >= 4 * (ST340014A.controller_overhead)
        assert disk.requests_served == 4

    def test_partition_bounds_respected(self, sim):
        disk = DiskDevice(sim, swap_partition_bytes=MiB)
        from repro.simulator import SimulationError

        with pytest.raises(SimulationError):
            disk.queue.submit_bio(
                Bio(op=WRITE, sector=(MiB // 512), nsectors=8, done=Event(sim))
            )
