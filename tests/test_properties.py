"""Property-based tests (hypothesis) on the core data structures."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.hpbd import BlockingDistribution, RegisteredPool
from repro.hpbd.ramdisk import RamDisk
from repro.kernel import PageLRU
from repro.kernel.vmm import AddressSpace
from repro.net.model import LinearCost, PiecewiseLinearCost
from repro.simulator import Simulator
from repro.units import KiB, MiB, PAGE_SIZE


# ---------------------------------------------------------------------------
# Registration buffer pool: the ledger always balances, free extents stay
# sorted/disjoint/non-adjacent, and everything freed makes the pool whole.
# ---------------------------------------------------------------------------


@st.composite
def pool_ops(draw):
    """A sequence of alloc sizes and free choices."""
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["alloc", "free"]),
                st.integers(min_value=1, max_value=256 * KiB),
            ),
            min_size=1,
            max_size=120,
        )
    )


class TestPoolProperties:
    @given(ops=pool_ops())
    @settings(max_examples=60, deadline=None)
    def test_invariants_hold_under_any_schedule(self, ops):
        sim = Simulator()
        pool = RegisteredPool(sim, size=MiB)
        live = []
        for kind, size in ops:
            if kind == "alloc":
                buf = pool.try_alloc(size)
                if buf is not None:
                    live.append(buf)
            elif live:
                # deterministic pseudo-random pick driven by size
                pool.free(live.pop(size % len(live)))
            pool.check_invariants()
        for buf in live:
            pool.free(buf)
        pool.check_invariants()
        assert pool.free_bytes == MiB
        assert pool.fragments == 1

    @given(sizes=st.lists(st.integers(1, 128 * KiB), min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_allocations_never_overlap(self, sizes):
        sim = Simulator()
        pool = RegisteredPool(sim, size=MiB)
        bufs = [b for b in (pool.try_alloc(s) for s in sizes) if b is not None]
        spans = sorted((b.offset, b.end) for b in bufs)
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    @given(size=st.integers(1, MiB))
    @settings(max_examples=30, deadline=None)
    def test_first_fit_lowest_offset(self, size):
        sim = Simulator()
        pool = RegisteredPool(sim, size=MiB)
        buf = pool.try_alloc(size)
        assert buf is not None and buf.offset == 0


# ---------------------------------------------------------------------------
# Blocking distribution: splits always cover the extent exactly, land in
# bounds, and follow the contiguous-chunk layout.
# ---------------------------------------------------------------------------


class TestStripingProperties:
    @given(
        nservers=st.integers(1, 16),
        chunk_mib=st.integers(1, 64),
        offset=st.integers(0, 2**30),
        nbytes=st.integers(1, 128 * KiB),
    )
    @settings(max_examples=120, deadline=None)
    def test_split_partitions_extent(self, nservers, chunk_mib, offset, nbytes):
        total = nservers * chunk_mib * MiB
        assume(offset + nbytes <= total)
        d = BlockingDistribution(total, nservers)
        segs = d.split(offset, nbytes)
        assert sum(s.nbytes for s in segs) == nbytes
        # Reconstruct: walking the segments reproduces the offsets.
        pos = offset
        for seg in segs:
            srv, soff = d.locate(pos)
            assert (srv, soff) == (seg.server, seg.server_offset)
            assert 0 <= seg.server_offset < d.chunk_bytes
            assert seg.server_offset + seg.nbytes <= d.chunk_bytes
            pos += seg.nbytes

    @given(nservers=st.integers(1, 16), chunk_mib=st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_max_two_segments_for_128k(self, nservers, chunk_mib):
        # A 128 KiB request can straddle at most one chunk boundary as
        # long as chunks are >= 128 KiB.
        total = nservers * chunk_mib * MiB
        d = BlockingDistribution(total, nservers)
        for offset in range(0, total - 128 * KiB, total // 7 + 1):
            assert len(d.split(offset, 128 * KiB)) <= 2


# ---------------------------------------------------------------------------
# LRU: pop order equals last-touch order, no duplicates, no lost pages.
# ---------------------------------------------------------------------------


class TestLRUProperties:
    @given(
        touches=st.lists(
            st.lists(st.integers(0, 63), min_size=1, max_size=16),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_eviction_matches_reference_lru(self, touches):
        lru = PageLRU()
        aspace = AddressSpace(64, "p")
        reference: dict[int, int] = {}  # page -> last touch index
        clock = 0
        for batch in touches:
            pages = np.unique(np.array(batch, dtype=np.int64))
            stamps = lru.next_stamps(len(pages))
            aspace.page_stamp[pages] = stamps
            aspace.resident[pages] = True
            lru.push_batch(aspace, pages, stamps)
            for p in pages:
                clock += 1
                reference[int(p)] = clock
        victims = lru.pop_victims(64)
        got = [int(p) for (_a, arr) in victims for p in arr]
        assert len(got) == len(set(got))  # no duplicates
        assert set(got) == set(reference)  # no lost pages
        # order: reference last-touch times must be non-decreasing,
        # comparing at batch granularity (page order inside one batch is
        # the batch's internal order).
        batch_maxes = []
        for _a, arr in victims:
            batch_maxes.append(max(reference[int(p)] for p in arr))
        assert batch_maxes == sorted(batch_maxes)


# ---------------------------------------------------------------------------
# RamDisk: page store behaves like a dict keyed by page.
# ---------------------------------------------------------------------------


class TestRamDiskProperties:
    @given(
        writes=st.lists(
            st.tuples(st.integers(0, 63), st.integers(1, 8)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_reads_see_latest_writes(self, writes):
        rd = RamDisk(64 * PAGE_SIZE)
        reference: dict[int, object] = {}
        for i, (page, npages) in enumerate(writes):
            npages = min(npages, 64 - page)
            if npages == 0:
                continue
            token = f"w{i}"
            rd.write(page * PAGE_SIZE, npages * PAGE_SIZE, token=token)
            for p in range(page, page + npages):
                reference[p] = token
        for p, expected in reference.items():
            tokens, _ = rd.read(p * PAGE_SIZE, PAGE_SIZE)
            assert tokens[0][0] == expected


# ---------------------------------------------------------------------------
# Cost models: monotonicity and vectorization coherence.
# ---------------------------------------------------------------------------


class TestCostModelProperties:
    @given(
        alpha=st.floats(0, 1e3),
        beta=st.floats(0, 1.0),
        a=st.integers(0, 1 << 20),
        b=st.integers(0, 1 << 20),
    )
    @settings(max_examples=80, deadline=None)
    def test_linear_monotone(self, alpha, beta, a, b):
        m = LinearCost(alpha, beta)
        if a <= b:
            assert m.cost(a) <= m.cost(b)

    @given(sizes=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_piecewise_vector_matches_scalar(self, sizes):
        m = PiecewiseLinearCost(
            knots=((0.0, 1.0), (4096.0, 3.0), (65536.0, 40.0))
        )
        arr = m.cost_array(np.array(sizes, dtype=np.float64))
        for s, v in zip(sizes, arr):
            assert v == pytest.approx(m.cost(s), rel=1e-9, abs=1e-9)

    @given(sizes=st.lists(st.integers(0, 1 << 21), min_size=2, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_memcpy_monotone(self, sizes):
        from repro.net import MEMCPY

        ordered = sorted(sizes)
        costs = [MEMCPY.cost(s) for s in ordered]
        assert all(x <= y + 1e-9 for x, y in zip(costs, costs[1:]))
