"""Unit tests for the frame allocator and the batched LRU."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernel import DEFAULT_VM_PARAMS, FrameAllocator, PageLRU, VMParams
from repro.kernel.vmm import AddressSpace
from repro.simulator import StatsRegistry


class TestVMParams:
    def test_watermark_ordering_enforced(self):
        with pytest.raises(ValueError):
            VMParams(frac_min=0.1, frac_low=0.05, frac_high=0.2)

    def test_readahead_positive(self):
        with pytest.raises(ValueError):
            VMParams(readahead_pages=0)

    def test_defaults_valid(self):
        p = DEFAULT_VM_PARAMS
        assert 0 < p.frac_min < p.frac_low < p.frac_high


class TestFrameAllocator:
    def make(self, sim, total=10_000):
        return FrameAllocator(sim, total, DEFAULT_VM_PARAMS, StatsRegistry())

    def test_rejects_tiny_memory(self, sim):
        with pytest.raises(ValueError):
            FrameAllocator(sim, 10, DEFAULT_VM_PARAMS)

    def test_watermark_geometry(self, sim):
        fa = self.make(sim)
        assert 0 < fa.wm_min < fa.wm_low < fa.wm_high < fa.total_frames

    def test_alloc_free_cycle(self, sim):
        fa = self.make(sim)
        assert fa.try_alloc(100)
        assert fa.free == 9_900
        assert fa.used == 100
        fa.release(100)
        assert fa.free == 10_000

    def test_cannot_go_negative(self, sim):
        fa = self.make(sim, total=100)
        assert not fa.try_alloc(101)
        assert fa.free == 100

    def test_over_release_detected(self, sim):
        fa = self.make(sim)
        with pytest.raises(AssertionError):
            fa.release(1)

    def test_watermark_predicates(self, sim):
        fa = self.make(sim)
        assert not fa.below_low()
        fa.try_alloc(fa.total_frames - fa.wm_low)
        assert fa.below_low()
        assert fa.below_high()
        fa.try_alloc(fa.free - fa.wm_min)
        assert fa.below_min()

    def test_release_wakes_waiters(self, sim):
        fa = self.make(sim, total=100)
        fa.try_alloc(100)
        woken = []

        def waiter(sim):
            yield fa.memory_waiters.wait()
            woken.append(sim.now)

        def releaser(sim):
            yield sim.timeout(5)
            fa.release(1)

        p = sim.spawn(waiter(sim))
        sim.spawn(releaser(sim))
        sim.run(until=p)
        assert woken == [5.0]

    def test_free_timeseries_recorded(self, sim):
        fa = self.make(sim)
        fa.try_alloc(5)
        fa.release(5)
        series = fa.stats.get("frames.free")
        assert series.count == 2


class TestPageLRU:
    def test_stamps_strictly_increasing(self):
        lru = PageLRU()
        a = lru.next_stamps(5)
        b = lru.next_stamps(3)
        assert a[-1] < b[0]
        assert np.all(np.diff(np.concatenate([a, b])) > 0)

    def _touched(self, lru, aspace, pages):
        pages = np.asarray(pages, dtype=np.int64)
        stamps = lru.next_stamps(len(pages))
        aspace.page_stamp[pages] = stamps
        aspace.resident[pages] = True
        lru.push_batch(aspace, pages, stamps)
        return pages

    def test_eviction_order_is_lru(self):
        lru = PageLRU()
        aspace = AddressSpace(100, "a")
        self._touched(lru, aspace, [0, 1, 2])
        self._touched(lru, aspace, [3, 4])
        victims = lru.pop_victims(4)
        flat = np.concatenate([p for (_a, p) in victims])
        np.testing.assert_array_equal(flat, [0, 1, 2, 3])

    def test_retouch_makes_old_entry_stale(self):
        lru = PageLRU()
        aspace = AddressSpace(100, "a")
        self._touched(lru, aspace, [0, 1, 2])
        self._touched(lru, aspace, [0])  # 0 is young again
        victims = lru.pop_victims(2)
        flat = np.concatenate([p for (_a, p) in victims])
        np.testing.assert_array_equal(flat, [1, 2])

    def test_nonresident_entries_skipped(self):
        lru = PageLRU()
        aspace = AddressSpace(100, "a")
        self._touched(lru, aspace, [0, 1, 2])
        aspace.resident[1] = False  # reclaimed elsewhere
        victims = lru.pop_victims(3)
        flat = np.concatenate([p for (_a, p) in victims])
        np.testing.assert_array_equal(flat, [0, 2])

    def test_partial_batch_tail_stays_cold(self):
        lru = PageLRU()
        aspace = AddressSpace(100, "a")
        self._touched(lru, aspace, [0, 1, 2, 3, 4])
        v1 = lru.pop_victims(2)
        v2 = lru.pop_victims(3)
        flat = np.concatenate([p for (_a, p) in v1 + v2])
        np.testing.assert_array_equal(flat, [0, 1, 2, 3, 4])

    def test_multiple_address_spaces_interleave(self):
        lru = PageLRU()
        a1 = AddressSpace(10, "a1")
        a2 = AddressSpace(10, "a2")
        self._touched(lru, a1, [0])
        self._touched(lru, a2, [5])
        self._touched(lru, a1, [1])
        victims = lru.pop_victims(3)
        owners = [a.name for (a, _p) in victims]
        assert owners == ["a1", "a2", "a1"]

    def test_empty_lru_returns_nothing(self):
        assert PageLRU().pop_victims(10) == []

    def test_bad_victim_count(self):
        with pytest.raises(ValueError):
            PageLRU().pop_victims(0)

    def test_drop_address_space_invalidates(self):
        lru = PageLRU()
        aspace = AddressSpace(10, "a")
        self._touched(lru, aspace, [0, 1])
        lru.drop_address_space(aspace)
        assert lru.pop_victims(2) == []
