"""Failure injection: protocol tampering, malformed extents, dead ends.

The paper's §4.1: "Reliability is an important issue for swap device
design.  Failure in page handling can adversely impact system stability
and even crash the system." — these tests check that every corruption we
can inject either surfaces as a validated error or is contained.
"""

from __future__ import annotations

import pytest

from repro import HPBD, ScenarioConfig, TestswapWorkload, run_scenario
from repro.config import FaultConfig
from repro.faults import FaultPlan, LinkDegrade, LinkFlap, ServerCrash
from repro.hpbd import (
    HPBDClient,
    HPBDServer,
    OP_WRITE,
    PageRequest,
    ProtocolError,
    STATUS_ERROR,
)
from repro.ib import RecvWR, SendWR
from repro.kernel import Node
from repro.kernel.blockdev import Bio, READ, WRITE
from repro.simulator import Event, SimulationError
from repro.units import GiB, KiB, MiB


@pytest.fixture
def setup(sim, fabric):
    node = Node(sim, fabric, "client", mem_bytes=16 * MiB)
    srv = HPBDServer(sim, fabric, "mem0", store_bytes=32 * MiB, stats=node.stats)
    client = HPBDClient(sim, node, [srv], total_bytes=32 * MiB)
    sim.run(until=sim.spawn(client.connect()))
    return node, srv, client


class TestServerErrorReplies:
    def test_out_of_bounds_request_gets_error_reply(self, sim, setup):
        """A request beyond the RamDisk must produce a STATUS_ERROR
        acknowledgement, not a crashed daemon.  Injected over a raw,
        driver-independent connection so the reply is observable."""
        node, srv, client = setup
        from repro.ib import connect_endpoints

        raw = {}

        def wire(sim):
            scq = client.hca.create_cq("raw.scq")
            rcq = client.hca.create_cq("raw.rcq")
            qp_c, qp_s = yield from connect_endpoints(
                client.hca, client.pd, scq, rcq,
                srv.hca, srv.pd, srv.send_cq, srv.recv_cq,
            )
            srv.register_client(qp_s)
            raw["qp"], raw["rcq"] = qp_c, rcq

        sim.run(until=sim.spawn(wire(sim)))
        bad = PageRequest(
            op=OP_WRITE,
            offset=srv.ramdisk.size,  # out of bounds
            nbytes=4 * KiB,
            buf_addr=client.pool.base_addr,
            buf_rkey=client.pool.rkey,
        )
        replies = []

        def proc(sim):
            raw["qp"].post_recv(RecvWR(capacity=64))
            raw["qp"].post_send(SendWR(nbytes=64, payload=bad, signaled=False))
            yield sim.timeout(5_000.0)
            for cqe in raw["rcq"].poll():
                replies.append(cqe.payload)

        p = sim.spawn(proc(sim))
        sim.run(until=p)
        err = [r for r in replies if getattr(r, "status", None) == STATUS_ERROR]
        assert err, "server did not acknowledge the bad request with an error"
        assert srv.stats.get("mem0.errors").count == 1
        # Daemon survives: a good request afterwards still works.
        done = Event(sim)

        def good(sim):
            client.queue.submit_bio(
                Bio(op=WRITE, sector=0, nsectors=8, done=done)
            )
            client.queue.unplug()
            yield done

        p = sim.spawn(good(sim))
        sim.run(until=p)

    def test_driver_surfaces_server_error(self, sim, fabric):
        """If the driver itself receives an error reply, it must raise
        loudly (a lost page would corrupt the paging system)."""
        node = Node(sim, fabric, "c2", mem_bytes=16 * MiB)
        srv = HPBDServer(sim, fabric, "m2", store_bytes=MiB, stats=node.stats)
        # Device claims more space than the server store: requests to
        # the tail will be out of bounds server-side.
        client = HPBDClient(
            sim, node, [srv], total_bytes=MiB,
        )
        sim.run(until=sim.spawn(client.connect()))
        # Monkey-size the ramdisk down to force the error path through
        # the real driver.
        srv.ramdisk.size = 64 * KiB
        done = Event(sim)

        def proc(sim):
            client.queue.submit_bio(
                Bio(op=WRITE, sector=256, nsectors=8, done=done)
            )
            client.queue.unplug()
            yield done

        sim.spawn(proc(sim))
        with pytest.raises(SimulationError, match="server error"):
            sim.run()


class TestTamperedMessages:
    def test_tampered_request_detected_at_server(self, sim, setup):
        _node, _srv, client = setup
        qp_c = client._qps[0]
        req = PageRequest(
            op=OP_WRITE, offset=0, nbytes=4 * KiB,
            buf_addr=client.pool.base_addr, buf_rkey=client.pool.rkey,
        )
        req.nbytes = 8 * KiB  # corrupt after signing

        def proc(sim):
            qp_c.post_send(SendWR(nbytes=64, payload=req, signaled=False))
            yield sim.timeout(1_000.0)

        sim.spawn(proc(sim))
        with pytest.raises(ProtocolError):
            sim.run()

    def test_bad_rkey_caught_by_verbs_layer(self, sim, setup):
        """A request advertising a bogus rkey dies at the RDMA bounds
        check — the HCA protection the paper's design inherits."""
        _node, srv, client = setup
        qp_c = client._qps[0]
        req = PageRequest(
            op=OP_WRITE, offset=0, nbytes=4 * KiB,
            buf_addr=client.pool.base_addr, buf_rkey=999_999,
        )

        def proc(sim):
            qp_c.post_send(SendWR(nbytes=64, payload=req, signaled=False))
            yield sim.timeout(5_000.0)

        from repro.ib import RemoteKeyError

        sim.spawn(proc(sim))
        with pytest.raises(RemoteKeyError):
            sim.run()


class TestResourceExhaustionContainment:
    def test_pool_smaller_than_request_flow_still_completes(self, sim, fabric):
        """A pool of exactly one request's size forces total
        serialization through the wait queue — slower, never stuck."""
        node = Node(sim, fabric, "c3", mem_bytes=16 * MiB)
        srv = HPBDServer(sim, fabric, "m3", store_bytes=32 * MiB, stats=node.stats)
        client = HPBDClient(
            sim, node, [srv], total_bytes=32 * MiB, pool_bytes=128 * KiB
        )
        sim.run(until=sim.spawn(client.connect()))
        events = [Event(sim) for _ in range(8)]

        def proc(sim):
            for i, done in enumerate(events):
                client.queue.submit_bio(
                    Bio(op=WRITE, sector=i * 256, nsectors=256, done=done)
                )
            client.queue.unplug()
            for evt in events:
                yield evt

        p = sim.spawn(proc(sim))
        sim.run(until=p)
        assert client.pool.stall_count > 0
        assert client.pool.allocated_bytes == 0

    def test_swap_exhaustion_raises(self, sim, fabric):
        """Writing more unique pages than the swap device holds must be
        reported (OutOfSwap), not silently wrapped."""
        from repro.disk import DiskDevice
        from repro.kernel import OutOfSwap

        node = Node(sim, fabric, "c4", mem_bytes=8 * MiB)
        disk = DiskDevice(sim, swap_partition_bytes=4 * MiB, stats=node.stats)
        node.swapon(disk.queue, 4 * MiB)
        aspace = node.vmm.create_address_space(
            (32 * MiB) // (4 * KiB), "big"
        )

        def proc(sim):
            for start in range(0, aspace.npages, 64):
                stop = min(start + 64, aspace.npages)
                yield from node.vmm.touch_run(aspace, start, stop, write=True)

        sim.spawn(proc(sim))
        with pytest.raises(OutOfSwap):
            sim.run()


# ---------------------------------------------------------------------------
# Injected faults + the recovery state machine (repro.faults)
# ---------------------------------------------------------------------------

_SCALE = 64

_RECOVERY_KEYS = (
    "retries", "timeouts", "failovers", "write_failovers",
    "remaps", "disk_fallbacks", "stale_replies", "servers_dead",
)


def _fault_scenario(device, faults: FaultConfig) -> ScenarioConfig:
    return ScenarioConfig(
        [TestswapWorkload(size_bytes=GiB // _SCALE)],
        device,
        mem_bytes=512 * MiB // _SCALE,
        swap_bytes=GiB // _SCALE,
        mem_reserved_bytes=24 * MiB // _SCALE,
        faults=faults,
    )


def _counts(result) -> dict[str, int]:
    out = {}
    for key in _RECOVERY_KEYS:
        c = result.registry.get(f"hpbd0.{key}")
        out[key] = int(c.count) if c is not None else 0
    return out


class TestInjectedServerCrash:
    def test_crash_completes_with_remap(self):
        """A memory server dying mid-run must not abort the workload:
        its chunk remaps onto the survivor and the monitors stay clean."""
        cfg = _fault_scenario(
            HPBD(nservers=4),
            FaultConfig(
                plan=FaultPlan(events=(ServerCrash(at=60_000.0, server=1),)),
                degraded_mode="remap",
            ),
        )
        result = run_scenario(cfg, trace=True)
        ctrs = _counts(result)
        assert result.invariant_violations == []
        assert ctrs["timeouts"] > 0
        assert ctrs["remaps"] > 0
        assert ctrs["servers_dead"] == 1
        # Fault recovery shows up in the blame taxonomy, not "other".
        assert result.blame_usec["fault"] > 0

    def test_crash_completes_with_disk_fallback(self):
        cfg = _fault_scenario(
            HPBD(nservers=4),
            FaultConfig(
                plan=FaultPlan(events=(ServerCrash(at=60_000.0, server=1),)),
                degraded_mode="disk",
            ),
        )
        result = run_scenario(cfg, trace=True)
        ctrs = _counts(result)
        assert result.invariant_violations == []
        assert ctrs["disk_fallbacks"] > 0
        assert ctrs["remaps"] == 0

    def test_crash_absorbed_by_mirror(self):
        cfg = _fault_scenario(
            HPBD(nservers=2, mirror=True),
            FaultConfig(
                plan=FaultPlan(events=(ServerCrash(at=60_000.0, server=0),)),
            ),
        )
        result = run_scenario(cfg, trace=True)
        ctrs = _counts(result)
        assert result.invariant_violations == []
        assert ctrs["write_failovers"] > 0

    def test_same_seed_reproduces_identical_counters_and_blame(self):
        def once():
            cfg = _fault_scenario(
                HPBD(nservers=4),
                FaultConfig(
                    plan=FaultPlan(
                        events=(ServerCrash(at=60_000.0, server=1),)
                    ),
                    degraded_mode="remap",
                ),
            )
            result = run_scenario(cfg, trace=True)
            return _counts(result), result.blame_usec

        first, second = once(), once()
        assert first[0] == second[0]
        assert first[1] == second[1]


class TestInjectedLinkTrouble:
    def test_link_degrade_recovers_with_retries(self):
        """A massively degraded link makes requests overshoot their
        timeout; bounded retries must carry the run across the episode
        without condemning the (healthy) server."""
        cfg = _fault_scenario(
            HPBD(nservers=4),
            FaultConfig(
                plan=FaultPlan(events=(
                    # Traffic at this scale runs ~50k-130k us; the
                    # episode must overlap it to bite.
                    LinkDegrade(at=60_000.0, node="mem0", duration=15_000.0,
                                latency_mult=5_000.0),
                )),
                request_timeout_usec=1_000.0,
                max_retries=8,
            ),
        )
        result = run_scenario(cfg, trace=True)
        ctrs = _counts(result)
        assert result.invariant_violations == []
        assert ctrs["retries"] > 0
        assert ctrs["servers_dead"] == 0
        assert result.blame_usec["retry"] > 0

    def test_link_flap_recovers(self):
        """A flapping link stalls traffic outright; queued originals and
        re-sends both land once it returns, and the duplicate answers
        must be discarded as stale, not mistaken for live replies."""
        cfg = _fault_scenario(
            HPBD(nservers=4),
            FaultConfig(
                plan=FaultPlan(events=(
                    LinkFlap(at=60_000.0, node="mem0", down_for=15_000.0),
                )),
                request_timeout_usec=1_000.0,
                max_retries=8,
            ),
        )
        result = run_scenario(cfg, trace=True)
        ctrs = _counts(result)
        assert result.invariant_violations == []
        assert ctrs["timeouts"] > 0
        assert ctrs["stale_replies"] > 0
        assert ctrs["servers_dead"] == 0


class TestControlPlaneCorruption:
    def test_dropped_and_corrupted_ctrl_messages_are_retransmitted(self):
        """With probabilistic drop/corruption on the control plane, the
        CRC validation catches tampered messages, endpoints drop them
        (instead of raising, as they do fault-free), and the timeout
        machinery retransmits until the run completes clean."""
        cfg = _fault_scenario(
            HPBD(nservers=4),
            FaultConfig(
                plan=FaultPlan(
                    ctrl_drop_prob=0.05, ctrl_corrupt_prob=0.05, seed=7,
                ),
                request_timeout_usec=1_000.0,
                max_retries=8,
            ),
        )
        result = run_scenario(cfg, trace=True)
        ctrs = _counts(result)
        assert result.invariant_violations == []
        dropped = result.registry.get("fault.ctrl_dropped")
        corrupted = result.registry.get("fault.ctrl_corrupted")
        assert (dropped.count if dropped else 0) > 0
        assert (corrupted.count if corrupted else 0) > 0
        assert ctrs["timeouts"] > 0
        assert ctrs["servers_dead"] == 0

    def test_same_seed_same_corruption(self):
        def once():
            cfg = _fault_scenario(
                HPBD(nservers=4),
                FaultConfig(
                    plan=FaultPlan(ctrl_drop_prob=0.1, seed=3),
                    request_timeout_usec=1_000.0,
                    max_retries=8,
                ),
            )
            result = run_scenario(cfg)
            c = result.registry.get("fault.ctrl_dropped")
            return (int(c.count) if c else 0, result.elapsed_usec)

        assert once() == once()


class TestReplicaFailoverUnderCrash:
    def test_crashed_primary_reads_and_writes_fail_over(self, sim, fabric):
        """White-box: crash the primary of a mirrored pair; reads must
        fail over to the replica and writes must complete on the
        replica alone — with credits and inflight fully reclaimed."""
        node = Node(sim, fabric, "client", mem_bytes=16 * MiB)
        servers = [
            HPBDServer(sim, fabric, f"mem{i}", store_bytes=32 * MiB,
                       stats=node.stats)
            for i in range(2)
        ]
        client = HPBDClient(
            sim, node, servers, total_bytes=32 * MiB, mirror=True,
            request_timeout_usec=500.0, max_retries=1,
        )
        sim.run(until=sim.spawn(client.connect()))

        def do_io(op, sector):
            done = Event(sim)

            def proc(sim):
                client.queue.submit_bio(
                    Bio(op=op, sector=sector, nsectors=8, done=done)
                )
                client.queue.unplug()
                yield done

            sim.run(until=sim.spawn(proc(sim)))

        do_io(WRITE, 0)
        servers[0].crash()  # silent: requests vanish, no error replies
        do_io(READ, 0)      # timeout -> replica read failover
        do_io(WRITE, 8)     # replica-only write completes
        stats = client.stats
        assert stats.get("hpbd0.timeouts").count >= 1
        assert stats.get("hpbd0.failovers").count >= 1
        assert stats.get("hpbd0.write_failovers").count >= 1
        assert client.outstanding == 0
        client.audit_teardown()
        assert sim.monitors.summary() == []
