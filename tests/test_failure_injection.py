"""Failure injection: protocol tampering, malformed extents, dead ends.

The paper's §4.1: "Reliability is an important issue for swap device
design.  Failure in page handling can adversely impact system stability
and even crash the system." — these tests check that every corruption we
can inject either surfaces as a validated error or is contained.
"""

from __future__ import annotations

import pytest

from repro.hpbd import (
    HPBDClient,
    HPBDServer,
    OP_WRITE,
    PageRequest,
    ProtocolError,
    STATUS_ERROR,
)
from repro.ib import RecvWR, SendWR
from repro.kernel import Node
from repro.kernel.blockdev import Bio, WRITE
from repro.simulator import Event, SimulationError
from repro.units import KiB, MiB


@pytest.fixture
def setup(sim, fabric):
    node = Node(sim, fabric, "client", mem_bytes=16 * MiB)
    srv = HPBDServer(sim, fabric, "mem0", store_bytes=32 * MiB, stats=node.stats)
    client = HPBDClient(sim, node, [srv], total_bytes=32 * MiB)
    sim.run(until=sim.spawn(client.connect()))
    return node, srv, client


class TestServerErrorReplies:
    def test_out_of_bounds_request_gets_error_reply(self, sim, setup):
        """A request beyond the RamDisk must produce a STATUS_ERROR
        acknowledgement, not a crashed daemon.  Injected over a raw,
        driver-independent connection so the reply is observable."""
        node, srv, client = setup
        from repro.ib import connect_endpoints

        raw = {}

        def wire(sim):
            scq = client.hca.create_cq("raw.scq")
            rcq = client.hca.create_cq("raw.rcq")
            qp_c, qp_s = yield from connect_endpoints(
                client.hca, client.pd, scq, rcq,
                srv.hca, srv.pd, srv.send_cq, srv.recv_cq,
            )
            srv.register_client(qp_s)
            raw["qp"], raw["rcq"] = qp_c, rcq

        sim.run(until=sim.spawn(wire(sim)))
        bad = PageRequest(
            op=OP_WRITE,
            offset=srv.ramdisk.size,  # out of bounds
            nbytes=4 * KiB,
            buf_addr=client.pool.base_addr,
            buf_rkey=client.pool.rkey,
        )
        replies = []

        def proc(sim):
            raw["qp"].post_recv(RecvWR(capacity=64))
            raw["qp"].post_send(SendWR(nbytes=64, payload=bad, signaled=False))
            yield sim.timeout(5_000.0)
            for cqe in raw["rcq"].poll():
                replies.append(cqe.payload)

        p = sim.spawn(proc(sim))
        sim.run(until=p)
        err = [r for r in replies if getattr(r, "status", None) == STATUS_ERROR]
        assert err, "server did not acknowledge the bad request with an error"
        assert srv.stats.get("mem0.errors").count == 1
        # Daemon survives: a good request afterwards still works.
        done = Event(sim)

        def good(sim):
            client.queue.submit_bio(
                Bio(op=WRITE, sector=0, nsectors=8, done=done)
            )
            client.queue.unplug()
            yield done

        p = sim.spawn(good(sim))
        sim.run(until=p)

    def test_driver_surfaces_server_error(self, sim, fabric):
        """If the driver itself receives an error reply, it must raise
        loudly (a lost page would corrupt the paging system)."""
        node = Node(sim, fabric, "c2", mem_bytes=16 * MiB)
        srv = HPBDServer(sim, fabric, "m2", store_bytes=MiB, stats=node.stats)
        # Device claims more space than the server store: requests to
        # the tail will be out of bounds server-side.
        client = HPBDClient(
            sim, node, [srv], total_bytes=MiB,
        )
        sim.run(until=sim.spawn(client.connect()))
        # Monkey-size the ramdisk down to force the error path through
        # the real driver.
        srv.ramdisk.size = 64 * KiB
        done = Event(sim)

        def proc(sim):
            client.queue.submit_bio(
                Bio(op=WRITE, sector=256, nsectors=8, done=done)
            )
            client.queue.unplug()
            yield done

        sim.spawn(proc(sim))
        with pytest.raises(SimulationError, match="server error"):
            sim.run()


class TestTamperedMessages:
    def test_tampered_request_detected_at_server(self, sim, setup):
        _node, _srv, client = setup
        qp_c = client._qps[0]
        req = PageRequest(
            op=OP_WRITE, offset=0, nbytes=4 * KiB,
            buf_addr=client.pool.base_addr, buf_rkey=client.pool.rkey,
        )
        req.nbytes = 8 * KiB  # corrupt after signing

        def proc(sim):
            qp_c.post_send(SendWR(nbytes=64, payload=req, signaled=False))
            yield sim.timeout(1_000.0)

        sim.spawn(proc(sim))
        with pytest.raises(ProtocolError):
            sim.run()

    def test_bad_rkey_caught_by_verbs_layer(self, sim, setup):
        """A request advertising a bogus rkey dies at the RDMA bounds
        check — the HCA protection the paper's design inherits."""
        _node, srv, client = setup
        qp_c = client._qps[0]
        req = PageRequest(
            op=OP_WRITE, offset=0, nbytes=4 * KiB,
            buf_addr=client.pool.base_addr, buf_rkey=999_999,
        )

        def proc(sim):
            qp_c.post_send(SendWR(nbytes=64, payload=req, signaled=False))
            yield sim.timeout(5_000.0)

        from repro.ib import RemoteKeyError

        sim.spawn(proc(sim))
        with pytest.raises(RemoteKeyError):
            sim.run()


class TestResourceExhaustionContainment:
    def test_pool_smaller_than_request_flow_still_completes(self, sim, fabric):
        """A pool of exactly one request's size forces total
        serialization through the wait queue — slower, never stuck."""
        node = Node(sim, fabric, "c3", mem_bytes=16 * MiB)
        srv = HPBDServer(sim, fabric, "m3", store_bytes=32 * MiB, stats=node.stats)
        client = HPBDClient(
            sim, node, [srv], total_bytes=32 * MiB, pool_bytes=128 * KiB
        )
        sim.run(until=sim.spawn(client.connect()))
        events = [Event(sim) for _ in range(8)]

        def proc(sim):
            for i, done in enumerate(events):
                client.queue.submit_bio(
                    Bio(op=WRITE, sector=i * 256, nsectors=256, done=done)
                )
            client.queue.unplug()
            for evt in events:
                yield evt

        p = sim.spawn(proc(sim))
        sim.run(until=p)
        assert client.pool.stall_count > 0
        assert client.pool.allocated_bytes == 0

    def test_swap_exhaustion_raises(self, sim, fabric):
        """Writing more unique pages than the swap device holds must be
        reported (OutOfSwap), not silently wrapped."""
        from repro.disk import DiskDevice
        from repro.kernel import OutOfSwap

        node = Node(sim, fabric, "c4", mem_bytes=8 * MiB)
        disk = DiskDevice(sim, swap_partition_bytes=4 * MiB, stats=node.stats)
        node.swapon(disk.queue, 4 * MiB)
        aspace = node.vmm.create_address_space(
            (32 * MiB) // (4 * KiB), "big"
        )

        def proc(sim):
            for start in range(0, aspace.npages, 64):
                stop = min(start + 64, aspace.npages)
                yield from node.vmm.touch_run(aspace, start, stop, write=True)

        sim.spawn(proc(sim))
        with pytest.raises(OutOfSwap):
            sim.run()
