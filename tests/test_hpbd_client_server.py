"""Integration tests for the HPBD client driver + memory servers."""

from __future__ import annotations

import pytest

from repro.hpbd import Chunk, ChunkMapDistribution, HPBDClient, HPBDServer
from repro.kernel import Node
from repro.kernel.blockdev import Bio, READ, WRITE
from repro.simulator import Event
from repro.units import KiB, MiB, SECTOR_SIZE


@pytest.fixture
def setup(sim, fabric):
    node = Node(sim, fabric, "client", mem_bytes=16 * MiB)
    servers = [
        HPBDServer(sim, fabric, f"mem{i}", store_bytes=32 * MiB, stats=node.stats)
        for i in range(2)
    ]
    client = HPBDClient(sim, node, servers, total_bytes=64 * MiB)
    return node, servers, client


def connect(sim, client):
    def proc(sim):
        yield from client.connect()

    sim.run(until=sim.spawn(proc(sim)))


def do_io(sim, client, op, sector, nsectors):
    done = Event(sim)
    bio = Bio(op=op, sector=sector, nsectors=nsectors, done=done)

    def proc(sim):
        client.queue.submit_bio(bio)
        client.queue.unplug()
        yield done
        return sim.now

    return sim.run(until=sim.spawn(proc(sim)))


class TestLifecycle:
    def test_connect_registers_pool_and_starts_servers(self, sim, setup):
        _node, servers, client = setup
        connect(sim, client)
        assert client.pool is not None
        assert client.pool.size == MiB  # paper default
        assert all(s.started for s in servers)
        assert all(s.pool is not None for s in servers)

    def test_double_connect_rejected(self, sim, setup):
        _node, _servers, client = setup
        connect(sim, client)
        with pytest.raises(Exception):
            sim.run(until=sim.spawn(client.connect()))

    def test_needs_a_server(self, sim, fabric):
        node = Node(sim, fabric, "c", mem_bytes=16 * MiB)
        with pytest.raises(ValueError):
            HPBDClient(sim, node, [], total_bytes=MiB)

    def test_undersized_server_store_rejected(self, sim, fabric):
        node = Node(sim, fabric, "c", mem_bytes=16 * MiB)
        srv = HPBDServer(sim, fabric, "m", store_bytes=MiB, stats=node.stats)
        with pytest.raises(ValueError):
            HPBDClient(sim, node, [srv], total_bytes=64 * MiB)


class TestDataPath:
    def test_write_read_roundtrip_integrity(self, sim, setup):
        _node, servers, client = setup
        connect(sim, client)
        do_io(sim, client, WRITE, sector=0, nsectors=8)
        stored = servers[0].ramdisk.pages_stored
        assert stored == 1
        do_io(sim, client, READ, sector=0, nsectors=8)
        assert servers[0].ramdisk.bytes_read == 4 * KiB

    def test_write_lands_on_correct_server(self, sim, setup):
        # Blocking distribution: second half of the device -> server 1.
        _node, servers, client = setup
        connect(sim, client)
        half = (32 * MiB) // SECTOR_SIZE
        do_io(sim, client, WRITE, sector=half, nsectors=8)
        assert servers[1].ramdisk.pages_stored == 1
        assert servers[0].ramdisk.pages_stored == 0

    def test_straddling_request_splits_across_servers(self, sim, setup):
        _node, servers, client = setup
        connect(sim, client)
        half = (32 * MiB) // SECTOR_SIZE
        # 64 KiB request centred on the chunk boundary
        do_io(sim, client, WRITE, sector=half - 64, nsectors=128)
        assert servers[0].ramdisk.pages_stored == 8
        assert servers[1].ramdisk.pages_stored == 8
        assert client.stats.get("hpbd0.split_requests").count == 1

    def test_large_write_uses_rdma_read(self, sim, setup):
        # Fig. 4: swap-out -> server pulls with RDMA READ.
        _node, servers, client = setup
        connect(sim, client)
        do_io(sim, client, WRITE, sector=0, nsectors=256)  # 128 KiB
        server_qp = list(servers[0]._qp_by_num.values())[0]
        assert server_qp.rdma_reads == 1
        assert server_qp.rdma_writes == 0

    def test_read_uses_rdma_write(self, sim, setup):
        # Fig. 4: swap-in -> server pushes with RDMA WRITE.
        _node, servers, client = setup
        connect(sim, client)
        do_io(sim, client, WRITE, sector=0, nsectors=64)
        server_qp = list(servers[0]._qp_by_num.values())[0]
        before = server_qp.rdma_writes
        do_io(sim, client, READ, sector=0, nsectors=64)
        assert server_qp.rdma_writes == before + 1

    def test_read_of_never_written_extent_succeeds(self, sim, setup):
        # Swap read-ahead may pull never-used slots: must not error.
        _node, _servers, client = setup
        connect(sim, client)
        t = do_io(sim, client, READ, sector=4096, nsectors=8)
        assert t > 0

    def test_pool_drains_to_zero_after_io(self, sim, setup):
        _node, servers, client = setup
        connect(sim, client)
        for i in range(8):
            do_io(sim, client, WRITE, sector=i * 256, nsectors=256)
        assert client.pool.allocated_bytes == 0
        client.pool.check_invariants()
        for srv in servers:
            assert srv.pool.allocated_bytes == 0

    def test_outstanding_drains(self, sim, setup):
        _node, _servers, client = setup
        connect(sim, client)
        do_io(sim, client, WRITE, sector=0, nsectors=8)
        assert client.outstanding == 0


class TestConcurrencyAndFlowControl:
    def test_many_concurrent_bios(self, sim, setup):
        _node, servers, client = setup
        connect(sim, client)
        done_events = []

        def proc(sim):
            for i in range(64):
                done = Event(sim)
                done_events.append(done)
                client.queue.submit_bio(
                    Bio(op=WRITE, sector=i * 8, nsectors=8, done=done)
                )
            client.queue.unplug()
            for evt in done_events:
                yield evt
            return sim.now

        sim.run(until=sim.spawn(proc(sim)))
        assert sum(s.requests_served for s in servers) >= 1
        assert client.pool.allocated_bytes == 0

    def test_credit_watermark_respected(self, sim, setup):
        """Outstanding physical requests per server never exceed the
        credit water-mark (checked by sampling during a flood)."""
        node, _servers, client = setup
        connect(sim, client)
        violations = []

        def sampler(sim):
            for _ in range(200):
                yield sim.timeout(20.0)
                if client.outstanding > 2 * client.credits_per_server:
                    violations.append(client.outstanding)

        def flood(sim):
            evts = []
            for i in range(256):
                done = Event(sim)
                evts.append(done)
                client.queue.submit_bio(
                    Bio(op=WRITE, sector=i * 8, nsectors=8, done=done)
                )
            client.queue.unplug()
            for evt in evts:
                yield evt

        sim.spawn(sampler(sim))
        p = sim.spawn(flood(sim))
        sim.run(until=p)
        assert not violations

    def test_server_sleeps_when_idle(self, sim, setup):
        _node, servers, client = setup
        connect(sim, client)
        do_io(sim, client, WRITE, sector=0, nsectors=8)

        def idle(sim):
            yield sim.timeout(5000.0)  # well past the 200 µs idle window
            return servers[0].sleeps

        sleeps = sim.run(until=sim.spawn(idle(sim)))
        assert sleeps >= 1

    def test_sleeping_server_woken_by_request(self, sim, setup):
        _node, _servers, client = setup
        connect(sim, client)
        do_io(sim, client, WRITE, sector=0, nsectors=8)

        def later(sim):
            yield sim.timeout(10_000.0)
            return do_io  # noop

        sim.run(until=sim.spawn(later(sim)))
        t = do_io(sim, client, WRITE, sector=256, nsectors=8)
        assert t > 10_000.0  # served after the sleep


class TestPoolExhaustionNack:
    """Satellite audit: a PageRequest that cannot allocate staging pool
    must get a typed NACK (bounded wait queue), never block forever —
    and the client's retry machinery must absorb it."""

    @pytest.fixture
    def tight(self, sim, fabric):
        node = Node(sim, fabric, "client", mem_bytes=16 * MiB)
        # 256 KiB staging pool, 128 KiB requests, at most one parked
        # alloc waiter: a flood drives the pool into exhaustion fast.
        srv = HPBDServer(
            sim, fabric, "mem0", store_bytes=32 * MiB,
            staging_pool_bytes=256 * KiB, max_alloc_waiters=1,
            stats=node.stats,
        )
        client = HPBDClient(
            sim, node, [srv], total_bytes=16 * MiB,
            request_timeout_usec=50_000.0,
            max_retries=50, retry_backoff_usec=100.0,
        )
        return node, srv, client

    def test_flood_nacks_then_recovers(self, sim, tight):
        node, srv, client = tight
        connect(sim, client)

        def flood(sim):
            evts = []
            for i in range(32):
                done = Event(sim)
                evts.append(done)
                client.queue.submit_bio(
                    Bio(op=WRITE, sector=i * 256, nsectors=256, done=done)
                )
            client.queue.unplug()
            for evt in evts:
                yield evt
            return sim.now

        sim.run(until=sim.spawn(flood(sim)))
        nacks = node.stats.get("hpbd0.nacks").count
        exhausted = node.stats.get("mem0.pool_exhausted").count
        assert exhausted > 0
        assert nacks == exhausted
        assert node.stats.get("hpbd0.retries").count >= nacks
        # every write completed despite the NACKs, and nothing leaked
        assert client.outstanding == 0
        assert client.pool.allocated_bytes == 0
        assert srv.pool.allocated_bytes == 0
        assert srv.pool.waiting == 0
        srv.audit_teardown()
        client.audit_teardown()
        assert not sim.monitors.summary()

    def test_no_nacks_below_the_bound(self, sim, fabric):
        # The stock server (32-waiter bound, 8 RDMA slots) never NACKs
        # under a plain flood: the slot limit keeps waiters below the
        # bound, so the NACK path is reserved for true exhaustion.
        node = Node(sim, fabric, "client", mem_bytes=16 * MiB)
        srv = HPBDServer(
            sim, fabric, "mem0", store_bytes=32 * MiB, stats=node.stats
        )
        client = HPBDClient(sim, node, [srv], total_bytes=16 * MiB)
        connect(sim, client)

        def flood(sim):
            evts = []
            for i in range(64):
                done = Event(sim)
                evts.append(done)
                client.queue.submit_bio(
                    Bio(op=WRITE, sector=i * 256, nsectors=256, done=done)
                )
            client.queue.unplug()
            for evt in evts:
                yield evt

        sim.run(until=sim.spawn(flood(sim)))
        assert node.stats.get("mem0.pool_exhausted") is None
        assert node.stats.get("hpbd0.nacks").count == 0


def _interleaved_chunks(total, chunk):
    """Device chunks alternating server 0 / server 1."""
    chunks = []
    offsets = {0: 0, 1: 0}
    pos = 0
    server = 0
    while pos < total:
        chunks.append(Chunk(pos, chunk, server, offsets[server]))
        offsets[server] += chunk
        pos += chunk
        server ^= 1
    return chunks


class TestChunkBoundaryIO:
    """Satellite coverage: requests spanning two servers' chunks under
    a custom chunk map — byte-exact placement on each server's store
    plus correct per-server counters, with and without mirroring."""

    TOTAL = 8 * MiB
    CHUNK = 2 * MiB

    def build(self, sim, fabric, mirror=False):
        node = Node(sim, fabric, "client", mem_bytes=16 * MiB)
        servers = [
            HPBDServer(
                sim, fabric, f"mem{i}", store_bytes=64 * MiB,
                stats=node.stats,
            )
            for i in range(2)
        ]
        dist = ChunkMapDistribution(
            self.TOTAL, 2, _interleaved_chunks(self.TOTAL, self.CHUNK)
        )
        client = HPBDClient(
            sim, node, servers, total_bytes=self.TOTAL,
            distribution=dist, mirror=mirror,
        )
        connect(sim, client)
        return node, servers, client

    def test_write_spanning_chunk_boundary(self, sim, fabric):
        node, servers, client = self.build(sim, fabric)
        # 64 KiB centred on the first server-0 -> server-1 boundary
        boundary = self.CHUNK // SECTOR_SIZE
        do_io(sim, client, WRITE, sector=boundary - 64, nsectors=128)
        assert node.stats.get("hpbd0.split_requests").count == 1
        assert servers[0].ramdisk.bytes_written == 32 * KiB
        assert servers[1].ramdisk.bytes_written == 32 * KiB
        # byte-exact placement: server 0 holds the tail of its chunk,
        # server 1 the head of its own store extent
        tokens0, _ = servers[0].ramdisk.read(self.CHUNK - 32 * KiB, 32 * KiB)
        tokens1, _ = servers[1].ramdisk.read(0, 32 * KiB)
        assert all(t is not None for t in tokens0)
        assert all(t is not None for t in tokens1)

    def test_boundary_into_noncontiguous_extent(self, sim, fabric):
        # The 4 MiB device boundary maps server-1 -> server-0, where
        # server 0's second extent starts at store offset 2 MiB.
        node, servers, client = self.build(sim, fabric)
        boundary = (2 * self.CHUNK) // SECTOR_SIZE
        do_io(sim, client, WRITE, sector=boundary - 64, nsectors=128)
        tokens1, _ = servers[1].ramdisk.read(self.CHUNK - 32 * KiB, 32 * KiB)
        tokens0, _ = servers[0].ramdisk.read(self.CHUNK, 32 * KiB)
        assert all(t is not None for t in tokens1)
        assert all(t is not None for t in tokens0)

    def test_read_reassembles_from_both_servers(self, sim, fabric):
        node, servers, client = self.build(sim, fabric)
        boundary = self.CHUNK // SECTOR_SIZE
        do_io(sim, client, WRITE, sector=boundary - 64, nsectors=128)
        do_io(sim, client, READ, sector=boundary - 64, nsectors=128)
        assert servers[0].ramdisk.bytes_read == 32 * KiB
        assert servers[1].ramdisk.bytes_read == 32 * KiB
        assert servers[0].requests_served == 2  # one write + one read
        assert servers[1].requests_served == 2
        assert node.stats.get("hpbd0.physical_requests").count == 4
        assert client.pool.allocated_bytes == 0

    def test_mirrored_boundary_write_replicates_both_halves(
        self, sim, fabric
    ):
        node, servers, client = self.build(sim, fabric, mirror=True)
        boundary = self.CHUNK // SECTOR_SIZE
        do_io(sim, client, WRITE, sector=boundary - 64, nsectors=128)
        # each server holds its primary half plus the other's replica
        assert servers[0].ramdisk.bytes_written == 64 * KiB
        assert servers[1].ramdisk.bytes_written == 64 * KiB
        assert servers[0].ramdisk.pages_stored == 16
        assert servers[1].ramdisk.pages_stored == 16
        # replica of server i's chunk lives on the peer at base
        # share_of(peer); the split halves sit at their chunk-local
        # offsets inside that replica area
        share = client.dist.share_of(0)
        tokens, _ = servers[0].ramdisk.read(share, 32 * KiB)
        assert all(t is not None for t in tokens)

    def test_mirrored_read_served_from_primaries(self, sim, fabric):
        node, servers, client = self.build(sim, fabric, mirror=True)
        boundary = self.CHUNK // SECTOR_SIZE
        do_io(sim, client, WRITE, sector=boundary - 64, nsectors=128)
        do_io(sim, client, READ, sector=boundary - 64, nsectors=128)
        assert servers[0].ramdisk.bytes_read == 32 * KiB
        assert servers[1].ramdisk.bytes_read == 32 * KiB
        assert node.stats.get("hpbd0.failovers").count == 0


class TestTiming:
    def test_write_latency_reasonable(self, sim, setup):
        """A 128 KiB swap-out should take a few hundred µs (two pool
        memcpys + RDMA read of 128 KiB + control messages)."""
        _node, _servers, client = setup
        connect(sim, client)
        t0 = sim.now
        t1 = do_io(sim, client, WRITE, sector=0, nsectors=256)
        latency = t1 - t0
        assert 150.0 < latency < 2_000.0

    def test_copy_time_accounted(self, sim, setup):
        _node, _servers, client = setup
        connect(sim, client)
        do_io(sim, client, WRITE, sector=0, nsectors=256)
        assert client.copy_usec > 0
