"""Fluid-flow bulk channel: collapse/expand correctness and migration.

The fast path's contract is absolute: an analytic (collapsed) transfer
must finish at the *bit-identical* time the page-by-page discrete chain
would have produced, under every disturbance pattern — competing flows
joining mid-segment, tracers forcing discrete stepping, fault windows
via ``force_discrete``.  These tests drive both arms of every branch
and compare exact floats, under both schedulers.
"""

from __future__ import annotations

import pytest

from repro.simulator import FluidChannel, Simulator

MiB = 1024 * 1024

pytestmark = pytest.mark.parametrize("scheduler", ["heap", "wheel"])


class TestSoloCollapse:
    def test_solo_transfer_is_o1_events(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        chan = FluidChannel(sim, rate_bytes_per_usec=800.0)

        def driver(sim):
            yield chan.transfer(10 * MiB)
            return sim.now

        p = sim.spawn(driver(sim))
        end = sim.run(until=p)
        assert end == pytest.approx(10 * MiB / 800.0)
        # whole 2560-page transfer in a handful of events
        assert sim.events_processed < 12
        assert chan._c_collapsed.count == 1
        assert chan._c_pages.count == 0

    def test_discrete_matches_collapsed_exactly(self, scheduler):
        def run(force):
            sim = Simulator(scheduler=scheduler)
            chan = FluidChannel(sim, rate_bytes_per_usec=800.0)
            chan.force_discrete = force

            def driver(sim):
                done = yield chan.transfer(10 * MiB + 12345)  # odd tail page
                return (sim.now, done)

            p = sim.spawn(driver(sim))
            return sim.run(until=p), sim.events_processed

        (t_fluid, done_fluid), ev_fluid = run(False)
        (t_disc, done_disc), ev_disc = run(True)
        assert t_fluid == t_disc  # bit-identical, not approx
        assert done_fluid == done_disc
        assert ev_disc / ev_fluid > 10  # the headline claim

    def test_tracing_forces_discrete_with_identical_clock(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        sim.enable_tracing()
        chan = FluidChannel(sim, rate_bytes_per_usec=800.0)

        def driver(sim):
            yield chan.transfer(MiB)
            return sim.now

        p = sim.spawn(driver(sim))
        end = sim.run(until=p)
        assert end == MiB / 800.0
        assert chan._c_collapsed.count == 0
        assert chan._c_pages.count == MiB // 4096
        spans = [s for s in sim.trace.spans if s.name == "page"]
        assert len(spans) == MiB // 4096


class TestContention:
    @pytest.mark.parametrize("sizes,stagger", [
        ((MiB, MiB), 0.0),
        ((2 * MiB, MiB), 100.0),
        ((MiB, MiB, MiB), 37.5),
        ((5 * MiB, 4096, 3 * MiB), 1000.0),
    ])
    def test_contended_equals_forced_discrete(self, scheduler, sizes, stagger):
        """Any overlap pattern: analytic+expansion == pure discrete."""
        def run(force):
            sim = Simulator(scheduler=scheduler)
            chan = FluidChannel(sim, rate_bytes_per_usec=800.0)
            chan.force_discrete = force
            ends = []

            def one(sim, nbytes, delay):
                if delay:
                    yield sim.timeout(delay)
                yield chan.transfer(nbytes)
                ends.append(sim.now)

            procs = [
                sim.spawn(one(sim, nbytes, i * stagger))
                for i, nbytes in enumerate(sizes)
            ]
            sim.run_all(procs)
            return ends, chan

        fluid_ends, fluid_chan = run(False)
        disc_ends, _ = run(True)
        assert fluid_ends == disc_ends  # exact
        if len(sizes) > 1 and stagger:
            # the second joiner disturbed the first's collapsed segment
            assert fluid_chan._c_expansions.count >= 1

    def test_collapse_back_after_competitor_leaves(self, scheduler):
        """Big flow + small flow: once the small one drains, the big
        one's next segment collapses again."""
        sim = Simulator(scheduler=scheduler)
        chan = FluidChannel(sim, rate_bytes_per_usec=800.0)

        def one(sim, nbytes):
            yield chan.transfer(nbytes)
            return sim.now

        big = sim.spawn(one(sim, 20 * MiB))
        small = sim.spawn(one(sim, 64 * 1024))
        sim.run_all([big, small])
        # expansion happened (the join), and a later segment re-collapsed
        assert chan._c_expansions.count + chan._c_collapsed.count >= 2
        assert chan._c_collapsed.count >= 1
        # events far below the ~5136 pages a full discrete run would cost
        assert sim.events_processed < 600


class TestValidation:
    def test_bad_sizes_and_rates(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        with pytest.raises(ValueError):
            FluidChannel(sim, rate_bytes_per_usec=0.0)
        with pytest.raises(ValueError):
            FluidChannel(sim, 800.0, page_bytes=0)
        chan = FluidChannel(sim, 800.0)
        with pytest.raises(ValueError):
            chan.transfer(0)


class TestMigration:
    def _fleet(self, scheduler, nservers=3, capacity=64 * MiB):
        from repro.cluster import ChunkMigrator, FleetRegistry

        sim = Simulator(scheduler=scheduler)
        reg = FleetRegistry(
            sim, servers=[object()] * nservers, capacity_bytes=capacity
        )
        return sim, reg, ChunkMigrator(sim, reg)

    def test_reserve_before_copy_release_after(self, scheduler):
        sim, reg, mig = self._fleet(scheduler)
        nbytes = 4 * MiB
        reg.reserve("t0", 0, nbytes)

        def driver(sim):
            return (yield mig.migrate("t0", 0, 1, nbytes))

        offset = sim.run(until=sim.spawn(driver(sim)))
        assert offset == 0
        assert reg.reserved == [0, nbytes, 0]
        assert reg.by_tenant["t0"] == nbytes  # net unchanged
        assert mig._c_migrations.count == 1
        assert mig._c_bytes.total == nbytes

    def test_destination_full_fails_before_any_bytes_move(self, scheduler):
        from repro.cluster import CapacityError

        sim, reg, mig = self._fleet(scheduler, capacity=8 * MiB)
        reg.reserve("t0", 0, 4 * MiB)
        reg.reserve("crowd", 1, 8 * MiB)  # dst is full
        with pytest.raises(CapacityError):
            mig.migrate("t0", 0, 1, 4 * MiB)  # synchronous, at call site
        assert reg.reserved[0] == 4 * MiB  # source untouched
        assert mig._c_failed.count == 1
        assert sim.events_processed == 0  # no simulated copy started

    def test_src_equals_dst_rejected(self, scheduler):
        sim, reg, mig = self._fleet(scheduler)
        with pytest.raises(ValueError):
            mig.migrate("t0", 1, 1, MiB)

    def test_concurrent_migrations_share_channel(self, scheduler):
        sim, reg, mig = self._fleet(scheduler)
        nbytes = 4 * MiB
        reg.reserve("a", 0, nbytes)
        reg.reserve("b", 1, nbytes)

        def driver(sim):
            pa = mig.migrate("a", 0, 2, nbytes)
            pb = mig.migrate("b", 1, 2, nbytes)
            yield pa
            yield pb
            return sim.now

        end = sim.run(until=sim.spawn(driver(sim)))
        # two equal flows sharing the pipe: both finish together at 2x
        assert end == pytest.approx(2 * nbytes / mig.channel.rate)
        assert reg.reserved == [0, 0, 2 * nbytes]
        assert mig.channel._c_expansions.count >= 1
