"""Unit tests for units/geometry helpers."""

from __future__ import annotations

import pytest

from repro.units import (
    GiB,
    KiB,
    MAX_REQUEST_BYTES,
    MAX_REQUEST_SECTORS,
    MiB,
    PAGE_SIZE,
    SECTOR_SIZE,
    SECTORS_PER_PAGE,
    bytes_to_pages,
    bytes_to_sectors,
    fmt_bytes,
    fmt_usec,
    pages_to_bytes,
    sec_to_usec,
    sectors_to_bytes,
    usec_to_sec,
)


def test_size_constants():
    assert KiB == 1024
    assert MiB == 1024 * KiB
    assert GiB == 1024 * MiB
    assert PAGE_SIZE == 4096
    assert SECTOR_SIZE == 512
    assert SECTORS_PER_PAGE == 8


def test_max_request_is_128k():
    # §4.2.5: "the 128K bound of a single request size"
    assert MAX_REQUEST_BYTES == 128 * KiB
    assert MAX_REQUEST_SECTORS == 256


@pytest.mark.parametrize(
    "nbytes,pages",
    [(0, 0), (1, 1), (4096, 1), (4097, 2), (GiB, 262144)],
)
def test_bytes_to_pages(nbytes, pages):
    assert bytes_to_pages(nbytes) == pages


def test_pages_bytes_roundtrip():
    assert pages_to_bytes(bytes_to_pages(MiB)) == MiB


def test_sector_conversions():
    assert bytes_to_sectors(512) == 1
    assert bytes_to_sectors(513) == 2
    assert sectors_to_bytes(8) == PAGE_SIZE


def test_time_conversions():
    assert usec_to_sec(1_500_000) == 1.5
    assert sec_to_usec(2.0) == 2_000_000.0


def test_fmt_bytes():
    assert fmt_bytes(512) == "512 B"
    assert fmt_bytes(128 * KiB) == "128.0 KiB"
    assert fmt_bytes(GiB) == "1.0 GiB"


def test_fmt_usec():
    assert fmt_usec(10.0) == "10.00 us"
    assert fmt_usec(1500.0) == "1.50 ms"
    assert fmt_usec(2_500_000.0) == "2.50 s"
