"""Shared fixtures: a fresh simulator, fabric, and small-node builders."""

from __future__ import annotations

import pytest

from repro.kernel import Node
from repro.net import Fabric
from repro.simulator import Simulator
from repro.units import MiB


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def fabric(sim: Simulator) -> Fabric:
    return Fabric(sim)


@pytest.fixture
def node(sim: Simulator, fabric: Fabric) -> Node:
    """A small (16 MiB) dual-CPU node."""
    return Node(sim, fabric, "n0", mem_bytes=16 * MiB)


def run_proc(sim: Simulator, gen):
    """Spawn a generator and run the simulation until it finishes."""
    proc = sim.spawn(gen)
    return sim.run(until=proc)


@pytest.fixture
def runner(sim: Simulator):
    """Callable fixture: ``runner(gen)`` runs a process to completion."""

    def _run(gen):
        return run_proc(sim, gen)

    return _run
