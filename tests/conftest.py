"""Shared fixtures: a fresh simulator, fabric, and small-node builders,
plus the one expensive traced fig07 run several test modules share."""

from __future__ import annotations

import pytest

from repro.kernel import Node
from repro.net import Fabric
from repro.simulator import Simulator
from repro.units import MiB

FIG07_SCALE = 64


@pytest.fixture(scope="session")
def traced_fig07_hpbd():
    """The Fig. 7 quicksort over HPBD, traced — one run per session.

    Shared by the breakdown, critpath, and monitor tests; it is the
    scenario the ISSUE acceptance criteria are stated against.
    """
    from repro.config import HPBD
    from repro.experiments import _scenario
    from repro.runner import run_scenario
    from repro.units import GiB
    from repro.workloads import QuicksortWorkload

    wl = QuicksortWorkload(nelems=256 * 1024 * 1024 // FIG07_SCALE)
    cfg = _scenario([wl], HPBD(), FIG07_SCALE, 512 * MiB, GiB)
    return run_scenario(cfg, trace=True)


@pytest.fixture(scope="session")
def local_base_fig07():
    """Same quicksort run fully in memory (the §6.2 baseline)."""
    from repro.config import LocalMemory
    from repro.experiments import _scenario
    from repro.runner import run_scenario
    from repro.units import GiB
    from repro.workloads import QuicksortWorkload

    wl = QuicksortWorkload(nelems=256 * 1024 * 1024 // FIG07_SCALE)
    cfg = _scenario([wl], LocalMemory(), FIG07_SCALE, 2 * GiB, GiB)
    return run_scenario(cfg)


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def fabric(sim: Simulator) -> Fabric:
    return Fabric(sim)


@pytest.fixture
def node(sim: Simulator, fabric: Fabric) -> Node:
    """A small (16 MiB) dual-CPU node."""
    return Node(sim, fabric, "n0", mem_bytes=16 * MiB)


def run_proc(sim: Simulator, gen):
    """Spawn a generator and run the simulation until it finishes."""
    proc = sim.spawn(gen)
    return sim.run(until=proc)


@pytest.fixture
def runner(sim: Simulator):
    """Callable fixture: ``runner(gen)`` runs a process to completion."""

    def _run(gen):
        return run_proc(sim, gen)

    return _run
