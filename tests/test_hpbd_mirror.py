"""Tests for the mirroring/failover reliability extension.

The paper scopes reliability out (§4.1, pointing at NRD [13] and RRMP
[15] for mirroring/parity); this extension implements synchronous write
mirroring with read failover on top of the HPBD protocol.
"""

from __future__ import annotations

import pytest

from repro import HPBD, ScenarioConfig, TestswapWorkload, run_scenario
from repro.hpbd import HPBDClient, HPBDServer
from repro.kernel import Node
from repro.kernel.blockdev import Bio, READ, WRITE
from repro.simulator import Event, SimulationError
from repro.units import MiB, PAGE_SIZE


@pytest.fixture
def mirrored(sim, fabric):
    node = Node(sim, fabric, "client", mem_bytes=16 * MiB)
    # 2 servers; each holds its 16 MiB share + the other's 16 MiB replica.
    servers = [
        HPBDServer(sim, fabric, f"mem{i}", store_bytes=32 * MiB,
                   stats=node.stats)
        for i in range(2)
    ]
    client = HPBDClient(
        sim, node, servers, total_bytes=32 * MiB, mirror=True
    )
    sim.run(until=sim.spawn(client.connect()))
    return node, servers, client


def do_io(sim, client, op, sector, nsectors):
    done = Event(sim)

    def proc(sim):
        client.queue.submit_bio(
            Bio(op=op, sector=sector, nsectors=nsectors, done=done)
        )
        client.queue.unplug()
        yield done
        return sim.now

    return sim.run(until=sim.spawn(proc(sim)))


class TestMirroredWrites:
    def test_write_lands_on_both_servers(self, sim, mirrored):
        _node, servers, client = mirrored
        do_io(sim, client, WRITE, sector=0, nsectors=8)
        # Primary copy on server 0 (chunk 0), replica on server 1.
        assert servers[0].ramdisk.pages_stored == 1
        assert servers[1].ramdisk.pages_stored == 1
        # Replica lives in server 1's replica area (behind its share).
        t, _ = servers[1].ramdisk.read(16 * MiB, PAGE_SIZE)
        assert t[0] is not None

    def test_mirrored_write_doubles_physical_requests(self, sim, mirrored):
        _node, _servers, client = mirrored
        do_io(sim, client, WRITE, sector=0, nsectors=8)
        assert client.stats.get("hpbd0.physical_requests").count == 2

    def test_buffer_released_only_after_both_acks(self, sim, mirrored):
        _node, _servers, client = mirrored
        do_io(sim, client, WRITE, sector=0, nsectors=256)
        assert client.pool.allocated_bytes == 0
        client.pool.check_invariants()

    def test_reads_are_not_duplicated(self, sim, mirrored):
        _node, _servers, client = mirrored
        do_io(sim, client, WRITE, sector=0, nsectors=8)
        before = client.stats.get("hpbd0.physical_requests").count
        do_io(sim, client, READ, sector=0, nsectors=8)
        assert client.stats.get("hpbd0.physical_requests").count == before + 1

    def test_requires_two_servers(self, sim, fabric):
        node = Node(sim, fabric, "c", mem_bytes=16 * MiB)
        srv = HPBDServer(sim, fabric, "m", store_bytes=32 * MiB)
        with pytest.raises(ValueError, match="two servers"):
            HPBDClient(sim, node, [srv], total_bytes=8 * MiB, mirror=True)

    def test_store_must_cover_replica_area(self, sim, fabric):
        node = Node(sim, fabric, "c", mem_bytes=16 * MiB)
        servers = [
            HPBDServer(sim, fabric, f"m{i}", store_bytes=16 * MiB)
            for i in range(2)
        ]
        with pytest.raises(ValueError, match="replica"):
            HPBDClient(sim, node, servers, total_bytes=32 * MiB, mirror=True)


class TestReadFailover:
    def test_failed_primary_read_served_by_replica(self, sim, mirrored):
        """Shrink the primary's RamDisk after the write (simulating the
        primary losing its store); the read must transparently fail over
        to the replica and return the data."""
        _node, servers, client = mirrored
        do_io(sim, client, WRITE, sector=0, nsectors=8)
        # Break the primary: its store "loses" everything.
        servers[0].ramdisk.size = 0
        t = do_io(sim, client, READ, sector=0, nsectors=8)
        assert t > 0  # completed despite the failure
        assert client.stats.get("hpbd0.failovers").count == 1
        assert servers[0].stats.get("mem0.errors").count == 1

    def test_double_failure_raises(self, sim, mirrored):
        _node, servers, client = mirrored
        do_io(sim, client, WRITE, sector=0, nsectors=8)
        servers[0].ramdisk.size = 0
        servers[1].ramdisk.size = 0

        done = Event(sim)

        def proc(sim):
            client.queue.submit_bio(
                Bio(op=READ, sector=0, nsectors=8, done=done)
            )
            client.queue.unplug()
            yield done

        sim.spawn(proc(sim))
        with pytest.raises(SimulationError, match="server error"):
            sim.run()


class TestMirrorEndToEnd:
    def test_full_scenario_with_mirroring(self):
        cfg = ScenarioConfig(
            [TestswapWorkload(size_bytes=24 * MiB)],
            HPBD(nservers=2, mirror=True),
            mem_bytes=16 * MiB,
            swap_bytes=32 * MiB,
            mem_reserved_bytes=2 * MiB,
        )
        result = run_scenario(cfg)
        assert result.swapout_pages > 0

    def test_mirroring_overhead_visible_but_bounded(self):
        def run(mirror):
            cfg = ScenarioConfig(
                [TestswapWorkload(size_bytes=24 * MiB)],
                HPBD(nservers=2, mirror=mirror),
                mem_bytes=16 * MiB,
                swap_bytes=32 * MiB,
                mem_reserved_bytes=2 * MiB,
            )
            return run_scenario(cfg)

        plain = run(False)
        mirrored = run(True)
        # Mirroring doubles outbound data; with HPBD's headroom the
        # run-time cost stays small but must not be negative.
        ratio = mirrored.slowdown_vs(plain)
        assert 1.0 <= ratio < 1.6
        assert (
            mirrored.network_bytes["rdma_read"]
            > 1.8 * plain.network_bytes["rdma_read"]
        )


class TestFailoverWithRegisterOnFly:
    @pytest.fixture
    def mirrored_otf(self, sim, fabric):
        """Mirrored pair using per-request registration (no pool)."""
        node = Node(sim, fabric, "client", mem_bytes=16 * MiB)
        servers = [
            HPBDServer(sim, fabric, f"mem{i}", store_bytes=32 * MiB,
                       stats=node.stats)
            for i in range(2)
        ]
        client = HPBDClient(
            sim, node, servers, total_bytes=32 * MiB,
            mirror=True, register_on_fly=True,
        )
        sim.run(until=sim.spawn(client.connect()))
        return node, servers, client

    def test_read_failover_targets_the_request_mr(self, sim, mirrored_otf):
        """Regression: the retry path used to address the registration
        pool unconditionally; under register-on-the-fly the data lives
        in the per-request MR and the pool entry is None — the failover
        must advertise the MR's addr/rkey instead."""
        _node, servers, client = mirrored_otf
        do_io(sim, client, WRITE, sector=0, nsectors=8)
        servers[0].ramdisk.size = 0  # break the primary
        t = do_io(sim, client, READ, sector=0, nsectors=8)
        assert t > 0
        assert client.stats.get("hpbd0.failovers").count == 1
        client.audit_teardown()
        assert sim.monitors.summary() == []

    def test_mirrored_write_with_register_on_fly(self, sim, mirrored_otf):
        _node, servers, client = mirrored_otf
        do_io(sim, client, WRITE, sector=0, nsectors=8)
        assert servers[0].ramdisk.pages_stored == 1
        assert servers[1].ramdisk.pages_stored == 1


class TestFailoverSpans:
    def test_rtt_span_excludes_the_failed_attempt(self, sim, fabric):
        """Regression: the failover read used to keep the original
        ``sent_at``, so the hpbd.rtt span swallowed the failed first
        round trip.  Now the dead time gets its own hpbd.failover span
        and the rtt span covers only the replica attempt."""
        sim.enable_tracing()
        node = Node(sim, fabric, "client", mem_bytes=16 * MiB)
        servers = [
            HPBDServer(sim, fabric, f"mem{i}", store_bytes=32 * MiB,
                       stats=node.stats)
            for i in range(2)
        ]
        client = HPBDClient(sim, node, servers, total_bytes=32 * MiB,
                            mirror=True)
        sim.run(until=sim.spawn(client.connect()))
        do_io(sim, client, WRITE, sector=0, nsectors=8)
        servers[0].ramdisk.size = 0
        do_io(sim, client, READ, sector=0, nsectors=8)
        failed = [s for s in sim.trace.spans if s.cat == "hpbd.failover"]
        assert len(failed) == 1
        rid = failed[0].args["req_id"]
        rtts = [
            s for s in sim.trace.spans
            if s.cat == "hpbd.rtt" and s.args["req_id"] == rid
        ]
        assert len(rtts) == 1
        # The replica attempt starts only after the failure is detected.
        assert rtts[0].start >= failed[0].end
        # And the failover span covers exactly the failed first attempt.
        assert failed[0].args["server"] == 0
        assert rtts[0].args["server"] == 1
