"""Tests for the per-figure experiment presets (tiny scales)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    PAPER_FIG5,
    PAPER_FIG7,
    PAPER_FIG9,
    fig01_latency,
    fig03_registration,
    fig05_testswap,
    fig06_reqsize_run,
    fig09_concurrent,
    fig10_servers,
)
from repro.units import KiB


class TestMicrobenchPresets:
    def test_fig01_has_all_series(self):
        d = fig01_latency()
        assert set(d) == {"sizes", "memcpy", "rdma_write", "ipoib", "gige"}
        assert d["sizes"][-1] == 128 * KiB
        for key in ("memcpy", "rdma_write", "ipoib", "gige"):
            assert len(d[key]) == len(d["sizes"])
            assert np.all(np.diff(d[key]) > 0)  # monotone in size

    def test_fig01_max_bytes_respected(self):
        d = fig01_latency(max_bytes=16 * KiB)
        assert d["sizes"][-1] <= 16 * KiB

    def test_fig03_registration_dominates(self):
        d = fig03_registration()
        assert np.all(d["registration"] > d["memcpy"])
        assert d["sizes"][0] == 4 * KiB


class TestScenarioPresets:
    """Smoke tests at 1/64 scale (each run well under a second)."""

    def test_fig05_returns_all_devices(self):
        results = fig05_testswap(scale=64)
        labels = [r.label for r in results]
        assert labels == ["local", "hpbd", "nbd-ipoib", "nbd-gige", "disk"]
        assert set(PAPER_FIG5) == set(labels)

    def test_fig06_run_has_trace(self):
        r = fig06_reqsize_run(scale=64)
        assert len(r.request_trace) > 0
        assert r.mean_write_request > 64 * KiB

    def test_fig09_structure(self):
        cells = fig09_concurrent(scale=64, include_disk=False)
        assert [c.memory for c in cells] == ["local", "50%", "25%"]
        assert cells[0].slowdown == 1.0
        assert cells[1].slowdown > 1.0
        assert set(k[0] for k in PAPER_FIG9) == {"hpbd", "disk"}

    def test_fig10_counts(self):
        results = fig10_servers(scale=64, counts=(1, 2))
        assert [n for n, _r in results] == [1, 2]
        for _n, r in results:
            assert r.swapout_pages > 0

    def test_paper_constants_sane(self):
        assert PAPER_FIG5["hpbd"] / PAPER_FIG5["local"] == pytest.approx(
            1.45, abs=0.05
        )
        assert PAPER_FIG7["hpbd"] / PAPER_FIG7["local"] == pytest.approx(
            1.47, abs=0.05
        )
