"""Measured §6.2 breakdown vs the Amdahl model on the Fig. 7 scenario."""

from __future__ import annotations

import pytest

from repro.analysis import (
    direct_network_fraction,
    format_breakdown,
    measured_breakdown,
    measured_network_fraction,
    stage_totals,
    wire_crosscheck,
)
from repro.net.fabrics import IB_DEFAULT


@pytest.fixture
def traced_hpbd(traced_fig07_hpbd):
    """The Fig. 7 quicksort over HPBD, traced (session-shared run)."""
    return traced_fig07_hpbd


@pytest.fixture
def local_base(local_base_fig07):
    return local_base_fig07


class TestTracedRun:
    def test_trace_attached_and_populated(self, traced_hpbd):
        rec = traced_hpbd.trace
        assert rec is not None and rec.enabled
        assert len(rec.spans) > 1000
        cats = stage_totals(traced_hpbd)
        # every layer of the request path reported in
        for expected in (
            "vm.fault", "vm.swapin", "vm.pageout", "blk.queue",
            "blk.service", "hpbd.copy", "hpbd.rtt", "hpbd.request",
            "srv.handle", "srv.copy", "wire", "ctrl", "reg.setup",
        ):
            assert cats.get(expected, 0.0) > 0.0, expected

    def test_untraced_run_has_no_trace(self, local_base):
        assert local_base.trace is None

    def test_metrics_sampled(self, traced_hpbd):
        ts = traced_hpbd.registry.get("obs.vmstat.free_bytes")
        assert ts is not None and ts.count > 10
        names = {name for (_c, name, _t, _v) in traced_hpbd.trace.counters}
        assert "vmstat.memory_bytes" in names


class TestAmdahlAgreement:
    def test_wire_matches_model_within_15pct(self, traced_hpbd):
        """Acceptance: measured wire time vs Σ rdma_write_cost(nbytes)
        over the dispatched requests — the quantity the §6.2 Amdahl
        calculator integrates — agree within 15 %."""
        measured, modeled, rel_err = wire_crosscheck(
            traced_hpbd, IB_DEFAULT.rdma_write_cost
        )
        assert measured > 0 and modeled > 0
        assert rel_err < 0.15, (
            f"measured {measured:.0f}µs vs modeled {modeled:.0f}µs "
            f"({rel_err:.1%} apart)"
        )

    def test_network_fraction_matches_amdahl(self, traced_hpbd, local_base):
        measured = measured_network_fraction(traced_hpbd, local_base)
        amdahl = direct_network_fraction(
            traced_hpbd, local_base, IB_DEFAULT.rdma_write_cost
        )
        assert measured == pytest.approx(amdahl, rel=0.15)
        # and both reproduce the paper's conclusion: host-dominated
        assert measured < 0.30


class TestBreakdownTable:
    def test_rows_and_fractions(self, traced_hpbd, local_base):
        rows = measured_breakdown(traced_hpbd, local_base)
        stages = [r.stage for r in rows]
        assert "wire" in stages and "driver copy" in stages
        assert "disk mechanism" not in stages  # HPBD run has no disk
        for row in rows:
            assert row.usec > 0
            assert 0 < row.fraction < 1.5  # aggregate time, near overhead

    def test_without_baseline_fractions_zero(self, traced_hpbd):
        rows = measured_breakdown(traced_hpbd)
        assert all(r.fraction == 0.0 for r in rows)

    def test_requires_trace(self, local_base):
        with pytest.raises(ValueError):
            measured_breakdown(local_base)

    def test_format(self, traced_hpbd, local_base):
        text = format_breakdown(measured_breakdown(traced_hpbd, local_base))
        assert "stage" in text and "wire" in text and "%" in text
