"""Tests for the trace-replay workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernel import Node
from repro.units import MiB
from repro.workloads import (
    Compute,
    RandomTouch,
    ReplayWorkload,
    SeqTouch,
    TraceFormatError,
    execute,
    parse_trace,
)

TRACE = """
# a tiny trace
seq 0 100 w 500.0
cpu 100.0
rand 5,9,50 r 30.0
seq 50 150 r 200.0   # trailing comment
"""


class TestParse:
    def test_parses_all_op_kinds(self):
        ops = parse_trace(TRACE)
        assert len(ops) == 4
        assert isinstance(ops[0], SeqTouch) and ops[0].write
        assert isinstance(ops[1], Compute) and ops[1].usec == 100.0
        assert isinstance(ops[2], RandomTouch) and not ops[2].write
        np.testing.assert_array_equal(ops[2].pages, [5, 9, 50])
        assert isinstance(ops[3], SeqTouch) and not ops[3].write

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceFormatError, match="no operations"):
            parse_trace("# only comments\n\n")

    def test_unknown_op_rejected(self):
        with pytest.raises(TraceFormatError, match="line 1"):
            parse_trace("frobnicate 1 2 3")

    def test_bad_mode_rejected(self):
        with pytest.raises(TraceFormatError, match="mode"):
            parse_trace("seq 0 10 x 5.0")

    def test_bad_number_rejected(self):
        with pytest.raises(TraceFormatError, match="line 1"):
            parse_trace("seq 0 ten w 5.0")

    def test_missing_fields_rejected(self):
        with pytest.raises(TraceFormatError):
            parse_trace("seq 0 10")


class TestReplayWorkload:
    def test_npages_inferred(self):
        w = ReplayWorkload.from_text(TRACE)
        assert w.npages == 150

    def test_npages_override_checked(self):
        with pytest.raises(ValueError, match="touches page"):
            ReplayWorkload.from_text(TRACE, npages=100)
        w = ReplayWorkload.from_text(TRACE, npages=500)
        assert w.npages == 500

    def test_from_file(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text(TRACE)
        w = ReplayWorkload.from_file(path)
        assert w.npages == 150

    def test_total_compute(self):
        w = ReplayWorkload.from_text(TRACE)
        assert w.total_compute_usec() == pytest.approx(830.0)

    def test_executes_against_vm(self, sim, fabric):
        node = Node(sim, fabric, "n", mem_bytes=16 * MiB)
        w = ReplayWorkload.from_text(TRACE)
        aspace = node.vmm.create_address_space(w.npages, "r")
        p = sim.spawn(execute(w, node, aspace))
        elapsed = sim.run(until=p)
        assert elapsed >= w.total_compute_usec()
        assert aspace.resident_pages == 150
        assert aspace.dirty[:100].all()
        assert not aspace.dirty[100:].any()
