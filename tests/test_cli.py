"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXPERIMENTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "HPBD" in capsys.readouterr().out

    def test_run_fig01(self, capsys):
        assert main(["run", "fig01"]) == 0
        out = capsys.readouterr().out
        assert "rdma_write" in out

    def test_run_fig03(self, capsys):
        assert main(["run", "fig03"]) == 0
        assert "registration" in capsys.readouterr().out

    def test_run_fig05_tiny_with_json(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        assert main(["run", "fig05", "--scale", "64", "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "testswap" in out and "paper" in out
        payload = json.loads(path.read_text())
        assert payload["scale"] == 64
        assert set(payload["results"]["fig05"]) == {
            "local", "hpbd", "nbd-ipoib", "nbd-gige", "disk"
        }

    def test_run_fig06_tiny(self, capsys):
        assert main(["run", "fig06", "--scale", "64"]) == 0
        assert "cluster" in capsys.readouterr().out

    def test_run_fig10_tiny(self, capsys):
        assert main(["run", "fig10", "--scale", "64"]) == 0
        assert "servers" in capsys.readouterr().out

    def test_bad_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig05", "--scale", "0"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCSVExport:
    def test_csv_flag_writes_files(self, capsys, tmp_path):
        assert main(["run", "fig03", "--csv", str(tmp_path)]) == 0
        text = (tmp_path / "fig03.csv").read_text()
        assert text.startswith("sizes,")

    def test_csv_flag_ignored_for_table1(self, capsys, tmp_path):
        assert main(["run", "table1", "--csv", str(tmp_path)]) == 0
        assert not (tmp_path / "table1.csv").exists()


class TestTrace:
    def test_trace_writes_chrome_json_and_breakdown(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        csv = tmp_path / "spans.csv"
        assert main([
            "trace", "--scale", "128",
            "-o", str(out), "--csv", str(csv),
        ]) == 0
        text = capsys.readouterr().out
        assert "share of overhead" in text
        assert "wire cross-check" in text
        doc = json.loads(out.read_text())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "X", "C"} <= phases
        assert csv.read_text().startswith("start_usec,dur_usec,")

    def test_trace_disk_device(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        assert main([
            "trace", "--device", "disk", "--workload", "testswap",
            "--scale", "128", "-o", str(out),
        ]) == 0
        text = capsys.readouterr().out
        assert "disk mechanism" in text
        # no RDMA model to cross-check on the disk path
        assert "wire cross-check" not in text

    def test_trace_bad_device_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "--device", "floppy"])


class TestCritpathCommand:
    def test_critpath_report_and_artifacts(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        report = tmp_path / "critpath.json"
        assert main([
            "critpath", "--scale", "128", "--top", "3",
            "-o", str(out), "--json", str(report),
        ]) == 0
        text = capsys.readouterr().out
        assert "aggregate blame" in text
        assert "slowest requests" in text
        assert "invariant monitors: clean" in text
        doc = json.loads(report.read_text())
        assert doc["orphan_spans"] == 0
        assert doc["violations"] == []
        assert doc["requests"] > 0
        blame = doc["blame_usec"]
        assert blame["wire"] > 0
        assert 0.0 <= doc["queueing_frac"] <= 1.0
        assert len(doc["slowest"]) <= 3
        # per-request blame in the report sums to its e2e latency
        for entry in doc["slowest"]:
            assert sum(entry["blame_usec"].values()) == pytest.approx(
                entry["e2e_usec"], rel=1e-6
            )
        chrome = json.loads(out.read_text())
        assert {"M", "X"} <= {e["ph"] for e in chrome["traceEvents"]}

    def test_critpath_nbd_device(self, capsys):
        assert main([
            "critpath", "--device", "nbd-gige", "--workload", "testswap",
            "--scale", "256", "--top", "2",
        ]) == 0
        text = capsys.readouterr().out
        assert "queueing" in text
        assert "invariant monitors: clean" in text

    def test_trace_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "--scale", "0"])


class TestReport:
    def test_report_generates_markdown(self, capsys, tmp_path, monkeypatch):
        # Patch the experiment registry to only cheap entries so the
        # report test stays fast; the full registry is exercised by the
        # benchmark suite.
        import repro.cli as cli

        small = {
            "table1": cli.EXPERIMENTS["table1"],
            "fig01": cli.EXPERIMENTS["fig01"],
            "fig03": cli.EXPERIMENTS["fig03"],
        }
        monkeypatch.setattr(cli, "EXPERIMENTS", small)
        out = tmp_path / "REPORT.md"
        assert cli.main(["report", "--scale", "64", "-o", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("# HPBD reproduction report")
        assert "## fig01" in text
        assert "rdma_write" in text


class TestSweepCommand:
    def test_sweep_cold_then_cached(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        assert main([
            "sweep", "fig05", "--scale", "64", "--cache", str(cache),
        ]) == 0
        out = capsys.readouterr().out
        assert "5 simulated, 0 cached" in out
        assert main([
            "sweep", "fig05", "--scale", "64", "--cache", str(cache),
            "--quiet",
        ]) == 0
        out = capsys.readouterr().out
        assert "0 simulated, 5 cached" in out

    def test_sweep_json_payload(self, capsys, tmp_path):
        path = tmp_path / "sweep.json"
        assert main([
            "sweep", "fig10", "--scale", "64", "--no-cache", "--quiet",
            "--json", str(path),
        ]) == 0
        payload = json.loads(path.read_text())
        assert payload["scale"] == 64
        points = payload["sweeps"]["fig10"]["points"]
        assert set(points) == {"fig10/n1", "fig10/n2", "fig10/n4",
                               "fig10/n8", "fig10/n16"}

    def test_sweep_force_resimulates(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        args = ["sweep", "fig06", "--scale", "64", "--cache", str(cache),
                "--quiet"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--force"]) == 0
        assert "1 simulated, 0 cached" in capsys.readouterr().out

    def test_sweep_bad_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "fig99"])

    def test_sweep_prints_cache_summary_and_campaign(self, capsys, tmp_path):
        store = tmp_path / "camp.jsonl"
        assert main([
            "sweep", "fig05", "--scale", "64",
            "--cache", str(tmp_path / "cache"), "--quiet",
            "--campaign", str(store),
        ]) == 0
        out = capsys.readouterr().out
        assert "cache:" in out and "misses" in out
        assert f"appended run records to {store}" in out
        from repro.obs.campaign import CampaignStore

        assert len(CampaignStore(store).load()) == 5


class TestCampaignCommands:
    def _mini(self, tmp_path, name="camp.jsonl", seeds="1,2"):
        store = tmp_path / name
        assert main([
            "campaign", "campaign", "--scale", "256", "--seeds", seeds,
            "--store", str(store), "--filter", "fair-2s", "--no-cache",
            "--quiet",
        ]) == 0
        return store

    def test_campaign_runs_and_prints_aggregates(self, capsys, tmp_path):
        store = self._mini(tmp_path)
        out = capsys.readouterr().out
        assert "2 simulated" in out
        assert "95% CI" in out
        assert f"appended 2 records to {store}" in out

    def test_compare_self_is_clean_and_regression_exits_nonzero(
        self, capsys, tmp_path
    ):
        import dataclasses

        from repro.obs.campaign import CampaignStore

        base = self._mini(tmp_path, "base.jsonl", seeds="1,2")
        other = self._mini(tmp_path, "other.jsonl", seeds="3,4")
        assert main(["compare", str(base), str(other)]) == 0
        assert "0 regressions" in capsys.readouterr().out
        # degrade the test side 3x -> the gate must fire
        slow = tmp_path / "slow.jsonl"
        slow_store = CampaignStore(slow)
        for rec in CampaignStore(other).load():
            slow_store.append(dataclasses.replace(
                rec,
                metrics={
                    k: v * 3 if "usec" in k else v
                    for k, v in rec.metrics.items()
                },
            ))
        assert main(["compare", str(base), str(slow)]) == 1
        assert "regression" in capsys.readouterr().out

    def test_compare_bench_floors(self, capsys, tmp_path):
        import dataclasses

        from repro.obs.campaign import CampaignStore

        store = self._mini(tmp_path)
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps({"campaign_floors": [
            {"point": "*", "metric": "violations", "max": 0},
        ]}))
        assert main(["compare", str(store), "--bench", str(bench)]) == 0
        assert "all clear" in capsys.readouterr().out
        bad = tmp_path / "bad.jsonl"
        bad_store = CampaignStore(bad)
        for rec in CampaignStore(store).load():
            bad_store.append(dataclasses.replace(
                rec, metrics={**rec.metrics, "violations": 2.0},
            ))
        assert main(["compare", str(bad), "--bench", str(bench)]) == 1
        assert "FLOOR VIOLATION" in capsys.readouterr().err

    def test_report_campaign_html(self, capsys, tmp_path, monkeypatch):
        store = self._mini(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert main([
            "report", "--campaign", str(store), "--replay-check",
        ]) == 0
        out = capsys.readouterr().out
        assert "replay check passed" in out
        html = (tmp_path / "report.html").read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "Campaign report" in html

    def test_compare_missing_store_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["compare", str(tmp_path / "absent.jsonl")])


class TestBenchCommand:
    def test_bench_writes_json(self, capsys, tmp_path):
        path = tmp_path / "BENCH_simulator.json"
        assert main([
            "bench", "--json", str(path), "--events", "5000",
            "--rounds", "1", "--sweep-scale", "128",
        ]) == 0
        payload = json.loads(path.read_text())
        assert payload["event_loop"]["timeout_events_per_sec"] > 0
        assert payload["sweep"]["cached_points_resimulated"] == 0
        assert payload["sweep"]["points"] == 4

    def test_bench_floor_enforced(self, capsys, tmp_path):
        path = tmp_path / "bench.json"
        assert main([
            "bench", "--json", str(path), "--events", "2000",
            "--rounds", "1", "--skip-sweep",
            "--min-events-per-sec", "1e12",
        ]) == 1

    def test_bench_fluid_payload_and_parallel_never_null(self, capsys, tmp_path):
        path = tmp_path / "bench.json"
        assert main([
            "bench", "--json", str(path), "--events", "2000",
            "--rounds", "1", "--sweep-scale", "128",
        ]) == 0
        payload = json.loads(path.read_text())
        fb = payload["fluid_bulk"]
        assert fb["identical_results"] is True
        assert fb["event_reduction"] > 10
        # the 1-CPU regression: parallel_sec must never be null again
        assert payload["sweep"]["parallel_sec"] is not None
        assert payload["sweep"]["parallel_workers"] >= 2
        out = capsys.readouterr().out
        assert "fluid bulk fast path" in out
        if payload["sweep"]["parallel_note"]:
            assert "note:" in out

    def test_bench_profile_flags(self, capsys, tmp_path):
        import pstats

        path = tmp_path / "bench.json"
        prof = tmp_path / "bench.prof"
        assert main([
            "bench", "--json", str(path), "--events", "2000",
            "--rounds", "1", "--skip-sweep",
            "--profile", "--profile-out", str(prof),
        ]) == 0
        out = capsys.readouterr().out
        assert "cumulative" in out  # pstats table printed
        assert prof.exists()
        stats = pstats.Stats(str(prof))
        assert stats.total_calls > 0


class TestFaultsCommand:
    def test_faults_remap_smoke(self, capsys, tmp_path):
        trace = tmp_path / "fault-trace.json"
        report = tmp_path / "faults.json"
        assert main([
            "faults", "--mode", "remap", "--scale", "64",
            "--expect-recovery",
            "-o", str(trace), "--json", str(report),
        ]) == 0
        out = capsys.readouterr().out
        assert "invariant monitors: clean" in out
        assert trace.exists()
        payload = json.loads(report.read_text())
        assert payload["counters"]["remaps"] > 0
        assert payload["counters"]["timeouts"] > 0
        assert payload["violations"] == []
        assert payload["blame_usec"]["fault"] > 0

    def test_faults_bad_mode_rejected(self):
        with pytest.raises(SystemExit):
            main(["faults", "--mode", "sideways"])
