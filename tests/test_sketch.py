"""Tests for the streaming sketches (``repro.obs.sketch``).

The DDSketch-style quantile estimator carries a relative-error
guarantee against the exact nearest-rank sample quantile; these tests
enforce it on adversarial distributions (heavy tails, bimodal spikes,
log-uniform spans), through merges and vectorized recording, and at
the documented edges (zero bucket, bucket collapse).  The windowed /
EWMA / rate trackers and the ``StatsRegistry.sketch`` drop-in are
covered alongside, plus the empty-``Tally`` regression guard.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.obs import (
    EWMA,
    QuantileSketch,
    RateTracker,
    SketchMismatchError,
    WindowedSketch,
)
from repro.simulator import StatsRegistry

REL_ERR = 0.01


def exact_bounds(samples, q: float) -> tuple[float, float]:
    """The two samples bracketing rank ``q/100 * (n-1)``.

    At a fractional rank the nearest-rank convention may legitimately
    return either neighbor, so the sketch only has to land within
    ``rel_err`` of the interval they span.
    """
    s = np.sort(np.asarray(samples, dtype=np.float64))
    rank = q / 100.0 * (len(s) - 1)
    return float(s[math.floor(rank)]), float(s[math.ceil(rank)])


def assert_within_bound(
    samples, sketch: QuantileSketch,
    qs=(0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9, 100.0),
    rel_err: float = REL_ERR,
) -> None:
    for q in qs:
        lo, hi = exact_bounds(samples, q)
        est = sketch.quantile(q)
        assert lo * (1.0 - rel_err) - 1e-12 <= est <= hi * (1.0 + rel_err) + 1e-12, (
            q, est, lo, hi)


def _distributions() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(42)
    n = 20_000
    return {
        "uniform": rng.uniform(50.0, 5_000.0, n),
        "lognormal": rng.lognormal(5.0, 2.0, n),
        "pareto": (rng.pareto(1.5, n) + 1.0) * 10.0,
        "exponential": rng.exponential(1_000.0, n) + 1.0,
        # Two tight modes six orders of magnitude apart: quantiles jump
        # across the gap, the worst case for bucketed estimators.
        "bimodal": np.concatenate([
            np.abs(rng.normal(100.0, 5.0, n // 2)) + 1.0,
            rng.normal(1e6, 1e4, n // 2),
        ]),
        "loguniform": 10.0 ** rng.uniform(0.0, 6.0, n),
    }


class TestQuantileSketchBound:
    @pytest.mark.parametrize("name", sorted(_distributions()))
    def test_relative_error_bound(self, name):
        samples = _distributions()[name]
        sk = QuantileSketch(name, rel_err=REL_ERR)
        sk.record_many(samples)
        assert sk.count == len(samples)
        assert_within_bound(samples, sk)

    def test_scalar_and_vector_recording_agree(self):
        samples = _distributions()["lognormal"][:2_000]
        a = QuantileSketch("scalar")
        for v in samples:
            a.record(v)
        b = QuantileSketch("vector")
        b.record_many(samples)
        assert a.count == b.count
        assert a.total == pytest.approx(b.total)
        for q in (50, 90, 99, 99.9):
            assert a.quantile(q) == b.quantile(q)

    def test_merge_matches_single_sketch(self):
        samples = _distributions()["pareto"]
        whole = QuantileSketch("whole")
        whole.record_many(samples)
        left = QuantileSketch("left")
        left.record_many(samples[: len(samples) // 2])
        right = QuantileSketch("right")
        right.record_many(samples[len(samples) // 2:])
        left.merge(right)
        assert left.count == whole.count
        for q in (50, 90, 99, 99.9):
            assert left.quantile(q) == whole.quantile(q)
        assert_within_bound(samples, left)

    def test_merge_rejects_mismatched_resolution(self):
        with pytest.raises(ValueError):
            QuantileSketch(rel_err=0.01).merge(QuantileSketch(rel_err=0.05))

    def test_merge_mismatch_is_typed_and_names_the_knob(self):
        """A cross-resolution or cross-floor merge would silently break
        the relative-error guarantee; both raise the typed error (a
        ``ValueError`` subclass, so old ``except ValueError`` call
        sites keep working) and the sketch is left untouched."""
        a = QuantileSketch("a", rel_err=0.01)
        a.record(1.0)
        coarse = QuantileSketch("b", rel_err=0.05)
        coarse.record(2.0)
        with pytest.raises(SketchMismatchError, match="rel_err"):
            a.merge(coarse)
        floored = QuantileSketch("c", rel_err=0.01, min_value=1e-3)
        floored.record(2.0)
        with pytest.raises(SketchMismatchError, match="min_value"):
            a.merge(floored)
        assert issubclass(SketchMismatchError, ValueError)
        assert a.count == 1 and a.quantile(50) == pytest.approx(1.0, rel=0.01)

    def test_windowed_bucket_merge_guard_propagates(self):
        """WindowedSketch merges its buckets internally; feeding a
        foreign-resolution sketch into that path must trip the same
        typed guard rather than corrupt the window."""
        win = WindowedSketch(window_usec=1000.0, rel_err=0.01)
        win.record(10.0, 5.0)
        merged = QuantileSketch(rel_err=0.05)
        with pytest.raises(SketchMismatchError):
            for sketch, _bad in win._live(10.0):
                merged.merge(sketch)

    def test_serialization_roundtrip(self):
        samples = _distributions()["pareto"]
        sk = QuantileSketch("rt", rel_err=0.02, min_value=1e-6)
        sk.record_many(samples)
        clone = QuantileSketch.from_dict(sk.to_dict())
        assert clone.count == sk.count
        assert clone.total == sk.total
        for q in (0, 50, 90, 99, 99.9, 100):
            assert clone.quantile(q) == sk.quantile(q)
        # the clone is a full citizen: merging it back doubles counts
        sk.merge(clone)
        assert sk.count == 2 * clone.count

    def test_serialization_roundtrip_empty(self):
        sk = QuantileSketch("empty")
        clone = QuantileSketch.from_dict(sk.to_dict())
        assert clone.count == 0
        assert math.isnan(clone.quantile(50))

    def test_zero_bucket_absolute_bound(self):
        """Below ``min_value`` the guarantee degrades to an absolute
        error of ``min_value``; q=0 stays exact."""
        rng = np.random.default_rng(7)
        samples = rng.uniform(1e-12, 1e-6, 5_000)
        sk = QuantileSketch("tiny", min_value=1e-3)
        sk.record_many(samples)
        assert sk.quantile(0) == float(samples.min())
        for q in (25, 50, 99):
            lo, hi = exact_bounds(samples, q)
            assert abs(sk.quantile(q) - lo) <= 1e-3
            assert abs(sk.quantile(q) - hi) <= 1e-3

    def test_collapse_bounds_memory_and_keeps_tail(self):
        """Under ``max_bins`` pressure the lowest buckets collapse: the
        map stays bounded and upper quantiles keep the guarantee (the
        collapsed floor is where accuracy is surrendered)."""
        samples = _distributions()["loguniform"]
        sk = QuantileSketch("tight", rel_err=REL_ERR, max_bins=256)
        sk.record_many(samples)
        assert sk.collapsed > 0
        assert sk.nbins <= 257  # max_bins + the (empty here) zero bucket
        assert_within_bound(samples, sk, qs=(90.0, 95.0, 99.0, 99.9, 100.0))

    def test_empty_and_nan(self):
        sk = QuantileSketch("empty")
        assert math.isnan(sk.quantile(50))
        assert math.isnan(sk.mean)
        assert sk.count == 0
        with pytest.raises(ValueError):
            sk.record(math.nan)
        with pytest.raises(ValueError):
            sk.record_many([1.0, math.nan])
        with pytest.raises(ValueError):
            sk.quantile(101)

    def test_tally_drop_in_surface(self):
        """Same call surface as ``Tally`` where it matters: record,
        record_many, percentile, count/total/mean/min/max."""
        sk = QuantileSketch("compat")
        sk.record(10.0)
        sk.record_many([20.0, 30.0])
        assert QuantileSketch.percentile is QuantileSketch.quantile
        assert sk.percentile(0) == pytest.approx(10.0, rel=REL_ERR)
        assert sk.count == 3
        assert sk.total == pytest.approx(60.0)
        assert sk.mean == pytest.approx(20.0)
        assert (sk.min, sk.max) == (10.0, 30.0)


class TestEWMAAndRate:
    def test_first_sample_initializes(self):
        e = EWMA(alpha=0.5)
        assert e.update(10.0) == 10.0
        assert e.update(20.0) == 15.0
        assert e.update(20.0) == 17.5

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            EWMA(alpha=0.0)

    def test_rate_tracker_differentiates(self):
        r = RateTracker(alpha=0.3)
        assert math.isnan(r.observe(0.0, 0.0))
        assert r.observe(1e6, 1_000.0) == pytest.approx(1_000.0)
        # next interval runs at 2000/s; EWMA pulls 30% of the way
        assert r.observe(2e6, 3_000.0) == pytest.approx(1_300.0)
        assert r.rate == pytest.approx(1_300.0)


class TestWindowedSketch:
    def test_rotation_expires_old_samples(self):
        w = WindowedSketch(window_usec=100.0, nbuckets=4)
        for t in range(0, 100, 10):
            w.record(float(t), 1_000.0)
        assert w.count(99.0) == 10
        assert w.quantile(99.0, 50) == pytest.approx(1_000.0, rel=REL_ERR)
        # one full window later everything has aged out
        assert w.count(300.0) == 0
        assert math.isnan(w.quantile(300.0, 50))
        w.record(300.0, 5.0)
        assert w.count(300.0) == 1
        assert w.quantile(300.0, 50) == pytest.approx(5.0, rel=REL_ERR)

    def test_bad_counts_and_frac_over(self):
        w = WindowedSketch(window_usec=1_000.0, nbuckets=10)
        for i in range(90):
            w.record(float(i), 100.0)
        for i in range(90, 100):
            w.record(float(i), 10_000.0)
        w.record_bad(50.0)
        w.record_bad(60.0)
        assert w.count(100.0) == 100
        assert w.bad_count(100.0) == 2
        assert w.frac_over(100.0, 1_500.0) == pytest.approx(0.10)
        assert w.frac_over(100.0, 1e9) == 0.0

    def test_summary_matches_separate_views(self):
        rng = np.random.default_rng(3)
        w = WindowedSketch(window_usec=5_000.0, nbuckets=8)
        t = 0.0
        for _ in range(500):
            t += float(rng.uniform(1.0, 20.0))
            w.record(t, float(rng.lognormal(5.0, 1.0)))
            if rng.uniform() < 0.05:
                w.record_bad(t)
        count, bad, p99, frac = w.summary(t, 99.0, 300.0)
        assert count == w.count(t)
        assert bad == w.bad_count(t)
        assert p99 == w.quantile(t, 99.0)
        assert frac == w.frac_over(t, 300.0)


class TestStatsRegistrySketch:
    def test_registration_and_snapshot(self):
        reg = StatsRegistry()
        sk = reg.sketch("lat", rel_err=0.02)
        assert reg.sketch("lat") is sk
        sk.record_many([100.0] * 99 + [1_000.0])
        snap = reg.snapshot()["lat"]
        assert snap["count"] == 100
        # nearest-rank p99 of 100 samples is the 99th sample (100.0);
        # only the max reaches the outlier
        assert snap["p99"] == pytest.approx(100.0, rel=0.02)
        assert snap["max"] == 1_000.0

    def test_type_conflict_raises(self):
        reg = StatsRegistry()
        reg.sketch("x")
        with pytest.raises(TypeError):
            reg.tally("x")
        reg.tally("y")
        with pytest.raises(TypeError):
            reg.sketch("y")

    def test_empty_tally_percentile_and_snapshot(self):
        """Regression: an empty series must summarize as NaN, not
        raise or warn from ``np.percentile`` on a zero-length buffer."""
        reg = StatsRegistry()
        t = reg.tally("never.recorded")
        assert math.isnan(t.percentile(50))
        assert math.isnan(t.percentile(99))
        assert math.isnan(t.mean)
        snap = reg.snapshot()["never.recorded"]
        assert snap["count"] == 0
        assert math.isnan(snap["p99"])


def test_fig07_sketch_matches_exact_tally(traced_fig07_hpbd):
    """Acceptance: on the fig07 HPBD scenario, sketch quantiles agree
    with the exact sample-hoarding ``Tally`` within the documented
    relative-error bound."""
    tally = traced_fig07_hpbd.registry.get("hpbd0.request_usec")
    values = tally.values()
    assert len(values) > 1_000
    sk = QuantileSketch("fig07", rel_err=REL_ERR)
    sk.record_many(values)
    assert sk.count == len(values)
    assert_within_bound(values, sk, qs=(50.0, 90.0, 95.0, 99.0, 99.9))
    for q in (50.0, 95.0, 99.0):
        assert sk.quantile(q) == pytest.approx(
            tally.percentile(q), rel=3 * REL_ERR
        )


@pytest.mark.parametrize("fabric", ["ipoib", "gige"])
def test_fig07_nbd_devices_within_bound(fabric):
    """The NBD fig07 variants, at a small scale: the bound must hold
    on every request-latency profile the figure produces."""
    from repro.config import NBD
    from repro.experiments import fig07_points
    from repro.runner import run_scenario

    point = fig07_points(256, [NBD(fabric)])[0]
    result = run_scenario(point.cfg)
    tally = result.registry.get("nbd0.request_usec")
    assert tally is not None and tally.count > 100
    values = tally.values()
    sk = QuantileSketch(fabric, rel_err=REL_ERR)
    sk.record_many(values)
    assert_within_bound(values, sk, qs=(50.0, 90.0, 99.0))
