"""Tests for the multi-tenant cluster subsystem (``repro.cluster``).

Unit coverage for the registry / placement / QoS / admission pieces,
plus the two acceptance scenarios the ISSUE gates on: three identical
tenants under weighted-fair QoS finish within 10% of each other, and
the QoS-off baseline with one thrashing tenant spreads by >= 2x.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import (
    AdmissionController,
    AdmissionNack,
    CapacityError,
    FleetRegistry,
    WeightedFairScheduler,
    partition_credits,
    plan_placement,
)
from repro.config import ClusterScenarioConfig, TenantSpec
from repro.hpbd import ChunkMapDistribution, HPBDServer
from repro.units import GiB, MiB, PAGE_SIZE

CLUSTER_SCALE = 64


@pytest.fixture
def fleet(sim, fabric):
    servers = [
        HPBDServer(sim, fabric, f"mem{i}", store_bytes=64 * MiB)
        for i in range(3)
    ]
    registry = FleetRegistry(sim, servers, capacity_bytes=16 * MiB)
    return servers, registry


class TestFleetRegistry:
    def test_reserve_bumps_offsets_and_accounting(self, sim, fleet):
        _servers, reg = fleet
        a = reg.reserve("t0", 0, 4 * MiB)
        b = reg.reserve("t1", 0, 2 * MiB)
        assert (a, b) == (0, 4 * MiB)
        assert reg.reserved[0] == 6 * MiB
        assert reg.free_bytes(0) == 10 * MiB
        assert reg.by_tenant == {"t0": 4 * MiB, "t1": 2 * MiB}
        assert not sim.monitors.summary()

    def test_overflow_rejected(self, fleet):
        _servers, reg = fleet
        reg.reserve("t0", 1, 15 * MiB)
        with pytest.raises(CapacityError):
            reg.reserve("t1", 1, 2 * MiB)

    def test_dead_server_rejected(self, fleet):
        _servers, reg = fleet
        reg.alive[2] = False
        with pytest.raises(CapacityError):
            reg.reserve("t0", 2, MiB)

    def test_release_returns_capacity(self, sim, fleet):
        _servers, reg = fleet
        reg.reserve("t0", 0, 8 * MiB)
        reg.release("t0", 0, 8 * MiB)
        assert reg.free_bytes(0) == 16 * MiB
        assert reg.by_tenant["t0"] == 0
        reg.audit_teardown()
        assert not sim.monitors.summary()

    def test_over_release_flags_monitor(self, sim, fleet):
        _servers, reg = fleet
        reg.reserve("t0", 0, MiB)
        reg.release("t0", 0, 2 * MiB)
        violations = sim.monitors.summary()
        assert violations
        assert violations[0]["monitor"] == "cluster.capacity_conserved"

    def test_heartbeat_tracks_crash_and_restart(self, sim, fleet):
        servers, reg = fleet
        reg.start_heartbeat()

        def script(sim):
            yield sim.timeout(2_500.0)  # a couple of beats, all alive
            servers[1].crash()
            yield sim.timeout(2_500.0)
            down = (reg.alive_count, list(reg.alive))
            servers[1].restart()
            yield sim.timeout(2_500.0)
            return down

        down = sim.run(until=sim.spawn(script(sim)))
        assert down == (2, [True, False, True])
        assert reg.alive_count == 3
        assert reg.stats.get("cluster.server_down").count == 1
        assert reg.stats.get("cluster.server_up").count == 1

    def test_validation(self, sim, fleet):
        servers, reg = fleet
        with pytest.raises(ValueError):
            FleetRegistry(sim, servers, capacity_bytes=0)
        with pytest.raises(ValueError):
            FleetRegistry(sim, servers, capacity_bytes=MiB, overcommit=0.5)
        with pytest.raises(ValueError):
            reg.reserve("t0", 0, 0)
        with pytest.raises(ValueError):
            reg.reserve("t0", 9, MiB)


class TestPlacement:
    def test_blocking_equal_contiguous_shares(self, fleet):
        _servers, reg = fleet
        chunks = plan_placement("blocking", "t0", 12 * MiB, reg)
        assert [c.server for c in chunks] == [0, 1, 2]
        assert all(c.nbytes == 4 * MiB for c in chunks)
        # the map must be consumable by the striping layer
        dist = ChunkMapDistribution(12 * MiB, 3, chunks)
        assert dist.share_of(0) == 4 * MiB

    def test_blocking_skips_dead_server(self, fleet):
        _servers, reg = fleet
        reg.alive[1] = False
        chunks = plan_placement("blocking", "t0", 12 * MiB, reg)
        assert sorted({c.server for c in chunks}) == [0, 2]

    def test_blocking_rejects_oversized_share(self, fleet):
        _servers, reg = fleet
        reg.reserve("other", 0, 15 * MiB)
        with pytest.raises(CapacityError):
            plan_placement("blocking", "t0", 12 * MiB, reg)

    def test_least_loaded_levels_the_fleet(self, fleet):
        _servers, reg = fleet
        reg.reserve("other", 0, 8 * MiB)
        chunks = plan_placement("least_loaded", "t0", 12 * MiB, reg)
        dist = ChunkMapDistribution(12 * MiB, 3, chunks)
        # the pre-loaded server ends up with the smallest share
        assert dist.share_of(0) < dist.share_of(1)
        assert dist.share_of(0) < dist.share_of(2)
        assert sum(dist.share_of(i) for i in range(3)) == 12 * MiB

    def test_hash_is_deterministic_per_tenant(self, fleet):
        _servers, reg = fleet
        a = plan_placement("hash", "t0", 8 * MiB, reg)
        b = plan_placement("hash", "t0", 8 * MiB, reg)
        assert a == b
        ChunkMapDistribution(8 * MiB, 3, a)

    def test_interleaving_policies_fall_back_to_page_granule(self, fleet):
        _servers, reg = fleet
        total = MiB + PAGE_SIZE  # not MiB-aligned
        for policy in ("least_loaded", "hash"):
            chunks = plan_placement(policy, "t0", total, reg)
            assert sum(c.nbytes for c in chunks) == total

    def test_full_fleet_rejected(self, fleet):
        _servers, reg = fleet
        for i in range(3):
            reg.reserve("hog", i, 16 * MiB)
        for policy in ("blocking", "least_loaded", "hash"):
            with pytest.raises(CapacityError):
                plan_placement(policy, "t0", 4 * MiB, reg)

    def test_validation(self, fleet):
        _servers, reg = fleet
        with pytest.raises(ValueError):
            plan_placement("blocking", "t0", PAGE_SIZE - 1, reg)
        with pytest.raises(ValueError):
            plan_placement("round_robin", "t0", MiB, reg)


class TestWeightedFairScheduler:
    def test_equal_weights_interleave(self):
        sched = WeightedFairScheduler()
        for i in range(3):
            sched.push("a", 1.0, 1.0, f"a{i}")
            sched.push("b", 1.0, 1.0, f"b{i}")
        order = [sched.pop()[0] for _ in range(6)]
        assert order == ["a", "b", "a", "b", "a", "b"]

    def test_weight_two_gets_double_service(self):
        sched = WeightedFairScheduler()
        for i in range(6):
            sched.push("heavy", 2.0, 1.0, f"h{i}")
            sched.push("light", 1.0, 1.0, f"l{i}")
        first6 = [sched.pop()[0] for _ in range(6)]
        assert first6.count("heavy") == 4
        assert first6.count("light") == 2

    def test_fifo_within_tenant(self):
        sched = WeightedFairScheduler()
        for i in range(4):
            sched.push("a", 1.0, 4096.0, i)
        assert [sched.pop()[1] for _ in range(4)] == [0, 1, 2, 3]

    def test_pop_empty_and_len(self):
        sched = WeightedFairScheduler()
        assert sched.pop() is None
        sched.push("a", 1.0, 1.0, "x")
        assert len(sched) == 1
        assert sched.pop() == ("a", "x")
        assert len(sched) == 0
        assert sched.max_depth == 1

    def test_rejects_bad_weight_and_cost(self):
        sched = WeightedFairScheduler()
        with pytest.raises(ValueError):
            sched.push("a", 0.0, 1.0, "x")
        with pytest.raises(ValueError):
            sched.push("a", 1.0, 0.0, "x")


class TestPartitionCredits:
    def test_equal_split(self):
        assert partition_credits(48, {"a": 1, "b": 1, "c": 1}) == {
            "a": 16, "b": 16, "c": 16,
        }

    def test_proportional_split(self):
        out = partition_credits(48, {"a": 2, "b": 1, "c": 1})
        assert out == {"a": 24, "b": 12, "c": 12}

    def test_floor_of_one_credit(self):
        out = partition_credits(4, {"big": 1000.0, "small": 1.0})
        assert out["small"] >= 1
        assert sum(out.values()) == 4

    def test_always_sums_to_pool(self):
        for pool in (7, 16, 33):
            out = partition_credits(pool, {"a": 3.0, "b": 1.5, "c": 1.0})
            assert sum(out.values()) == pool

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_credits(2, {"a": 1, "b": 1, "c": 1})
        with pytest.raises(ValueError):
            partition_credits(8, {"a": -1.0})


class TestAdmission:
    def test_admit_reserves_and_maps(self, sim, fleet):
        _servers, reg = fleet
        ctl = AdmissionController(reg, policy="blocking")
        adm = ctl.admit("t0", 12 * MiB)
        assert sum(adm.share_bytes) == 12 * MiB
        assert adm.policy == "blocking"
        assert reg.by_tenant["t0"] == 12 * MiB
        # a second tenant lands after the first on every server
        adm2 = ctl.admit("t1", 6 * MiB)
        assert all(
            base >= adm.share_bytes[i]
            for i, base in enumerate(adm2.area_bases)
            if adm2.share_bytes[i]
        )
        assert not sim.monitors.summary()

    def test_remap_retry_on_skewed_fleet(self, fleet):
        _servers, reg = fleet
        reg.reserve("hog", 0, 15 * MiB)
        ctl = AdmissionController(reg, policy="blocking")
        # the blocking share (3 MiB/server) does not fit server 0; the
        # controller re-plans with least-loaded bin-packing instead
        adm = ctl.admit("t0", 9 * MiB)
        assert adm.policy == "least_loaded"
        assert ctl.stats.get("cluster.admission_remaps").count == 1
        assert ctl.stats.get("cluster.admitted").count == 1

    def test_nack_when_fleet_is_full(self, fleet):
        _servers, reg = fleet
        ctl = AdmissionController(reg, policy="blocking")
        ctl.admit("hog", 36 * MiB)
        with pytest.raises(AdmissionNack) as exc:
            ctl.admit("t0", 24 * MiB)
        assert exc.value.tenant == "t0"
        assert ctl.stats.get("cluster.admission_nacks").count == 1

    def test_evict_returns_reservation(self, fleet):
        _servers, reg = fleet
        ctl = AdmissionController(reg, policy="blocking")
        adm = ctl.admit("t0", 12 * MiB)
        ctl.evict(adm)
        assert reg.by_tenant["t0"] == 0
        assert all(reg.free_bytes(i) == 16 * MiB for i in range(3))


def _tiny_tenant(name, *, memdiv=1, datamul=1, weight=1.0, scale=256):
    from repro.workloads import QuicksortWorkload

    return TenantSpec(
        name=name,
        workload=QuicksortWorkload(
            nelems=datamul * 256 * 1024 * 1024 // scale, seed=7
        ),
        mem_bytes=512 * MiB // scale // memdiv,
        swap_bytes=datamul * GiB // scale,
        weight=weight,
    )


class TestScenarioConfig:
    def test_tenant_names_validated(self):
        with pytest.raises(ValueError):
            TenantSpec("bad name", None, MiB, MiB)
        with pytest.raises(ValueError):
            ClusterScenarioConfig(
                tenants=[_tiny_tenant("a"), _tiny_tenant("a")]
            )

    def test_placement_and_overcommit_validated(self):
        with pytest.raises(ValueError):
            ClusterScenarioConfig(
                tenants=[_tiny_tenant("a")], placement="scatter"
            )
        with pytest.raises(ValueError):
            ClusterScenarioConfig(
                tenants=[_tiny_tenant("a")], overcommit=0.5
            )


@pytest.fixture(scope="session")
def fair_result():
    from repro.experiments import cluster_fair_config
    from repro.runner import run_scenario

    return run_scenario(cluster_fair_config(CLUSTER_SCALE), trace=True)


@pytest.fixture(scope="session")
def unfair_result():
    from repro.experiments import cluster_unfair_config
    from repro.runner import run_scenario

    return run_scenario(cluster_unfair_config(CLUSTER_SCALE), trace=True)


class TestFairnessAcceptance:
    def test_identical_tenants_within_ten_percent(self, fair_result):
        assert len(fair_result.tenants) == 3
        assert fair_result.spread <= 1.10
        assert fair_result.jain_index >= 0.99

    def test_fair_run_clean_and_served(self, fair_result):
        assert fair_result.invariant_violations == []
        assert fair_result.admission_nacks == 0
        served = [t.bytes_served for t in fair_result.tenants]
        assert all(b > 0 for b in served)
        assert max(served) <= 1.10 * min(served)

    def test_fair_run_attributes_blame(self, fair_result):
        # traced run: the cross-layer blame classes must be populated
        assert sum(fair_result.blame_usec.values()) > 0

    def test_unfair_baseline_spreads_2x(self, unfair_result):
        assert unfair_result.spread >= 2.0
        assert unfair_result.invariant_violations == []
        slowest = max(
            unfair_result.tenants, key=lambda t: t.elapsed_usec
        )
        assert slowest.name == "thrash"

    def test_deterministic_replay(self, fair_result):
        from repro.experiments import cluster_fair_config
        from repro.runner import run_scenario

        second = run_scenario(
            cluster_fair_config(CLUSTER_SCALE), trace=True
        )
        assert second.fairness_report() == fair_result.fairness_report()


class TestScenarioVariants:
    def test_all_placement_policies_run_clean(self):
        from repro.cluster import run_cluster_scenario

        for policy in ("least_loaded", "hash"):
            cfg = ClusterScenarioConfig(
                tenants=[_tiny_tenant(f"{policy[0]}{i}") for i in range(2)],
                nservers=2,
                placement=policy,
                mem_reserved_bytes=24 * MiB // 256,
            )
            result = run_cluster_scenario(cfg)
            assert result.invariant_violations == []
            assert all(t.bytes_served > 0 for t in result.tenants)

    def test_overcommit_spills_to_server_disk(self):
        from repro.cluster.runner import build_cluster_scenario

        cfg = ClusterScenarioConfig(
            tenants=[_tiny_tenant(f"t{i}") for i in range(2)],
            nservers=2,
            server_capacity_bytes=3 * MiB,
            overcommit=2.0,
            mem_reserved_bytes=24 * MiB // 256,
        )
        scn = build_cluster_scenario(cfg)
        result = scn.run()
        assert result.invariant_violations == []
        assert sum(s.ramdisk.evictions for s in scn.servers) > 0
        assert sum(s.ramdisk.spill_bytes_read for s in scn.servers) > 0

    def test_admission_nack_falls_back_to_disk(self):
        from repro.cluster import run_cluster_scenario
        from repro.workloads import TestswapWorkload

        small = TenantSpec(
            name="t0",
            workload=TestswapWorkload(size_bytes=2 * MiB),
            mem_bytes=2 * MiB,
            swap_bytes=4 * MiB,
        )
        late = TenantSpec(
            name="late",
            workload=TestswapWorkload(size_bytes=2 * MiB),
            mem_bytes=2 * MiB,
            swap_bytes=4 * MiB,
        )
        cfg = ClusterScenarioConfig(
            tenants=[small, late],
            nservers=1,
            server_capacity_bytes=5 * MiB,
            admission_fallback="disk",
            mem_reserved_bytes=MiB,
        )
        result = run_cluster_scenario(cfg)
        assert result.admission_nacks == 1
        by_name = {t.name: t for t in result.tenants}
        assert not by_name["t0"].disk_fallback
        assert by_name["late"].disk_fallback
        assert by_name["late"].placement == "disk"
        assert result.invariant_violations == []

    def test_admission_nack_raises_by_default(self):
        from repro.cluster import run_cluster_scenario
        from repro.workloads import TestswapWorkload

        spec = TenantSpec(
            name="t0",
            workload=TestswapWorkload(size_bytes=2 * MiB),
            mem_bytes=2 * MiB,
            swap_bytes=16 * MiB,
        )
        cfg = ClusterScenarioConfig(
            tenants=[spec],
            nservers=1,
            server_capacity_bytes=4 * MiB,
            mem_reserved_bytes=MiB,
        )
        with pytest.raises(AdmissionNack):
            run_cluster_scenario(cfg)


class TestClusterCLI:
    def test_cluster_command_fair_only(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "fairness.json"
        status = main([
            "cluster",
            "--scale", "128",
            "--skip-baseline",
            "--json", str(out),
        ])
        assert status == 0
        payload = json.loads(out.read_text())
        assert payload["fair"]["spread"] <= 1.10
        assert payload["violations"] == []
        assert len(payload["fair"]["tenants"]) == 3
        captured = capsys.readouterr().out
        assert "spread" in captured


class TestTenantMetricsWiring:
    def test_traced_run_exports_utilization_gauges(self, fair_result):
        """Every traced cluster run samples per-tenant vmstat and
        utilization gauges (CPU busyness, request queue, credits,
        pool) plus fleet-level RDMA slot occupancy."""
        names = set(fair_result.registry.names())
        for tenant in ("t0", "t1", "t2"):
            assert f"obs.vmstat.{tenant}.free_bytes" in names
            assert f"obs.vmstat.{tenant}.pgfault_major" in names
            for gauge in ("cpus.busy", "rq.in_flight", "rq.ready",
                          "credits.tokens", "pool.free_bytes"):
                assert f"obs.util.{tenant}.{gauge}" in names
        assert "obs.util.mem0.rdma.slots_in_use" in names
        # the samplers actually ran
        ts = fair_result.registry.get("obs.util.t0.cpus.busy")
        assert ts.count > 10

    def test_untraced_run_skips_metrics(self):
        from repro.cluster import run_cluster_scenario
        from repro.experiments import cluster_fair_config

        result = run_cluster_scenario(cluster_fair_config(256))
        assert not any(
            n.startswith("obs.util.") for n in result.registry.names()
        )
