"""HPBD wire protocol: control messages and their validation.

Two message classes exist (§4.2.1): *control* messages (page requests
and completion acknowledgements, sent over channel semantics into
pre-posted receives) and *data* messages (the pages themselves, moved by
server-initiated RDMA).  Control messages carry a signature over their
own fields — the paper's lightweight integrity check ("message signature
is used to validate requests and responses").
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass, field

from ..simulator import SimulationError

__all__ = [
    "CTRL_MSG_BYTES",
    "OP_READ",
    "OP_WRITE",
    "STATUS_OK",
    "STATUS_ERROR",
    "STATUS_NACK",
    "PageRequest",
    "PageReply",
    "ProtocolError",
    "sign_request",
    "sign_reply",
]

#: Control messages are small and fixed-size: opcode + offset + length +
#: buffer descriptor (addr, rkey) + ids + signature.
CTRL_MSG_BYTES = 64

OP_READ = "read"  # swap-in: server pushes data (RDMA write)
OP_WRITE = "write"  # swap-out: server pulls data (RDMA read)

STATUS_OK = 0
STATUS_ERROR = 1
#: typed negative acknowledgement: the daemon is alive but out of a
#: resource (staging pool exhausted, admission bound hit) — retryable,
#: unlike STATUS_ERROR which marks the request itself as unservable.
STATUS_NACK = 2

_req_ids = itertools.count(1)


class ProtocolError(SimulationError):
    """Signature mismatch or malformed message."""


def _crc(*fields: object) -> int:
    return zlib.crc32("|".join(repr(f) for f in fields).encode())


def sign_request(op: str, offset: int, nbytes: int, addr: int, rkey: int) -> int:
    return _crc("req", op, offset, nbytes, addr, rkey)


def sign_reply(req_id: int, status: int) -> int:
    return _crc("rep", req_id, status)


@dataclass
class PageRequest:
    """Client → server: serve one physical page request.

    ``offset`` addresses the *server's* slice of the swap area (bytes);
    ``(buf_addr, buf_rkey)`` describe the client's registered pool buffer
    the server should RDMA-read from (OP_WRITE) or RDMA-write into
    (OP_READ).
    """

    op: str
    offset: int
    nbytes: int
    buf_addr: int
    buf_rkey: int
    req_id: int = field(default_factory=lambda: next(_req_ids))
    signature: int = 0
    #: bookkeeping shortcut: the payload that physically travels by RDMA.
    #: Carried on the request so integrity tests can follow it; it does
    #: not contribute to the control-message size or signature.
    data_token: object = None
    #: originating *block-layer* request id (struct request identity),
    #: distinct from the per-message ``req_id``: a block request split
    #: across servers fans out into several PageRequests sharing one
    #: ``blk_req_id``.  Tags server-side spans/WRs for critpath; not
    #: part of the signature.
    blk_req_id: int | None = None

    def __post_init__(self) -> None:
        if self.op not in (OP_READ, OP_WRITE):
            raise ProtocolError(f"bad opcode {self.op!r}")
        if self.nbytes <= 0 or self.offset < 0:
            raise ProtocolError(f"bad extent {self.offset}+{self.nbytes}")
        if self.signature == 0:
            self.signature = sign_request(
                self.op, self.offset, self.nbytes, self.buf_addr, self.buf_rkey
            )

    def validate(self) -> None:
        expect = sign_request(
            self.op, self.offset, self.nbytes, self.buf_addr, self.buf_rkey
        )
        if self.signature != expect:
            raise ProtocolError(
                f"request {self.req_id}: bad signature "
                f"{self.signature:#x} != {expect:#x}"
            )


@dataclass
class PageReply:
    """Server → client: request completion acknowledgement."""

    req_id: int
    status: int = STATUS_OK
    signature: int = 0
    #: see :attr:`PageRequest.data_token` (filled for OP_READ replies).
    data_token: object = None

    def __post_init__(self) -> None:
        if self.signature == 0:
            self.signature = sign_reply(self.req_id, self.status)

    def validate(self) -> None:
        expect = sign_reply(self.req_id, self.status)
        if self.signature != expect:
            raise ProtocolError(
                f"reply {self.req_id}: bad signature "
                f"{self.signature:#x} != {expect:#x}"
            )

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def nack(self) -> bool:
        return self.status == STATUS_NACK
