"""The HPBD client: a block-device driver over native InfiniBand verbs.

Structure follows §4.2.3/§5 of the paper:

* the driver exposes a standard request queue to the VM (so all the
  block-layer merging/plugging applies untouched);
* a **sender thread** takes merged requests off the queue, splits each
  into per-server *physical requests* (blocking distribution), copies
  swap-out data into the pre-registered pool, takes a flow-control
  credit, and posts the control message;
* a **receiver thread** sleeps on the reply completion queue (one CQ
  shared by all server QPs), is woken by solicited-completion events,
  and drains *all* available replies per wakeup (bursty processing);
* the **water-mark flow control** (§4.2.4) is a per-server credit
  bucket sized to the pre-posted receive count — requests queue inside
  the driver when credits run out;
* a block request completes when every physical request has been
  acknowledged ("A request is successfully served when each physical
  request is replied with successful acknowledgment").

Reliability (§4.1: "Failure in page handling can adversely impact
system stability and even crash the system") — every physical request
is tracked as an *attempt* with its own send timestamp and deadline:

* with ``request_timeout_usec`` set, a watchdog expires overdue
  attempts and drives a bounded retry/backoff state machine;
* an exhausted or hopeless attempt marks its server dead and re-routes:
  to the mirror replica, onto a surviving server (``degraded_mode=
  "remap"``), or down to the local swap disk (``degraded_mode="disk"``);
* with timeouts disabled (the default) behaviour is unchanged: a server
  error raises, except for the mirror read-failover path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ib import HCA, CompletionQueue, RecvWR, SendWR, connect_endpoints
from ..kernel.blockdev import Bio, BlockRequest, READ, RequestQueue, WRITE
from ..kernel.node import Node
from ..net.fabrics import IBParams, IB_DEFAULT, memcpy_cost
from ..obs.sketch import EWMA
from ..redundancy.policy import (
    ShardGroup,
    parity_row_entry,
    parity_token,
    rs_decode_usec,
    rs_encode_usec,
)
from ..simulator import (
    Event,
    SimulationError,
    Simulator,
    StatsRegistry,
    TokenBucket,
    WaitQueue,
    any_of,
)
from ..units import MiB, PAGE_SIZE, SECTOR_SIZE
from .pool import PoolBuffer, RegisteredPool
from .protocol import (
    CTRL_MSG_BYTES,
    OP_READ,
    OP_WRITE,
    PageReply,
    PageRequest,
    ProtocolError,
)
from .server import HPBDServer
from .striping import BlockingDistribution, Segment

__all__ = ["HPBDClient"]

#: degraded-mode policies once a server is declared dead
DEGRADED_MODES = ("none", "remap", "disk")

#: TCP-RTO-style estimator gains for the per-server RTT EWMAs driving
#: replica selection and the hedged-read deadline.
RTT_ALPHA = 0.125
RTTVAR_ALPHA = 0.25
#: replica selection: both copies need this many RTT samples, and the
#: replica must beat the primary by this margin, before reads steer.
SELECT_MIN_SAMPLES = 8
SELECT_MARGIN = 0.8
#: every Nth steered read probes the avoided copy instead, so its EWMA
#: keeps sampling and the steer can lift once it recovers.
SELECT_PROBE_EVERY = 16
#: hedged reads: no hedging until the estimator has this many samples.
HEDGE_MIN_SAMPLES = 4


@dataclass
class _Pending:
    """Book-keeping for one block request in flight."""

    req: BlockRequest
    nsegs: int
    done_segs: int = 0
    submit_time: float = 0.0


@dataclass(eq=False)
class _Inflight:
    """One physical request (segment x direction), however many attempts
    it takes to get acknowledged; identity-hashed (the catch-up registry
    keys entries by object)."""

    pending: _Pending
    seg: Segment
    op: str
    buf: PoolBuffer | None = None  # pool mode
    mr: object = None  # register-on-the-fly mode (MemoryRegion)
    #: first post time (block-level accounting; per-attempt times live
    #: on the _Attempt so retries never pollute the rtt span)
    sent_at: float = 0.0
    #: swap-out payload token, re-sent verbatim on every attempt
    token: object = None
    #: mirroring: how many acknowledgements must still arrive before the
    #: shared buffer can be released and the segment counted done.
    copies_left: int = 1
    #: mirroring: server index holding the replica (read failover target)
    replica_server: int | None = None
    #: mirroring: True once this read was already retried on the replica
    failed_over: bool = False
    #: semi-sync mirroring: acknowledgements that must arrive before the
    #: segment counts *complete* (may be < copies_left under quarantine)
    need_acks: int = 1
    #: successful acknowledgements received so far
    acked: int = 0
    #: the block-level segment has been counted done (semi-sync writes
    #: complete before their straggler ack; tied reads complete on the
    #: first reply)
    completed: bool = False
    #: hedged reads: a tied request was already fired for this segment
    hedged: bool = False
    #: req_ids of this segment's attempts still awaiting a reply
    live_rids: set = field(default_factory=set)
    # -- erasure-coded (rs) state --
    #: parity data-token carried by this write's parity-shard attempts
    parity_token: object = None
    #: stripe-row interval this write holds the parity write gate for
    row_interval: tuple | None = None
    #: degraded read: the data shard is dead, k survivors are fetched
    #: and the lost shard is reconstructed from their replies
    degraded: bool = False
    #: shard index (within the group) being reconstructed
    lost_shard: int = 0
    #: servers currently assigned a degraded fetch
    degraded_servers: set = field(default_factory=set)
    #: parity-shard reply tokens collected for reconstruction
    parity_replies: list = field(default_factory=list)
    #: when the degraded fetch fan-out started (latency accounting)
    degraded_at: float = 0.0
    #: role index of ``seg.server`` within the redundancy group at issue
    #: time (stable across spare rebuilds, unlike the server id)
    shard_idx: int = 0
    #: servers that failed an attempt of this segment (legacy no-timeout
    #: runs have no dead-set to exclude repeat offenders by)
    failed_servers: set = field(default_factory=set)


@dataclass
class _Attempt:
    """One posted control message awaiting its acknowledgement."""

    entry: _Inflight
    server: int
    offset: int
    sent_at: float
    deadline: float | None = None
    retries: int = 0
    #: when the watchdog should fire a tied request at the other copy
    #: (None: hedging off, already fired, or not hedgeable)
    hedge_at: float | None = None
    #: this attempt *is* the tied request of a hedged read
    is_hedge: bool = False


class HPBDClient:
    """The block-device driver instance (one minor device).

    Construct, then run ``yield from client.connect()`` inside a process
    before submitting I/O; attach to the VM with
    ``node.swapon(client.queue, total_bytes)``.
    """

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        servers: list[HPBDServer],
        total_bytes: int,
        ib_params: IBParams = IB_DEFAULT,
        pool_bytes: int = MiB,
        credits_per_server: int = 16,
        name: str = "hpbd0",
        stats: StatsRegistry | None = None,
        register_on_fly: bool = False,
        stripe_bytes: int | None = None,
        server_area_base: int = 0,
        server_area_bases: list[int] | None = None,
        tenant: str | None = None,
        qos_weight: float = 1.0,
        distribution=None,
        mirror: bool = False,
        redundancy: ShardGroup | None = None,
        request_timeout_usec: float | None = None,
        max_retries: int = 2,
        retry_backoff_usec: float = 200.0,
        backoff_mult: float = 2.0,
        degraded_mode: str = "none",
        fallback_queue: RequestQueue | None = None,
        ewma_select: bool = False,
        hedge_reads: bool = False,
        hedge_k: float = 4.0,
        hedge_min_usec: float = 50.0,
        health=None,
    ) -> None:
        if not servers:
            raise ValueError("HPBD needs at least one memory server")
        if mirror and len(servers) < 2:
            raise ValueError("mirroring needs at least two servers")
        if degraded_mode not in DEGRADED_MODES:
            raise ValueError(
                f"degraded_mode {degraded_mode!r} not in {DEGRADED_MODES}"
            )
        if mirror and degraded_mode == "remap":
            raise ValueError(
                "mirror already re-routes around a dead server; "
                "combine it with degraded_mode 'none' or 'disk'"
            )
        if degraded_mode == "remap" and len(servers) < 2:
            raise ValueError("remap degraded mode needs at least two servers")
        if degraded_mode == "disk" and fallback_queue is None:
            raise ValueError("disk degraded mode needs a fallback_queue")
        if request_timeout_usec is not None and request_timeout_usec <= 0:
            raise ValueError(f"bad request timeout {request_timeout_usec}")
        if (ewma_select or hedge_reads) and not mirror:
            raise ValueError(
                "EWMA replica selection / hedged reads need mirror=True"
            )
        if redundancy is not None and redundancy.policy.kind == "none":
            redundancy = None
        if redundancy is not None:
            if mirror:
                raise ValueError(
                    "pass mirror or redundancy, not both (mirror is "
                    "nway(2) under the policy layer)"
                )
            if degraded_mode != "none":
                raise ValueError(
                    "redundancy subsumes the degraded modes: rs reads "
                    "reconstruct, nway reads fail over"
                )
            bad = [
                s
                for s in redundancy.servers
                if not 0 <= s < len(servers)
            ]
            if bad:
                raise ValueError(
                    f"redundancy group names servers {bad}, fleet has "
                    f"{len(servers)}"
                )
        if hedge_k <= 0 or hedge_min_usec < 0:
            raise ValueError(f"bad hedge parameters ({hedge_k}, {hedge_min_usec})")
        self.sim = sim
        self.node = node
        self.servers = servers
        self.total_bytes = total_bytes
        self.name = name
        self.stats = stats if stats is not None else node.stats
        #: ablation switch (§4.1): register each request's pages on the
        #: fly instead of copying through the pre-registered pool.
        self.register_on_fly = register_on_fly
        #: where this client's area starts inside each server's store
        #: (lets one server serve several clients, §5).  The cluster
        #: placement layer hands per-server bases; the scalar form keeps
        #: the original one-base-everywhere behaviour.
        if server_area_bases is not None:
            if len(server_area_bases) != len(servers):
                raise ValueError(
                    f"{len(server_area_bases)} area bases for "
                    f"{len(servers)} servers"
                )
            if server_area_base:
                raise ValueError(
                    "pass server_area_base or server_area_bases, not both"
                )
            self.server_area_bases = list(server_area_bases)
        else:
            self.server_area_bases = [server_area_base] * len(servers)
        self.server_area_base = server_area_base
        #: cluster identity: tags this driver's traffic on every server
        #: (per-tenant accounting + weighted-fair service).
        self.tenant = tenant
        if qos_weight <= 0:
            raise ValueError(f"bad qos weight {qos_weight}")
        self.qos_weight = qos_weight
        if redundancy is not None and distribution is None:
            # Standalone (non-cluster) construction: derive the chunk
            # map from the group so driver unit tests need no planner.
            from .striping import ChunkMapDistribution, group_chunk_maps

            data_chunks, parity_chunks = group_chunk_maps(
                redundancy, total_bytes
            )
            distribution = ChunkMapDistribution(
                total_bytes, len(servers), data_chunks, parity_chunks
            )
        if distribution is not None:
            # Custom layout (e.g. the cooperative WeightedDistribution).
            if distribution.total_bytes != total_bytes:
                raise ValueError(
                    f"distribution covers {distribution.total_bytes} bytes, "
                    f"device is {total_bytes}"
                )
            if distribution.nservers != len(servers):
                raise ValueError(
                    f"distribution names {distribution.nservers} servers, "
                    f"got {len(servers)}"
                )
            self.dist = distribution
        elif stripe_bytes is None:
            self.dist = BlockingDistribution(total_bytes, len(servers))
        else:
            # ablation switch (§4.2.5): striped layout the paper rejects
            from .striping import StripedDistribution

            self.dist = StripedDistribution(
                total_bytes, len(servers), stripe_bytes
            )
        if degraded_mode == "disk" and not hasattr(self.dist, "absolute_offset"):
            raise ValueError(
                "disk degraded mode needs a distribution with contiguous "
                "device-space segments (blocking layout)"
            )
        #: reliability extension (§4.1 points at NRD [13] / RRMP): write
        #: every page to a replica server too; reads fail over to the
        #: replica if the primary errors.  The replica of server i's
        #: chunk lives on server i+1 (mod n) at base ``share_of(i+1)``.
        self.mirror = mirror
        #: erasure-coded / replicated remote memory: the ShardGroup maps
        #: group members to shard roles (rs: k data + m parity; nway:
        #: every member data, r-1 ring replicas each).
        self.redundancy = redundancy
        for i, srv in enumerate(servers):
            share = self.dist.share_of(i)
            pshare = (
                self.dist.parity_share_of(i)
                if hasattr(self.dist, "parity_share_of")
                else 0
            )
            if share == 0 and pshare == 0 and not mirror and degraded_mode != "remap":
                # Chunk-map layouts may leave a fleet server unused by
                # this tenant; nothing to size against.
                continue
            need = self.server_area_bases[i] + share + pshare
            if mirror:
                # room for the predecessor's replica behind its own area
                prev = (i - 1) % len(servers)
                need += self.dist.share_of(prev)
            elif degraded_mode == "remap":
                # room to adopt a dead neighbour's chunk behind its own
                # area (same layout math as the mirror replica area)
                need += max(
                    self.dist.share_of(j)
                    for j in range(len(servers))
                    if j != i
                )
            if srv.ramdisk.size < need:
                raise ValueError(
                    f"server {srv.name} RamDisk ({srv.ramdisk.size} B) too "
                    f"small: needs {need} B"
                    + (" (share + replica area)" if mirror else "")
                    + (" (share + remap area)" if degraded_mode == "remap" else "")
                )
        self.queue = RequestQueue(
            sim,
            name=f"{name}.rq",
            capacity_sectors=total_bytes // SECTOR_SIZE,
            stats=self.stats,
        )
        self.hca = HCA(sim, node.fabric, node.name, params=ib_params, stats=self.stats)
        self.pd = self.hca.alloc_pd()
        self.send_cq = self.hca.create_cq(f"{name}.scq")
        #: single reply CQ shared across all server QPs (§5)
        self.reply_cq: CompletionQueue = self.hca.create_cq(f"{name}.rcq")
        self.pool_bytes = pool_bytes
        self.credits_per_server = credits_per_server
        self.pool: RegisteredPool | None = None
        self._qps: list = []
        self._server_qps: list = []  # the servers' ends, index-aligned
        self._qp_index: dict[int, int] = {}  # qp_num -> server index
        self._credits: list[TokenBucket] = []
        self._inflight: dict[int, _Attempt] = {}
        self._connected = False
        # recovery state machine
        self.request_timeout_usec = request_timeout_usec
        self.max_retries = max_retries
        self.retry_backoff_usec = retry_backoff_usec
        self.backoff_mult = backoff_mult
        self.degraded_mode = degraded_mode
        self.fallback_queue = fallback_queue
        #: drop (and count) replies failing signature validation instead
        #: of raising — set by the fault injector; the watchdog then
        #: retransmits the affected request.
        self.drop_bad_ctrl = False
        self._dead: set[int] = set()
        #: req_ids whose attempt the watchdog abandoned (credit already
        #: reclaimed): a late reply is counted and discarded, not fatal.
        self._stale: set[int] = set()
        self._watch_wake = WaitQueue(sim, name=f"{name}.watchdog", latch=True)
        self._watchdog_spawned = False
        # fail-slow countermeasures (mirror only): EWMA replica
        # selection, hedged reads, quarantine-aware semi-sync writes
        self.ewma_select = ewma_select
        self.hedge_reads = hedge_reads
        self.hedge_k = hedge_k
        self.hedge_min_usec = hedge_min_usec
        self._srtt = [EWMA(RTT_ALPHA) for _ in servers]
        self._rttvar = [EWMA(RTTVAR_ALPHA) for _ in servers]
        self._steer_count = 0
        self._quarantined: set[int] = set()
        #: req_id -> (server, sent_at) for cancelled tied attempts: the
        #: loser's late reply still feeds the RTT estimators — a
        #: steered-away server must keep sampling or the steer (and the
        #: health hub's verdict) could never lift.
        self._stale_rtt: dict[int, tuple[int, float]] = {}
        #: deadline the sleeping watchdog currently targets (None while
        #: idle or processing); posts that undercut it wake the watchdog.
        self._watch_target: float | None = None
        # erasure-coded (rs) write path: the parity token of a stripe
        # row must reflect every data shard's current token, so the
        # client keeps the per-row k-tuple cache and serializes parity
        # updates of overlapping rows through an interval write gate
        # (the server may apply concurrent requests out of order).
        self._rows: dict[int, list] = {}
        self._locked_rows: list[tuple[int, int]] = []
        self._row_gate = WaitQueue(sim, name=f"{name}.row_gate")
        #: rs writes whose dead data shard was skipped, awaiting a
        #: catch-up post once repair brings the shard back
        self._open_writes: set = set()
        #: test hook: set to a list to log (server, row_offset, entries)
        #: per reconstructed degraded read
        self.recovered_log: list | None = None
        # measurement
        self._t_req = self.stats.tally(f"{name}.request_usec")
        self._c_phys = self.stats.counter(f"{name}.physical_requests")
        self._c_split = self.stats.counter(f"{name}.split_requests")
        self._c_retries = self.stats.counter(f"{name}.retries")
        self._c_timeouts = self.stats.counter(f"{name}.timeouts")
        self._c_failovers = self.stats.counter(f"{name}.failovers")
        self._c_write_failovers = self.stats.counter(f"{name}.write_failovers")
        self._c_remaps = self.stats.counter(f"{name}.remaps")
        self._c_disk_fallbacks = self.stats.counter(f"{name}.disk_fallbacks")
        self._c_stale = self.stats.counter(f"{name}.stale_replies")
        self._c_nacks = self.stats.counter(f"{name}.nacks")
        self._c_dead = self.stats.counter(f"{name}.servers_dead")
        self._c_hedges = self.stats.counter(f"{name}.hedges")
        self._c_hedge_wins = self.stats.counter(f"{name}.hedge_wins")
        self._c_steered = self.stats.counter(f"{name}.steered_reads")
        self._c_quarantines = self.stats.counter(f"{name}.quarantines")
        self._c_quarantine_lifts = self.stats.counter(f"{name}.quarantine_lifts")
        self._c_semisync = self.stats.counter(f"{name}.semisync_writes")
        self._c_degraded = self.stats.counter(f"{name}.degraded_reads")
        self._c_reconstructs = self.stats.counter(f"{name}.reconstructs")
        self._c_row_gate = self.stats.counter(f"{name}.row_gate_waits")
        self._t_degraded = self.stats.tally(f"{name}.degraded_read_usec")
        self.copy_usec = 0.0  # client-side memcpy (host overhead share)
        #: fleet health sink (repro.obs.health.HealthHub) — fed per-server
        #: RTTs, per-tenant request latencies, and failed attempts; the
        #: cluster runner shares one hub across every tenant's driver.
        self.health = health

    # -- setup ---------------------------------------------------------------

    def connect(self):
        """Register the pool, connect every server, start the threads;
        generator — run inside a process."""
        if self._connected:
            raise SimulationError(f"{self.name} already connected")
        mr = yield from self.hca.register_mr(self.pd, self.pool_bytes)
        self.pool = RegisteredPool(
            self.sim,
            size=self.pool_bytes,
            base_addr=mr.addr,
            rkey=mr.rkey,
            name=f"{self.name}.pool",
            stats=self.stats,
        )
        for i, srv in enumerate(self.servers):
            if not srv.started:
                yield from srv.start()
            qp_c, qp_s = yield from connect_endpoints(
                self.hca,
                self.pd,
                self.send_cq,
                self.reply_cq,
                srv.hca,
                srv.pd,
                srv.send_cq,
                srv.recv_cq,
                max_recv_wr=max(256, self.credits_per_server),
            )
            self._qps.append(qp_c)
            self._server_qps.append(qp_s)
            self._qp_index[qp_c.qp_num] = i
            self._credits.append(
                TokenBucket(
                    self.sim,
                    self.credits_per_server,
                    name=f"{self.name}.credits{i}",
                )
            )
            # Pre-post several water-marks' worth of reply receives:
            # timeouts return credits before the matching replies
            # arrive, so retry bursts (plus stale replies) can put more
            # than one water-mark of acknowledgements in flight.
            depth = min(4 * self.credits_per_server, qp_c.max_recv_wr)
            for _ in range(depth):
                qp_c.post_recv(RecvWR(capacity=CTRL_MSG_BYTES))
            srv.register_client(
                qp_s,
                area_base=self.server_area_bases[i],
                tenant=self.tenant,
                credits=self.credits_per_server,
                weight=self.qos_weight,
            )
        self.sim.spawn(self._sender(), name=f"{self.name}.sender")
        self.sim.spawn(self._receiver(), name=f"{self.name}.receiver")
        if self.request_timeout_usec is not None or self.hedge_reads:
            self.sim.spawn(self._watchdog(), name=f"{self.name}.watchdog")
            self._watchdog_spawned = True
        self._connected = True

    # -- sender thread ---------------------------------------------------------

    def _sender(self):
        sim = self.sim
        while True:
            req = yield self.queue.next_request()
            segs = self.dist.split(req.sector * SECTOR_SIZE, req.nbytes)
            if len(segs) > 1:
                self._c_split.add()
            pending = _Pending(req=req, nsegs=len(segs), submit_time=sim.now)
            for seg in segs:
                yield from self._issue_segment(pending, seg, req)

    def _issue_segment(self, pending: _Pending, seg: Segment, req: BlockRequest):
        """Buffer setup + first attempt(s) for one physical request."""
        sim = self.sim
        trace = sim.trace
        token = None
        if req.op == WRITE:
            token = (self.name, req.sector, seg.server_offset, seg.nbytes)
        replica = (seg.server + 1) % len(self.servers) if self.mirror else None
        entry = _Inflight(
            pending=pending,
            seg=seg,
            op=req.op,
            token=token,
            replica_server=replica,
        )
        if self.redundancy is not None and req.op == WRITE:
            # Open-writes registry: any copy of this write may still be
            # unapplied somewhere until the last ack, so repair's
            # notify_* hooks post catch-up copies against it.
            entry.shard_idx = self.redundancy.shard_index(seg.server)
            self._open_writes.add(entry)
        if (
            self.redundancy is not None
            and self.redundancy.policy.kind == "rs"
            and req.op == WRITE
        ):
            # Parity updates of one stripe row must be strictly ordered:
            # take the row-interval gate, then fold this write into the
            # per-row cache and build the parity token under it.
            yield from self._acquire_rows(entry)
            self._update_parity_cache(entry)
        targets = self._fresh_targets(entry)
        if not targets:
            # Disk degraded mode with the primary already dead: the
            # segment never touches the network.
            self._c_disk_fallbacks.add()
            sim.spawn(self._fallback_io(entry), name=f"{self.name}.fallback")
            return
        if self.register_on_fly:
            # Ablation (§4.1's rejected alternative): pin the request's
            # pages and expose them directly — no copy, but the full
            # registration cost per request.
            entry.mr = yield from self.hca.register_mr(
                self.pd, seg.nbytes, req_id=req.req_id
            )
        else:
            t_pool = sim.now
            entry.buf = yield from self.pool.alloc(seg.nbytes)
            if trace.enabled and sim.now > t_pool:
                trace.complete(
                    self.name, "sender", "pool_alloc", "hpbd.pool",
                    t_pool, sim.now,
                    req_id=req.req_id, nbytes=seg.nbytes,
                )
            if req.op == WRITE:
                # Copy the pages into the registered pool (the cost
                # HPBD accepts instead of registration).
                cost = memcpy_cost(seg.nbytes)
                self.copy_usec += cost
                t_copy = sim.now
                yield from self.node.cpus.run(cost)
                if trace.enabled:
                    trace.complete(
                        self.name, "sender", "copy_in", "hpbd.copy",
                        t_copy, sim.now,
                        req_id=req.req_id, nbytes=seg.nbytes,
                    )
        if entry.parity_token is not None:
            # GF(256) encode: m multiply-XOR passes over the extent
            # produce the parity deltas the parity shards apply.
            cost = rs_encode_usec(seg.nbytes, self.redundancy.policy)
            t_enc = sim.now
            yield from self.node.cpus.run(cost)
            if trace.enabled:
                trace.complete(
                    self.name, "sender", "parity_encode", "hpbd.parity",
                    t_enc, sim.now,
                    req_id=req.req_id, nbytes=seg.nbytes,
                )
        # Synchronous mirroring: the same buffer is RDMA-read by both
        # servers; the segment completes only when both acknowledge.
        entry.copies_left = len(targets)
        entry.need_acks = len(targets)
        if entry.op == WRITE and len(targets) > 1 and self.ewma_select:
            limping = [
                server
                for server, _ in targets
                if self._is_quarantined(server)
            ]
            if limping:
                # Semi-sync mirroring: a quarantined copy's ack stops
                # gating completion.  Both copies still land (reads
                # after the quarantine lifts stay correct) and the pool
                # buffer is held until every ack, so the straggler's
                # RDMA read stays valid.
                entry.need_acks = 1
                self._c_semisync.add()
        for server, offset in targets:
            yield from self._post_attempt(entry, server, offset)

    def _fresh_targets(self, entry: _Inflight) -> list[tuple[int, int]]:
        """Where a brand-new segment goes, honouring dead servers.

        Returns ``(server, store_offset)`` pairs — two for a mirrored
        write, one otherwise, empty for straight-to-disk fallback.
        """
        if self.redundancy is not None:
            return self._fresh_targets_redundant(entry)
        seg = entry.seg
        primary = seg.server
        if primary not in self._dead:
            if self.mirror and entry.op == WRITE:
                replica = entry.replica_server
                if replica in self._dead:
                    # Degraded mirroring: keep writing the surviving copy.
                    self._c_write_failovers.add()
                    return [(primary, seg.server_offset)]
                return [
                    (primary, seg.server_offset),
                    (replica, self.dist.share_of(replica) + seg.server_offset),
                ]
            if self.mirror and entry.op == READ and self.ewma_select:
                target = self._pick_read_server(entry)
                if target != primary:
                    return [
                        (target, self.dist.share_of(target) + seg.server_offset)
                    ]
            return [(primary, seg.server_offset)]
        if self.mirror:
            replica = entry.replica_server
            if replica in self._dead:
                raise SimulationError(
                    f"{self.name}: segment {seg} lost both copies "
                    f"(servers {primary} and {replica} dead)"
                )
            if entry.op == WRITE:
                self._c_write_failovers.add()
            else:
                self._c_failovers.add()
                entry.failed_over = True
            return [(replica, self.dist.share_of(replica) + seg.server_offset)]
        if self.degraded_mode == "remap":
            target = self._remap_target()
            self._c_remaps.add()
            return [(target, self.dist.share_of(target) + seg.server_offset)]
        if self.degraded_mode == "disk":
            return []
        raise SimulationError(
            f"{self.name}: server {primary} is dead and no degraded mode "
            f"is configured"
        )

    # -- redundancy (rs / nway) data path -----------------------------------

    def _fresh_targets_redundant(
        self, entry: _Inflight
    ) -> list[tuple[int, int]]:
        """Targets for a brand-new segment under a redundancy group.

        rs(k,m): a write lands on its data shard plus every alive parity
        shard (all at the same stripe-row offset); with the data shard
        dead the write goes parity-only and repair posts a catch-up
        later.  A read goes to the data shard, or fans out degraded.
        nway(r): a write lands on every alive ring copy, a read on the
        first alive copy in ring order.
        """
        group = self.redundancy
        pol = group.policy
        seg = entry.seg
        if pol.kind == "rs":
            row = seg.server_offset
            if entry.op == WRITE:
                targets = []
                if seg.server not in self._dead:
                    targets.append((seg.server, row))
                else:
                    # Parity-only write: the parity token still encodes
                    # the update, so nothing is lost — the data shard
                    # catches up when repair brings it back.
                    self._c_write_failovers.add()
                alive_parity = [
                    s for s in group.parity_servers if s not in self._dead
                ]
                targets += [(s, row) for s in alive_parity]
                if not targets:
                    raise SimulationError(
                        f"{self.name}: write segment {seg} has no alive "
                        f"shard left ({pol.label} beyond tolerance)"
                    )
                return targets
            if seg.server not in self._dead:
                return [(seg.server, row)]
            return self._degraded_target_list(entry)
        # nway ring: copy j of member i's chunk on member (i+j) at
        # store offset j * share.
        pos = group.shard_index(seg.server)
        g = len(group.servers)
        share = group.share_bytes
        copies = [
            (
                group.servers[(pos + j) % g],
                j * share + seg.server_offset,
            )
            for j in range(pol.m + 1)
        ]
        if entry.op == WRITE:
            targets = [(s, o) for s, o in copies if s not in self._dead]
            if not targets:
                raise SimulationError(
                    f"{self.name}: write segment {seg} lost all "
                    f"{pol.m + 1} copies"
                )
            if len(targets) < pol.m + 1:
                self._c_write_failovers.add()
            return targets
        for s, off in copies:
            if s not in self._dead:
                if s != seg.server:
                    self._c_failovers.add()
                    entry.failed_over = True
                return [(s, off)]
        raise SimulationError(
            f"{self.name}: segment {seg} lost all {pol.m + 1} copies"
        )

    def _degraded_target_list(
        self, entry: _Inflight
    ) -> list[tuple[int, int]]:
        """Set up a degraded rs read: pick k survivors (parity first —
        reconstruction needs at least one parity token) and mark the
        entry so the receiver collects shard replies."""
        group = self.redundancy
        pol = group.policy
        seg = entry.seg
        avoid = self._dead | entry.failed_servers
        parity = [s for s in group.parity_servers if s not in avoid]
        data = [
            s
            for s in group.data_servers
            if s not in avoid and s != seg.server
        ]
        cands = parity + data
        if len(cands) < pol.k or not parity:
            raise SimulationError(
                f"{self.name}: segment {seg} unrecoverable — {pol.label} "
                f"stripe has {len(cands)} survivors "
                f"({len(parity)} parity), needs {pol.k} incl. parity"
            )
        chosen = cands[: pol.k]
        entry.degraded = True
        entry.lost_shard = group.shard_index(seg.server)
        entry.degraded_servers = set(chosen)
        entry.degraded_at = self.sim.now
        self._c_degraded.add()
        self.sim.trace.instant(
            self.name, "recovery", "degraded_read",
            req_id=entry.pending.req.req_id,
            server=seg.server, shard=entry.lost_shard,
        )
        return [(s, seg.server_offset) for s in chosen]

    def _start_degraded(self, entry: _Inflight) -> None:
        """A plain rs read failed against its (now dead) data shard:
        restart the entry as a degraded fan-out."""
        targets = self._degraded_target_list(entry)
        entry.acked = 0
        entry.copies_left = len(targets)
        entry.need_acks = len(targets)
        for s, off in targets:
            self.sim.spawn(
                self._post_attempt(entry, s, off),
                name=f"{self.name}.degraded",
            )

    def _acquire_rows(self, entry: _Inflight):
        """Block until no in-flight rs write overlaps this write's
        stripe rows; generator.  Server-side service is not FIFO (fair
        scheduling, RDMA slot contention), so without this gate two
        overlapping writes could land their parity updates in opposite
        order on different parity shards."""
        seg = entry.seg
        lo, hi = seg.server_offset, seg.server_offset + seg.nbytes
        while any(lo < h and l < hi for l, h in self._locked_rows):
            self._c_row_gate.add()
            yield self._row_gate.wait()
        entry.row_interval = (lo, hi)
        self._locked_rows.append(entry.row_interval)

    def _release_rows(self, entry: _Inflight) -> None:
        if entry.row_interval is None:
            return
        self._locked_rows.remove(entry.row_interval)
        entry.row_interval = None
        self._row_gate.wake_all()

    def _update_parity_cache(self, entry: _Inflight) -> None:
        """Fold this write into the per-row data-token cache and build
        the parity token its parity-shard attempts carry (the token-level
        image of the GF(256) parity over the stripe)."""
        group = self.redundancy
        pol = group.policy
        seg = entry.seg
        shard = group.shard_index(seg.server)
        row0 = seg.server_offset // PAGE_SIZE
        rows_payload = []
        for p in range(seg.nbytes // PAGE_SIZE):
            row = row0 + p
            cur = self._rows.get(row)
            if cur is None:
                cur = [None] * pol.k
                self._rows[row] = cur
            cur[shard] = (entry.token, p)
            rows_payload.append((row, tuple(cur)))
        entry.parity_token = parity_token(tuple(rows_payload))

    def _reconstruct_segment(self, entry: _Inflight):
        """All k degraded fetches acked: charge the GF(256) decode and
        recover the lost shard's per-page entries from a surviving
        parity token; generator."""
        sim = self.sim
        pol = self.redundancy.policy
        seg = entry.seg
        if not entry.parity_replies:
            raise SimulationError(
                f"{self.name}: degraded read of segment {seg} got no "
                f"parity reply — stripe lost beyond tolerance"
            )
        yield from self.node.cpus.run(rs_decode_usec(seg.nbytes, pol))
        row0 = seg.server_offset // PAGE_SIZE
        recovered = []
        for p in range(seg.nbytes // PAGE_SIZE):
            got = None
            for ptok_entries in entry.parity_replies:
                got = parity_row_entry(
                    ptok_entries[p], row0 + p, entry.lost_shard
                )
                if got is not None:
                    break
            # None is legitimate: the row (or the lost shard's column)
            # was never written, i.e. a zero page.
            recovered.append(got)
        self._c_reconstructs.add()
        self._t_degraded.record(sim.now - entry.degraded_at)
        if self.recovered_log is not None:
            self.recovered_log.append(
                (seg.server, seg.server_offset, tuple(recovered))
            )
        if sim.trace.enabled:
            sim.trace.complete(
                self.name, "recovery", "degraded_read", "hpbd.degraded",
                entry.degraded_at, sim.now,
                req_id=entry.pending.req.req_id,
                server=seg.server, shard=entry.lost_shard,
                nbytes=seg.nbytes,
            )

    def _pick_read_server(self, entry: _Inflight) -> int:
        """EWMA replica selection for a mirror read: steer to the copy
        whose server answers faster, with quarantine verdicts taking
        precedence and a deterministic probe keeping the avoided copy
        sampled (so a recovered server wins its traffic back)."""
        primary = entry.seg.server
        replica = entry.replica_server
        if replica is None or replica in self._dead:
            return primary
        primary_q = self._is_quarantined(primary)
        replica_q = self._is_quarantined(replica)
        if replica_q and not primary_q:
            return primary
        if primary_q and not replica_q:
            steer = True
        else:
            srtt_p = self._srtt[primary]
            srtt_r = self._srtt[replica]
            steer = (
                srtt_p.count >= SELECT_MIN_SAMPLES
                and srtt_r.count >= SELECT_MIN_SAMPLES
                and srtt_r.value < SELECT_MARGIN * srtt_p.value
            )
        if not steer:
            return primary
        self._steer_count += 1
        if self._steer_count % SELECT_PROBE_EVERY == 0:
            return primary
        self._c_steered.add()
        return replica

    def _is_quarantined(self, server: int) -> bool:
        """Health-hub fail-slow verdict, with per-client edge tracking
        so quarantine entry/lift show up in counters and the trace."""
        if self.health is None:
            return False
        flagged = self.health.server_is_slow(server)
        if flagged and server not in self._quarantined:
            self._quarantined.add(server)
            self._c_quarantines.add()
            self.sim.trace.instant(
                self.name, "recovery", "quarantine", server=server,
            )
        elif not flagged and server in self._quarantined:
            self._quarantined.discard(server)
            self._c_quarantine_lifts.add()
            self.sim.trace.instant(
                self.name, "recovery", "quarantine_lift", server=server,
            )
        return flagged

    def _observe_rtt(self, server: int, rtt: float) -> None:
        """Fold one post-to-ack round trip into the per-server
        estimators (and the fleet health hub's own detector)."""
        srtt = self._srtt[server]
        if srtt.count:
            self._rttvar[server].update(abs(rtt - srtt.value))
        else:
            self._rttvar[server].update(rtt / 2.0)
        srtt.update(rtt)
        if self.health is not None:
            self.health.record_server_rtt(server, rtt)

    def _hedge_delay(self, server: int) -> float | None:
        """EWMA-derived percentile deadline (TCP-RTO shape): srtt +
        hedge_k * rttvar, floored at hedge_min_usec; ``None`` until the
        estimator has enough samples to trust."""
        srtt = self._srtt[server]
        if srtt.count < HEDGE_MIN_SAMPLES:
            return None
        return max(
            self.hedge_min_usec,
            srtt.value + self.hedge_k * self._rttvar[server].value,
        )

    def _remap_target(self) -> int:
        """The survivor adopting the dead server's chunk: its successor
        (mod n), hosting it behind its own area — the same layout math
        as the mirror replica, so store sizing is shared too."""
        if len(self._dead) != 1:
            raise SimulationError(
                f"{self.name}: remap handles exactly one dead server, "
                f"have {sorted(self._dead)}"
            )
        dead = next(iter(self._dead))
        target = (dead + 1) % len(self.servers)
        return target

    def _post_attempt(
        self,
        entry: _Inflight,
        server: int,
        offset: int,
        retries: int = 0,
        is_hedge: bool = False,
    ):
        """Take a credit and post one control message; generator."""
        sim = self.sim
        trace = sim.trace
        if entry.completed:
            return  # a tied attempt already won while this one queued
        blk_req_id = entry.pending.req.req_id
        t_credit = sim.now
        yield self._credits[server].acquire()
        if trace.enabled and sim.now > t_credit:
            trace.complete(
                self.name, "sender", "credit_wait", "hpbd.credit",
                t_credit, sim.now,
                req_id=blk_req_id, server=server,
            )
        if entry.completed:
            # Lost the tie while waiting for a credit.
            self._credits[server].release()
            return
        if server in self._dead:
            # Lost a race: the target died while we waited for a credit.
            self._credits[server].release()
            if entry.op == READ and entry.live_rids and not entry.degraded:
                return  # a tied attempt on the other copy carries the read
            self._reroute(entry, server)
            return
        data_token = entry.token
        if (
            entry.parity_token is not None
            and server in self.redundancy.parity_servers
        ):
            # A parity shard stores the stripe's parity token, not the
            # write's own payload token.
            data_token = entry.parity_token
        preq = PageRequest(
            op=OP_WRITE if entry.op == WRITE else OP_READ,
            offset=offset,
            nbytes=entry.seg.nbytes,
            buf_addr=self._entry_addr(entry),
            buf_rkey=self._entry_rkey(entry),
            data_token=data_token,
            blk_req_id=blk_req_id,
        )
        now = sim.now
        if entry.sent_at == 0.0:
            entry.sent_at = now
        deadline = None
        if self.request_timeout_usec is not None:
            deadline = now + self.request_timeout_usec
        hedge_at = None
        if (
            self.hedge_reads
            and not is_hedge
            and entry.op == READ
            and not entry.hedged
            and entry.replica_server is not None
        ):
            other = (
                entry.replica_server
                if server == entry.seg.server
                else entry.seg.server
            )
            if other not in self._dead:
                delay = self._hedge_delay(server)
                if delay is not None:
                    hedge_at = now + delay
        self._inflight[preq.req_id] = _Attempt(
            entry=entry,
            server=server,
            offset=offset,
            sent_at=now,
            deadline=deadline,
            retries=retries,
            hedge_at=hedge_at,
            is_hedge=is_hedge,
        )
        entry.live_rids.add(preq.req_id)
        self._c_phys.add(entry.seg.nbytes)
        self._qps[server].post_send(
            SendWR(
                nbytes=CTRL_MSG_BYTES,
                payload=preq,
                signaled=False,
                solicited=False,
                req_id=blk_req_id,
            )
        )
        self._arm_watchdog(deadline, hedge_at)

    def _arm_watchdog(
        self, deadline: float | None, hedge_at: float | None
    ) -> None:
        """Wake the watchdog if this attempt needs service before the
        target it is currently sleeping to — hedge schedules undercut
        the constant-timeout ladder, so "new attempts always deadline
        later" no longer holds."""
        if not self._watchdog_spawned:
            return
        need = deadline
        if hedge_at is not None and (need is None or hedge_at < need):
            need = hedge_at
        if need is None:
            return
        if self._watch_target is None or need < self._watch_target:
            self._watch_wake.wake_one()

    def _entry_addr(self, entry: _Inflight) -> int:
        # Register-on-the-fly keeps the data in the per-request MR, not
        # the pool — failovers and retries must target whichever buffer
        # this entry actually uses.
        if entry.buf is not None:
            return self.pool.buffer_addr(entry.buf)
        return entry.mr.addr

    def _entry_rkey(self, entry: _Inflight) -> int:
        if entry.buf is not None:
            return self.pool.rkey
        return entry.mr.rkey

    # -- receiver thread ---------------------------------------------------------

    def _receiver(self):
        sim = self.sim
        rcq = self.reply_cq
        while True:
            # Arm, then drain once more before sleeping (race-free order).
            # Solicited-only: replies carry the solicitation bit (§5).
            rcq.request_notify(solicited_only=True)
            if len(rcq) == 0:
                yield rcq.wait_event()
            # Bursty processing: handle everything available, then sleep.
            for cqe in rcq.poll():
                reply: PageReply = cqe.payload
                server_idx = self._qp_index[cqe.qp_num]
                # Replenish the consumed reply receive before anything
                # else, keeping posted-receives >= credits.
                self._qps[server_idx].post_recv(RecvWR(capacity=CTRL_MSG_BYTES))
                try:
                    reply.validate()
                except ProtocolError:
                    if not self.drop_bad_ctrl:
                        raise
                    # Nothing in a corrupted acknowledgement can be
                    # trusted, including its req_id: drop it and let the
                    # watchdog retransmit the affected request.
                    self.stats.counter(f"{self.name}.bad_replies").add()
                    continue
                att = self._inflight.pop(reply.req_id, None)
                if att is None:
                    if reply.req_id in self._stale:
                        # The watchdog (or a winning tied attempt) gave
                        # up on this attempt and its credit was
                        # reclaimed; the answer showed up after all.
                        self._stale.discard(reply.req_id)
                        self._c_stale.add()
                        meta = self._stale_rtt.pop(reply.req_id, None)
                        if meta is not None and reply.ok:
                            # A cancelled tie's late reply is still a
                            # valid service-time sample for its server.
                            self._observe_rtt(meta[0], sim.now - meta[1])
                        continue
                    raise SimulationError(
                        f"{self.name}: reply for unknown request {reply.req_id}"
                    )
                self._credits[att.server].release()
                entry = att.entry
                entry.live_rids.discard(reply.req_id)
                if not reply.ok:
                    if reply.nack:
                        # Typed back-pressure (pool exhaustion /
                        # admission bound): retryable by design.
                        self._c_nacks.add()
                        self._fail_attempt(att, cause="nack")
                    else:
                        self._fail_attempt(att, cause="error")
                    continue
                # Per-server service signal for the EWMA selectors and
                # the fail-slow detector: post-to-ack round trip.
                self._observe_rtt(att.server, sim.now - att.sent_at)
                entry.acked += 1
                entry.copies_left -= 1
                if (
                    entry.degraded
                    and self.redundancy is not None
                    and att.server in self.redundancy.parity_servers
                ):
                    # A parity shard's reply carries the stripe's parity
                    # token; reconstruction reads the lost column out of
                    # it once all k fetches are in.
                    entry.parity_replies.append(reply.data_token)
                if entry.op == READ and entry.live_rids and not entry.degraded:
                    # First reply wins a tied (hedged) read; cancel the
                    # losers and reclaim their credits.
                    self._cancel_losers(entry, att)
                trace = sim.trace
                if entry.copies_left > 0:
                    if not entry.completed and entry.acked >= entry.need_acks:
                        # Semi-sync mirrored write: the fast copy's ack
                        # completes the block request; the quarantined
                        # straggler only gates the buffer release.
                        if trace.enabled:
                            trace.complete(
                                self.name, "receiver", "phys_rtt",
                                "hpbd.rtt", att.sent_at, sim.now,
                                req_id=entry.pending.req.req_id,
                                op=entry.op, nbytes=entry.seg.nbytes,
                                server=att.server,
                            )
                        self._complete_segment(entry)
                    continue  # mirrored write: wait for the other copy
                if entry.completed:
                    # Straggler ack of a semi-sync write: release the
                    # shared buffer, nothing left to complete.
                    yield from self._release_buffers(entry, copy_out=False)
                    continue
                if trace.enabled:
                    # Physical request round trip: control message out
                    # to acknowledgement drained from the reply CQ —
                    # this attempt's only; failed attempts are billed to
                    # their own hpbd.timeout/hpbd.failover spans.
                    trace.complete(
                        self.name, "receiver", "phys_rtt", "hpbd.rtt",
                        att.sent_at, sim.now,
                        req_id=entry.pending.req.req_id, op=entry.op,
                        nbytes=entry.seg.nbytes, server=att.server,
                    )
                yield from self._finish_segment(entry)

    def _cancel_losers(self, entry: _Inflight, winner: _Attempt) -> None:
        """First reply of a tied read wins: reclaim the losers' credits
        and mark their replies stale (counted and discarded on arrival —
        the same convention the watchdog uses for timed-out attempts)."""
        sim = self.sim
        trace = sim.trace
        for rid in list(entry.live_rids):
            loser = self._inflight.pop(rid, None)
            entry.live_rids.discard(rid)
            if loser is None:
                continue
            self._credits[loser.server].release()
            self._stale.add(rid)
            self._stale_rtt[rid] = (loser.server, loser.sent_at)
            if winner.is_hedge and not loser.is_hedge:
                self._c_hedge_wins.add()
                if trace.enabled:
                    # The primary attempt's window the hedge rescued.
                    trace.complete(
                        self.name, "recovery", "hedge_win",
                        "hpbd.hedge_win", loser.sent_at, sim.now,
                        req_id=entry.pending.req.req_id,
                        server=loser.server, hedge_server=winner.server,
                    )
            elif loser.is_hedge and trace.enabled:
                # The hedge lost the race: its window was pure overhead.
                trace.complete(
                    self.name, "recovery", "hedge_waste",
                    "hpbd.hedge_waste", loser.sent_at, sim.now,
                    req_id=entry.pending.req.req_id,
                    server=winner.server, hedge_server=loser.server,
                )

    def _finish_segment(self, entry: _Inflight, copy_out: bool = True):
        """Release buffers and complete the block request; generator."""
        if entry.degraded:
            yield from self._reconstruct_segment(entry)
        yield from self._release_buffers(entry, copy_out)
        self._complete_segment(entry)

    def _release_buffers(self, entry: _Inflight, copy_out: bool = True):
        """Return the segment's pool buffer / on-the-fly MR; generator."""
        sim = self.sim
        trace = sim.trace
        if entry.mr is not None:
            # Register-on-the-fly ablation: unpin (zero-copy).
            yield from self.hca.deregister_mr(
                self.pd, entry.mr, req_id=entry.pending.req.req_id
            )
        elif entry.buf is not None:
            if entry.op == READ and copy_out:
                # Data already landed in the pool via RDMA write; copy
                # it out to the page frames.
                cost = memcpy_cost(entry.seg.nbytes)
                self.copy_usec += cost
                t_copy = sim.now
                yield from self.node.cpus.run(cost)
                if trace.enabled:
                    trace.complete(
                        self.name, "receiver", "copy_out",
                        "hpbd.copy", t_copy, sim.now,
                        req_id=entry.pending.req.req_id,
                        nbytes=entry.seg.nbytes,
                    )
            self.pool.free(entry.buf)
        # All acks are in: every surviving copy of the write is applied,
        # so the catch-up registry and the row gate let go (a later
        # restore reads the update from the survivors instead).
        self._release_rows(entry)
        self._open_writes.discard(entry)

    def _complete_segment(self, entry: _Inflight) -> None:
        """Count the segment done; completes the block request when it
        was the last outstanding segment."""
        sim = self.sim
        trace = sim.trace
        entry.completed = True
        entry.pending.done_segs += 1
        if entry.pending.done_segs == entry.pending.nsegs:
            self._t_req.record(sim.now - entry.pending.submit_time)
            if self.health is not None:
                self.health.record_request(
                    self.tenant or self.name,
                    sim.now - entry.pending.submit_time,
                )
            if trace.enabled:
                req = entry.pending.req
                trace.complete(
                    self.name, "requests", "block_request",
                    "hpbd.request",
                    entry.pending.submit_time, sim.now,
                    req_id=req.req_id, op=req.op,
                    sector=req.sector, nbytes=req.nbytes,
                    nsegs=entry.pending.nsegs,
                )
            self.queue.complete(entry.pending.req)

    # -- recovery state machine ----------------------------------------------

    def _watchdog(self):
        """Expires overdue attempts and fires hedged reads; sleeps on a
        latch while idle so an otherwise-drained simulation still runs
        to completion."""
        sim = self.sim
        while True:
            target = None
            for att in self._inflight.values():
                for t in (att.deadline, att.hedge_at):
                    if t is not None and (target is None or t < target):
                        target = t
            if target is None:
                self._watch_target = None
                yield self._watch_wake.wait()
                continue
            if target > sim.now:
                # Race the sleep against the wake latch: a newly posted
                # attempt may need service *before* this target (hedge
                # schedules undercut the constant-timeout ladder, so the
                # old sleep-to-minimum-deadline shortcut no longer
                # holds); _arm_watchdog wakes us to re-aim.
                self._watch_target = target
                timer = sim.timeout(target - sim.now)
                wake = self._watch_wake.wait()
                idx, _value = yield any_of(sim, [timer, wake])
                self._watch_target = None
                if idx == 0:
                    # Timer fired; the losing wait must not swallow a
                    # future wake_one.
                    wake.abandoned = True
                else:
                    timer.cancel()
                continue
            now = sim.now
            for att in list(self._inflight.values()):
                if att.hedge_at is not None and att.hedge_at <= now:
                    att.hedge_at = None
                    self._fire_hedge(att)
            expired = [
                rid
                for rid, att in self._inflight.items()
                if att.deadline is not None and att.deadline <= now
            ]
            for rid in expired:
                att = self._inflight.pop(rid, None)
                if att is None:
                    continue
                # Reclaim the credit now — the server may never answer —
                # and remember the id so a late reply is not "unknown".
                self._credits[att.server].release()
                self._stale.add(rid)
                att.entry.live_rids.discard(rid)
                self._c_timeouts.add()
                if (
                    att.entry.op == READ
                    and att.entry.live_rids
                    and not att.entry.degraded
                ):
                    # A tied attempt on the other copy is still in
                    # flight; it carries the read.
                    self._mark_failed_span(att, "timeout")
                    continue
                self._fail_attempt(att, cause="timeout")

    def _fire_hedge(self, att: _Attempt) -> None:
        """The EWMA-derived hedge deadline passed without a reply: fire
        a tied request at the other copy; first acknowledgement wins and
        the loser is cancelled with its credit reclaimed."""
        entry = att.entry
        if entry.completed or entry.hedged or entry.op != READ:
            return
        primary = entry.seg.server
        other = entry.replica_server if att.server == primary else primary
        if other is None or other in self._dead:
            return
        entry.hedged = True
        self._c_hedges.add()
        self.sim.trace.instant(
            self.name, "recovery", "hedge_fired",
            req_id=entry.pending.req.req_id,
            server=att.server, hedge_server=other,
        )
        offset = (
            entry.seg.server_offset
            if other == primary
            else self.dist.share_of(other) + entry.seg.server_offset
        )
        self.sim.spawn(
            self._post_attempt(entry, other, offset, is_hedge=True),
            name=f"{self.name}.hedge",
        )

    def _fail_attempt(self, att: _Attempt, cause: str) -> None:
        """One attempt came back bad (``error``) or never came back
        (``timeout``): fail over, retry, degrade, or give up.

        The caller has already popped the attempt and returned its
        credit; this either schedules exactly one replacement attempt
        or raises.
        """
        entry = att.entry
        seg = entry.seg
        if self.health is not None:
            self.health.record_error(self.tenant or self.name, att.server)
        if entry.op == READ and entry.live_rids and not entry.degraded:
            # A tied (hedged) attempt on the other copy is still in
            # flight — let it carry the read instead of spawning a third.
            self._mark_failed_span(att, cause)
            return
        if self.redundancy is not None:
            self._fail_attempt_redundant(att, cause)
            return
        retries_enabled = self.request_timeout_usec is not None
        # 1. Mirror read failover (works even with retries disabled —
        #    the original reliability extension).
        if (
            self.mirror
            and entry.op == READ
            and not entry.failed_over
            and att.server != entry.replica_server
            and entry.replica_server not in self._dead
        ):
            entry.failed_over = True
            self._c_failovers.add()
            self._mark_failed_span(att, cause)
            self.sim.spawn(
                self._post_attempt(
                    entry,
                    entry.replica_server,
                    self.dist.share_of(entry.replica_server) + seg.server_offset,
                ),
                name=f"{self.name}.failover",
            )
            return
        # 2. Bounded retry against the same server, with backoff.
        if (
            retries_enabled
            and att.retries < self.max_retries
            and att.server not in self._dead
        ):
            self._c_retries.add()
            self._mark_failed_span(att, cause)
            backoff = self.retry_backoff_usec * (
                self.backoff_mult ** att.retries
            )
            self.sim.spawn(
                self._backoff_resend(
                    entry, att.server, att.offset, backoff, att.retries + 1
                ),
                name=f"{self.name}.retry",
            )
            return
        # 3. Retries exhausted: declare the server dead and re-route
        #    everything aimed at it.
        if retries_enabled:
            self._mark_failed_span(att, cause)
            self._mark_dead(att.server)
            self._reroute(entry, att.server)
            return
        # 4. Legacy behaviour (timeouts disabled): fail loudly.
        raise SimulationError(
            f"{self.name}: server {cause} on request "
            f"{entry.pending.req.req_id}"
        )

    def _fail_attempt_redundant(self, att: _Attempt, cause: str) -> None:
        """The redundancy-group failure ladder: bounded retry against
        the same server first, then declare it dead (timeouts on) or
        remember it failed (legacy) and lean on the group — drop a write
        copy, fail a read over / degrade it."""
        entry = att.entry
        retries_enabled = self.request_timeout_usec is not None
        if (
            retries_enabled
            and att.retries < self.max_retries
            and att.server not in self._dead
        ):
            self._c_retries.add()
            self._mark_failed_span(att, cause)
            backoff = self.retry_backoff_usec * (
                self.backoff_mult ** att.retries
            )
            self.sim.spawn(
                self._backoff_resend(
                    entry, att.server, att.offset, backoff, att.retries + 1
                ),
                name=f"{self.name}.retry",
            )
            return
        self._mark_failed_span(att, cause)
        if retries_enabled:
            # _mark_dead reroutes every *other* doomed in-flight attempt
            # aimed at the server; this one was already popped by the
            # caller, so route it explicitly.
            self._mark_dead(att.server)
        self._redundant_reroute(entry, att.server)

    def _drop_write_copy(self, entry: _Inflight, failed_server: int) -> None:
        """One copy of a redundant write is gone: stop expecting its
        ack.  The surviving copies (rs: parity; nway: replicas) carry
        the data; the write stays on the open-writes registry until its
        last ack, so repair can post the lost copy back."""
        self._c_write_failovers.add()
        entry.copies_left -= 1
        entry.need_acks -= 1
        if entry.copies_left > 0:
            return
        if entry.acked == 0:
            raise SimulationError(
                f"{self.name}: write segment {entry.seg} lost every copy"
            )
        # Off the catch-up registry before the finisher frees the buffer
        # — a notify in the gap must not post against a dead entry; the
        # acked surviving copies cover the restore instead.
        self._open_writes.discard(entry)
        if entry.completed:
            # The drop was the straggler: just release the buffers.
            self.sim.spawn(
                self._release_buffers(entry, copy_out=False),
                name=f"{self.name}.release",
            )
        else:
            self.sim.spawn(
                self._finish_segment(entry), name=f"{self.name}.finish"
            )

    def _redundant_reroute(self, entry: _Inflight, failed_server: int) -> None:
        """Replace one failed attempt using the redundancy group."""
        group = self.redundancy
        pol = group.policy
        seg = entry.seg
        entry.failed_servers.add(failed_server)
        if entry.op == WRITE:
            self._drop_write_copy(entry, failed_server)
            return
        if pol.kind == "rs":
            if not entry.degraded:
                self._start_degraded(entry)
                return
            # One degraded fetch failed: swap in another survivor,
            # keeping at least one parity source in the fetch set.
            entry.degraded_servers.discard(failed_server)
            avoid = (
                self._dead
                | entry.failed_servers
                | entry.degraded_servers
                | {seg.server}
            )
            has_parity = bool(entry.parity_replies) or any(
                s in group.parity_servers for s in entry.degraded_servers
            )
            pick = None
            for s in group.parity_servers + group.data_servers:
                if s in avoid:
                    continue
                if has_parity or s in group.parity_servers:
                    pick = s
                    break
            if pick is None:
                raise SimulationError(
                    f"{self.name}: segment {seg} unrecoverable — "
                    f"{pol.label} stripe lost beyond tolerance"
                )
            entry.degraded_servers.add(pick)
            self.sim.spawn(
                self._post_attempt(entry, pick, seg.server_offset),
                name=f"{self.name}.degraded",
            )
            return
        # nway read: next alive copy in ring order not yet tried.
        pos = group.shard_index(seg.server)
        g = len(group.servers)
        for j in range(pol.m + 1):
            s = group.servers[(pos + j) % g]
            if s in self._dead or s in entry.failed_servers:
                continue
            if s != seg.server:
                self._c_failovers.add()
                entry.failed_over = True
            self.sim.spawn(
                self._post_attempt(
                    entry, s, j * group.share_bytes + seg.server_offset
                ),
                name=f"{self.name}.failover",
            )
            return
        raise SimulationError(
            f"{self.name}: segment {seg} lost all {pol.m + 1} copies"
        )

    def _mark_failed_span(self, att: _Attempt, cause: str) -> None:
        trace = self.sim.trace
        if not trace.enabled:
            return
        cat = "hpbd.timeout" if cause == "timeout" else "hpbd.failover"
        trace.complete(
            self.name, "recovery",
            "attempt_timeout" if cause == "timeout" else "failed_attempt",
            cat, att.sent_at, self.sim.now,
            req_id=att.entry.pending.req.req_id,
            server=att.server, op=att.entry.op, retries=att.retries,
        )

    def _backoff_resend(
        self,
        entry: _Inflight,
        server: int,
        offset: int,
        backoff: float,
        retries: int,
    ):
        sim = self.sim
        t0 = sim.now
        if backoff > 0:
            yield sim.timeout(backoff)
            if sim.trace.enabled:
                sim.trace.complete(
                    self.name, "recovery", "backoff", "hpbd.retry",
                    t0, sim.now,
                    req_id=entry.pending.req.req_id, server=server,
                    retries=retries,
                )
        if server in self._dead:
            # Someone else's attempt condemned the server meanwhile.
            self._reroute(entry, server)
            return
        yield from self._post_attempt(entry, server, offset, retries=retries)

    def _mark_dead(self, server: int) -> None:
        """Declare a server dead and re-route its pending attempts."""
        if server in self._dead:
            return
        self._dead.add(server)
        self._c_dead.add()
        self.sim.trace.instant(
            self.name, "recovery", "server_dead", server=server,
        )
        doomed = [
            rid
            for rid, att in self._inflight.items()
            if att.server == server
        ]
        for rid in doomed:
            att = self._inflight.pop(rid)
            self._credits[server].release()
            self._stale.add(rid)
            att.entry.live_rids.discard(rid)
            if (
                att.entry.op == READ
                and att.entry.live_rids
                and not att.entry.degraded
            ):
                # A tied attempt on the surviving copy carries the read.
                continue
            self._reroute(att.entry, server)

    def _reroute(self, entry: _Inflight, failed_server: int) -> None:
        """Schedule exactly one replacement attempt for one that failed
        against a now-dead server — or raise if nowhere is left."""
        if self.redundancy is not None:
            self._redundant_reroute(entry, failed_server)
            return
        seg = entry.seg
        primary = seg.server
        if self.mirror:
            replica = entry.replica_server
            target = replica if failed_server == primary else primary
            if target in self._dead:
                raise SimulationError(
                    f"{self.name}: segment {seg} lost both copies "
                    f"(servers {primary} and {replica} dead)"
                )
            if entry.op == WRITE:
                self._c_write_failovers.add()
            else:
                self._c_failovers.add()
                entry.failed_over = True
            offset = (
                seg.server_offset
                if target == primary
                else self.dist.share_of(target) + seg.server_offset
            )
            self.sim.spawn(
                self._post_attempt(entry, target, offset),
                name=f"{self.name}.failover",
            )
            return
        if self.degraded_mode == "remap":
            target = self._remap_target()
            self._c_remaps.add()
            self.sim.spawn(
                self._post_attempt(
                    entry,
                    target,
                    self.dist.share_of(target) + seg.server_offset,
                ),
                name=f"{self.name}.remap",
            )
            return
        if self.degraded_mode == "disk":
            self._c_disk_fallbacks.add()
            self.sim.spawn(
                self._fallback_io(entry), name=f"{self.name}.fallback"
            )
            return
        raise SimulationError(
            f"{self.name}: server {failed_server} failed and no degraded "
            f"mode is configured"
        )

    def _fallback_io(self, entry: _Inflight):
        """Serve one segment from the local swap disk instead; generator.

        The blocking layout keeps segments contiguous in device space,
        so the fallback bio targets the same absolute device range.
        """
        sim = self.sim
        seg = entry.seg
        t0 = sim.now
        abs_offset = self.dist.absolute_offset(seg)
        done = Event(sim, name=f"{self.name}.fallback")
        self.fallback_queue.submit_bio(
            Bio(
                op=entry.op,
                sector=abs_offset // SECTOR_SIZE,
                nsectors=seg.nbytes // SECTOR_SIZE,
                done=done,
                submit_time=sim.now,
            )
        )
        self.fallback_queue.unplug()
        yield done
        if sim.trace.enabled:
            sim.trace.complete(
                self.name, "recovery", "disk_fallback", "fault.fallback",
                t0, sim.now,
                req_id=entry.pending.req.req_id, op=entry.op,
                nbytes=seg.nbytes,
            )
        # The disk path moves data without the pool (no RDMA landing
        # zone to copy out of), but any buffer a failed network attempt
        # left behind must still be released.
        yield from self._finish_segment(entry, copy_out=False)

    # -- repair notifications ------------------------------------------------

    def notify_server_down(self, server: int) -> None:
        """Control-plane liveness verdict (registry heartbeat edge):
        declare the server dead without waiting for a request timeout,
        shrinking the window where reads hit a restarted-but-wiped
        store.  No-op when the driver already noticed."""
        self._mark_dead(server)

    def notify_repaired(self, server: int) -> None:
        """Background repair restored ``server``'s shard in place: lift
        the dead verdict and post this member's copy of every write
        still in flight.

        Must be called at the same instant the repair manager restores
        the store content — a fully-acked write's surviving copies are
        applied before the restore reads them, and everything still in
        flight gets a catch-up post here, so no update can fall between
        the two.
        """
        if server in self._dead:
            self._dead.discard(server)
            # Fresh RTT estimators: pre-crash samples say nothing about
            # the restarted daemon.
            self._srtt[server] = EWMA(RTT_ALPHA)
            self._rttvar[server] = EWMA(RTTVAR_ALPHA)
            self.sim.trace.instant(
                self.name, "recovery", "server_repaired", server=server,
            )
        if self.redundancy is not None:
            self._catch_up_writes(
                self.redundancy.shard_index(server), server
            )

    def notify_rebuilt(self, old: int, new: int, new_base: int) -> None:
        """Background repair rebuilt ``old``'s shard onto spare ``new``
        (at store offset ``new_base``): rewrite the group membership,
        the chunk map and the area bases, then catch up open writes."""
        if self.redundancy is None:
            raise SimulationError(f"{self.name}: no redundancy group")
        idx = self.redundancy.shard_index(old)
        self.redundancy.replace_server(old, new, new_base)
        self.server_area_bases[new] = new_base
        if self._server_qps:
            self.servers[new].set_client_area_base(
                self._server_qps[new], new_base
            )
        self.dist.remap_server(old, new)
        self._dead.discard(new)
        self.sim.trace.instant(
            self.name, "recovery", "shard_rebuilt",
            old=old, new=new, base=new_base,
        )
        self._catch_up_writes(idx, new)

    def _catch_up_writes(self, shard_idx: int, target: int) -> None:
        """Re-post the repaired member's copy of every still-open
        redundant write.  The restore read only covers updates whose
        surviving copies were applied before it ran; anything not yet
        fully acknowledged gets an explicit post (idempotent — same
        token), so the rebuilt shard converges with the survivors.
        ``shard_idx`` is the repaired member's role index (stable across
        a spare rebuild); ``target`` the server now playing it."""
        group = self.redundancy
        pol = group.policy
        for entry in list(self._open_writes):
            if entry.completed and entry.copies_left <= 0:
                self._open_writes.discard(entry)
                continue
            if pol.kind == "rs":
                # The member holds a copy iff it is the write's own data
                # shard or any parity shard (which all see every row).
                if shard_idx < pol.k and shard_idx != entry.shard_idx:
                    continue
                off = entry.seg.server_offset
            else:
                # nway ring: member holds copy j of the write's chunk
                # when it sits j <= m places after the owner.
                j = (shard_idx - entry.shard_idx) % len(group.servers)
                if j > pol.m:
                    continue
                off = j * group.share_bytes + entry.seg.server_offset
            entry.copies_left += 1
            entry.need_acks += 1
            self.sim.spawn(
                self._post_attempt(entry, target, off),
                name=f"{self.name}.catchup",
            )

    # -- introspection ------------------------------------------------------

    @property
    def outstanding(self) -> int:
        return len(self._inflight)

    @property
    def dead_servers(self) -> frozenset[int]:
        return frozenset(self._dead)

    def credit_stalls(self) -> int:
        return sum(c.stall_count for c in self._credits)

    def drain(self):
        """Wait (bounded) for straggler acknowledgements; generator.

        Semi-sync mirrored writes complete the block request before the
        quarantined copy acks, so a run can reach teardown with those
        straggler attempts still in flight.  Poll them out before the
        audit; the bound keeps a genuinely wedged run failing loudly in
        ``audit_teardown`` instead of hanging here.
        """
        for _ in range(50):
            if not self._inflight:
                return
            yield self.sim.timeout(100.0)

    def audit_teardown(self) -> None:
        """Invariant monitors for a quiesced device (runner teardown).

        With all I/O drained: every physical request acknowledged, every
        flow-control credit back in its bucket, and no pool bytes leaked.
        These must hold even after a faulted run — recovery is not
        allowed to leak.
        """
        monitors = self.sim.monitors
        monitors.check(
            not self._inflight,
            "hpbd.inflight_drained", self.name,
            "physical requests still awaiting acknowledgement at teardown",
            outstanding=len(self._inflight),
        )
        monitors.check(
            not self._locked_rows,
            "hpbd.rows_unlocked", self.name,
            "parity write gate still held at teardown",
            locked=len(self._locked_rows),
        )
        for i, bucket in enumerate(self._credits):
            monitors.check(
                bucket.tokens == bucket.capacity,
                "hpbd.credits_returned", self.name,
                f"server {i} credits not fully returned",
                server=i, tokens=bucket.tokens, capacity=bucket.capacity,
            )
        if self.pool is not None:
            self.pool.audit_teardown()
