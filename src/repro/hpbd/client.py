"""The HPBD client: a block-device driver over native InfiniBand verbs.

Structure follows §4.2.3/§5 of the paper:

* the driver exposes a standard request queue to the VM (so all the
  block-layer merging/plugging applies untouched);
* a **sender thread** takes merged requests off the queue, splits each
  into per-server *physical requests* (blocking distribution), copies
  swap-out data into the pre-registered pool, takes a flow-control
  credit, and posts the control message;
* a **receiver thread** sleeps on the reply completion queue (one CQ
  shared by all server QPs), is woken by solicited-completion events,
  and drains *all* available replies per wakeup (bursty processing);
* the **water-mark flow control** (§4.2.4) is a per-server credit
  bucket sized to the pre-posted receive count — requests queue inside
  the driver when credits run out;
* a block request completes when every physical request has been
  acknowledged ("A request is successfully served when each physical
  request is replied with successful acknowledgment").

Reliability (§4.1: "Failure in page handling can adversely impact
system stability and even crash the system") — every physical request
is tracked as an *attempt* with its own send timestamp and deadline:

* with ``request_timeout_usec`` set, a watchdog expires overdue
  attempts and drives a bounded retry/backoff state machine;
* an exhausted or hopeless attempt marks its server dead and re-routes:
  to the mirror replica, onto a surviving server (``degraded_mode=
  "remap"``), or down to the local swap disk (``degraded_mode="disk"``);
* with timeouts disabled (the default) behaviour is unchanged: a server
  error raises, except for the mirror read-failover path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ib import HCA, CompletionQueue, RecvWR, SendWR, connect_endpoints
from ..kernel.blockdev import Bio, BlockRequest, READ, RequestQueue, WRITE
from ..kernel.node import Node
from ..net.fabrics import IBParams, IB_DEFAULT, memcpy_cost
from ..simulator import (
    Event,
    SimulationError,
    Simulator,
    StatsRegistry,
    TokenBucket,
    WaitQueue,
)
from ..units import MiB, SECTOR_SIZE
from .pool import PoolBuffer, RegisteredPool
from .protocol import (
    CTRL_MSG_BYTES,
    OP_READ,
    OP_WRITE,
    PageReply,
    PageRequest,
    ProtocolError,
)
from .server import HPBDServer
from .striping import BlockingDistribution, Segment

__all__ = ["HPBDClient"]

#: degraded-mode policies once a server is declared dead
DEGRADED_MODES = ("none", "remap", "disk")


@dataclass
class _Pending:
    """Book-keeping for one block request in flight."""

    req: BlockRequest
    nsegs: int
    done_segs: int = 0
    submit_time: float = 0.0


@dataclass
class _Inflight:
    """One physical request (segment x direction), however many attempts
    it takes to get acknowledged."""

    pending: _Pending
    seg: Segment
    op: str
    buf: PoolBuffer | None = None  # pool mode
    mr: object = None  # register-on-the-fly mode (MemoryRegion)
    #: first post time (block-level accounting; per-attempt times live
    #: on the _Attempt so retries never pollute the rtt span)
    sent_at: float = 0.0
    #: swap-out payload token, re-sent verbatim on every attempt
    token: object = None
    #: mirroring: how many acknowledgements must still arrive before the
    #: shared buffer can be released and the segment counted done.
    copies_left: int = 1
    #: mirroring: server index holding the replica (read failover target)
    replica_server: int | None = None
    #: mirroring: True once this read was already retried on the replica
    failed_over: bool = False


@dataclass
class _Attempt:
    """One posted control message awaiting its acknowledgement."""

    entry: _Inflight
    server: int
    offset: int
    sent_at: float
    deadline: float | None = None
    retries: int = 0


class HPBDClient:
    """The block-device driver instance (one minor device).

    Construct, then run ``yield from client.connect()`` inside a process
    before submitting I/O; attach to the VM with
    ``node.swapon(client.queue, total_bytes)``.
    """

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        servers: list[HPBDServer],
        total_bytes: int,
        ib_params: IBParams = IB_DEFAULT,
        pool_bytes: int = MiB,
        credits_per_server: int = 16,
        name: str = "hpbd0",
        stats: StatsRegistry | None = None,
        register_on_fly: bool = False,
        stripe_bytes: int | None = None,
        server_area_base: int = 0,
        server_area_bases: list[int] | None = None,
        tenant: str | None = None,
        qos_weight: float = 1.0,
        distribution=None,
        mirror: bool = False,
        request_timeout_usec: float | None = None,
        max_retries: int = 2,
        retry_backoff_usec: float = 200.0,
        backoff_mult: float = 2.0,
        degraded_mode: str = "none",
        fallback_queue: RequestQueue | None = None,
        health=None,
    ) -> None:
        if not servers:
            raise ValueError("HPBD needs at least one memory server")
        if mirror and len(servers) < 2:
            raise ValueError("mirroring needs at least two servers")
        if degraded_mode not in DEGRADED_MODES:
            raise ValueError(
                f"degraded_mode {degraded_mode!r} not in {DEGRADED_MODES}"
            )
        if mirror and degraded_mode == "remap":
            raise ValueError(
                "mirror already re-routes around a dead server; "
                "combine it with degraded_mode 'none' or 'disk'"
            )
        if degraded_mode == "remap" and len(servers) < 2:
            raise ValueError("remap degraded mode needs at least two servers")
        if degraded_mode == "disk" and fallback_queue is None:
            raise ValueError("disk degraded mode needs a fallback_queue")
        if request_timeout_usec is not None and request_timeout_usec <= 0:
            raise ValueError(f"bad request timeout {request_timeout_usec}")
        self.sim = sim
        self.node = node
        self.servers = servers
        self.total_bytes = total_bytes
        self.name = name
        self.stats = stats if stats is not None else node.stats
        #: ablation switch (§4.1): register each request's pages on the
        #: fly instead of copying through the pre-registered pool.
        self.register_on_fly = register_on_fly
        #: where this client's area starts inside each server's store
        #: (lets one server serve several clients, §5).  The cluster
        #: placement layer hands per-server bases; the scalar form keeps
        #: the original one-base-everywhere behaviour.
        if server_area_bases is not None:
            if len(server_area_bases) != len(servers):
                raise ValueError(
                    f"{len(server_area_bases)} area bases for "
                    f"{len(servers)} servers"
                )
            if server_area_base:
                raise ValueError(
                    "pass server_area_base or server_area_bases, not both"
                )
            self.server_area_bases = list(server_area_bases)
        else:
            self.server_area_bases = [server_area_base] * len(servers)
        self.server_area_base = server_area_base
        #: cluster identity: tags this driver's traffic on every server
        #: (per-tenant accounting + weighted-fair service).
        self.tenant = tenant
        if qos_weight <= 0:
            raise ValueError(f"bad qos weight {qos_weight}")
        self.qos_weight = qos_weight
        if distribution is not None:
            # Custom layout (e.g. the cooperative WeightedDistribution).
            if distribution.total_bytes != total_bytes:
                raise ValueError(
                    f"distribution covers {distribution.total_bytes} bytes, "
                    f"device is {total_bytes}"
                )
            if distribution.nservers != len(servers):
                raise ValueError(
                    f"distribution names {distribution.nservers} servers, "
                    f"got {len(servers)}"
                )
            self.dist = distribution
        elif stripe_bytes is None:
            self.dist = BlockingDistribution(total_bytes, len(servers))
        else:
            # ablation switch (§4.2.5): striped layout the paper rejects
            from .striping import StripedDistribution

            self.dist = StripedDistribution(
                total_bytes, len(servers), stripe_bytes
            )
        if degraded_mode == "disk" and not hasattr(self.dist, "absolute_offset"):
            raise ValueError(
                "disk degraded mode needs a distribution with contiguous "
                "device-space segments (blocking layout)"
            )
        #: reliability extension (§4.1 points at NRD [13] / RRMP): write
        #: every page to a replica server too; reads fail over to the
        #: replica if the primary errors.  The replica of server i's
        #: chunk lives on server i+1 (mod n) at base ``share_of(i+1)``.
        self.mirror = mirror
        for i, srv in enumerate(servers):
            share = self.dist.share_of(i)
            if share == 0 and not mirror and degraded_mode != "remap":
                # Chunk-map layouts may leave a fleet server unused by
                # this tenant; nothing to size against.
                continue
            need = self.server_area_bases[i] + share
            if mirror:
                # room for the predecessor's replica behind its own area
                prev = (i - 1) % len(servers)
                need += self.dist.share_of(prev)
            elif degraded_mode == "remap":
                # room to adopt a dead neighbour's chunk behind its own
                # area (same layout math as the mirror replica area)
                need += max(
                    self.dist.share_of(j)
                    for j in range(len(servers))
                    if j != i
                )
            if srv.ramdisk.size < need:
                raise ValueError(
                    f"server {srv.name} RamDisk ({srv.ramdisk.size} B) too "
                    f"small: needs {need} B"
                    + (" (share + replica area)" if mirror else "")
                    + (" (share + remap area)" if degraded_mode == "remap" else "")
                )
        self.queue = RequestQueue(
            sim,
            name=f"{name}.rq",
            capacity_sectors=total_bytes // SECTOR_SIZE,
            stats=self.stats,
        )
        self.hca = HCA(sim, node.fabric, node.name, params=ib_params, stats=self.stats)
        self.pd = self.hca.alloc_pd()
        self.send_cq = self.hca.create_cq(f"{name}.scq")
        #: single reply CQ shared across all server QPs (§5)
        self.reply_cq: CompletionQueue = self.hca.create_cq(f"{name}.rcq")
        self.pool_bytes = pool_bytes
        self.credits_per_server = credits_per_server
        self.pool: RegisteredPool | None = None
        self._qps: list = []
        self._qp_index: dict[int, int] = {}  # qp_num -> server index
        self._credits: list[TokenBucket] = []
        self._inflight: dict[int, _Attempt] = {}
        self._connected = False
        # recovery state machine
        self.request_timeout_usec = request_timeout_usec
        self.max_retries = max_retries
        self.retry_backoff_usec = retry_backoff_usec
        self.backoff_mult = backoff_mult
        self.degraded_mode = degraded_mode
        self.fallback_queue = fallback_queue
        #: drop (and count) replies failing signature validation instead
        #: of raising — set by the fault injector; the watchdog then
        #: retransmits the affected request.
        self.drop_bad_ctrl = False
        self._dead: set[int] = set()
        #: req_ids whose attempt the watchdog abandoned (credit already
        #: reclaimed): a late reply is counted and discarded, not fatal.
        self._stale: set[int] = set()
        self._watch_wake = WaitQueue(sim, name=f"{name}.watchdog", latch=True)
        self._watchdog_spawned = False
        # measurement
        self._t_req = self.stats.tally(f"{name}.request_usec")
        self._c_phys = self.stats.counter(f"{name}.physical_requests")
        self._c_split = self.stats.counter(f"{name}.split_requests")
        self._c_retries = self.stats.counter(f"{name}.retries")
        self._c_timeouts = self.stats.counter(f"{name}.timeouts")
        self._c_failovers = self.stats.counter(f"{name}.failovers")
        self._c_write_failovers = self.stats.counter(f"{name}.write_failovers")
        self._c_remaps = self.stats.counter(f"{name}.remaps")
        self._c_disk_fallbacks = self.stats.counter(f"{name}.disk_fallbacks")
        self._c_stale = self.stats.counter(f"{name}.stale_replies")
        self._c_nacks = self.stats.counter(f"{name}.nacks")
        self._c_dead = self.stats.counter(f"{name}.servers_dead")
        self.copy_usec = 0.0  # client-side memcpy (host overhead share)
        #: fleet health sink (repro.obs.health.HealthHub) — fed per-server
        #: RTTs, per-tenant request latencies, and failed attempts; the
        #: cluster runner shares one hub across every tenant's driver.
        self.health = health

    # -- setup ---------------------------------------------------------------

    def connect(self):
        """Register the pool, connect every server, start the threads;
        generator — run inside a process."""
        if self._connected:
            raise SimulationError(f"{self.name} already connected")
        mr = yield from self.hca.register_mr(self.pd, self.pool_bytes)
        self.pool = RegisteredPool(
            self.sim,
            size=self.pool_bytes,
            base_addr=mr.addr,
            rkey=mr.rkey,
            name=f"{self.name}.pool",
            stats=self.stats,
        )
        for i, srv in enumerate(self.servers):
            if not srv.started:
                yield from srv.start()
            qp_c, qp_s = yield from connect_endpoints(
                self.hca,
                self.pd,
                self.send_cq,
                self.reply_cq,
                srv.hca,
                srv.pd,
                srv.send_cq,
                srv.recv_cq,
                max_recv_wr=max(256, self.credits_per_server),
            )
            self._qps.append(qp_c)
            self._qp_index[qp_c.qp_num] = i
            self._credits.append(
                TokenBucket(
                    self.sim,
                    self.credits_per_server,
                    name=f"{self.name}.credits{i}",
                )
            )
            # Pre-post several water-marks' worth of reply receives:
            # timeouts return credits before the matching replies
            # arrive, so retry bursts (plus stale replies) can put more
            # than one water-mark of acknowledgements in flight.
            depth = min(4 * self.credits_per_server, qp_c.max_recv_wr)
            for _ in range(depth):
                qp_c.post_recv(RecvWR(capacity=CTRL_MSG_BYTES))
            srv.register_client(
                qp_s,
                area_base=self.server_area_bases[i],
                tenant=self.tenant,
                credits=self.credits_per_server,
                weight=self.qos_weight,
            )
        self.sim.spawn(self._sender(), name=f"{self.name}.sender")
        self.sim.spawn(self._receiver(), name=f"{self.name}.receiver")
        if self.request_timeout_usec is not None:
            self.sim.spawn(self._watchdog(), name=f"{self.name}.watchdog")
            self._watchdog_spawned = True
        self._connected = True

    # -- sender thread ---------------------------------------------------------

    def _sender(self):
        sim = self.sim
        while True:
            req = yield self.queue.next_request()
            segs = self.dist.split(req.sector * SECTOR_SIZE, req.nbytes)
            if len(segs) > 1:
                self._c_split.add()
            pending = _Pending(req=req, nsegs=len(segs), submit_time=sim.now)
            for seg in segs:
                yield from self._issue_segment(pending, seg, req)

    def _issue_segment(self, pending: _Pending, seg: Segment, req: BlockRequest):
        """Buffer setup + first attempt(s) for one physical request."""
        sim = self.sim
        trace = sim.trace
        token = None
        if req.op == WRITE:
            token = (self.name, req.sector, seg.server_offset, seg.nbytes)
        replica = (seg.server + 1) % len(self.servers) if self.mirror else None
        entry = _Inflight(
            pending=pending,
            seg=seg,
            op=req.op,
            token=token,
            replica_server=replica,
        )
        targets = self._fresh_targets(entry)
        if not targets:
            # Disk degraded mode with the primary already dead: the
            # segment never touches the network.
            self._c_disk_fallbacks.add()
            sim.spawn(self._fallback_io(entry), name=f"{self.name}.fallback")
            return
        if self.register_on_fly:
            # Ablation (§4.1's rejected alternative): pin the request's
            # pages and expose them directly — no copy, but the full
            # registration cost per request.
            entry.mr = yield from self.hca.register_mr(
                self.pd, seg.nbytes, req_id=req.req_id
            )
        else:
            t_pool = sim.now
            entry.buf = yield from self.pool.alloc(seg.nbytes)
            if trace.enabled and sim.now > t_pool:
                trace.complete(
                    self.name, "sender", "pool_alloc", "hpbd.pool",
                    t_pool, sim.now,
                    req_id=req.req_id, nbytes=seg.nbytes,
                )
            if req.op == WRITE:
                # Copy the pages into the registered pool (the cost
                # HPBD accepts instead of registration).
                cost = memcpy_cost(seg.nbytes)
                self.copy_usec += cost
                t_copy = sim.now
                yield from self.node.cpus.run(cost)
                if trace.enabled:
                    trace.complete(
                        self.name, "sender", "copy_in", "hpbd.copy",
                        t_copy, sim.now,
                        req_id=req.req_id, nbytes=seg.nbytes,
                    )
        # Synchronous mirroring: the same buffer is RDMA-read by both
        # servers; the segment completes only when both acknowledge.
        entry.copies_left = len(targets)
        for server, offset in targets:
            yield from self._post_attempt(entry, server, offset)

    def _fresh_targets(self, entry: _Inflight) -> list[tuple[int, int]]:
        """Where a brand-new segment goes, honouring dead servers.

        Returns ``(server, store_offset)`` pairs — two for a mirrored
        write, one otherwise, empty for straight-to-disk fallback.
        """
        seg = entry.seg
        primary = seg.server
        if primary not in self._dead:
            if self.mirror and entry.op == WRITE:
                replica = entry.replica_server
                if replica in self._dead:
                    # Degraded mirroring: keep writing the surviving copy.
                    self._c_write_failovers.add()
                    return [(primary, seg.server_offset)]
                return [
                    (primary, seg.server_offset),
                    (replica, self.dist.share_of(replica) + seg.server_offset),
                ]
            return [(primary, seg.server_offset)]
        if self.mirror:
            replica = entry.replica_server
            if replica in self._dead:
                raise SimulationError(
                    f"{self.name}: segment {seg} lost both copies "
                    f"(servers {primary} and {replica} dead)"
                )
            if entry.op == WRITE:
                self._c_write_failovers.add()
            else:
                self._c_failovers.add()
                entry.failed_over = True
            return [(replica, self.dist.share_of(replica) + seg.server_offset)]
        if self.degraded_mode == "remap":
            target = self._remap_target()
            self._c_remaps.add()
            return [(target, self.dist.share_of(target) + seg.server_offset)]
        if self.degraded_mode == "disk":
            return []
        raise SimulationError(
            f"{self.name}: server {primary} is dead and no degraded mode "
            f"is configured"
        )

    def _remap_target(self) -> int:
        """The survivor adopting the dead server's chunk: its successor
        (mod n), hosting it behind its own area — the same layout math
        as the mirror replica, so store sizing is shared too."""
        if len(self._dead) != 1:
            raise SimulationError(
                f"{self.name}: remap handles exactly one dead server, "
                f"have {sorted(self._dead)}"
            )
        dead = next(iter(self._dead))
        target = (dead + 1) % len(self.servers)
        return target

    def _post_attempt(
        self,
        entry: _Inflight,
        server: int,
        offset: int,
        retries: int = 0,
    ):
        """Take a credit and post one control message; generator."""
        sim = self.sim
        trace = sim.trace
        blk_req_id = entry.pending.req.req_id
        t_credit = sim.now
        yield self._credits[server].acquire()
        if trace.enabled and sim.now > t_credit:
            trace.complete(
                self.name, "sender", "credit_wait", "hpbd.credit",
                t_credit, sim.now,
                req_id=blk_req_id, server=server,
            )
        if server in self._dead:
            # Lost a race: the target died while we waited for a credit.
            self._credits[server].release()
            self._reroute(entry, server)
            return
        preq = PageRequest(
            op=OP_WRITE if entry.op == WRITE else OP_READ,
            offset=offset,
            nbytes=entry.seg.nbytes,
            buf_addr=self._entry_addr(entry),
            buf_rkey=self._entry_rkey(entry),
            data_token=entry.token,
            blk_req_id=blk_req_id,
        )
        now = sim.now
        if entry.sent_at == 0.0:
            entry.sent_at = now
        deadline = None
        if self.request_timeout_usec is not None:
            deadline = now + self.request_timeout_usec
        self._inflight[preq.req_id] = _Attempt(
            entry=entry,
            server=server,
            offset=offset,
            sent_at=now,
            deadline=deadline,
            retries=retries,
        )
        self._c_phys.add(entry.seg.nbytes)
        self._qps[server].post_send(
            SendWR(
                nbytes=CTRL_MSG_BYTES,
                payload=preq,
                signaled=False,
                solicited=False,
                req_id=blk_req_id,
            )
        )
        if self._watchdog_spawned:
            self._watch_wake.wake_one()

    def _entry_addr(self, entry: _Inflight) -> int:
        # Register-on-the-fly keeps the data in the per-request MR, not
        # the pool — failovers and retries must target whichever buffer
        # this entry actually uses.
        if entry.buf is not None:
            return self.pool.buffer_addr(entry.buf)
        return entry.mr.addr

    def _entry_rkey(self, entry: _Inflight) -> int:
        if entry.buf is not None:
            return self.pool.rkey
        return entry.mr.rkey

    # -- receiver thread ---------------------------------------------------------

    def _receiver(self):
        sim = self.sim
        rcq = self.reply_cq
        while True:
            # Arm, then drain once more before sleeping (race-free order).
            # Solicited-only: replies carry the solicitation bit (§5).
            rcq.request_notify(solicited_only=True)
            if len(rcq) == 0:
                yield rcq.wait_event()
            # Bursty processing: handle everything available, then sleep.
            for cqe in rcq.poll():
                reply: PageReply = cqe.payload
                server_idx = self._qp_index[cqe.qp_num]
                # Replenish the consumed reply receive before anything
                # else, keeping posted-receives >= credits.
                self._qps[server_idx].post_recv(RecvWR(capacity=CTRL_MSG_BYTES))
                try:
                    reply.validate()
                except ProtocolError:
                    if not self.drop_bad_ctrl:
                        raise
                    # Nothing in a corrupted acknowledgement can be
                    # trusted, including its req_id: drop it and let the
                    # watchdog retransmit the affected request.
                    self.stats.counter(f"{self.name}.bad_replies").add()
                    continue
                att = self._inflight.pop(reply.req_id, None)
                if att is None:
                    if reply.req_id in self._stale:
                        # The watchdog gave up on this attempt and its
                        # credit was reclaimed; the answer showed up
                        # after all.
                        self._stale.discard(reply.req_id)
                        self._c_stale.add()
                        continue
                    raise SimulationError(
                        f"{self.name}: reply for unknown request {reply.req_id}"
                    )
                self._credits[att.server].release()
                entry = att.entry
                if not reply.ok:
                    if reply.nack:
                        # Typed back-pressure (pool exhaustion /
                        # admission bound): retryable by design.
                        self._c_nacks.add()
                        self._fail_attempt(att, cause="nack")
                    else:
                        self._fail_attempt(att, cause="error")
                    continue
                if self.health is not None:
                    # Per-server service signal for the fail-slow
                    # detector: this attempt's post-to-ack round trip.
                    self.health.record_server_rtt(
                        att.server, sim.now - att.sent_at
                    )
                entry.copies_left -= 1
                if entry.copies_left > 0:
                    continue  # mirrored write: wait for the other copy
                trace = sim.trace
                if trace.enabled:
                    # Physical request round trip: control message out
                    # to acknowledgement drained from the reply CQ —
                    # this attempt's only; failed attempts are billed to
                    # their own hpbd.timeout/hpbd.failover spans.
                    trace.complete(
                        self.name, "receiver", "phys_rtt", "hpbd.rtt",
                        att.sent_at, sim.now,
                        req_id=entry.pending.req.req_id, op=entry.op,
                        nbytes=entry.seg.nbytes, server=att.server,
                    )
                yield from self._finish_segment(entry)

    def _finish_segment(self, entry: _Inflight, copy_out: bool = True):
        """Release buffers and complete the block request; generator."""
        sim = self.sim
        trace = sim.trace
        if entry.mr is not None:
            # Register-on-the-fly ablation: unpin (zero-copy).
            yield from self.hca.deregister_mr(
                self.pd, entry.mr, req_id=entry.pending.req.req_id
            )
        elif entry.buf is not None:
            if entry.op == READ and copy_out:
                # Data already landed in the pool via RDMA write; copy
                # it out to the page frames.
                cost = memcpy_cost(entry.seg.nbytes)
                self.copy_usec += cost
                t_copy = sim.now
                yield from self.node.cpus.run(cost)
                if trace.enabled:
                    trace.complete(
                        self.name, "receiver", "copy_out",
                        "hpbd.copy", t_copy, sim.now,
                        req_id=entry.pending.req.req_id,
                        nbytes=entry.seg.nbytes,
                    )
            self.pool.free(entry.buf)
        entry.pending.done_segs += 1
        if entry.pending.done_segs == entry.pending.nsegs:
            self._t_req.record(sim.now - entry.pending.submit_time)
            if self.health is not None:
                self.health.record_request(
                    self.tenant or self.name,
                    sim.now - entry.pending.submit_time,
                )
            if trace.enabled:
                req = entry.pending.req
                trace.complete(
                    self.name, "requests", "block_request",
                    "hpbd.request",
                    entry.pending.submit_time, sim.now,
                    req_id=req.req_id, op=req.op,
                    sector=req.sector, nbytes=req.nbytes,
                    nsegs=entry.pending.nsegs,
                )
            self.queue.complete(entry.pending.req)

    # -- recovery state machine ----------------------------------------------

    def _watchdog(self):
        """Expires overdue attempts; sleeps on a latch while idle so an
        otherwise-drained simulation still runs to completion."""
        sim = self.sim
        while True:
            if not self._inflight:
                yield self._watch_wake.wait()
                continue
            next_deadline = min(
                att.deadline for att in self._inflight.values()
            )
            if next_deadline > sim.now:
                # New attempts always deadline later than existing ones
                # (deadline = post time + constant), so sleeping to the
                # earliest one cannot overshoot a newer one.
                yield sim.timeout(next_deadline - sim.now)
                continue
            now = sim.now
            expired = [
                rid
                for rid, att in self._inflight.items()
                if att.deadline <= now
            ]
            for rid in expired:
                att = self._inflight.pop(rid, None)
                if att is None:
                    continue
                # Reclaim the credit now — the server may never answer —
                # and remember the id so a late reply is not "unknown".
                self._credits[att.server].release()
                self._stale.add(rid)
                self._c_timeouts.add()
                self._fail_attempt(att, cause="timeout")

    def _fail_attempt(self, att: _Attempt, cause: str) -> None:
        """One attempt came back bad (``error``) or never came back
        (``timeout``): fail over, retry, degrade, or give up.

        The caller has already popped the attempt and returned its
        credit; this either schedules exactly one replacement attempt
        or raises.
        """
        entry = att.entry
        seg = entry.seg
        if self.health is not None:
            self.health.record_error(self.tenant or self.name, att.server)
        retries_enabled = self.request_timeout_usec is not None
        # 1. Mirror read failover (works even with retries disabled —
        #    the original reliability extension).
        if (
            self.mirror
            and entry.op == READ
            and not entry.failed_over
            and att.server != entry.replica_server
            and entry.replica_server not in self._dead
        ):
            entry.failed_over = True
            self._c_failovers.add()
            self._mark_failed_span(att, cause)
            self.sim.spawn(
                self._post_attempt(
                    entry,
                    entry.replica_server,
                    self.dist.share_of(entry.replica_server) + seg.server_offset,
                ),
                name=f"{self.name}.failover",
            )
            return
        # 2. Bounded retry against the same server, with backoff.
        if (
            retries_enabled
            and att.retries < self.max_retries
            and att.server not in self._dead
        ):
            self._c_retries.add()
            self._mark_failed_span(att, cause)
            backoff = self.retry_backoff_usec * (
                self.backoff_mult ** att.retries
            )
            self.sim.spawn(
                self._backoff_resend(
                    entry, att.server, att.offset, backoff, att.retries + 1
                ),
                name=f"{self.name}.retry",
            )
            return
        # 3. Retries exhausted: declare the server dead and re-route
        #    everything aimed at it.
        if retries_enabled:
            self._mark_failed_span(att, cause)
            self._mark_dead(att.server)
            self._reroute(entry, att.server)
            return
        # 4. Legacy behaviour (timeouts disabled): fail loudly.
        raise SimulationError(
            f"{self.name}: server {cause} on request "
            f"{entry.pending.req.req_id}"
        )

    def _mark_failed_span(self, att: _Attempt, cause: str) -> None:
        trace = self.sim.trace
        if not trace.enabled:
            return
        cat = "hpbd.timeout" if cause == "timeout" else "hpbd.failover"
        trace.complete(
            self.name, "recovery",
            "attempt_timeout" if cause == "timeout" else "failed_attempt",
            cat, att.sent_at, self.sim.now,
            req_id=att.entry.pending.req.req_id,
            server=att.server, op=att.entry.op, retries=att.retries,
        )

    def _backoff_resend(
        self,
        entry: _Inflight,
        server: int,
        offset: int,
        backoff: float,
        retries: int,
    ):
        sim = self.sim
        t0 = sim.now
        if backoff > 0:
            yield sim.timeout(backoff)
            if sim.trace.enabled:
                sim.trace.complete(
                    self.name, "recovery", "backoff", "hpbd.retry",
                    t0, sim.now,
                    req_id=entry.pending.req.req_id, server=server,
                    retries=retries,
                )
        if server in self._dead:
            # Someone else's attempt condemned the server meanwhile.
            self._reroute(entry, server)
            return
        yield from self._post_attempt(entry, server, offset, retries=retries)

    def _mark_dead(self, server: int) -> None:
        """Declare a server dead and re-route its pending attempts."""
        if server in self._dead:
            return
        self._dead.add(server)
        self._c_dead.add()
        self.sim.trace.instant(
            self.name, "recovery", "server_dead", server=server,
        )
        doomed = [
            rid
            for rid, att in self._inflight.items()
            if att.server == server
        ]
        for rid in doomed:
            att = self._inflight.pop(rid)
            self._credits[server].release()
            self._stale.add(rid)
            self._reroute(att.entry, server)

    def _reroute(self, entry: _Inflight, failed_server: int) -> None:
        """Schedule exactly one replacement attempt for one that failed
        against a now-dead server — or raise if nowhere is left."""
        seg = entry.seg
        primary = seg.server
        if self.mirror:
            replica = entry.replica_server
            target = replica if failed_server == primary else primary
            if target in self._dead:
                raise SimulationError(
                    f"{self.name}: segment {seg} lost both copies "
                    f"(servers {primary} and {replica} dead)"
                )
            if entry.op == WRITE:
                self._c_write_failovers.add()
            else:
                self._c_failovers.add()
                entry.failed_over = True
            offset = (
                seg.server_offset
                if target == primary
                else self.dist.share_of(target) + seg.server_offset
            )
            self.sim.spawn(
                self._post_attempt(entry, target, offset),
                name=f"{self.name}.failover",
            )
            return
        if self.degraded_mode == "remap":
            target = self._remap_target()
            self._c_remaps.add()
            self.sim.spawn(
                self._post_attempt(
                    entry,
                    target,
                    self.dist.share_of(target) + seg.server_offset,
                ),
                name=f"{self.name}.remap",
            )
            return
        if self.degraded_mode == "disk":
            self._c_disk_fallbacks.add()
            self.sim.spawn(
                self._fallback_io(entry), name=f"{self.name}.fallback"
            )
            return
        raise SimulationError(
            f"{self.name}: server {failed_server} failed and no degraded "
            f"mode is configured"
        )

    def _fallback_io(self, entry: _Inflight):
        """Serve one segment from the local swap disk instead; generator.

        The blocking layout keeps segments contiguous in device space,
        so the fallback bio targets the same absolute device range.
        """
        sim = self.sim
        seg = entry.seg
        t0 = sim.now
        abs_offset = self.dist.absolute_offset(seg)
        done = Event(sim, name=f"{self.name}.fallback")
        self.fallback_queue.submit_bio(
            Bio(
                op=entry.op,
                sector=abs_offset // SECTOR_SIZE,
                nsectors=seg.nbytes // SECTOR_SIZE,
                done=done,
                submit_time=sim.now,
            )
        )
        self.fallback_queue.unplug()
        yield done
        if sim.trace.enabled:
            sim.trace.complete(
                self.name, "recovery", "disk_fallback", "fault.fallback",
                t0, sim.now,
                req_id=entry.pending.req.req_id, op=entry.op,
                nbytes=seg.nbytes,
            )
        # The disk path moves data without the pool (no RDMA landing
        # zone to copy out of), but any buffer a failed network attempt
        # left behind must still be released.
        yield from self._finish_segment(entry, copy_out=False)

    # -- introspection ------------------------------------------------------

    @property
    def outstanding(self) -> int:
        return len(self._inflight)

    @property
    def dead_servers(self) -> frozenset[int]:
        return frozenset(self._dead)

    def credit_stalls(self) -> int:
        return sum(c.stall_count for c in self._credits)

    def audit_teardown(self) -> None:
        """Invariant monitors for a quiesced device (runner teardown).

        With all I/O drained: every physical request acknowledged, every
        flow-control credit back in its bucket, and no pool bytes leaked.
        These must hold even after a faulted run — recovery is not
        allowed to leak.
        """
        monitors = self.sim.monitors
        monitors.check(
            not self._inflight,
            "hpbd.inflight_drained", self.name,
            "physical requests still awaiting acknowledgement at teardown",
            outstanding=len(self._inflight),
        )
        for i, bucket in enumerate(self._credits):
            monitors.check(
                bucket.tokens == bucket.capacity,
                "hpbd.credits_returned", self.name,
                f"server {i} credits not fully returned",
                server=i, tokens=bucket.tokens, capacity=bucket.capacity,
            )
        if self.pool is not None:
            self.pool.audit_teardown()
