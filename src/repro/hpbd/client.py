"""The HPBD client: a block-device driver over native InfiniBand verbs.

Structure follows §4.2.3/§5 of the paper:

* the driver exposes a standard request queue to the VM (so all the
  block-layer merging/plugging applies untouched);
* a **sender thread** takes merged requests off the queue, splits each
  into per-server *physical requests* (blocking distribution), copies
  swap-out data into the pre-registered pool, takes a flow-control
  credit, and posts the control message;
* a **receiver thread** sleeps on the reply completion queue (one CQ
  shared by all server QPs), is woken by solicited-completion events,
  and drains *all* available replies per wakeup (bursty processing);
* the **water-mark flow control** (§4.2.4) is a per-server credit
  bucket sized to the pre-posted receive count — requests queue inside
  the driver when credits run out;
* a block request completes when every physical request has been
  acknowledged ("A request is successfully served when each physical
  request is replied with successful acknowledgment").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ib import HCA, CompletionQueue, RecvWR, SendWR, connect_endpoints
from ..kernel.blockdev import BlockRequest, READ, RequestQueue, WRITE
from ..kernel.node import Node
from ..net.fabrics import IBParams, IB_DEFAULT, memcpy_cost
from ..simulator import SimulationError, Simulator, StatsRegistry, TokenBucket
from ..units import MiB, SECTOR_SIZE
from .pool import PoolBuffer, RegisteredPool
from .protocol import (
    CTRL_MSG_BYTES,
    OP_READ,
    OP_WRITE,
    PageReply,
    PageRequest,
)
from .server import HPBDServer
from .striping import BlockingDistribution, Segment

__all__ = ["HPBDClient"]


@dataclass
class _Pending:
    """Book-keeping for one block request in flight."""

    req: BlockRequest
    nsegs: int
    done_segs: int = 0
    submit_time: float = 0.0


@dataclass
class _Inflight:
    """One physical request awaiting its acknowledgement."""

    pending: _Pending
    seg: Segment
    op: str
    buf: PoolBuffer | None = None  # pool mode
    mr: object = None  # register-on-the-fly mode (MemoryRegion)
    sent_at: float = 0.0
    #: mirroring: how many acknowledgements must still arrive before the
    #: shared buffer can be released and the segment counted done.
    copies_left: int = 1
    #: mirroring: server index holding the replica (read failover target)
    replica_server: int | None = None
    #: mirroring: True once this read was already retried on the replica
    failed_over: bool = False


class HPBDClient:
    """The block-device driver instance (one minor device).

    Construct, then run ``yield from client.connect()`` inside a process
    before submitting I/O; attach to the VM with
    ``node.swapon(client.queue, total_bytes)``.
    """

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        servers: list[HPBDServer],
        total_bytes: int,
        ib_params: IBParams = IB_DEFAULT,
        pool_bytes: int = MiB,
        credits_per_server: int = 16,
        name: str = "hpbd0",
        stats: StatsRegistry | None = None,
        register_on_fly: bool = False,
        stripe_bytes: int | None = None,
        server_area_base: int = 0,
        distribution=None,
        mirror: bool = False,
    ) -> None:
        if not servers:
            raise ValueError("HPBD needs at least one memory server")
        if mirror and len(servers) < 2:
            raise ValueError("mirroring needs at least two servers")
        if mirror and register_on_fly:
            raise ValueError("mirror + register_on_fly not supported together")
        self.sim = sim
        self.node = node
        self.servers = servers
        self.total_bytes = total_bytes
        self.name = name
        self.stats = stats if stats is not None else node.stats
        #: ablation switch (§4.1): register each request's pages on the
        #: fly instead of copying through the pre-registered pool.
        self.register_on_fly = register_on_fly
        #: where this client's area starts inside each server's store
        #: (lets one server serve several clients, §5).
        self.server_area_base = server_area_base
        if distribution is not None:
            # Custom layout (e.g. the cooperative WeightedDistribution).
            if distribution.total_bytes != total_bytes:
                raise ValueError(
                    f"distribution covers {distribution.total_bytes} bytes, "
                    f"device is {total_bytes}"
                )
            if distribution.nservers != len(servers):
                raise ValueError(
                    f"distribution names {distribution.nservers} servers, "
                    f"got {len(servers)}"
                )
            self.dist = distribution
        elif stripe_bytes is None:
            self.dist = BlockingDistribution(total_bytes, len(servers))
        else:
            # ablation switch (§4.2.5): striped layout the paper rejects
            from .striping import StripedDistribution

            self.dist = StripedDistribution(
                total_bytes, len(servers), stripe_bytes
            )
        #: reliability extension (§4.1 points at NRD [13] / RRMP): write
        #: every page to a replica server too; reads fail over to the
        #: replica if the primary errors.  The replica of server i's
        #: chunk lives on server i+1 (mod n) at base ``share_of(i+1)``.
        self.mirror = mirror
        for i, srv in enumerate(servers):
            share = self.dist.share_of(i)
            need = server_area_base + share
            if mirror:
                # room for the predecessor's replica behind its own area
                prev = (i - 1) % len(servers)
                need += self.dist.share_of(prev)
            if srv.ramdisk.size < need:
                raise ValueError(
                    f"server {srv.name} RamDisk ({srv.ramdisk.size} B) too "
                    f"small: needs {need} B"
                    + (" (share + replica area)" if mirror else "")
                )
        self.queue = RequestQueue(
            sim,
            name=f"{name}.rq",
            capacity_sectors=total_bytes // SECTOR_SIZE,
            stats=self.stats,
        )
        self.hca = HCA(sim, node.fabric, node.name, params=ib_params, stats=self.stats)
        self.pd = self.hca.alloc_pd()
        self.send_cq = self.hca.create_cq(f"{name}.scq")
        #: single reply CQ shared across all server QPs (§5)
        self.reply_cq: CompletionQueue = self.hca.create_cq(f"{name}.rcq")
        self.pool_bytes = pool_bytes
        self.credits_per_server = credits_per_server
        self.pool: RegisteredPool | None = None
        self._qps: list = []
        self._qp_index: dict[int, int] = {}  # qp_num -> server index
        self._credits: list[TokenBucket] = []
        self._inflight: dict[int, _Inflight] = {}
        self._connected = False
        # measurement
        self._t_req = self.stats.tally(f"{name}.request_usec")
        self._c_phys = self.stats.counter(f"{name}.physical_requests")
        self._c_split = self.stats.counter(f"{name}.split_requests")
        self.copy_usec = 0.0  # client-side memcpy (host overhead share)

    # -- setup ---------------------------------------------------------------

    def connect(self):
        """Register the pool, connect every server, start the threads;
        generator — run inside a process."""
        if self._connected:
            raise SimulationError(f"{self.name} already connected")
        mr = yield from self.hca.register_mr(self.pd, self.pool_bytes)
        self.pool = RegisteredPool(
            self.sim,
            size=self.pool_bytes,
            base_addr=mr.addr,
            rkey=mr.rkey,
            name=f"{self.name}.pool",
            stats=self.stats,
        )
        for i, srv in enumerate(self.servers):
            if not srv.started:
                yield from srv.start()
            qp_c, qp_s = yield from connect_endpoints(
                self.hca,
                self.pd,
                self.send_cq,
                self.reply_cq,
                srv.hca,
                srv.pd,
                srv.send_cq,
                srv.recv_cq,
                max_recv_wr=max(256, self.credits_per_server),
            )
            self._qps.append(qp_c)
            self._qp_index[qp_c.qp_num] = i
            self._credits.append(
                TokenBucket(
                    self.sim,
                    self.credits_per_server,
                    name=f"{self.name}.credits{i}",
                )
            )
            # Pre-post reply receives matching the credit water-mark.
            for _ in range(self.credits_per_server):
                qp_c.post_recv(RecvWR(capacity=CTRL_MSG_BYTES))
            srv.register_client(qp_s, area_base=self.server_area_base)
        self.sim.spawn(self._sender(), name=f"{self.name}.sender")
        self.sim.spawn(self._receiver(), name=f"{self.name}.receiver")
        self._connected = True

    # -- sender thread ---------------------------------------------------------

    def _sender(self):
        sim = self.sim
        while True:
            req = yield self.queue.next_request()
            segs = self.dist.split(req.sector * SECTOR_SIZE, req.nbytes)
            if len(segs) > 1:
                self._c_split.add()
            pending = _Pending(req=req, nsegs=len(segs), submit_time=sim.now)
            for seg in segs:
                token = None
                if req.op == WRITE:
                    token = (self.name, req.sector, seg.server_offset, seg.nbytes)
                trace = sim.trace
                if self.register_on_fly:
                    # Ablation (§4.1's rejected alternative): pin the
                    # request's pages and expose them directly — no
                    # copy, but the full registration cost per request.
                    mr = yield from self.hca.register_mr(
                        self.pd, seg.nbytes, req_id=req.req_id
                    )
                    buf, buf_addr, buf_rkey = None, mr.addr, mr.rkey
                else:
                    t_pool = sim.now
                    buf = yield from self.pool.alloc(seg.nbytes)
                    if trace.enabled and sim.now > t_pool:
                        trace.complete(
                            self.name, "sender", "pool_alloc", "hpbd.pool",
                            t_pool, sim.now,
                            req_id=req.req_id, nbytes=seg.nbytes,
                        )
                    mr = None
                    buf_addr = self.pool.buffer_addr(buf)
                    buf_rkey = self.pool.rkey
                    if req.op == WRITE:
                        # Copy the pages into the registered pool (the
                        # cost HPBD accepts instead of registration).
                        cost = memcpy_cost(seg.nbytes)
                        self.copy_usec += cost
                        t_copy = sim.now
                        yield from self.node.cpus.run(cost)
                        if trace.enabled:
                            trace.complete(
                                self.name, "sender", "copy_in", "hpbd.copy",
                                t_copy, sim.now,
                                req_id=req.req_id, nbytes=seg.nbytes,
                            )
                t_credit = sim.now
                yield self._credits[seg.server].acquire()
                if trace.enabled and sim.now > t_credit:
                    trace.complete(
                        self.name, "sender", "credit_wait", "hpbd.credit",
                        t_credit, sim.now,
                        req_id=req.req_id, server=seg.server,
                    )
                preq = PageRequest(
                    op=OP_WRITE if req.op == WRITE else OP_READ,
                    offset=seg.server_offset,
                    nbytes=seg.nbytes,
                    buf_addr=buf_addr,
                    buf_rkey=buf_rkey,
                    data_token=token,
                    blk_req_id=req.req_id,
                )
                mirror_write = self.mirror and req.op == WRITE
                replica = (
                    (seg.server + 1) % len(self.servers) if self.mirror else None
                )
                entry = _Inflight(
                    pending=pending,
                    seg=seg,
                    op=req.op,
                    buf=buf,
                    mr=mr,
                    sent_at=sim.now,
                    copies_left=2 if mirror_write else 1,
                    replica_server=replica,
                )
                self._inflight[preq.req_id] = entry
                self._c_phys.add(seg.nbytes)
                self._qps[seg.server].post_send(
                    SendWR(
                        nbytes=CTRL_MSG_BYTES,
                        payload=preq,
                        signaled=False,
                        solicited=False,
                        req_id=req.req_id,
                    )
                )
                if mirror_write:
                    # Synchronous mirroring: the same pool buffer is
                    # RDMA-read by both servers; the segment completes
                    # only when both acknowledge.
                    yield self._credits[replica].acquire()
                    rreq = PageRequest(
                        op=OP_WRITE,
                        offset=self.dist.share_of(replica) + seg.server_offset,
                        nbytes=seg.nbytes,
                        buf_addr=buf_addr,
                        buf_rkey=buf_rkey,
                        data_token=token,
                        blk_req_id=req.req_id,
                    )
                    self._inflight[rreq.req_id] = entry
                    self._c_phys.add(seg.nbytes)
                    self._qps[replica].post_send(
                        SendWR(
                            nbytes=CTRL_MSG_BYTES,
                            payload=rreq,
                            signaled=False,
                            solicited=False,
                            req_id=req.req_id,
                        )
                    )

    # -- receiver thread ---------------------------------------------------------

    def _receiver(self):
        sim = self.sim
        rcq = self.reply_cq
        while True:
            # Arm, then drain once more before sleeping (race-free order).
            # Solicited-only: replies carry the solicitation bit (§5).
            rcq.request_notify(solicited_only=True)
            if len(rcq) == 0:
                yield rcq.wait_event()
            # Bursty processing: handle everything available, then sleep.
            for cqe in rcq.poll():
                reply: PageReply = cqe.payload
                reply.validate()
                entry = self._inflight.pop(reply.req_id, None)
                if entry is None:
                    raise SimulationError(
                        f"{self.name}: reply for unknown request {reply.req_id}"
                    )
                server_idx = self._qp_index[cqe.qp_num]
                # Replenish the consumed reply receive before returning
                # the credit, keeping posted-receives >= credits.
                self._qps[server_idx].post_recv(RecvWR(capacity=CTRL_MSG_BYTES))
                self._credits[server_idx].release()
                if not reply.ok:
                    if (
                        self.mirror
                        and entry.op == READ
                        and not entry.failed_over
                    ):
                        # Read failover: re-issue against the replica.
                        entry.failed_over = True
                        self.stats.counter(f"{self.name}.failovers").add()
                        sim.spawn(
                            self._retry_read(entry),
                            name=f"{self.name}.failover",
                        )
                        continue
                    raise SimulationError(
                        f"{self.name}: server error on request {reply.req_id}"
                    )
                entry.copies_left -= 1
                if entry.copies_left > 0:
                    continue  # mirrored write: wait for the other copy
                trace = sim.trace
                if trace.enabled:
                    # Physical request round trip: control message out to
                    # acknowledgement drained from the reply CQ.
                    trace.complete(
                        self.name, "receiver", "phys_rtt", "hpbd.rtt",
                        entry.sent_at, sim.now,
                        req_id=entry.pending.req.req_id, op=entry.op,
                        nbytes=entry.seg.nbytes, server=server_idx,
                    )
                if entry.mr is not None:
                    # Register-on-the-fly ablation: unpin (zero-copy).
                    yield from self.hca.deregister_mr(
                        self.pd, entry.mr, req_id=entry.pending.req.req_id
                    )
                else:
                    if entry.op == READ:
                        # Data already landed in the pool via RDMA
                        # write; copy it out to the page frames.
                        cost = memcpy_cost(entry.seg.nbytes)
                        self.copy_usec += cost
                        t_copy = sim.now
                        yield from self.node.cpus.run(cost)
                        if trace.enabled:
                            trace.complete(
                                self.name, "receiver", "copy_out",
                                "hpbd.copy", t_copy, sim.now,
                                req_id=entry.pending.req.req_id,
                                nbytes=entry.seg.nbytes,
                            )
                    self.pool.free(entry.buf)
                entry.pending.done_segs += 1
                if entry.pending.done_segs == entry.pending.nsegs:
                    self._t_req.record(sim.now - entry.pending.submit_time)
                    if trace.enabled:
                        req = entry.pending.req
                        trace.complete(
                            self.name, "requests", "block_request",
                            "hpbd.request",
                            entry.pending.submit_time, sim.now,
                            req_id=req.req_id, op=req.op,
                            sector=req.sector, nbytes=req.nbytes,
                            nsegs=entry.pending.nsegs,
                        )
                    self.queue.complete(entry.pending.req)

    def _retry_read(self, entry: _Inflight):
        """Issue a failed read again, against the replica server."""
        replica = entry.replica_server
        yield self._credits[replica].acquire()
        rreq = PageRequest(
            op=OP_READ,
            offset=self.dist.share_of(replica) + entry.seg.server_offset,
            nbytes=entry.seg.nbytes,
            buf_addr=self.pool.buffer_addr(entry.buf),
            buf_rkey=self.pool.rkey,
            blk_req_id=entry.pending.req.req_id,
        )
        self._inflight[rreq.req_id] = entry
        self._c_phys.add(entry.seg.nbytes)
        self._qps[replica].post_send(
            SendWR(
                nbytes=CTRL_MSG_BYTES,
                payload=rreq,
                signaled=False,
                solicited=False,
                req_id=entry.pending.req.req_id,
            )
        )

    # -- introspection ------------------------------------------------------

    @property
    def outstanding(self) -> int:
        return len(self._inflight)

    def credit_stalls(self) -> int:
        return sum(c.stall_count for c in self._credits)

    def audit_teardown(self) -> None:
        """Invariant monitors for a quiesced device (runner teardown).

        With all I/O drained: every physical request acknowledged, every
        flow-control credit back in its bucket, and no pool bytes leaked.
        """
        monitors = self.sim.monitors
        monitors.check(
            not self._inflight,
            "hpbd.inflight_drained", self.name,
            "physical requests still awaiting acknowledgement at teardown",
            outstanding=len(self._inflight),
        )
        for i, bucket in enumerate(self._credits):
            monitors.check(
                bucket.tokens == bucket.capacity,
                "hpbd.credits_returned", self.name,
                f"server {i} credits not fully returned",
                server=i, tokens=bucket.tokens, capacity=bucket.capacity,
            )
        if self.pool is not None:
            self.pool.audit_teardown()
