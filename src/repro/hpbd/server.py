"""The HPBD remote memory server (§4.2.1, §5).

"A RamDisk based user space program, which provides its own local memory
for paging store and push/pull pages from client using RDMA operations."

Key behaviours modelled:

* **Server-initiated RDMA** — the client cannot know RamDisk addresses,
  so for a swap-out (OP_WRITE) the server RDMA-*reads* the page out of
  the client's pool buffer, and for a swap-in (OP_READ) it RDMA-*writes*
  the page into it (Fig. 4).
* **RDMA/memcpy overlap** — multiple outstanding RDMA operations are
  allowed (a counted slot resource); each request is handled by its own
  process, so one request's RamDisk memcpy overlaps another's RDMA.
* **Reply ordering** — the completion acknowledgement is posted on the
  same RC queue pair right after the RDMA write, so channel ordering
  guarantees the data lands before the client sees the reply (exactly
  the trick the real driver uses).
* **Event-based idle** — the server polls its request CQ while busy and,
  after 200 µs of idle, arms a completion event and yields the CPU;
  the next request pays the event-notification cost to wake it.
"""

from __future__ import annotations

from ..ib import HCA, RDMAReadWR, RDMAWriteWR, RecvWR, SendWR
from ..kernel.task import CPUSet
from ..net.fabrics import IBParams, IB_DEFAULT
from ..net.link import Fabric
from ..simulator import Resource, SimulationError, Simulator, StatsRegistry
from ..units import MiB
from .pool import RegisteredPool
from .protocol import (
    CTRL_MSG_BYTES,
    OP_READ,
    OP_WRITE,
    PageReply,
    PageRequest,
    ProtocolError,
    STATUS_ERROR,
    STATUS_NACK,
    STATUS_OK,
)
from .ramdisk import RamDisk

__all__ = ["HPBDServer"]


class HPBDServer:
    """One memory server daemon on its own node."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        name: str,
        store_bytes: int,
        ib_params: IBParams = IB_DEFAULT,
        ncpus: int = 2,
        staging_pool_bytes: int = 4 * MiB,
        max_outstanding_rdma: int = 8,
        idle_sleep_usec: float = 200.0,
        poll_interval_usec: float = 5.0,
        credits_per_client: int = 16,
        stats: StatsRegistry | None = None,
        max_alloc_waiters: int = 32,
        resident_bytes: int | None = None,
        scheduler=None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.stats = stats if stats is not None else StatsRegistry()
        self.hca = HCA(sim, fabric, name, params=ib_params, stats=self.stats)
        self.pd = self.hca.alloc_pd()
        self.send_cq = self.hca.create_cq(f"{name}.scq")
        self.recv_cq = self.hca.create_cq(f"{name}.rcq")
        self.cpus = CPUSet(sim, ncpus, name=f"{name}.cpus")
        self.ramdisk = RamDisk(
            store_bytes, name=f"{name}.ramdisk", resident_bytes=resident_bytes
        )
        self.staging_pool_bytes = staging_pool_bytes
        self.idle_sleep_usec = idle_sleep_usec
        self.poll_interval_usec = poll_interval_usec
        self.credits_per_client = credits_per_client
        self.pool: RegisteredPool | None = None
        self._rdma_slots = Resource(
            sim, max_outstanding_rdma, name=f"{name}.rdma_slots"
        )
        self._qp_by_num: dict[int, object] = {}
        self._area_base: dict[int, int] = {}
        #: bound on processes parked in the staging-pool wait queue; one
        #: more would be NACKed instead of blocking (reliability §4.1: a
        #: loaded daemon must shed load, never wedge).
        self.max_alloc_waiters = max_alloc_waiters
        #: cluster QoS hook: a WeightedFairScheduler (or anything with
        #: ``push``/``pop``/``__len__``) reorders request handling per
        #: tenant; ``None`` keeps the paper's FIFO dispatch.
        self.scheduler = scheduler
        self._max_handlers = max_outstanding_rdma
        #: multi-tenancy (repro.cluster): tenant identity and served-byte
        #: accounting per connected client QP.
        self._tenant_by_qp: dict[int, str] = {}
        self._weight_by_qp: dict[int, float] = {}
        self.tenant_bytes: dict[str, int] = {}
        self._proc = None
        self.requests_served = 0
        self.busy_handlers = 0
        self.sleeps = 0
        #: fault-injection state (repro.faults): a crashed daemon keeps
        #: its process alive but silently drops requests and suppresses
        #: replies — what a dead peer looks like from the client.
        self.alive = True
        self.crashes = 0
        #: fail-slow state (repro.faults ServerSlow): memcpy cost scale
        #: and flat per-request in-handler stall while limping.
        self.slow_mult = 1.0
        self.slow_extra_usec = 0.0
        self.slowdowns = 0
        #: drop (and count) control messages that fail signature
        #: validation instead of raising — set by the fault injector
        #: when the plan corrupts messages on the wire.
        self.drop_bad_ctrl = False

    # -- lifecycle ---------------------------------------------------------

    def start(self):
        """Register the staging pool and launch the daemon; generator."""
        if self._proc is not None:
            raise SimulationError(f"{self.name} already started")
        mr = yield from self.hca.register_mr(self.pd, self.staging_pool_bytes)
        self.pool = RegisteredPool(
            self.sim,
            size=self.staging_pool_bytes,
            base_addr=mr.addr,
            rkey=mr.rkey,
            name=f"{self.name}.staging",
            stats=self.stats,
        )
        self._proc = self.sim.spawn(self._main(), name=f"{self.name}.daemon")

    def register_client(
        self,
        server_qp,
        area_base: int = 0,
        tenant: str | None = None,
        credits: int | None = None,
        weight: float = 1.0,
    ) -> None:
        """Adopt the server side of a freshly connected QP: pre-post the
        request receives that back the client's credits.

        ``area_base`` places this client's swap area inside the RamDisk
        — §5: the server "is able to serve multiple clients using
        different swap areas".  ``tenant``/``weight`` tag the QP for the
        cluster layer's per-tenant accounting and weighted-fair service;
        ``credits`` overrides the per-client water-mark (the cluster QoS
        layer partitions one credit pool across tenants).
        """
        if not (0 <= area_base < self.ramdisk.size):
            raise SimulationError(
                f"{self.name}: client area base {area_base} outside store"
            )
        if weight <= 0:
            raise SimulationError(
                f"{self.name}: bad tenant weight {weight}"
            )
        self._qp_by_num[server_qp.qp_num] = server_qp
        self._area_base[server_qp.qp_num] = area_base
        if tenant is not None:
            self._tenant_by_qp[server_qp.qp_num] = tenant
            self.tenant_bytes.setdefault(tenant, 0)
        self._weight_by_qp[server_qp.qp_num] = weight
        # Post several water-marks' worth of receives: client-side
        # timeouts return a credit before the original message is
        # consumed here, so retry bursts can transiently put more than
        # one water-mark of control messages in flight.
        water_mark = self.credits_per_client if credits is None else credits
        depth = min(4 * water_mark, server_qp.max_recv_wr)
        for _ in range(depth):
            server_qp.post_recv(RecvWR(capacity=CTRL_MSG_BYTES))

    def set_client_area_base(self, server_qp, area_base: int) -> None:
        """Relocate a registered client's swap area inside the store —
        background repair rebuilding a lost shard onto this server as a
        spare lands the area wherever the registry reserved it."""
        if server_qp.qp_num not in self._area_base:
            raise SimulationError(
                f"{self.name}: QP {server_qp.qp_num} is not a registered "
                f"client"
            )
        if not (0 <= area_base < self.ramdisk.size):
            raise SimulationError(
                f"{self.name}: client area base {area_base} outside store"
            )
        self._area_base[server_qp.qp_num] = area_base

    @property
    def started(self) -> bool:
        return self._proc is not None

    # -- fault-injection hooks (repro.faults) ------------------------------

    def crash(self, wipe: bool = True) -> None:
        """Kill the daemon mid-run: from now on every incoming request
        is dropped and every in-flight reply suppressed.  ``wipe``
        clears the RamDisk — the store was RAM, after all."""
        if not self.alive:
            return
        self.alive = False
        self.crashes += 1
        self.stats.counter(f"{self.name}.crashes").add()
        if wipe:
            self.ramdisk.wipe()

    def restart(self) -> None:
        """Bring the daemon back (the HCA and QPs survive — modelling a
        process restart on a warm node, not a reboot)."""
        self.alive = True

    def slow(self, service_mult: float = 4.0, extra_usec: float = 0.0) -> None:
        """Limp the daemon: scale every RamDisk memcpy cost by
        ``service_mult`` and stall each request ``extra_usec`` while it
        holds an RDMA slot (so queue depth creeps, like a real fail-slow
        node).  The fabric is untouched — contrast ``LinkDegrade``."""
        if service_mult < 1.0 or extra_usec < 0:
            raise SimulationError(
                f"{self.name}: bad slowdown ({service_mult}, {extra_usec})"
            )
        self.slow_mult = service_mult
        self.slow_extra_usec = extra_usec
        self.slowdowns += 1
        self.stats.counter(f"{self.name}.slowdowns").add()

    def restore_speed(self) -> None:
        """Lift a :meth:`slow` injection; in-flight handlers finish at
        whatever rate they already sampled."""
        self.slow_mult = 1.0
        self.slow_extra_usec = 0.0

    # -- daemon ---------------------------------------------------------------

    def _main(self):
        if self.pool is None:  # pragma: no cover - guarded by start()
            raise SimulationError(f"{self.name}: start() not called")
        sim = self.sim
        rcq = self.recv_cq
        last_active = sim.now
        while True:
            cqe = rcq.poll_one()
            if cqe is not None:
                last_active = sim.now
                self._dispatch(cqe)
                continue
            if (
                self.busy_handlers > 0
                or sim.now - last_active < self.idle_sleep_usec
            ):
                # Busy spin: cheap CQ polls while work is in flight or
                # within the 200 µs idle window.
                yield sim.timeout(self.poll_interval_usec)
                continue
            # Idle long enough: yield the CPU until a solicited event.
            self.sleeps += 1
            rcq.request_notify()
            cqe = rcq.poll_one()  # re-check: event may have raced the arm
            if cqe is not None:
                last_active = sim.now
                self._dispatch(cqe)
                continue
            yield rcq.wait_event()
            last_active = sim.now

    def _dispatch(self, cqe) -> None:
        """One drained request CQE: replenish the receive, vet, spawn."""
        req: PageRequest = cqe.payload
        qp = self._qp_by_num[cqe.qp_num]
        # Replenish the consumed receive before handling, so the
        # client's credit scheme stays tight.
        qp.post_recv(RecvWR(capacity=CTRL_MSG_BYTES))
        if not self.alive:
            # A crashed daemon's HCA still lands messages; nobody is
            # there to serve them.
            self.stats.counter(f"{self.name}.dropped_requests").add()
            return
        try:
            req.validate()
        except ProtocolError:
            if not self.drop_bad_ctrl:
                raise
            self.stats.counter(f"{self.name}.bad_requests").add()
            return
        if self.scheduler is not None:
            # Cluster QoS: park the request in the weighted-fair queue;
            # the pump admits it when a handler slot frees up, in
            # virtual-time order rather than arrival order.
            tenant = self._tenant_by_qp.get(qp.qp_num, "-")
            weight = self._weight_by_qp.get(qp.qp_num, 1.0)
            self.scheduler.push(
                tenant, weight, req.nbytes, (qp, req, self.sim.now)
            )
            self._pump_scheduler()
            return
        self.busy_handlers += 1
        self.sim.spawn(self._handle(qp, req), name=f"{self.name}.h{req.req_id}")

    def _pump_scheduler(self) -> None:
        """Admit queued requests while handler slots are free, in the
        scheduler's (weighted-fair) order."""
        sim = self.sim
        while self.busy_handlers < self._max_handlers:
            popped = self.scheduler.pop()
            if popped is None:
                return
            tenant, (qp, req, enq_at) = popped
            if sim.trace.enabled and sim.now > enq_at:
                sim.trace.complete(
                    self.name, "handlers", "qos_wait", "srv.qos",
                    enq_at, sim.now,
                    tenant=tenant, nbytes=req.nbytes,
                    **({} if req.blk_req_id is None
                       else {"req_id": req.blk_req_id}),
                )
            self.busy_handlers += 1
            sim.spawn(self._handle(qp, req), name=f"{self.name}.h{req.req_id}")

    def _post_reply(self, qp, reply: PageReply, blk_req_id) -> None:
        """Post an acknowledgement — unless the daemon crashed while the
        handler was in flight, in which case the client hears nothing."""
        if not self.alive:
            self.stats.counter(f"{self.name}.suppressed_replies").add()
            return
        qp.post_send(
            SendWR(
                nbytes=CTRL_MSG_BYTES,
                payload=reply,
                signaled=False,
                solicited=True,
                req_id=blk_req_id,
            )
        )

    def _drain_spill(self, ident: dict):
        """Charge any spill-disk latency the last RamDisk access accrued
        (residency-cap eviction / fault-in under overcommit); generator.
        Waiting — not CPU — so it must not go through ``cpus.run``."""
        spill = self.ramdisk.drain_spill_usec()
        if spill <= 0:
            return
        t0 = self.sim.now
        yield self.sim.timeout(spill)
        if self.sim.trace.enabled:
            self.sim.trace.complete(
                self.name, "handlers", "spill_io", "srv.spill",
                t0, self.sim.now, **ident,
            )

    def _handle(self, qp, req: PageRequest):
        """Serve one physical page request (own process per request)."""
        t0 = self.sim.now
        trace = self.sim.trace
        # Block-request identity for the critical-path analysis (absent
        # only for raw protocol-level tests that bypass the driver).
        ident = {} if req.blk_req_id is None else {"req_id": req.blk_req_id}
        try:
            # Each client's swap area sits at its own base in the store.
            offset = self._area_base.get(qp.qp_num, 0) + req.offset
            # Reliability (§4.1): a malformed extent must produce an
            # error acknowledgement, never a crashed daemon — "Failure
            # in page handling can adversely impact system stability".
            if offset + req.nbytes > self.ramdisk.size:
                self.stats.counter(f"{self.name}.errors").add()
                self._post_reply(
                    qp,
                    PageReply(req_id=req.req_id, status=STATUS_ERROR),
                    req.blk_req_id,
                )
                return
            # Staging-pool exhaustion sheds load with a typed NACK: a
            # request that cannot get a buffer (too big for the pool, or
            # the wait queue already at its bound) must never block
            # indefinitely — the client retries, re-routes, or falls
            # back to disk.
            if (
                req.nbytes > self.pool.size
                or self.pool.waiting >= self.max_alloc_waiters
            ):
                self.stats.counter(f"{self.name}.pool_exhausted").add()
                self._post_reply(
                    qp,
                    PageReply(req_id=req.req_id, status=STATUS_NACK),
                    req.blk_req_id,
                )
                return
            yield self._rdma_slots.acquire()
            try:
                if self.slow_extra_usec > 0.0:
                    # Injected fail-slow stall: burned while holding the
                    # RDMA slot, so a limping server's queue depth creeps.
                    t_slow = self.sim.now
                    yield self.sim.timeout(self.slow_extra_usec)
                    if trace.enabled:
                        trace.complete(
                            self.name, "handlers", "failslow_stall",
                            "srv.slow", t_slow, self.sim.now, **ident,
                        )
                buf = yield from self.pool.alloc(req.nbytes)
                if req.op == OP_WRITE:
                    # Swap-out: pull the page(s) out of the client pool,
                    # then copy into the RamDisk.
                    yield qp.post_send(
                        RDMAReadWR(
                            nbytes=req.nbytes,
                            remote_addr=req.buf_addr,
                            rkey=req.buf_rkey,
                            signaled=False,
                            req_id=req.blk_req_id,
                        )
                    )
                    cost = self.ramdisk.write(
                        offset, req.nbytes, token=req.data_token
                    ) * self.slow_mult
                    t_copy = self.sim.now
                    yield from self.cpus.run(cost)
                    if trace.enabled:
                        trace.complete(
                            self.name, "handlers", "ramdisk_write",
                            "srv.copy", t_copy, self.sim.now,
                            nbytes=req.nbytes, **ident,
                        )
                    yield from self._drain_spill(ident)
                    self.pool.free(buf)
                    self._post_reply(
                        qp,
                        PageReply(req_id=req.req_id, status=STATUS_OK),
                        req.blk_req_id,
                    )
                elif req.op == OP_READ:
                    # Swap-in: RamDisk -> staging, RDMA-write it into the
                    # client buffer, then the (ordered) reply.
                    token, cost = self.ramdisk.read(offset, req.nbytes)
                    cost *= self.slow_mult
                    t_copy = self.sim.now
                    yield from self.cpus.run(cost)
                    if trace.enabled:
                        trace.complete(
                            self.name, "handlers", "ramdisk_read",
                            "srv.copy", t_copy, self.sim.now,
                            nbytes=req.nbytes, **ident,
                        )
                    yield from self._drain_spill(ident)
                    rdma_done = qp.post_send(
                        RDMAWriteWR(
                            nbytes=req.nbytes,
                            remote_addr=req.buf_addr,
                            rkey=req.buf_rkey,
                            payload=token,
                            signaled=False,
                            req_id=req.blk_req_id,
                        )
                    )
                    self._post_reply(
                        qp,
                        PageReply(
                            req_id=req.req_id, status=STATUS_OK,
                            data_token=token,
                        ),
                        req.blk_req_id,
                    )
                    # The staging buffer must outlive the RDMA write.
                    yield rdma_done
                    self.pool.free(buf)
                else:  # pragma: no cover - protocol validates earlier
                    raise SimulationError(f"bad opcode {req.op!r}")
                self.requests_served += 1
                self.stats.counter(f"{self.name}.requests").add(req.nbytes)
                tenant = self._tenant_by_qp.get(qp.qp_num)
                if tenant is not None:
                    self.tenant_bytes[tenant] += req.nbytes
                    self.stats.counter(
                        f"{self.name}.tenant.{tenant}.bytes"
                    ).add(req.nbytes)
            finally:
                self._rdma_slots.release()
        finally:
            self.busy_handlers -= 1
            if self.scheduler is not None:
                self._pump_scheduler()
            if trace.enabled:
                trace.complete(
                    self.name, "handlers", "handle", "srv.handle",
                    t0, self.sim.now,
                    op="write" if req.op == OP_WRITE else "read",
                    nbytes=req.nbytes, **ident,
                )

    # -- teardown audit ------------------------------------------------------

    def audit_teardown(self) -> None:
        """Invariant monitors for an idle server (runner teardown)."""
        monitors = self.sim.monitors
        monitors.check(
            self.busy_handlers == 0,
            "server.handlers_drained", self.name,
            "request handlers still running at teardown",
            busy=self.busy_handlers,
        )
        monitors.check(
            self._rdma_slots.in_use == 0,
            "server.rdma_slots_released", self.name,
            "outstanding-RDMA slots still held at teardown",
            in_use=self._rdma_slots.in_use,
        )
        if self.scheduler is not None:
            monitors.check(
                len(self.scheduler) == 0,
                "server.scheduler_drained", self.name,
                "QoS scheduler still holds queued requests at teardown",
                queued=len(self.scheduler),
            )
        if self.pool is not None:
            self.pool.audit_teardown()
