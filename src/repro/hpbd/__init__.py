"""HPBD — the High Performance Block Device (the paper's contribution).

Client block driver + remote memory servers over simulated InfiniBand:
registration buffer pool, server-initiated RDMA, event-driven threads,
credit flow control, and multi-server blocking distribution.
"""

from .client import HPBDClient
from .cooperative import Advertisement, MemoryBroker, WeightedDistribution
from .pool import PoolBuffer, PoolError, RegisteredPool
from .protocol import (
    CTRL_MSG_BYTES,
    OP_READ,
    OP_WRITE,
    PageReply,
    PageRequest,
    ProtocolError,
    STATUS_ERROR,
    STATUS_NACK,
    STATUS_OK,
)
from .ramdisk import RamDisk, RamDiskError
from .server import HPBDServer
from .striping import (
    BlockingDistribution,
    Chunk,
    ChunkMapDistribution,
    Segment,
    StripedDistribution,
)

__all__ = [
    "HPBDClient",
    "MemoryBroker",
    "Advertisement",
    "WeightedDistribution",
    "HPBDServer",
    "RegisteredPool",
    "PoolBuffer",
    "PoolError",
    "RamDisk",
    "RamDiskError",
    "BlockingDistribution",
    "StripedDistribution",
    "ChunkMapDistribution",
    "Chunk",
    "Segment",
    "PageRequest",
    "PageReply",
    "ProtocolError",
    "OP_READ",
    "OP_WRITE",
    "STATUS_OK",
    "STATUS_ERROR",
    "STATUS_NACK",
    "CTRL_MSG_BYTES",
]
