"""Server-side RamDisk: the memory provider behind each HPBD server.

The paper's server is "a RamDisk based user space program" — pages are
stored in a file-system-exposed RAM region, which is why the *server*
initiates RDMA (the client cannot know RamDisk addresses, §4.2.1) and
why every transfer involves a server-side memcpy between the registered
staging buffer and the RamDisk.

The store keeps actual payload tokens per extent so protocol tests can
verify end-to-end integrity (what was swapped out comes back).
"""

from __future__ import annotations

from ..net.fabrics import MEMCPY
from ..simulator import SimulationError
from ..units import PAGE_SIZE

__all__ = ["RamDisk", "RamDiskError"]


class RamDiskError(SimulationError):
    """Out-of-bounds access or overlapping-extent corruption."""


class RamDisk:
    """A byte-addressed RAM store with memcpy-cost accounting.

    ``read``/``write`` return the CPU cost (µs) the caller must charge;
    they are split from the timing so the server can overlap its memcpy
    with outstanding RDMAs exactly where the paper does.
    """

    def __init__(self, size: int, name: str = "ramdisk") -> None:
        if size <= 0:
            raise ValueError(f"ramdisk size must be positive, got {size}")
        if size % PAGE_SIZE:
            raise ValueError(f"ramdisk size must be page-aligned, got {size}")
        self.size = size
        self.name = name
        #: page-granular store: page index -> (token, page_offset_in_write)
        self._pages: dict[int, tuple[object, int]] = {}
        self.bytes_written = 0
        self.bytes_read = 0

    def _check(self, offset: int, nbytes: int) -> range:
        if nbytes <= 0:
            raise RamDiskError(f"{self.name}: bad extent size {nbytes}")
        if offset < 0 or offset + nbytes > self.size:
            raise RamDiskError(
                f"{self.name}: [{offset}, {offset + nbytes}) outside "
                f"store of {self.size} bytes"
            )
        if offset % PAGE_SIZE or nbytes % PAGE_SIZE:
            # Swap traffic is always page-aligned; anything else is a
            # protocol bug upstream.
            raise RamDiskError(
                f"{self.name}: unaligned extent [{offset}, {offset + nbytes})"
            )
        return range(offset // PAGE_SIZE, (offset + nbytes) // PAGE_SIZE)

    def write(self, offset: int, nbytes: int, token: object = None) -> float:
        """Store ``token`` across the extent's pages; returns the memcpy
        CPU cost.  Overwrites (including partial overlaps of stale
        extents from freed swap slots) are normal."""
        pages = self._check(offset, nbytes)
        for i, page in enumerate(pages):
            self._pages[page] = (token, i)
        self.bytes_written += nbytes
        return MEMCPY.cost(nbytes)

    def read(self, offset: int, nbytes: int) -> tuple[object, float]:
        """Return ``(per_page_tokens, memcpy_cost)`` for the extent.

        Pages never written read back as ``None`` (zero pages) —
        legitimate when swap read-ahead pulls a never-used slot.
        """
        pages = self._check(offset, nbytes)
        self.bytes_read += nbytes
        tokens = tuple(self._pages.get(p) for p in pages)
        return tokens, MEMCPY.cost(nbytes)

    def wipe(self) -> None:
        """Drop every stored page (a crashed server loses its RAM).

        The store geometry survives — after a restart the server serves
        the same area, but everything reads back as never-written
        (``None`` tokens), i.e. zero pages.
        """
        self._pages.clear()

    @property
    def pages_stored(self) -> int:
        return len(self._pages)
