"""Server-side RamDisk: the memory provider behind each HPBD server.

The paper's server is "a RamDisk based user space program" — pages are
stored in a file-system-exposed RAM region, which is why the *server*
initiates RDMA (the client cannot know RamDisk addresses, §4.2.1) and
why every transfer involves a server-side memcpy between the registered
staging buffer and the RamDisk.

The store keeps actual payload tokens per extent so protocol tests can
verify end-to-end integrity (what was swapped out comes back).
"""

from __future__ import annotations

from ..net.fabrics import MEMCPY
from ..simulator import SimulationError
from ..units import PAGE_SIZE

__all__ = ["RamDisk", "RamDiskError", "SPILL_BYTES_PER_USEC"]

#: Server-side spill device throughput (bytes/µs).  Models the testbed's
#: commodity IDE disk class (~50 MB/s streaming), so spilling one 4 KiB
#: page costs ~82 µs — two orders of magnitude above the RDMA path,
#: which is exactly why overcommitted tenants feel eviction.
SPILL_BYTES_PER_USEC = 50.0


class RamDiskError(SimulationError):
    """Out-of-bounds access or overlapping-extent corruption."""


class RamDisk:
    """A byte-addressed RAM store with memcpy-cost accounting.

    ``read``/``write`` return the CPU cost (µs) the caller must charge;
    they are split from the timing so the server can overlap its memcpy
    with outstanding RDMAs exactly where the paper does.
    """

    def __init__(
        self,
        size: int,
        name: str = "ramdisk",
        resident_bytes: int | None = None,
    ) -> None:
        if size <= 0:
            raise ValueError(f"ramdisk size must be positive, got {size}")
        if size % PAGE_SIZE:
            raise ValueError(f"ramdisk size must be page-aligned, got {size}")
        if resident_bytes is not None:
            if resident_bytes <= 0 or resident_bytes % PAGE_SIZE:
                raise ValueError(
                    f"residency cap must be positive and page-aligned, "
                    f"got {resident_bytes}"
                )
        self.size = size
        self.name = name
        #: page-granular store: page index -> (token, page_offset_in_write)
        self._pages: dict[int, tuple[object, int]] = {}
        #: pages evicted to the local spill disk under an overcommitted
        #: residency cap (cluster admission control, overcommit > 1).
        self._spilled: dict[int, tuple[object, int]] = {}
        self._max_resident = (
            None if resident_bytes is None else resident_bytes // PAGE_SIZE
        )
        self.bytes_written = 0
        self.bytes_read = 0
        self.evictions = 0
        self.spill_bytes_written = 0
        self.spill_bytes_read = 0
        #: accumulated spill-disk latency the *server* owes; drained via
        #: :meth:`drain_spill_usec` and charged as simulated wait time by
        #: the daemon (the disk is not a CPU cost, so it must not go
        #: through ``cpus.run``).
        self.pending_spill_usec = 0.0

    def _check(self, offset: int, nbytes: int) -> range:
        if nbytes <= 0:
            raise RamDiskError(f"{self.name}: bad extent size {nbytes}")
        if offset < 0 or offset + nbytes > self.size:
            raise RamDiskError(
                f"{self.name}: [{offset}, {offset + nbytes}) outside "
                f"store of {self.size} bytes"
            )
        if offset % PAGE_SIZE or nbytes % PAGE_SIZE:
            # Swap traffic is always page-aligned; anything else is a
            # protocol bug upstream.
            raise RamDiskError(
                f"{self.name}: unaligned extent [{offset}, {offset + nbytes})"
            )
        return range(offset // PAGE_SIZE, (offset + nbytes) // PAGE_SIZE)

    def _insert_resident(self, page: int, entry: tuple[object, int]) -> None:
        """Insert (or refresh) a resident page, evicting FIFO-oldest
        resident pages to the spill store while over the cap."""
        if page in self._pages:
            del self._pages[page]  # re-insert to refresh FIFO position
        self._pages[page] = entry
        if self._max_resident is None:
            return
        while len(self._pages) > self._max_resident:
            victim = next(iter(self._pages))
            self._spilled[victim] = self._pages.pop(victim)
            self.evictions += 1
            self.spill_bytes_written += PAGE_SIZE
            self.pending_spill_usec += PAGE_SIZE / SPILL_BYTES_PER_USEC

    def write(self, offset: int, nbytes: int, token: object = None) -> float:
        """Store ``token`` across the extent's pages; returns the memcpy
        CPU cost.  Overwrites (including partial overlaps of stale
        extents from freed swap slots) are normal."""
        pages = self._check(offset, nbytes)
        for i, page in enumerate(pages):
            self._spilled.pop(page, None)  # overwrite supersedes old spill
            self._insert_resident(page, (token, i))
        self.bytes_written += nbytes
        return MEMCPY.cost(nbytes)

    def read(self, offset: int, nbytes: int) -> tuple[object, float]:
        """Return ``(per_page_tokens, memcpy_cost)`` for the extent.

        Pages never written read back as ``None`` (zero pages) —
        legitimate when swap read-ahead pulls a never-used slot.
        Spilled pages fault back in from the spill disk (charged to
        :attr:`pending_spill_usec`) and become resident again.
        """
        pages = self._check(offset, nbytes)
        self.bytes_read += nbytes
        tokens = []
        for p in pages:
            if p in self._spilled:
                entry = self._spilled.pop(p)
                self.spill_bytes_read += PAGE_SIZE
                self.pending_spill_usec += PAGE_SIZE / SPILL_BYTES_PER_USEC
                self._insert_resident(p, entry)
                tokens.append(entry)
            else:
                tokens.append(self._pages.get(p))
        return tuple(tokens), MEMCPY.cost(nbytes)

    def peek(self, offset: int, nbytes: int) -> tuple:
        """Control-plane read: the extent's per-page entries with no
        cost accounting and no spill/residency side effects.  The
        repair manager reconstructs lost shards from surviving stores
        this way — its fabric and CPU costs are modelled separately
        (throttled bulk copies + re-encode time), not as data-path
        RamDisk traffic.
        """
        pages = self._check(offset, nbytes)
        return tuple(
            self._pages.get(p, self._spilled.get(p)) for p in pages
        )

    def restore(self, offset: int, entries: tuple) -> None:
        """Control-plane write: install exact per-page ``(token, idx)``
        entries (repair rebuilding a lost shard).  ``None`` entries are
        never-written pages and stay absent; unlike :meth:`write`, the
        stored page index comes from the entry, so a rebuilt shard is
        byte-identical to the lost one."""
        pages = self._check(offset, len(entries) * PAGE_SIZE)
        for page, entry in zip(pages, entries):
            self._spilled.pop(page, None)
            if entry is None:
                self._pages.pop(page, None)
                continue
            self._insert_resident(page, entry)

    def drain_spill_usec(self) -> float:
        """Return and reset the accumulated spill-disk latency owed."""
        usec, self.pending_spill_usec = self.pending_spill_usec, 0.0
        return usec

    def wipe(self) -> None:
        """Drop every stored page (a crashed server loses its RAM).

        The store geometry survives — after a restart the server serves
        the same area, but everything reads back as never-written
        (``None`` tokens), i.e. zero pages.  The spill store dies with
        the daemon too (it is process-local scratch, not durable swap).
        """
        self._pages.clear()
        self._spilled.clear()
        self.pending_spill_usec = 0.0

    @property
    def pages_stored(self) -> int:
        return len(self._pages) + len(self._spilled)

    @property
    def pages_resident(self) -> int:
        return len(self._pages)

    @property
    def pages_spilled(self) -> int:
        return len(self._spilled)
