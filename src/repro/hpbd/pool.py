"""The registration buffer pool (§4.2.2).

A pre-registered memory area (default 1 MiB, set at device load time)
from which data-message buffers are carved by a **first-fit** allocator.
Freed buffers **merge with free neighbours** so page-sized and 128 KiB
requests keep finding contiguous space ("This algorithm ensures
contiguous buffer allocation for page requests.  Its simplicity incurs
little overhead").

Allocation failure must never fail a swap request, so callers **wait in
FIFO order** on an allocation wait queue; every deallocation re-examines
the queue ("Deallocation of data buffers will wake up any threads that
is in the queue").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..simulator import Event, SimulationError, Simulator, StatsRegistry
from ..units import MiB

__all__ = ["PoolBuffer", "RegisteredPool", "PoolError"]


class PoolError(SimulationError):
    """Pool misuse: oversized request, double free, foreign buffer."""


@dataclass
class PoolBuffer:
    """A carved-out slice of the registered pool."""

    offset: int
    nbytes: int

    @property
    def end(self) -> int:
        return self.offset + self.nbytes


class RegisteredPool:
    """First-fit allocator with merge-on-free over one registered region.

    ``base_addr``/``rkey`` describe the underlying memory region so
    buffers can be advertised to the remote side for RDMA
    (``buffer_addr`` = ``base_addr + offset``).
    """

    def __init__(
        self,
        sim: Simulator,
        size: int = MiB,
        base_addr: int = 0,
        rkey: int = 0,
        name: str = "pool",
        stats: StatsRegistry | None = None,
    ) -> None:
        if size <= 0:
            raise ValueError(f"pool size must be positive, got {size}")
        self.sim = sim
        self.size = size
        self.base_addr = base_addr
        self.rkey = rkey
        self.name = name
        self.stats = stats if stats is not None else StatsRegistry()
        #: free extents as (offset, nbytes), ascending offset, disjoint,
        #: never adjacent (merge invariant).
        self._free: list[tuple[int, int]] = [(0, size)]
        self._allocated: dict[int, int] = {}  # offset -> nbytes
        self._waiters: deque[tuple[Event, int]] = deque()
        self.alloc_count = 0
        self.stall_count = 0
        self._t_stall = self.stats.tally(f"{name}.alloc_stall_usec")
        self._t_held = self.stats.tally(f"{name}.buffer_held_usec")
        self._hold_start: dict[int, float] = {}

    # -- queries -----------------------------------------------------------

    @property
    def free_bytes(self) -> int:
        return sum(n for _o, n in self._free)

    @property
    def allocated_bytes(self) -> int:
        return sum(self._allocated.values())

    @property
    def fragments(self) -> int:
        return len(self._free)

    @property
    def largest_free(self) -> int:
        return max((n for _o, n in self._free), default=0)

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def buffer_addr(self, buf: PoolBuffer) -> int:
        return self.base_addr + buf.offset

    # -- allocation ----------------------------------------------------------

    def try_alloc(self, nbytes: int) -> PoolBuffer | None:
        """Non-blocking first-fit; None if nothing fits (or waiters exist
        — FIFO, no barging past a queued swap request)."""
        if nbytes <= 0:
            raise PoolError(f"bad buffer size {nbytes}")
        if nbytes > self.size:
            raise PoolError(
                f"{self.name}: request {nbytes} exceeds pool size {self.size}"
            )
        if self._waiters:
            return None
        return self._carve(nbytes)

    def _carve(self, nbytes: int) -> PoolBuffer | None:
        for i, (off, length) in enumerate(self._free):
            if length >= nbytes:
                if length == nbytes:
                    del self._free[i]
                else:
                    self._free[i] = (off + nbytes, length - nbytes)
                self._allocated[off] = nbytes
                self._hold_start[off] = self.sim.now
                self.alloc_count += 1
                return PoolBuffer(offset=off, nbytes=nbytes)
        return None

    def alloc(self, nbytes: int):
        """Blocking first-fit allocation; generator — use ``yield from``.

        Returns a :class:`PoolBuffer`.  Waits FIFO when the pool is
        exhausted or fragmented below ``nbytes``.
        """
        t0 = self.sim.now
        buf = self.try_alloc(nbytes)
        if buf is None:
            self.stall_count += 1
            evt = Event(self.sim, name=f"{self.name}.wait({nbytes})")
            self._waiters.append((evt, nbytes))
            buf = yield evt
        self._t_stall.record(self.sim.now - t0)
        return buf

    # -- release ---------------------------------------------------------

    def free(self, buf: PoolBuffer) -> None:
        """Return a buffer; merges with free neighbours, then serves the
        wait queue head(s) in order."""
        nbytes = self._allocated.pop(buf.offset, None)
        if nbytes is None:
            raise PoolError(f"{self.name}: free of unallocated offset {buf.offset}")
        if nbytes != buf.nbytes:
            raise PoolError(
                f"{self.name}: size mismatch at {buf.offset}: "
                f"{buf.nbytes} != {nbytes}"
            )
        self._t_held.record(self.sim.now - self._hold_start.pop(buf.offset))
        self._insert_merged(buf.offset, nbytes)
        # Conservation monitor: every free must restore the ledger; the
        # free list is short (merge invariant) so the sum is cheap.
        self.sim.monitors.check(
            self.free_bytes + self.allocated_bytes == self.size,
            "pool.conservation", self.name,
            "registered bytes not conserved after free",
            free=self.free_bytes, allocated=self.allocated_bytes,
            size=self.size,
        )
        # FIFO wakeups: serve from the head while it fits.
        while self._waiters:
            evt, want = self._waiters[0]
            got = self._carve(want)
            if got is None:
                break
            self._waiters.popleft()
            evt.succeed(got)

    def _insert_merged(self, off: int, nbytes: int) -> None:
        """Insert a free extent, coalescing with both neighbours."""
        free = self._free
        lo, hi = 0, len(free)
        while lo < hi:
            mid = (lo + hi) // 2
            if free[mid][0] < off:
                lo = mid + 1
            else:
                hi = mid
        i = lo
        end = off + nbytes
        # Overlap would mean a double free slipped through bookkeeping.
        if i > 0 and free[i - 1][0] + free[i - 1][1] > off:
            raise PoolError(f"{self.name}: free-extent overlap at {off}")
        if i < len(free) and end > free[i][0]:
            raise PoolError(f"{self.name}: free-extent overlap at {off}")
        merge_prev = i > 0 and free[i - 1][0] + free[i - 1][1] == off
        merge_next = i < len(free) and free[i][0] == end
        if merge_prev and merge_next:
            free[i - 1] = (free[i - 1][0], free[i - 1][1] + nbytes + free[i][1])
            del free[i]
        elif merge_prev:
            free[i - 1] = (free[i - 1][0], free[i - 1][1] + nbytes)
        elif merge_next:
            free[i] = (off, nbytes + free[i][1])
        else:
            free.insert(i, (off, nbytes))

    def check_invariants(self) -> None:
        """Free extents ascending, disjoint, non-adjacent; ledger adds up."""
        prev_end = None
        for off, n in self._free:
            if n <= 0:
                raise PoolError(f"{self.name}: empty free extent at {off}")
            if prev_end is not None and off <= prev_end:
                raise PoolError(
                    f"{self.name}: free list unsorted/adjacent at {off}"
                )
            prev_end = off + n
        if self.free_bytes + self.allocated_bytes != self.size:
            self.sim.monitors.violation(
                "pool.conservation", self.name,
                "registered-byte ledger broken",
                free=self.free_bytes, allocated=self.allocated_bytes,
                size=self.size,
            )
            raise PoolError(
                f"{self.name}: ledger broken "
                f"{self.free_bytes}+{self.allocated_bytes} != {self.size}"
            )

    def audit_teardown(self) -> None:
        """Invariant monitors after quiesce: no leaked buffers, nobody
        left waiting, ledger intact."""
        monitors = self.sim.monitors
        monitors.check(
            self.allocated_bytes == 0,
            "pool.leak", self.name,
            "registered buffers still allocated at teardown",
            allocated=self.allocated_bytes, buffers=len(self._allocated),
        )
        monitors.check(
            not self._waiters,
            "pool.waiters", self.name,
            "allocation waiters still queued at teardown",
            waiting=len(self._waiters),
        )
        monitors.check(
            self.free_bytes + self.allocated_bytes == self.size,
            "pool.conservation", self.name,
            "registered-byte ledger broken at teardown",
            free=self.free_bytes, allocated=self.allocated_bytes,
            size=self.size,
        )
