"""Multi-server layout: the non-striped *blocking* distribution (§4.2.5).

The paper rejects striping (the 128 KiB request bound and the high IB
bandwidth make it not worth the extra memcpy/multiplexing) and instead
"distribute[s] the swap area across the servers in a blocking pattern":
server *i* owns the contiguous byte range ``[i*chunk, (i+1)*chunk)``.

A block request can still straddle a chunk boundary, in which case it is
split into *physical requests*, one per server — §5: "A single request
in the queue may represent multiple physical requests to different
servers depending on the address range and size of the request."
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

__all__ = [
    "Segment",
    "Chunk",
    "BlockingDistribution",
    "StripedDistribution",
    "ChunkMapDistribution",
    "group_chunk_maps",
]


@dataclass(frozen=True)
class Segment:
    """One server's share of a byte extent."""

    server: int
    server_offset: int  # bytes into the server's own store
    nbytes: int


@dataclass(frozen=True)
class Chunk:
    """One contiguous device extent placed on one server.

    ``server_offset`` is relative to the *client's area* on that server
    (the server relocates it by the registered area base), exactly like
    :class:`Segment`.  A chunk map is what a cluster placement policy
    hands the driver.
    """

    start: int  # device byte offset
    nbytes: int
    server: int
    server_offset: int

    @property
    def end(self) -> int:
        return self.start + self.nbytes


class StripedDistribution:
    """Round-robin striping — the alternative §4.2.5 *rejects*.

    Kept for the ablation benchmark: with stripes smaller than a block
    request, every request splits into one physical request per stripe
    touched, multiplying control messages and per-request overhead —
    which is exactly why the paper chose the blocking pattern under the
    128 KiB request bound.
    """

    def __init__(self, total_bytes: int, nservers: int, stripe_bytes: int) -> None:
        if nservers < 1:
            raise ValueError(f"need at least one server, got {nservers}")
        if stripe_bytes < 1:
            raise ValueError(f"bad stripe size {stripe_bytes}")
        if total_bytes % (nservers * stripe_bytes):
            raise ValueError(
                f"total {total_bytes} not divisible by {nservers} servers "
                f"x {stripe_bytes} stripe"
            )
        self.total_bytes = total_bytes
        self.nservers = nservers
        self.stripe_bytes = stripe_bytes
        self.chunk_bytes = total_bytes // nservers  # per-server store size

    def share_of(self, server: int) -> int:
        """Bytes of the device stored by ``server``."""
        if not (0 <= server < self.nservers):
            raise ValueError(f"no server {server}")
        return self.chunk_bytes

    def locate(self, offset: int) -> tuple[int, int]:
        if not (0 <= offset < self.total_bytes):
            raise ValueError(f"offset {offset} outside device")
        stripe = offset // self.stripe_bytes
        server = stripe % self.nservers
        row = stripe // self.nservers
        return server, row * self.stripe_bytes + offset % self.stripe_bytes

    def split(self, offset: int, nbytes: int) -> list["Segment"]:
        if nbytes <= 0:
            raise ValueError(f"bad extent size {nbytes}")
        if offset < 0 or offset + nbytes > self.total_bytes:
            raise ValueError("extent outside device")
        out: list[Segment] = []
        pos = offset
        remaining = nbytes
        while remaining > 0:
            server, soff = self.locate(pos)
            in_stripe = self.stripe_bytes - (pos % self.stripe_bytes)
            take = min(remaining, in_stripe)
            # Coalesce with the previous segment when contiguous on the
            # same server (happens for stripe-aligned multi-row spans).
            if (
                out
                and out[-1].server == server
                and out[-1].server_offset + out[-1].nbytes == soff
            ):
                out[-1] = Segment(server, out[-1].server_offset,
                                  out[-1].nbytes + take)
            else:
                out.append(Segment(server, soff, take))
            pos += take
            remaining -= take
        return out


class BlockingDistribution:
    """Contiguous-chunk layout of ``total_bytes`` over ``nservers``."""

    def __init__(self, total_bytes: int, nservers: int) -> None:
        if nservers < 1:
            raise ValueError(f"need at least one server, got {nservers}")
        if total_bytes < nservers:
            raise ValueError(
                f"cannot distribute {total_bytes} bytes over {nservers} servers"
            )
        if total_bytes % nservers:
            raise ValueError(
                f"total size {total_bytes} not divisible by {nservers} servers"
            )
        self.total_bytes = total_bytes
        self.nservers = nservers
        self.chunk_bytes = total_bytes // nservers

    def share_of(self, server: int) -> int:
        """Bytes of the device stored by ``server``."""
        if not (0 <= server < self.nservers):
            raise ValueError(f"no server {server}")
        return self.chunk_bytes

    def locate(self, offset: int) -> tuple[int, int]:
        """Map a device byte offset to ``(server, server_offset)``."""
        if not (0 <= offset < self.total_bytes):
            raise ValueError(f"offset {offset} outside device of {self.total_bytes}")
        return offset // self.chunk_bytes, offset % self.chunk_bytes

    def absolute_offset(self, seg: Segment) -> int:
        """Device byte offset of a segment (inverse of :meth:`locate`).

        Only the blocking layout keeps segments contiguous in device
        space, which is what lets the disk-fallback degraded mode remap
        a segment onto the local swap disk 1:1.
        """
        if not (0 <= seg.server < self.nservers):
            raise ValueError(f"no server {seg.server}")
        return seg.server * self.chunk_bytes + seg.server_offset

    def split(self, offset: int, nbytes: int) -> list[Segment]:
        """Split ``[offset, offset+nbytes)`` into per-server segments."""
        if nbytes <= 0:
            raise ValueError(f"bad extent size {nbytes}")
        if offset < 0 or offset + nbytes > self.total_bytes:
            raise ValueError(
                f"extent [{offset}, {offset + nbytes}) outside device of "
                f"{self.total_bytes} bytes"
            )
        out: list[Segment] = []
        pos = offset
        remaining = nbytes
        while remaining > 0:
            server, soff = self.locate(pos)
            take = min(remaining, self.chunk_bytes - soff)
            out.append(Segment(server=server, server_offset=soff, nbytes=take))
            pos += take
            remaining -= take
        return out


class ChunkMapDistribution:
    """An explicit chunk map: arbitrary device extents on arbitrary servers.

    The cluster placement layer (:mod:`repro.cluster.placement`) produces
    these — the paper's blocking layout generalized so a shared server
    fleet can host differently-sized, differently-placed tenant areas
    (least-loaded bin-packing, consistent-hash sharding).  The chunks
    must cover ``[0, total_bytes)`` exactly, in device order, and each
    server's chunks must be disjoint in its store space.

    ``parity_chunks`` are the redundancy layer's extra copies: they do
    not map device offsets (``locate``/``split`` never return them) but
    they occupy server store space, so they participate in the per-server
    overlap validation and in store sizing (:meth:`parity_share_of`).
    For an ``rs(k,m)`` stripe group a parity chunk's ``start`` is the
    stripe *row* range it covers (the same store-offset space as the
    data shards); for ``nway(r)`` replica chunks ``start`` is the device
    extent the copy protects.
    """

    def __init__(
        self,
        total_bytes: int,
        nservers: int,
        chunks: list[Chunk],
        parity_chunks: list[Chunk] | None = None,
    ) -> None:
        if nservers < 1:
            raise ValueError(f"need at least one server, got {nservers}")
        if not chunks:
            raise ValueError("chunk map is empty")
        pos = 0
        per_server: dict[int, list[tuple[int, int]]] = {}
        for c in chunks:
            if c.start != pos:
                raise ValueError(
                    f"chunk map gap/overlap at device offset {pos} "
                    f"(next chunk starts at {c.start})"
                )
            if c.nbytes <= 0:
                raise ValueError(f"empty chunk at {c.start}")
            if not (0 <= c.server < nservers):
                raise ValueError(f"chunk at {c.start} names server {c.server}")
            per_server.setdefault(c.server, []).append(
                (c.server_offset, c.nbytes)
            )
            pos = c.end
        if pos != total_bytes:
            raise ValueError(
                f"chunk map covers {pos} bytes, device is {total_bytes}"
            )
        parity_share: dict[int, int] = {}
        for c in parity_chunks or []:
            if c.nbytes <= 0:
                raise ValueError(f"empty parity chunk at {c.start}")
            if not (0 <= c.server < nservers):
                raise ValueError(
                    f"parity chunk at {c.start} names server {c.server}"
                )
            per_server.setdefault(c.server, []).append(
                (c.server_offset, c.nbytes)
            )
            parity_share[c.server] = parity_share.get(c.server, 0) + c.nbytes
        for server, extents in per_server.items():
            extents.sort()
            for (o1, n1), (o2, _n2) in zip(extents, extents[1:]):
                if o1 + n1 > o2:
                    raise ValueError(
                        f"server {server} store extents overlap at {o2}"
                    )
        self.total_bytes = total_bytes
        self.nservers = nservers
        self.chunks = list(chunks)
        self.parity_chunks = list(parity_chunks or [])
        self._starts = [c.start for c in self.chunks]
        self._share = {
            server: sum(n for _o, n in extents)
            for server, extents in per_server.items()
        }
        self._parity_share = parity_share
        for server, extra in parity_share.items():
            # _share above counted parity extents too (they share the
            # overlap validation); split the two views back apart.
            self._share[server] -= extra
            if not self._share[server]:
                del self._share[server]

    def share_of(self, server: int) -> int:
        """Data bytes of the device stored by ``server`` (0 if unused)."""
        if not (0 <= server < self.nservers):
            raise ValueError(f"no server {server}")
        return self._share.get(server, 0)

    def parity_share_of(self, server: int) -> int:
        """Redundancy bytes (parity / replica copies) on ``server``."""
        if not (0 <= server < self.nservers):
            raise ValueError(f"no server {server}")
        return self._parity_share.get(server, 0)

    @property
    def servers_used(self) -> list[int]:
        return sorted(set(self._share) | set(self._parity_share))

    def remap_server(self, old: int, new: int) -> None:
        """Background repair rebuilt ``old``'s extents onto ``new``:
        rewrite every chunk (data and parity) that named the lost
        server.  Store offsets are preserved — the rebuilt area uses
        the same compact layout behind the spare's own area base."""
        if not (0 <= new < self.nservers):
            raise ValueError(f"no server {new}")
        if new in self._share or new in self._parity_share:
            raise ValueError(
                f"server {new} already holds extents of this map"
            )
        self.chunks = [
            Chunk(c.start, c.nbytes, new, c.server_offset)
            if c.server == old
            else c
            for c in self.chunks
        ]
        self.parity_chunks = [
            Chunk(c.start, c.nbytes, new, c.server_offset)
            if c.server == old
            else c
            for c in self.parity_chunks
        ]
        if old in self._share:
            self._share[new] = self._share.pop(old)
        if old in self._parity_share:
            self._parity_share[new] = self._parity_share.pop(old)

    def _chunk_at(self, offset: int) -> Chunk:
        return self.chunks[bisect.bisect_right(self._starts, offset) - 1]

    def locate(self, offset: int) -> tuple[int, int]:
        """Map a device byte offset to ``(server, server_offset)``."""
        if not (0 <= offset < self.total_bytes):
            raise ValueError(f"offset {offset} outside device of {self.total_bytes}")
        c = self._chunk_at(offset)
        return c.server, c.server_offset + (offset - c.start)

    def absolute_offset(self, seg: Segment) -> int:
        """Device byte offset of a segment (inverse of :meth:`locate`).

        Split segments never cross a chunk boundary, so each maps back
        into exactly one chunk — which keeps the disk-fallback degraded
        mode working under any placement policy.
        """
        for c in self.chunks:
            if (
                c.server == seg.server
                and c.server_offset
                <= seg.server_offset
                < c.server_offset + c.nbytes
            ):
                return c.start + (seg.server_offset - c.server_offset)
        raise ValueError(f"segment {seg} not in chunk map")

    def split(self, offset: int, nbytes: int) -> list[Segment]:
        """Split ``[offset, offset+nbytes)`` into per-chunk segments,
        coalescing neighbours that are contiguous on the same server."""
        if nbytes <= 0:
            raise ValueError(f"bad extent size {nbytes}")
        if offset < 0 or offset + nbytes > self.total_bytes:
            raise ValueError(
                f"extent [{offset}, {offset + nbytes}) outside device of "
                f"{self.total_bytes} bytes"
            )
        out: list[Segment] = []
        pos = offset
        remaining = nbytes
        while remaining > 0:
            c = self._chunk_at(pos)
            soff = c.server_offset + (pos - c.start)
            take = min(remaining, c.end - pos)
            if (
                out
                and out[-1].server == c.server
                and out[-1].server_offset + out[-1].nbytes == soff
            ):
                out[-1] = Segment(
                    c.server, out[-1].server_offset, out[-1].nbytes + take
                )
            else:
                out.append(Segment(c.server, soff, take))
            pos += take
            remaining -= take
        return out


def group_chunk_maps(group, total_bytes: int) -> tuple[list[Chunk], list[Chunk]]:
    """Data/parity chunk maps for a redundancy ``ShardGroup``.

    The single source of layout truth shared by the cluster placement
    planner and a standalone driver: rs(k,m) stripes the device over the
    first k members (one shard each, parity members mirror the same row
    space), nway(r) lays a blocking ring with copy j of member i's chunk
    on member (i+j) at store offset ``j * share``.
    """
    pol = group.policy
    share = group.share_bytes
    if pol.kind == "rs":
        if share * pol.k != total_bytes:
            raise ValueError(
                f"rs({pol.k},{pol.m}) shards of {share} B do not cover "
                f"a {total_bytes} B device"
            )
        data = [
            Chunk(i * share, share, group.servers[i], 0)
            for i in range(pol.k)
        ]
        parity = [Chunk(0, share, s, 0) for s in group.parity_servers]
        return data, parity
    if pol.kind == "nway":
        g = len(group.servers)
        if share * g != total_bytes:
            raise ValueError(
                f"nway ring chunks of {share} B do not cover "
                f"a {total_bytes} B device"
            )
        data = [
            Chunk(i * share, share, group.servers[i], 0) for i in range(g)
        ]
        parity = [
            Chunk(i * share, share, group.servers[(i + j) % g], j * share)
            for j in range(1, pol.m + 1)
            for i in range(g)
        ]
        return data, parity
    raise ValueError(f"no chunk maps for policy kind {pol.kind!r}")
