"""Cooperative cluster-wide idle memory (the paper's §7 future work).

"In our future work, we plan to ... enable HPBD to utilize cluster wise
idle memory in a dynamic and cooperative manner."

This module implements the natural design on top of the existing pieces:

* every node in the cluster runs a tiny **advertisement agent** that
  publishes how much memory it could lend (its free memory minus a
  self-reserve);
* a :class:`MemoryBroker` collects advertisements and, when a client
  wants ``total_bytes`` of remote swap, **selects the servers with the
  most idle memory** (the memory-ushering idea the paper cites from
  MOSIX [2]) and sizes each server's share to what it advertised —
  chunks are therefore *unequal*, unlike the static blocking layout;
* the resulting :class:`WeightedDistribution` maps device offsets to
  (server, offset) with contiguous per-server extents, preserving the
  paper's non-striped blocking property.

Lending is capacity-reserving: a server that lends memory shrinks its
advertisement so later clients see the truth.  Fully dynamic *revocation*
(a lender wanting its memory back mid-run) would need page migration
between servers — out of scope here as it was for the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simulator import SimulationError, Simulator
from ..units import MiB, PAGE_SIZE
from .striping import Segment

__all__ = ["Advertisement", "MemoryBroker", "WeightedDistribution"]


@dataclass
class Advertisement:
    """One node's published lendable memory."""

    node: str
    idle_bytes: int
    updated_at: float

    def __post_init__(self) -> None:
        if self.idle_bytes < 0:
            raise ValueError(f"negative idle memory for {self.node}")


class WeightedDistribution:
    """Blocking layout with per-server chunk sizes.

    ``shares`` maps server index → bytes; server *i*'s extent starts at
    the running sum of earlier shares.  Interface-compatible with
    :class:`~repro.hpbd.striping.BlockingDistribution` (``locate`` /
    ``split`` / ``chunk_bytes`` is replaced by per-server ``share_of``).
    """

    def __init__(self, shares: list[int]) -> None:
        if not shares:
            raise ValueError("need at least one share")
        if any(s <= 0 for s in shares):
            raise ValueError(f"shares must be positive: {shares}")
        if any(s % PAGE_SIZE for s in shares):
            raise ValueError("shares must be page-aligned")
        self.shares = list(shares)
        self.nservers = len(shares)
        self.total_bytes = sum(shares)
        self._starts = [0]
        for s in shares[:-1]:
            self._starts.append(self._starts[-1] + s)

    def share_of(self, server: int) -> int:
        return self.shares[server]

    def locate(self, offset: int) -> tuple[int, int]:
        if not (0 <= offset < self.total_bytes):
            raise ValueError(f"offset {offset} outside device")
        # Linear scan is fine: nservers <= 16 in every experiment.
        for i in range(self.nservers - 1, -1, -1):
            if offset >= self._starts[i]:
                return i, offset - self._starts[i]
        raise AssertionError("unreachable")

    def split(self, offset: int, nbytes: int) -> list[Segment]:
        if nbytes <= 0:
            raise ValueError(f"bad extent size {nbytes}")
        if offset < 0 or offset + nbytes > self.total_bytes:
            raise ValueError("extent outside device")
        out: list[Segment] = []
        pos = offset
        remaining = nbytes
        while remaining > 0:
            server, soff = self.locate(pos)
            take = min(remaining, self.shares[server] - soff)
            out.append(Segment(server=server, server_offset=soff, nbytes=take))
            pos += take
            remaining -= take
        return out


class MemoryBroker:
    """Cluster-wide registry of lendable memory."""

    def __init__(self, sim: Simulator, self_reserve_bytes: int = 64 * MiB) -> None:
        self.sim = sim
        self.self_reserve_bytes = self_reserve_bytes
        self._ads: dict[str, Advertisement] = {}
        self.grants: list[tuple[str, int]] = []  # audit trail

    # -- advertisement side -------------------------------------------------

    def advertise(self, node: str, free_bytes: int) -> Advertisement:
        """Publish a node's current lendable memory."""
        idle = max(0, free_bytes - self.self_reserve_bytes)
        idle = (idle // PAGE_SIZE) * PAGE_SIZE
        ad = Advertisement(node=node, idle_bytes=idle, updated_at=self.sim.now)
        self._ads[node] = ad
        return ad

    def withdraw(self, node: str) -> None:
        self._ads.pop(node, None)

    def idle_of(self, node: str) -> int:
        ad = self._ads.get(node)
        return ad.idle_bytes if ad is not None else 0

    @property
    def total_idle(self) -> int:
        return sum(ad.idle_bytes for ad in self._ads.values())

    def snapshot(self) -> list[Advertisement]:
        return sorted(
            self._ads.values(), key=lambda a: (-a.idle_bytes, a.node)
        )

    # -- allocation -----------------------------------------------------------

    def select_servers(
        self, total_bytes: int, max_servers: int = 8
    ) -> list[tuple[str, int]]:
        """Pick lenders for ``total_bytes``, richest-first (memory
        ushering).  Returns ``(node, share_bytes)`` pairs and *reserves*
        the granted memory (later callers see reduced advertisements).

        Raises :class:`SimulationError` if the cluster cannot cover the
        request within ``max_servers`` lenders.
        """
        if total_bytes <= 0 or total_bytes % PAGE_SIZE:
            raise ValueError(f"bad request size {total_bytes}")
        remaining = total_bytes
        chosen: list[tuple[str, int]] = []
        for ad in self.snapshot():
            if remaining <= 0 or len(chosen) >= max_servers:
                break
            if ad.idle_bytes <= 0:
                continue
            take = min(ad.idle_bytes, remaining)
            chosen.append((ad.node, take))
            remaining -= take
        if remaining > 0:
            raise SimulationError(
                f"cluster cannot lend {total_bytes} bytes "
                f"({remaining} short within {max_servers} lenders)"
            )
        # Commit the reservations.
        for node, take in chosen:
            ad = self._ads[node]
            ad.idle_bytes -= take
            ad.updated_at = self.sim.now
            self.grants.append((node, take))
        return chosen

    def release(self, node: str, nbytes: int) -> None:
        """Return previously granted memory to a lender's pool."""
        ad = self._ads.get(node)
        if ad is None:
            return
        ad.idle_bytes += nbytes
        ad.updated_at = self.sim.now
