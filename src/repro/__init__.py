"""repro — full-system reproduction of *Swapping to Remote Memory over
InfiniBand: An Approach using a High Performance Network Block Device*
(Liang, Noronha, Panda — IEEE Cluster 2005).

The package simulates, at event granularity, everything the paper's
evaluation exercises:

* a Linux-2.4-style VM (``repro.kernel``): faults, LRU reclaim, kswapd,
  swap-slot clustering, block-layer merging/plugging/elevator;
* InfiniBand verbs (``repro.ib``): RC queue pairs, CQs with solicited
  events, memory registration, RDMA read/write;
* **HPBD** itself (``repro.hpbd``): the client block driver with its
  registration buffer pool, credit flow control and event-driven
  threads, plus RamDisk-backed memory servers doing server-initiated
  RDMA;
* the baselines: NBD over simulated TCP/IP (``repro.nbd``,
  ``repro.tcpip``) on GigE/IPoIB, and a seek-accurate local disk
  (``repro.disk``);
* the paper's workloads (``repro.workloads``): testswap, quick sort of
  256 Mi ints, and SPLASH-2 Barnes.

Quick start::

    from repro import (
        ScenarioConfig, HPBD, run_scenario, TestswapWorkload, GiB, MiB,
    )
    w = TestswapWorkload(size_bytes=GiB // 8)
    cfg = ScenarioConfig([w], HPBD(), mem_bytes=512 * MiB // 8,
                         swap_bytes=GiB // 8, mem_reserved_bytes=3 * MiB)
    result = run_scenario(cfg)
    print(result.summary())

One preset per paper figure lives in :mod:`repro.experiments`.
"""

from .config import HPBD, LocalDisk, LocalMemory, NBD, ScenarioConfig
from .results import InstanceResult, ScenarioResult
from .runner import build_scenario, run_scenario
from .units import GiB, KiB, MiB, PAGE_SIZE
from .workloads import (
    BarnesWorkload,
    QuicksortWorkload,
    TestswapWorkload,
    Workload,
)

__version__ = "1.0.0"

__all__ = [
    "ScenarioConfig",
    "LocalMemory",
    "HPBD",
    "NBD",
    "LocalDisk",
    "run_scenario",
    "build_scenario",
    "ScenarioResult",
    "InstanceResult",
    "Workload",
    "TestswapWorkload",
    "QuicksortWorkload",
    "BarnesWorkload",
    "KiB",
    "MiB",
    "GiB",
    "PAGE_SIZE",
    "__version__",
]
