"""Units and hardware constants shared across the reproduction.

Simulated time is in **microseconds** (float); sizes in **bytes** (int).
The constants here fix the geometry the paper assumes: 4 KiB pages,
512-byte sectors, 128 KiB maximum block request (the Linux 2.4 bound the
paper cites as limiting striping benefit, §4.2.5).
"""

from __future__ import annotations

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "USEC",
    "MSEC",
    "SEC",
    "PAGE_SIZE",
    "PAGE_SHIFT",
    "SECTOR_SIZE",
    "SECTOR_SHIFT",
    "SECTORS_PER_PAGE",
    "MAX_REQUEST_BYTES",
    "MAX_REQUEST_SECTORS",
    "bytes_to_pages",
    "pages_to_bytes",
    "bytes_to_sectors",
    "sectors_to_bytes",
    "usec_to_sec",
    "sec_to_usec",
    "fmt_bytes",
    "fmt_usec",
]

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

USEC = 1.0
MSEC = 1_000.0
SEC = 1_000_000.0

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT  # 4 KiB, IA-32
SECTOR_SHIFT = 9
SECTOR_SIZE = 1 << SECTOR_SHIFT  # 512 B
SECTORS_PER_PAGE = PAGE_SIZE // SECTOR_SIZE

#: Linux 2.4 block-layer single-request ceiling cited by the paper ("the
#: 128K bound of a single request size", §4.2.5).
MAX_REQUEST_BYTES = 128 * KiB
MAX_REQUEST_SECTORS = MAX_REQUEST_BYTES // SECTOR_SIZE


def bytes_to_pages(nbytes: int) -> int:
    """Pages needed to hold ``nbytes`` (rounded up)."""
    return -(-nbytes // PAGE_SIZE)


def pages_to_bytes(npages: int) -> int:
    return npages << PAGE_SHIFT


def bytes_to_sectors(nbytes: int) -> int:
    return -(-nbytes // SECTOR_SIZE)


def sectors_to_bytes(nsectors: int) -> int:
    return nsectors << SECTOR_SHIFT


def usec_to_sec(t: float) -> float:
    return t / SEC


def sec_to_usec(t: float) -> float:
    return t * SEC


def fmt_bytes(nbytes: float) -> str:
    """Human-readable size, e.g. ``131072 -> '128.0 KiB'``."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_usec(t: float) -> str:
    """Human-readable time from microseconds."""
    if t < 1_000:
        return f"{t:.2f} us"
    if t < 1_000_000:
        return f"{t / 1_000:.2f} ms"
    return f"{t / 1_000_000:.2f} s"
