"""Simulated kernel TCP/IP stack and stream sockets (NBD substrate)."""

from .socket import Connection, Listener, Message, SocketError, connect_tcp
from .stack import TCPStack

__all__ = [
    "TCPStack",
    "Connection",
    "Listener",
    "Message",
    "SocketError",
    "connect_tcp",
]
