"""Per-node TCP/IP stack model.

The paper's NBD baselines run over the kernel TCP stack — on GigE and on
IPoIB.  What matters for the reproduction is the §6.2 observation: above
the IP layer both follow identical code paths, and for IPoIB the *stack*
(copies, checksums, per-segment interrupt work), not the wire, bounds
throughput.  So the stack model charges:

* host CPU per call, per byte, and per MTU segment — on both sides;
* wire latency + serialization on the fabric ports.

Host costs run through an injectable ``cpu_run`` hook so a node can make
stack processing contend with application compute (it does, on the dual-
Xeon testbed, when two app instances run — Fig. 9).
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from typing import Any

from ..net.fabrics import TCPParams
from ..net.link import Fabric, Port
from ..simulator import Simulator, StatsRegistry

__all__ = ["TCPStack"]


class TCPStack:
    """One node's TCP/IP protocol engine over a given link type."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        node_name: str,
        params: TCPParams,
        stats: StatsRegistry | None = None,
        cpu_run: Callable[[float], Generator] | None = None,
    ) -> None:
        self.sim = sim
        self.fabric = fabric
        self.node_name = node_name
        self.params = params
        self.stats = stats if stats is not None else StatsRegistry()
        # A distinct port per transport: IPoIB shares the IB wire in
        # reality; modelling separate ports is fine because experiments
        # never mix HPBD and NBD traffic in one run.
        self.port: Port = fabric.port(f"{node_name}.{params.name}")
        self._cpu_run = cpu_run

    def cpu(self, cost: float):
        """Charge ``cost`` µs of host CPU; generator — use ``yield from``."""
        if cost <= 0:
            return
        if self._cpu_run is not None:
            yield from self._cpu_run(cost)
        else:
            yield self.sim.timeout(cost)

    def host_cost(self, nbytes: int) -> float:
        return self.params.host_cost(nbytes)

    def send_bytes(self, dst: "TCPStack", nbytes: int,
                   req_id: int | None = None) -> Any:
        """Put ``nbytes`` on the wire toward ``dst``; returns the arrival
        event.  Host costs are charged separately by the socket layer."""
        return self.fabric.transfer(
            self.port,
            dst.port,
            nbytes,
            self.params.wire_byte_time,
            self.params.wire_latency,
            tag=f"tcp_{self.params.name}",
            req_id=req_id,
        )
