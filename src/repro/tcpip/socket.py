"""Stream sockets over the simulated TCP stacks.

Just enough BSD-socket shape for NBD: listeners, blocking connect/accept,
and ordered reliable message delivery with per-message/byte/segment host
costs on both ends.  Message boundaries are preserved (NBD frames its own
requests; modelling byte streams would add bookkeeping without changing
any measured quantity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..simulator import Event, SimulationError, Store
from .stack import TCPStack

__all__ = ["Message", "Connection", "Listener", "connect_tcp", "SocketError"]

#: TCP three-way handshake budget (off the paging critical path).
CONNECT_USEC = 300.0


class SocketError(SimulationError):
    """Socket misuse (connect to a dead listener, double close...)."""


@dataclass
class Message:
    nbytes: int
    payload: Any = None
    #: block-request identity for the critical-path analysis; rides the
    #: message (not the payload tuple) so framing stays protocol-owned.
    req_id: int | None = None


class Connection:
    """One direction-pair of an established TCP connection."""

    def __init__(self, local: TCPStack, remote: TCPStack, name: str) -> None:
        self.local = local
        self.remote = remote
        self.name = name
        self._inbox: Store = Store(local.sim, name=f"{name}.inbox")
        self.peer: Connection | None = None
        self.closed = False
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- data path ---------------------------------------------------------

    def send(self, nbytes: int, payload: Any = None,
             req_id: int | None = None):
        """Blocking send; generator — use ``yield from``.

        Returns once the local stack has pushed the data out (the send
        completes locally; delivery continues asynchronously, like a
        write() into the socket buffer followed by transmission).
        """
        if self.closed:
            raise SocketError(f"{self.name}: send on closed connection")
        if nbytes < 0:
            raise ValueError(f"negative send size {nbytes}")
        peer = self._require_peer()
        sim = self.local.sim
        # Sender-side stack work (copy to skb, checksum, segmentation).
        t0 = sim.now
        yield from self.local.cpu(self.local.host_cost(nbytes))
        trace = sim.trace
        if trace.enabled and sim.now > t0:
            ident = {} if req_id is None else {"req_id": req_id}
            trace.complete(
                self.local.node_name, "tcp", "tx_host", "tcp.host",
                t0, sim.now, nbytes=nbytes, **ident,
            )
        wire_done = self.local.send_bytes(peer.local, nbytes, req_id=req_id)
        self.bytes_sent += nbytes
        msg = Message(nbytes=nbytes, payload=payload, req_id=req_id)

        def deliver():
            sim.spawn(peer._deliver(msg), name=f"{peer.name}.deliver")

        wire_done.callbacks.append(lambda _e: deliver())

    def _deliver(self, msg: Message):
        # Receiver-side stack work happens before the data is readable.
        sim = self.local.sim
        t0 = sim.now
        yield from self.local.cpu(self.local.host_cost(msg.nbytes))
        trace = sim.trace
        if trace.enabled and sim.now > t0:
            ident = {} if msg.req_id is None else {"req_id": msg.req_id}
            trace.complete(
                self.local.node_name, "tcp", "rx_host", "tcp.host",
                t0, sim.now, nbytes=msg.nbytes, **ident,
            )
        self.bytes_received += msg.nbytes
        self._inbox.put(msg)

    def recv(self) -> Event:
        """Event yielding the next :class:`Message` (blocking read)."""
        if self.closed:
            raise SocketError(f"{self.name}: recv on closed connection")
        return self._inbox.get()

    def try_recv(self) -> Message | None:
        return self._inbox.try_get()

    @property
    def pending(self) -> int:
        return len(self._inbox)

    # -- lifecycle ---------------------------------------------------------

    def _require_peer(self) -> "Connection":
        if self.peer is None:
            raise SocketError(f"{self.name}: not connected")
        return self.peer

    def close(self) -> None:
        if self.closed:
            raise SocketError(f"{self.name}: double close")
        self.closed = True


class Listener:
    """A passive socket: ``accept()`` blocks until a client connects."""

    def __init__(self, stack: TCPStack, name: str = "") -> None:
        self.stack = stack
        self.name = name or f"{stack.node_name}:listener"
        self._backlog: Store = Store(stack.sim, name=f"{self.name}.backlog")

    def accept(self) -> Event:
        """Event yielding the server-side :class:`Connection`."""
        return self._backlog.get()

    def _incoming(self, conn: Connection) -> None:
        self._backlog.put(conn)


def connect_tcp(client: TCPStack, listener: Listener, name: str = ""):
    """Establish a connection; generator — use ``yield from``.

    Returns the client-side :class:`Connection`; the listener's
    ``accept()`` yields the server side.
    """
    sim = client.sim
    yield sim.timeout(CONNECT_USEC)
    label = name or f"{client.node_name}<->{listener.stack.node_name}"
    c_side = Connection(client, listener.stack, f"{label}.c")
    s_side = Connection(listener.stack, client, f"{label}.s")
    c_side.peer = s_side
    s_side.peer = c_side
    listener._incoming(s_side)
    return c_side
