"""Scenario configuration: which swap device, how much memory, who runs.

A scenario is one simulated machine ("the compute node") running one or
more workload instances, with its swap attached to one of the paper's
four device kinds:

* ``LocalMemory``  — enough RAM, no swapping (the baseline);
* ``HPBD``         — the paper's device over N memory servers;
* ``NBD``          — the TCP block device over GigE or IPoIB (1 server);
* ``LocalDisk``    — the node's ATA disk.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .disk.model import DiskParams, ST340014A
from .faults.plan import FaultPlan
from .kernel.params import DEFAULT_VM_PARAMS, VMParams
from .obs.health import HealthConfig
from .net.fabrics import (
    GIGE_DEFAULT,
    IB_DEFAULT,
    IPOIB_DEFAULT,
    IBParams,
    TCPParams,
)
from .redundancy.policy import parse_policy
from .units import GiB, MiB
from .workloads.base import Workload

__all__ = [
    "LocalMemory",
    "HPBD",
    "NBD",
    "LocalDisk",
    "DeviceConfig",
    "FaultConfig",
    "HealthConfig",
    "ScenarioConfig",
    "TenantSpec",
    "ClusterScenarioConfig",
    "PLACEMENT_POLICIES",
]


@dataclass(frozen=True)
class LocalMemory:
    """No swap: the node has enough RAM (the 2 GiB baseline runs)."""

    label: str = "local"


@dataclass(frozen=True)
class HPBD:
    """The paper's high performance block device."""

    nservers: int = 1
    pool_bytes: int = MiB  # §4.2.2: "default pool size of 1MB"
    credits_per_server: int = 16
    server_store_bytes: int | None = None  # default: an equal share + slack
    staging_pool_bytes: int = 4 * MiB
    max_outstanding_rdma: int = 8
    ib: IBParams = IB_DEFAULT
    #: ablation (§4.1): per-request registration instead of the pool
    register_on_fly: bool = False
    #: ablation (§4.2.5): stripe size in bytes (None = blocking layout)
    stripe_bytes: int | None = None
    #: reliability extension: synchronous write mirroring + read failover
    mirror: bool = False
    label: str = "hpbd"


@dataclass(frozen=True)
class NBD:
    """The TCP network block device baseline (single server in 2.4)."""

    transport: str = "gige"  # "gige" | "ipoib"
    tcp: TCPParams | None = None

    def params(self) -> TCPParams:
        if self.tcp is not None:
            return self.tcp
        if self.transport == "gige":
            return GIGE_DEFAULT
        if self.transport == "ipoib":
            return IPOIB_DEFAULT
        raise ValueError(f"unknown NBD transport {self.transport!r}")

    @property
    def label(self) -> str:
        return f"nbd-{self.transport}"


@dataclass(frozen=True)
class LocalDisk:
    """Swap to the node's own ATA disk."""

    params: DiskParams = ST340014A
    label: str = "disk"


DeviceConfig = LocalMemory | HPBD | NBD | LocalDisk


@dataclass(frozen=True)
class FaultConfig:
    """Fault injection + the recovery knobs that survive it.

    ``plan`` is the injected trouble (see :mod:`repro.faults`);
    the rest configures the client-side recovery state machine.
    Attaching a ``FaultConfig`` to a scenario enables per-request
    timeouts — without one, drivers keep the legacy raise-on-error
    behaviour.
    """

    plan: FaultPlan | None = None
    #: per-physical-request timeout; ``None`` disables the whole
    #: recovery machine (legacy raise-on-error semantics).
    request_timeout_usec: float | None = 2_000.0
    #: attempts against the same server before it is declared dead
    max_retries: int = 2
    retry_backoff_usec: float = 200.0
    backoff_mult: float = 2.0
    #: what happens once an HPBD server is dead: "remap" its chunk onto
    #: the successor server, fall back to the local "disk", or "none"
    #: (mirroring handles it, or the run fails)
    degraded_mode: str = "none"
    #: the disk model backing ``degraded_mode="disk"``
    fallback_disk: DiskParams = ST340014A
    #: fail-slow countermeasures (mirrored drivers only): per-server RTT
    #: EWMAs steer mirror reads to the faster copy and quarantine
    #: verdicts relax mirrored-write acks to semi-sync
    ewma_select: bool = False
    #: hedged reads: fire a tied request at the mirror when an attempt
    #: exceeds its EWMA-derived deadline; first reply wins
    hedge_reads: bool = False
    #: hedge deadline = max(hedge_min_usec, srtt + hedge_k * rttvar)
    hedge_k: float = 4.0
    hedge_min_usec: float = 50.0

    def __post_init__(self) -> None:
        if self.degraded_mode not in ("none", "remap", "disk"):
            raise ValueError(f"unknown degraded_mode {self.degraded_mode!r}")
        if self.request_timeout_usec is not None and self.request_timeout_usec <= 0:
            raise ValueError(f"bad request_timeout_usec {self.request_timeout_usec}")
        if self.max_retries < 0:
            raise ValueError(f"bad max_retries {self.max_retries}")
        if self.hedge_k <= 0 or self.hedge_min_usec < 0:
            raise ValueError(
                f"bad hedge parameters ({self.hedge_k}, {self.hedge_min_usec})"
            )


@dataclass
class ScenarioConfig:
    """One full experiment configuration."""

    workloads: list[Workload]
    device: DeviceConfig
    mem_bytes: int
    swap_bytes: int = GiB
    ncpus: int = 2
    vm_params: VMParams = DEFAULT_VM_PARAMS
    #: frames the kernel itself pins (text, slab, page tables...) — the
    #: app never sees the full DIMM size.
    mem_reserved_bytes: int = 24 * MiB
    seed: int = 42
    #: fault injection + recovery tuning; ``None`` = fault-free run
    #: with legacy error semantics.
    faults: FaultConfig | None = None

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ValueError("scenario needs at least one workload instance")
        if self.mem_bytes <= self.mem_reserved_bytes:
            raise ValueError(
                f"memory {self.mem_bytes} does not cover the kernel reserve "
                f"{self.mem_reserved_bytes}"
            )
        if self.swap_bytes < 0:
            raise ValueError("negative swap size")
        if isinstance(self.device, LocalMemory) and self.swap_bytes:
            # Local runs simply ignore the swap size.
            self.swap_bytes = 0

    @property
    def usable_mem_bytes(self) -> int:
        return self.mem_bytes - self.mem_reserved_bytes

    @property
    def label(self) -> str:
        return self.device.label

    def with_device(self, device: DeviceConfig) -> "ScenarioConfig":
        """Same scenario on a different swap device."""
        return replace(self, device=device)


#: placement policies the cluster layer knows (repro.cluster.placement)
PLACEMENT_POLICIES = ("blocking", "least_loaded", "hash")


@dataclass(frozen=True)
class TenantSpec:
    """One client node sharing the cluster's server fleet.

    A tenant is a full compute node (its own VM, CPUs and HPBD driver)
    running one workload; ``weight`` is its share under weighted-fair
    QoS (credits and server service order).
    """

    name: str
    workload: Workload
    mem_bytes: int
    swap_bytes: int
    weight: float = 1.0
    ncpus: int = 2
    #: redundancy policy for this tenant's swap area: "none", "nway(r)"
    #: or "rs(k,m)" (see :mod:`repro.redundancy.policy`)
    redundancy: str = "none"

    def __post_init__(self) -> None:
        if not self.name or any(c in self.name for c in ". /"):
            raise ValueError(f"bad tenant name {self.name!r}")
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name}: bad weight {self.weight}")
        if self.swap_bytes <= 0:
            raise ValueError(f"tenant {self.name}: needs swap_bytes > 0")
        parse_policy(self.redundancy)  # fail fast on a bad spec

    @property
    def redundancy_policy(self):
        return parse_policy(self.redundancy)


@dataclass
class ClusterScenarioConfig:
    """N tenants sharing one capacity-managed memory-server fleet.

    The single-node :class:`ScenarioConfig` runs the paper's topology;
    this is the scale-out variant (repro.cluster): placement decides
    where each tenant's swap area lands, admission control reserves it
    against advertised capacity (optionally overcommitted, with
    server-side eviction-to-disk), and per-tenant QoS keeps one
    thrashing tenant from starving the rest.
    """

    tenants: list[TenantSpec]
    nservers: int = 2
    #: advertised RAM per server; ``None`` sizes the fleet to total
    #: demand split evenly (plus slack for allocator rounding).
    server_capacity_bytes: int | None = None
    #: "blocking" (the paper's contiguous layout), "least_loaded"
    #: bin-packing, or consistent-"hash" sharding
    placement: str = "blocking"
    #: mirror every tenant's pages across the fleet (replica of server
    #: i's chunk on server i+1): blocking layout over all servers, each
    #: server reserving its own share plus its predecessor's replica
    #: area.  Enables the fail-slow countermeasures in FaultConfig.
    mirror: bool = False
    #: weighted-fair QoS: partition server credits by tenant weight and
    #: serve requests in start-time-fair order (off = FIFO free-for-all)
    qos: bool = True
    #: per-server credit pool partitioned across tenants under QoS
    credit_pool: int = 48
    #: per-tenant, per-server credits when QoS is off
    credits_per_server: int = 16
    #: admit up to ``capacity * overcommit`` bytes per server; the
    #: excess lives behind a residency cap and spills to the server's
    #: local disk on eviction
    overcommit: float = 1.0
    #: tenant whose reservation is NACKed outright: "raise" or fall
    #: back to a local "disk" swap on its own node
    admission_fallback: str = "raise"
    pool_bytes: int = MiB
    staging_pool_bytes: int = 4 * MiB
    max_outstanding_rdma: int = 8
    ib: IBParams = IB_DEFAULT
    vm_params: VMParams = DEFAULT_VM_PARAMS
    mem_reserved_bytes: int = 24 * MiB
    heartbeat_interval_usec: float = 1_000.0
    #: aggregate background-copy bandwidth cap (migration + repair) in
    #: MiB/s; ``None`` leaves the bulk channel unthrottled
    migration_throttle_mib_s: float | None = None
    #: background shard repair for redundant tenants (crash -> rebuild)
    repair: bool = True
    #: repair manager scan period (liveness edges + rebuild triggers)
    repair_interval_usec: float = 500.0
    #: rebuild a still-down member onto a spare after this long down
    #: (``None`` = in-place only: wait for the daemon to restart)
    repair_spare_after_usec: float | None = None
    seed: int = 42
    faults: FaultConfig | None = None
    #: always-on fleet health model (SLO engine + fail-slow detector);
    #: ``None`` disables it (the overhead-benchmark baseline).
    health: HealthConfig | None = HealthConfig()
    label: str = "cluster"

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("cluster scenario needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        if self.nservers < 1:
            raise ValueError(f"need at least one server, got {self.nservers}")
        if self.mirror and self.nservers < 2:
            raise ValueError("mirrored cluster needs at least two servers")
        if self.mirror:
            for t in self.tenants:
                if t.swap_bytes % self.nservers:
                    raise ValueError(
                        f"tenant {t.name}: mirrored swap area "
                        f"{t.swap_bytes} B must divide evenly across "
                        f"{self.nservers} servers"
                    )
        if self.placement not in PLACEMENT_POLICIES:
            raise ValueError(
                f"placement {self.placement!r} not in {PLACEMENT_POLICIES}"
            )
        for t in self.tenants:
            pol = t.redundancy_policy
            if pol.kind == "none":
                continue
            if self.mirror:
                raise ValueError(
                    f"tenant {t.name}: per-tenant redundancy and the "
                    f"fleet-wide mirror flag are exclusive"
                )
            if self.faults is not None and self.faults.degraded_mode != "none":
                raise ValueError(
                    f"tenant {t.name}: redundancy supplies its own "
                    f"degraded path; degraded_mode must stay 'none'"
                )
            if pol.kind == "rs":
                if self.nservers < pol.width:
                    raise ValueError(
                        f"tenant {t.name}: {pol.label} needs "
                        f"{pol.width} servers, fleet has {self.nservers}"
                    )
                if t.swap_bytes % pol.k:
                    raise ValueError(
                        f"tenant {t.name}: swap area {t.swap_bytes} B "
                        f"does not stripe over k={pol.k} data shards"
                    )
            else:  # nway ring over the whole fleet
                if self.nservers < pol.m + 1:
                    raise ValueError(
                        f"tenant {t.name}: {pol.label} needs "
                        f"{pol.m + 1} servers, fleet has {self.nservers}"
                    )
                if t.swap_bytes % self.nservers:
                    raise ValueError(
                        f"tenant {t.name}: swap area {t.swap_bytes} B "
                        f"must divide across the {self.nservers}-server "
                        f"ring"
                    )
        if self.migration_throttle_mib_s is not None:
            if self.migration_throttle_mib_s <= 0:
                raise ValueError(
                    f"bad migration throttle {self.migration_throttle_mib_s}"
                )
        if self.repair_interval_usec <= 0:
            raise ValueError(
                f"bad repair interval {self.repair_interval_usec}"
            )
        if self.overcommit < 1.0:
            raise ValueError(f"overcommit must be >= 1, got {self.overcommit}")
        if self.admission_fallback not in ("raise", "disk"):
            raise ValueError(
                f"admission_fallback {self.admission_fallback!r} "
                f"not in ('raise', 'disk')"
            )
        if self.credit_pool < len(self.tenants):
            raise ValueError(
                f"credit pool {self.credit_pool} cannot give "
                f"{len(self.tenants)} tenants one credit each"
            )
        for t in self.tenants:
            if t.mem_bytes <= self.mem_reserved_bytes:
                raise ValueError(
                    f"tenant {t.name}: memory {t.mem_bytes} does not cover "
                    f"the kernel reserve {self.mem_reserved_bytes}"
                )
