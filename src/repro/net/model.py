"""Abstract communication cost models.

The paper's analysis (§6.2) splits the cost of moving a page into *host
overhead* (CPU work: protocol processing, copies, interrupt handling) and
*network time* (wire latency + serialization).  We keep that split
explicit in every model so the Amdahl-style decomposition can be computed
from the same constants the simulator charges.

All models map a message size in bytes to a cost in microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CostModel", "LinearCost", "PiecewiseLinearCost"]


class CostModel:
    """Size → microseconds.  Subclasses define :meth:`cost`."""

    def cost(self, nbytes: int) -> float:
        raise NotImplementedError

    def cost_array(self, sizes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`cost` (used by the Fig. 1 / Fig. 3 benches)."""
        return np.array([self.cost(int(s)) for s in np.asarray(sizes).ravel()])

    def __call__(self, nbytes: int) -> float:
        return self.cost(nbytes)


@dataclass(frozen=True)
class LinearCost(CostModel):
    """``alpha + beta * nbytes`` — the standard alpha-beta (latency +
    1/bandwidth) model.

    ``alpha`` is in microseconds, ``beta`` in microseconds per byte
    (i.e. ``1 / bandwidth``, with bandwidth in bytes/µs = MB/s × 1e-6 …
    use :meth:`from_bandwidth` to avoid unit mistakes).
    """

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ValueError(f"negative cost parameters: {self}")

    @classmethod
    def from_bandwidth(cls, alpha_usec: float, mb_per_s: float) -> "LinearCost":
        """Build from a latency (µs) and a bandwidth in MB/s (1e6 B/s)."""
        if mb_per_s <= 0:
            raise ValueError(f"bandwidth must be positive, got {mb_per_s}")
        # MB/s = 1e6 B / 1e6 µs = 1 B/µs, so beta = 1 / mb_per_s.
        return cls(alpha=alpha_usec, beta=1.0 / mb_per_s)

    @property
    def bandwidth_mb_s(self) -> float:
        """Asymptotic bandwidth in MB/s."""
        return float("inf") if self.beta == 0 else 1.0 / self.beta

    def cost(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError(f"negative size {nbytes}")
        return self.alpha + self.beta * nbytes

    def cost_array(self, sizes: np.ndarray) -> np.ndarray:
        sizes = np.asarray(sizes, dtype=np.float64)
        if (sizes < 0).any():
            raise ValueError("negative size in cost_array")
        return self.alpha + self.beta * sizes


@dataclass(frozen=True)
class PiecewiseLinearCost(CostModel):
    """Linear segments between calibration knots, linear extrapolation.

    Used where measured curves are visibly non-linear (e.g. memcpy has a
    cache-resident regime below L2 size and a DRAM regime above).
    ``knots`` is a tuple of (size_bytes, cost_usec) pairs, ascending in
    size, at least two.
    """

    knots: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.knots) < 2:
            raise ValueError("need at least two knots")
        xs = [k[0] for k in self.knots]
        if any(b <= a for a, b in zip(xs, xs[1:])):
            raise ValueError("knot sizes must be strictly increasing")

    def cost(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError(f"negative size {nbytes}")
        ks = self.knots
        if nbytes >= ks[-1][0]:
            (x0, y0), (x1, y1) = ks[-2], ks[-1]
        elif nbytes <= ks[0][0]:
            (x0, y0), (x1, y1) = ks[0], ks[1]
        else:
            for (x0, y0), (x1, y1) in zip(ks, ks[1:]):
                if x0 <= nbytes <= x1:
                    break
        slope = (y1 - y0) / (x1 - x0)
        return max(0.0, y0 + slope * (nbytes - x0))

    def cost_array(self, sizes: np.ndarray) -> np.ndarray:
        sizes = np.asarray(sizes, dtype=np.float64)
        xs = np.array([k[0] for k in self.knots])
        ys = np.array([k[1] for k in self.knots])
        # np.interp clamps at the ends; extend the end segments manually.
        out = np.interp(sizes, xs, ys)
        lo = sizes < xs[0]
        hi = sizes > xs[-1]
        if lo.any():
            slope = (ys[1] - ys[0]) / (xs[1] - xs[0])
            out[lo] = np.maximum(0.0, ys[0] + slope * (sizes[lo] - xs[0]))
        if hi.any():
            slope = (ys[-1] - ys[-2]) / (xs[-1] - xs[-2])
            out[hi] = ys[-1] + slope * (sizes[hi] - xs[-1])
        return out
