"""Network cost models and the switched fabric.

* :mod:`repro.net.model` — abstract size→µs cost models.
* :mod:`repro.net.fabrics` — constants calibrated to the paper's testbed
  (Fig. 1 latency curves, Fig. 3 registration-vs-memcpy).
* :mod:`repro.net.link` — ports with full-duplex serialization and a
  non-blocking switch.
"""

from .fabrics import (
    DEREGISTRATION,
    GIGE_DEFAULT,
    IB_DEFAULT,
    IPOIB_DEFAULT,
    MEMCPY,
    REGISTRATION,
    IBParams,
    TCPParams,
    memcpy_cost,
    registration_cost,
)
from .link import Fabric, Port
from .model import CostModel, LinearCost, PiecewiseLinearCost

__all__ = [
    "CostModel",
    "LinearCost",
    "PiecewiseLinearCost",
    "Fabric",
    "Port",
    "IBParams",
    "TCPParams",
    "IB_DEFAULT",
    "IPOIB_DEFAULT",
    "GIGE_DEFAULT",
    "MEMCPY",
    "REGISTRATION",
    "DEREGISTRATION",
    "memcpy_cost",
    "registration_cost",
]
