"""Calibrated cost models for the paper's testbed.

Hardware being modelled (paper §6.1): dual Xeon 2.66 GHz, PCI-X 133 MHz,
Mellanox MT23108 HCA on a 144-port IB switch, plus on-board GigE; RedHat 9
with Linux 2.4.

Calibration targets are the paper's own microbenchmarks:

* **Fig. 1** — one-way latency up to 128 KiB for memcpy, RDMA write,
  IPoIB and GigE.  Small-message points (4 KiB page era hardware):
  RDMA write ≈ 6 µs; IPoIB ≈ 45 µs; GigE ≈ 60 µs; memcpy sub-µs.
  Large-message slopes from sustainable bandwidths of that generation:
  RDMA over PCI-X ≈ 840 MB/s; IPoIB ≈ 180 MB/s (stack-bound); GigE
  ≈ 110 MB/s (wire-bound); memcpy ≈ 1.6–2 GB/s DRAM copy.

* **Fig. 3** — memory registration is far costlier than memcpy over the
  whole 4 KiB–127 KiB swap-request range (the motivation for HPBD's
  copy-in/copy-out pool).  VAPI-era register cost ≈ 90 µs base plus
  ≈ 1.5 µs per pinned page.

The split between *host* and *wire* components feeds the §6.2 Amdahl
analysis: for TCP transports most of the per-byte cost is host-side
protocol processing and copies; for RDMA nearly all of it is wire/DMA.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import KiB, PAGE_SIZE
from .model import CostModel, LinearCost, PiecewiseLinearCost

__all__ = [
    "MEMCPY",
    "REGISTRATION",
    "DEREGISTRATION",
    "IBParams",
    "TCPParams",
    "IB_DEFAULT",
    "IPOIB_DEFAULT",
    "GIGE_DEFAULT",
    "memcpy_cost",
    "registration_cost",
]

# ---------------------------------------------------------------------------
# Host-local costs
# ---------------------------------------------------------------------------

#: DRAM copy on the 2.66 GHz Xeon / DDR-266 testbed.  Below L2 (512 KiB)
#: everything here is DRAM-bound anyway for swap-sized buffers; measured
#: curves of that era show ~0.3 µs call overhead and ~1.9 GB/s for
#: page-aligned copies up to 128 KiB.
MEMCPY: CostModel = PiecewiseLinearCost(
    knots=(
        (0.0, 0.30),
        (4 * KiB, 2.4),
        (64 * KiB, 34.0),
        (128 * KiB, 67.0),
    )
)

#: VAPI ``VAPI_register_mr``: syscall + pinning + HCA TPT update.  Base
#: cost dominates small regions; per-page pinning dominates large ones.
REGISTRATION: CostModel = LinearCost(alpha=90.0, beta=1.5 / PAGE_SIZE)

#: Deregistration is cheaper but not free (TPT invalidate + unpin).
DEREGISTRATION: CostModel = LinearCost(alpha=35.0, beta=0.6 / PAGE_SIZE)


def memcpy_cost(nbytes: int) -> float:
    """CPU time to copy ``nbytes`` between DRAM buffers (µs)."""
    return MEMCPY.cost(nbytes)


def registration_cost(nbytes: int) -> float:
    """CPU+HCA time to register a ``nbytes`` buffer with the HCA (µs)."""
    return REGISTRATION.cost(nbytes)


# ---------------------------------------------------------------------------
# InfiniBand (native verbs)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IBParams:
    """Timing model of one HCA + switch hop for native verbs traffic.

    The HCA serializes DMA onto the PCI-X bus; ``byte_time`` is that
    bottleneck (µs/byte).  ``rdma_write_latency`` is the zero-byte
    initiation-to-remote-completion time for RDMA write; RDMA *read*
    additionally pays a full round trip before data flows
    (``rdma_read_extra``).  Send/recv adds receiver-side WQE consumption
    and CQE generation (``send_recv_extra``).

    ``event_notify_cost`` models the interrupt + handler dispatch for a
    solicited completion event (the EVAPI handler path HPBD uses);
    ``poll_cost`` is one CQ poll.  ``qp_context_penalty`` reproduces the
    Fig. 10 effect: MT23108 QP-context cache thrash once many QPs are
    active — each work request pays ``qp_context_penalty × max(0, nqp -
    qp_cache_size)`` extra microseconds.
    """

    rdma_write_latency: float = 5.8
    rdma_read_extra: float = 6.0
    send_recv_extra: float = 3.0
    byte_time: float = 1.0 / 840.0  # PCI-X-bound ~840 MB/s
    wqe_post_cost: float = 0.6  # CPU cost to build+ring a WQE
    cqe_poll_cost: float = 0.4  # CPU cost to reap one CQE
    event_notify_cost: float = 6.0  # solicited event -> handler -> wakeup
    qp_cache_size: int = 8
    qp_context_penalty: float = 2.5

    def rdma_write_cost(self, nbytes: int) -> float:
        """Initiator-posted RDMA write: time until data lands remotely."""
        return self.rdma_write_latency + self.byte_time * nbytes

    def rdma_read_cost(self, nbytes: int) -> float:
        """RDMA read: request travels, then data streams back."""
        return (
            self.rdma_write_latency
            + self.rdma_read_extra
            + self.byte_time * nbytes
        )

    def send_cost(self, nbytes: int) -> float:
        """Send/recv channel semantics (control messages)."""
        return (
            self.rdma_write_latency
            + self.send_recv_extra
            + self.byte_time * nbytes
        )

    def qp_penalty(self, active_qps: int) -> float:
        """Extra per-WQE processing once QP contexts overflow the cache."""
        excess = active_qps - self.qp_cache_size
        return self.qp_context_penalty * excess if excess > 0 else 0.0

    def latency_curve(self) -> CostModel:
        """One-way RDMA-write latency vs size (Fig. 1 series)."""
        return LinearCost(alpha=self.rdma_write_latency, beta=self.byte_time)


IB_DEFAULT = IBParams()


# ---------------------------------------------------------------------------
# TCP/IP transports (NBD baselines)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TCPParams:
    """Cost model of a kernel TCP/IP stack over some physical link.

    Per-message cost = fixed stack traversal (``host_per_msg``) on each
    side + per-byte host work (checksum + copies, ``host_per_byte``) +
    wire (``wire_latency`` + ``wire_byte_time``).  The host component is
    CPU time charged to the sending/receiving node; the wire component
    occupies the link.  ``mtu`` drives per-segment costs
    (``host_per_segment``) — interrupt and header processing per packet.

    The IPoIB instance is *stack-bound*: its wire (IB) could do 840 MB/s
    but host_per_byte limits throughput to ~180 MB/s, reproducing the
    paper's point that TCP processing squanders the fast fabric.
    """

    name: str
    host_per_msg: float  # µs, each side, per send()/recv() call
    host_per_byte: float  # µs/byte of CPU work (copies + checksum)
    host_per_segment: float  # µs per MTU-sized packet (hdr + irq amortized)
    wire_latency: float  # µs, one way, zero-byte
    wire_byte_time: float  # µs/byte serialization on the link
    mtu: int = 1500

    def segments(self, nbytes: int) -> int:
        return max(1, -(-nbytes // self.mtu))

    def host_cost(self, nbytes: int) -> float:
        """One-side CPU cost to push/pull ``nbytes`` through the stack."""
        return (
            self.host_per_msg
            + self.host_per_byte * nbytes
            + self.host_per_segment * self.segments(nbytes)
        )

    def wire_cost(self, nbytes: int) -> float:
        return self.wire_latency + self.wire_byte_time * nbytes

    def one_way_cost(self, nbytes: int) -> float:
        """Total send→deliver time with store-and-forward host stages."""
        return 2 * self.host_cost(nbytes) + self.wire_cost(nbytes)

    def latency_curve(self) -> CostModel:
        """One-way message latency vs size (Fig. 1 series)."""

        params = self

        class _Curve(CostModel):
            def cost(self, nbytes: int) -> float:
                return params.one_way_cost(nbytes)

        return _Curve()

    @property
    def effective_bandwidth_mb_s(self) -> float:
        """Large-message throughput implied by the per-byte terms."""
        per_byte = (
            2 * self.host_per_byte
            + 2 * self.host_per_segment / self.mtu
            + self.wire_byte_time
        )
        return 1.0 / per_byte


#: IPoIB on the MT23108: fast wire, slow stack.  Effective large-message
#: bandwidth ≈ 180 MB/s; small-message one-way ≈ 45 µs.
IPOIB_DEFAULT = TCPParams(
    name="ipoib",
    host_per_msg=20.0,
    host_per_byte=0.0045,  # ~4.5 ns/B copy+checksum CPU per side
    host_per_segment=0.9,
    wire_latency=9.0,
    wire_byte_time=1.0 / 840.0,
    mtu=2044,  # IPoIB UD MTU of the era
)

#: Gigabit Ethernet: the wire itself is the bottleneck (~117 MB/s), with
#: typical 60 µs one-way small-message latency through the 2.4 stack.
GIGE_DEFAULT = TCPParams(
    name="gige",
    host_per_msg=16.0,
    host_per_byte=0.0020,
    host_per_segment=1.1,
    wire_latency=18.0,
    wire_byte_time=1.0 / 110.0,
    mtu=1500,
)
