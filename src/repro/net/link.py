"""Ports and the switched fabric: where serialization happens.

The paper's testbed is a 144-port non-blocking IB switch, so the only
contention points are the host ports (HCA/NIC + its PCI-X bus).  We model
each node's port as a full-duplex pair of unit resources (``tx`` and
``rx``); a transfer occupies ``src.tx`` and ``dst.rx`` for the
serialization time, then the payload arrives one wire latency later.

This is what makes the multi-server results (Fig. 10) honest: no matter
how many memory servers exist, every page still crosses the single client
port, so striping cannot beat the port bandwidth — the paper's argument
for the non-striped blocking distribution.
"""

from __future__ import annotations

from ..simulator import Event, Resource, Simulator, StatsRegistry, WaitQueue

__all__ = ["Port", "Fabric"]


class Port:
    """A full-duplex network attachment point for one node.

    Fault-injection state (see :mod:`repro.faults`): a port can be
    taken *down* (transfers park until it comes back) or *degraded*
    (latency/serialization multipliers).  Both default to the identity,
    so a healthy port behaves bit-for-bit as before.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.tx = Resource(sim, 1, name=f"{name}.tx")
        self.rx = Resource(sim, 1, name=f"{name}.rx")
        self.bytes_out = 0
        self.bytes_in = 0
        self.up = True
        self.latency_mult = 1.0
        self.byte_time_mult = 1.0
        self._up_wq = WaitQueue(sim, name=f"{name}.up")

    # -- fault-injection hooks (no-ops unless a FaultPlan drives them) ----

    def set_down(self) -> None:
        """Link flap: park new transfers until :meth:`set_up`."""
        self.up = False

    def set_up(self) -> None:
        self.up = True
        self._up_wq.wake_all()

    def degrade(self, latency_mult: float = 1.0, byte_time_mult: float = 1.0) -> None:
        """Scale this port's latency and serialization time."""
        if latency_mult < 1.0 or byte_time_mult < 1.0:
            raise ValueError("degradation multipliers must be >= 1")
        self.latency_mult = latency_mult
        self.byte_time_mult = byte_time_mult

    def restore(self) -> None:
        self.latency_mult = 1.0
        self.byte_time_mult = 1.0

    def __repr__(self) -> str:
        return f"<Port {self.name} out={self.bytes_out} in={self.bytes_in}>"


class Fabric:
    """A non-blocking switch connecting named :class:`Port` objects."""

    def __init__(self, sim: Simulator, stats: StatsRegistry | None = None) -> None:
        self.sim = sim
        self.stats = stats if stats is not None else StatsRegistry()
        self._ports: dict[str, Port] = {}
        #: fault-injection filter for IB channel sends; ``None`` (the
        #: default) means no faults.  See ``FaultInjector.on_ctrl_send``.
        self.fault_hook = None

    def port(self, name: str) -> Port:
        """Get or create the port for node ``name``."""
        port = self._ports.get(name)
        if port is None:
            port = self._ports[name] = Port(self.sim, name)
        return port

    def ports(self) -> list[str]:
        return sorted(self._ports)

    def transfer(
        self,
        src: Port,
        dst: Port,
        nbytes: int,
        byte_time: float,
        latency: float,
        tag: str = "data",
        req_id: int | None = None,
    ) -> Event:
        """Move ``nbytes`` from ``src`` to ``dst``.

        Returns an event that succeeds (with ``nbytes``) when the last
        byte has *arrived* at ``dst``.  The source tx unit and the
        destination rx unit are both held for the serialization time
        ``nbytes * byte_time``; delivery completes ``latency`` later
        (cut-through, no store-and-forward double count).  ``req_id``
        tags the wire/wait spans with the block-request identity so the
        critical-path analysis can attribute them.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        if src is dst:
            raise ValueError(f"self-transfer on port {src.name}")
        done = Event(self.sim, name=f"xfer:{src.name}->{dst.name}")
        self.sim.spawn(
            self._transfer_proc(
                src, dst, nbytes, byte_time, latency, tag, req_id, done
            ),
            name=f"xfer:{src.name}->{dst.name}",
        )
        return done

    def _transfer_proc(
        self,
        src: Port,
        dst: Port,
        nbytes: int,
        byte_time: float,
        latency: float,
        tag: str,
        req_id: int | None,
        done: Event,
    ):
        t_start = self.sim.now
        # A downed endpoint parks the transfer until it comes back; the
        # wait counts as port queueing (net.wait) in the trace.
        while not (src.up and dst.up):
            down = src if not src.up else dst
            yield down._up_wq.wait()
        # tx and rx pools are disjoint resource classes, so taking one of
        # each in a fixed (tx-then-rx) order cannot form a cycle.
        yield src.tx.acquire()
        yield dst.rx.acquire()
        t_wire = self.sim.now
        # Degradation multipliers are 1.0 on healthy ports, so the
        # products below are exact no-ops outside fault scenarios.
        mult = max(src.byte_time_mult, dst.byte_time_mult)
        serialization = nbytes * byte_time * mult
        if serialization > 0:
            yield self.sim.timeout(serialization)
        src.tx.release()
        dst.rx.release()
        src.bytes_out += nbytes
        dst.bytes_in += nbytes
        latency = latency * max(src.latency_mult, dst.latency_mult)
        if latency > 0:
            yield self.sim.timeout(latency)
        self.stats.counter(f"fabric.bytes.{tag}").add(nbytes)
        self.stats.tally("fabric.transfer_usec").record(self.sim.now - t_start)
        trace = self.sim.trace
        if trace.enabled:
            # Port queueing is a host-side stage; the wire span proper is
            # serialization + latency, which is what the §6.2 Amdahl
            # model calls "network" (control messages get their own cat
            # so data wire time stays comparable to the model's).
            ident = {} if req_id is None else {"req_id": req_id}
            if t_wire > t_start:
                trace.complete(
                    "fabric", src.name, "port_wait", "net.wait",
                    t_start, t_wire, tag=tag, nbytes=nbytes, **ident,
                )
            trace.complete(
                "fabric", src.name, tag,
                "ctrl" if tag == "ib_send" else "wire",
                t_wire, self.sim.now, nbytes=nbytes, dst=dst.name, **ident,
            )
        done.succeed(nbytes)
