"""Local ATA disk model and driver (the paper's slow baseline)."""

from .driver import DiskDevice
from .model import ST340014A, DiskModel, DiskParams

__all__ = ["DiskDevice", "DiskModel", "DiskParams", "ST340014A"]
