"""Local-disk block driver: serves one request at a time (ATA, no NCQ)."""

from __future__ import annotations

from ..kernel.blockdev import RequestQueue
from ..simulator import Simulator, StatsRegistry
from ..units import SECTOR_SIZE
from .model import DiskModel, DiskParams, ST340014A

__all__ = ["DiskDevice"]


class DiskDevice:
    """An ATA disk behind a standard request queue.

    ``swap_partition_bytes`` bounds the sector space exposed to the swap
    area; the partition starts at ``partition_offset`` sectors (swap
    partitions typically sat after the root filesystem — distance
    matters only via seek deltas, which are relative, so the default 0
    is fine).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "hda",
        params: DiskParams = ST340014A,
        swap_partition_bytes: int | None = None,
        stats: StatsRegistry | None = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.params = params
        self.model = DiskModel(params)
        self.stats = stats if stats is not None else StatsRegistry()
        capacity = (
            swap_partition_bytes // SECTOR_SIZE
            if swap_partition_bytes is not None
            else params.capacity_sectors
        )
        self.queue = RequestQueue(
            sim, name=f"{name}.rq", capacity_sectors=capacity, stats=self.stats
        )
        self.busy_usec = 0.0
        self.requests_served = 0
        self._proc = sim.spawn(self._serve(), name=f"{name}.driver")

    def _serve(self):
        while True:
            req = yield self.queue.next_request()
            t0 = self.sim.now
            t = self.model.service_time(req.sector, req.nsectors)
            yield self.sim.timeout(t)
            self.busy_usec += t
            self.requests_served += 1
            self.stats.tally(f"{self.name}.service_usec").record(t)
            trace = self.sim.trace
            if trace.enabled:
                trace.complete(
                    self.name, "mech", "seek_xfer", "disk.service",
                    t0, self.sim.now,
                    req_id=req.req_id, op=req.op, sector=req.sector,
                    nbytes=req.nbytes,
                )
            self.queue.complete(req)
