"""Service-time model of the testbed's ATA disk (Seagate ST340014A).

40 GB, 7200 rpm, ATA/100.  What the reproduction needs from it:

* **sequential streams are fine** — testswap's pure page-out stream runs
  at ~40 MB/s, which is why disk swap is only ~2.2× slower than HPBD
  there (Fig. 5);
* **interleaved streams collapse** — quick sort's simultaneous swap-in
  (old slots) and swap-out (new slots) forces head movement between two
  regions, cutting throughput severely (the 4.5× of Fig. 7 and the 36×
  of Fig. 9).

Service time per request = controller overhead + seek(distance) +
rotational miss + transfer.  Seek follows the usual constant-plus-sqrt
curve; a request contiguous with the previous one pays neither seek nor
rotation (the common stream case under the elevator).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..units import GiB, SECTOR_SIZE

__all__ = ["DiskParams", "DiskModel", "ST340014A"]


@dataclass(frozen=True)
class DiskParams:
    """Geometry and timing knobs (times in µs, sizes in sectors)."""

    capacity_bytes: int = 40 * GiB
    controller_overhead: float = 200.0  # per-request command processing
    track_to_track: float = 800.0  # minimal seek
    seek_coef: float = 4.5  # µs per sqrt(sector-distance)
    max_seek: float = 15_000.0  # full stroke bound
    rotation_usec: float = 8_333.0  # 7200 rpm revolution
    #: expected fraction of a revolution lost when the head moved
    rot_miss_factor: float = 0.45
    #: sustained media rate: ~45 MB/s outer zone on the spec sheet, but
    #: swap partitions sit mid-disk and ATA command overheads shave it.
    bytes_per_usec: float = 38.0
    #: requests landing within this many sectors of the head count as
    #: stream-contiguous (skip seek+rotation) — covers elevator reorder
    #: slop within one cylinder group.
    near_threshold: int = 2048

    @property
    def capacity_sectors(self) -> int:
        return self.capacity_bytes // SECTOR_SIZE


ST340014A = DiskParams()


class DiskModel:
    """Stateful head-position model producing per-request service times."""

    def __init__(self, params: DiskParams = ST340014A) -> None:
        self.params = params
        self._head = 0  # sector position after last request
        self.seeks = 0
        self.sequential_hits = 0

    def service_time(self, sector: int, nsectors: int) -> float:
        """Time to serve a request at ``sector`` of ``nsectors``; moves
        the head."""
        if sector < 0 or nsectors < 1:
            raise ValueError(f"bad request geometry {sector}+{nsectors}")
        p = self.params
        distance = abs(sector - self._head)
        t = p.controller_overhead
        if distance > p.near_threshold:
            self.seeks += 1
            seek = min(p.max_seek, p.track_to_track + p.seek_coef * math.sqrt(distance))
            t += seek + p.rot_miss_factor * p.rotation_usec
        else:
            self.sequential_hits += 1
        t += (nsectors * SECTOR_SIZE) / p.bytes_per_usec
        self._head = sector + nsectors
        return t

    @property
    def head(self) -> int:
        return self._head
