"""Pluggable redundancy for remote memory: policies, codec, repair.

``repro.redundancy`` answers the ROADMAP's fault-tolerance item beyond
mirroring: a tenant's swap area can be replicated (``nway(r)``) or
Reed-Solomon striped (``rs(k,m)``, GF(256)) across the fleet, served
degraded while shards are lost, and healed by a background
:class:`RepairManager` at a modelled regeneration cost.
"""

try:
    from .gf256 import rs_encode, rs_matrix, rs_reconstruct
except ImportError:  # pragma: no cover — numpy-less env: sim still works
    rs_encode = rs_matrix = rs_reconstruct = None
from .policy import (
    PARITY_TOKEN_TAG,
    RedundancyPolicy,
    ShardGroup,
    parity_row_entry,
    parity_token,
    parse_policy,
    rs_decode_usec,
    rs_encode_usec,
)
from .repair import RepairManager

__all__ = [
    "PARITY_TOKEN_TAG",
    "RedundancyPolicy",
    "RepairManager",
    "ShardGroup",
    "parity_row_entry",
    "parity_token",
    "parse_policy",
    "rs_decode_usec",
    "rs_encode_usec",
    "rs_encode",
    "rs_matrix",
    "rs_reconstruct",
]
