"""GF(256) arithmetic and a systematic Reed-Solomon codec.

Numpy-vectorized over log/antilog tables (the classic software-RS
construction): multiplication is two table lookups and an addition mod
255, so encoding a stripe is ``m`` scalar-vector multiply-XOR passes
over the data shards — no per-byte Python.  The field is GF(2^8) with
the primitive polynomial ``x^8 + x^4 + x^3 + x^2 + 1`` (0x11d, the
common RS-255 choice) and generator 2.

The encoding matrix is a systematic Vandermonde: build the (k+m) x k
Vandermonde over distinct field points, Gauss-Jordan the top k rows to
the identity, and keep the bottom m rows as parity coefficients.  Any k
of the k+m shards then carry an invertible submatrix, which is what
:func:`rs_reconstruct` inverts to recover missing shards.

This module is pure data-plane math: the simulator's request path only
models the *cost* of these operations (see :mod:`repro.redundancy.
policy`), while the benchmark (``benchmarks/bench_rs_encode.py``) and
the tests run the real codec.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "GF_EXP",
    "GF_LOG",
    "gf_mul",
    "gf_matmul",
    "gf_inv_matrix",
    "rs_matrix",
    "rs_encode",
    "rs_reconstruct",
]

#: primitive polynomial x^8+x^4+x^3+x^2+1 (0x11d), generator alpha=2
_POLY = 0x11D


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    exp = np.zeros(512, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= _POLY
    # Doubled antilog table: EXP[log a + log b] needs no mod in the
    # hot loop (indices stay < 510).
    exp[255:510] = exp[:255]
    return exp, log


GF_EXP, GF_LOG = _build_tables()


def gf_mul(a: int, b: int) -> int:
    """Scalar product in GF(256)."""
    if a == 0 or b == 0:
        return 0
    return int(GF_EXP[GF_LOG[a] + GF_LOG[b]])


def _gf_scale_xor(acc: np.ndarray, coef: int, v: np.ndarray) -> None:
    """``acc ^= coef * v`` vectorized (the RS inner loop)."""
    if coef == 0:
        return
    if coef == 1:
        np.bitwise_xor(acc, v, out=acc)
        return
    log_c = int(GF_LOG[coef])
    nz = v != 0
    prod = np.zeros_like(v)
    prod[nz] = GF_EXP[log_c + GF_LOG[v[nz]]]
    np.bitwise_xor(acc, prod, out=acc)


def gf_matmul(mat: np.ndarray, shards: np.ndarray) -> np.ndarray:
    """Multiply an (r x k) GF matrix by k shard rows of L bytes each."""
    r, k = mat.shape
    if shards.shape[0] != k:
        raise ValueError(f"matrix is {r}x{k}, got {shards.shape[0]} shards")
    out = np.zeros((r, shards.shape[1]), dtype=np.uint8)
    for i in range(r):
        for j in range(k):
            _gf_scale_xor(out[i], int(mat[i, j]), shards[j])
    return out


def gf_inv_matrix(mat: np.ndarray) -> np.ndarray:
    """Invert a square GF(256) matrix by Gauss-Jordan elimination."""
    n = mat.shape[0]
    if mat.shape != (n, n):
        raise ValueError(f"matrix {mat.shape} is not square")
    aug = np.zeros((n, 2 * n), dtype=np.uint8)
    aug[:, :n] = mat
    aug[:, n:] = np.eye(n, dtype=np.uint8)
    for col in range(n):
        pivot = None
        for row in range(col, n):
            if aug[row, col]:
                pivot = row
                break
        if pivot is None:
            raise ValueError("singular matrix (shard set not decodable)")
        if pivot != col:
            aug[[col, pivot]] = aug[[pivot, col]]
        # Scale the pivot row to 1: multiply by the pivot's inverse.
        inv = int(GF_EXP[255 - GF_LOG[aug[col, col]]])
        for j in range(2 * n):
            aug[col, j] = gf_mul(int(aug[col, j]), inv)
        for row in range(n):
            if row == col or not aug[row, col]:
                continue
            coef = int(aug[row, col])
            _gf_scale_xor(aug[row], coef, aug[col])
    return aug[:, n:].copy()


def rs_matrix(k: int, m: int) -> np.ndarray:
    """The systematic (k+m) x k encoding matrix: identity on top, m
    Vandermonde-derived parity rows below."""
    if k < 1 or m < 1:
        raise ValueError(f"bad RS geometry k={k} m={m}")
    if k + m > 255:
        raise ValueError(f"k+m={k + m} exceeds the GF(256) shard bound")
    vand = np.zeros((k + m, k), dtype=np.uint8)
    for r in range(k + m):
        x = 1
        for c in range(k):
            vand[r, c] = x
            x = gf_mul(x, r + 1)  # distinct evaluation points 1..k+m
    # Right-multiplying by the inverse of the top k rows turns them
    # into the identity (systematic form); the bottom m rows become the
    # parity coefficients.
    return _systematize(vand, k)


def _systematize(vand: np.ndarray, k: int) -> np.ndarray:
    """Right-multiply the Vandermonde by the inverse of its top k rows."""
    top_inv = gf_inv_matrix(vand[:k].copy())
    out = np.zeros_like(vand)
    rows, _ = vand.shape
    for r in range(rows):
        for c in range(k):
            acc = 0
            for t in range(k):
                acc ^= gf_mul(int(vand[r, t]), int(top_inv[t, c]))
            out[r, c] = acc
    return out


def rs_encode(matrix: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Encode k data shards into m parity shards.

    ``matrix`` is the full systematic matrix from :func:`rs_matrix`;
    ``data`` is a (k, L) uint8 array.  Returns the (m, L) parity rows.
    """
    k = data.shape[0]
    if matrix.shape[1] != k:
        raise ValueError(
            f"matrix encodes {matrix.shape[1]} data shards, got {k}"
        )
    return gf_matmul(matrix[k:], data)


def rs_reconstruct(
    matrix: np.ndarray, shards: list[np.ndarray | None]
) -> list[np.ndarray]:
    """Recover every missing shard from any k survivors.

    ``shards`` lists all k+m shard rows in matrix order with ``None``
    for the missing ones; returns the full shard list, reconstructed.
    """
    total, k = matrix.shape
    if len(shards) != total:
        raise ValueError(f"expected {total} shard slots, got {len(shards)}")
    present = [i for i, s in enumerate(shards) if s is not None]
    if len(present) < k:
        raise ValueError(
            f"only {len(present)} of {total} shards survive; need {k}"
        )
    use = present[:k]
    sub = matrix[use]
    dec = gf_inv_matrix(sub)
    stack = np.vstack([shards[i] for i in use])
    data = gf_matmul(dec, stack)
    out: list[np.ndarray] = []
    for i in range(total):
        if shards[i] is not None:
            out.append(shards[i])
        elif i < k:
            out.append(data[i])
        else:
            out.append(gf_matmul(matrix[i : i + 1], data)[0])
    return out
