"""Background repair: re-encode lost shards after a server loss.

The :class:`RepairManager` is the control-plane half of the redundancy
subsystem.  It watches daemon liveness (the same ``alive`` flag the
fault injector flips and the registry heartbeats), and when a group
member comes back wiped — or stays down long enough that a spare is
warranted — it rebuilds the lost shard from the surviving ones:

* ``rs(k,m)`` data shard: decode the lost column out of any clean
  parity shard's row tokens;
* ``rs(k,m)`` parity shard: re-encode rows from the k data shards;
* ``nway(r)`` member: copy each of its extents from a surviving ring
  replica.

Repair traffic is charged through the migrator's throttled bulk
channel (:meth:`~repro.cluster.migration.ChunkMigrator.bulk_copy`) at
the policy's regeneration cost — rs moves ``(k+m)/k`` bytes per lost
byte, replication moves ``1x`` — plus a GF(256) re-encode delay, so
recovery is never modelled as free (INDIGO's point).  The store-level
restore itself is exact: :meth:`~repro.hpbd.ramdisk.RamDisk.peek` the
survivors, reconstruct per-page entries, :meth:`~repro.hpbd.ramdisk.
RamDisk.restore` them, then tell the driver at the *same instant*
(:meth:`~repro.hpbd.client.HPBDClient.notify_repaired` /
``notify_rebuilt``) so in-flight writes get their catch-up posts and
no update can fall between restore and resumption.

A member that has been down at any point is *dirty* until its rebuild
completes, and only clean members serve as reconstruction sources;
data shards rebuild before parity shards so a two-loss ``rs(4,2)``
incident drains in dependency order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..simulator import SimulationError, Simulator, StatsRegistry
from ..units import PAGE_SIZE
from .policy import ShardGroup, parity_row_entry, parity_token, rs_decode_usec

__all__ = ["RepairManager"]


@dataclass
class _Watch:
    """One (tenant, driver, group) under repair supervision."""

    tenant: str
    client: object  # HPBDClient (duck-typed: notify_* + server_area_bases)
    group: ShardGroup
    #: role indices lost (down at some point) since their last rebuild —
    #: a dirty member's store is wiped/stale and never a rebuild source
    dirty: set = field(default_factory=set)
    #: when each dirty role's server went down (spare-promotion clock)
    down_at: dict = field(default_factory=dict)


class RepairManager:
    """Watches group liveness and rebuilds lost shards in background.

    ``interval_usec`` paces the scan loop; ``spare_after_usec`` (off by
    default) promotes a rebuild onto a spare server when the lost
    member stays down longer than that — otherwise repair waits for the
    daemon to restart and rebuilds in place.  Rebuilds run one at a
    time (one repair pipeline per fleet), data shards first.
    """

    def __init__(
        self,
        sim: Simulator,
        registry,
        migrator,
        servers: list,
        interval_usec: float = 500.0,
        spare_after_usec: float | None = None,
        name: str = "repair",
        stats: StatsRegistry | None = None,
    ) -> None:
        if interval_usec <= 0:
            raise ValueError(f"bad repair interval {interval_usec}")
        if spare_after_usec is not None and spare_after_usec < 0:
            raise ValueError(f"bad spare delay {spare_after_usec}")
        self.sim = sim
        self.registry = registry
        self.migrator = migrator
        self.servers = servers
        self.interval_usec = interval_usec
        self.spare_after_usec = spare_after_usec
        self.name = name
        self.stats = stats if stats is not None else registry.stats
        self.watches: list[_Watch] = []
        self._prev_alive = [srv.alive for srv in servers]
        self._proc = None
        self._stopped = False
        self._rebuilding = False
        self._c_rebuilds = self.stats.counter(f"{name}.rebuilds")
        self._c_spare = self.stats.counter(f"{name}.spare_rebuilds")
        self._c_bytes = self.stats.counter(f"{name}.bytes_moved")
        self._c_lost = self.stats.counter(f"{name}.lost_bytes")
        self._c_aborts = self.stats.counter(f"{name}.aborts")
        self._t_rebuild = self.stats.tally(f"{name}.rebuild_usec")

    # -- supervision ---------------------------------------------------------

    def watch(self, tenant: str, client, group: ShardGroup) -> None:
        """Put one tenant's redundancy group under repair supervision."""
        if group.policy.kind == "none":
            raise ValueError(f"{tenant}: nothing to repair under 'none'")
        self.watches.append(_Watch(tenant=tenant, client=client, group=group))

    def start(self) -> None:
        """Spawn the scan loop (idempotent)."""
        if self._proc is None:
            self._proc = self.sim.spawn(self._run(), name=f"{self.name}.scan")

    def stop(self) -> None:
        self._stopped = True

    @property
    def pending(self) -> int:
        """Dirty shards across every watched group (0 == fully healed)."""
        return sum(len(w.dirty) for w in self.watches)

    def drain(self):
        """Wait (bounded) for in-progress and still-repairable rebuilds;
        generator.  A shard whose server never comes back (and no spare
        path is configured) stays dirty — that is a degraded steady
        state, not a hang, so the bound gives up on it quietly."""
        for _ in range(200):
            if not self._rebuilding and not self._any_repairable():
                return
            yield self.sim.timeout(self.interval_usec)

    # -- scan loop -----------------------------------------------------------

    def _run(self):
        sim = self.sim
        while not self._stopped:
            yield sim.timeout(self.interval_usec)
            self._detect_edges()
            yield from self._repair_pass()

    def _detect_edges(self) -> None:
        """Down edges dirty the member's role in every watching group
        and tell the driver immediately (control-plane dead verdict
        beats waiting out a request timeout)."""
        for s, srv in enumerate(self.servers):
            was, now_alive = self._prev_alive[s], srv.alive
            self._prev_alive[s] = now_alive
            if not was or now_alive:
                continue
            for w in self.watches:
                if s not in w.group.servers:
                    continue
                idx = w.group.shard_index(s)
                if idx not in w.dirty:
                    w.dirty.add(idx)
                    w.down_at[idx] = self.sim.now
                    self.sim.trace.instant(
                        self.name, "scan", "shard_lost",
                        tenant=w.tenant, server=s, shard=idx,
                    )
                w.client.notify_server_down(s)

    def _any_repairable(self) -> bool:
        for w in self.watches:
            for idx in w.dirty:
                if self.servers[w.group.servers[idx]].alive:
                    return True
        return False

    def _repair_order(self, w: _Watch) -> list[int]:
        """Dirty roles in rebuild order: data shards before parity (a
        data rebuild decodes from clean parity; once every data shard
        is clean, parity re-encodes from them)."""
        return sorted(w.dirty)

    def _sources_clean(self, w: _Watch, idx: int) -> bool:
        pol = w.group.policy
        if pol.kind == "rs":
            if idx < pol.k:
                return any(
                    j not in w.dirty
                    for j in range(pol.k, pol.k + pol.m)
                )
            return all(i not in w.dirty for i in range(pol.k))
        g = len(w.group.servers)
        r = pol.m + 1
        for j in range(r):
            owner = (idx - j) % g
            if not any(
                (owner + j2) % g != idx and (owner + j2) % g not in w.dirty
                for j2 in range(r)
            ):
                return False
        return True

    def _repair_pass(self):
        """One serial sweep: rebuild every repairable dirty shard."""
        for w in self.watches:
            progressed = True
            while progressed:
                progressed = False
                for idx in self._repair_order(w):
                    server = w.group.servers[idx]
                    if self.servers[server].alive:
                        if not self._sources_clean(w, idx):
                            continue
                        ok = yield from self._rebuild(w, idx, server, None)
                    elif (
                        self.spare_after_usec is not None
                        and self.sim.now - w.down_at.get(idx, self.sim.now)
                        >= self.spare_after_usec
                    ):
                        spare = self._pick_spare(w)
                        if spare is None or not self._sources_clean(w, idx):
                            continue
                        ok = yield from self._rebuild(w, idx, server, spare)
                    else:
                        continue
                    if ok:
                        progressed = True
                        break  # membership may have changed; re-sort

    def _pick_spare(self, w: _Watch) -> int | None:
        """Lowest-index alive non-member with room for the lost share;
        healthy servers beat quarantined ones (fail-slow advisory)."""
        need = w.group.member_need_bytes()
        cands = [
            s
            for s in range(len(self.servers))
            if self.servers[s].alive
            and s not in w.group.servers
            and self.registry.free_bytes(s) >= need
        ]
        healthy = [s for s in cands if not self.registry.quarantined[s]]
        pool = healthy or cands
        return pool[0] if pool else None

    # -- one rebuild ---------------------------------------------------------

    def _rebuild(self, w: _Watch, idx: int, old_server: int, spare):
        """Rebuild role ``idx`` in place (``spare is None``) or onto
        ``spare``; generator, returns True when the shard healed."""
        sim = self.sim
        group = w.group
        pol = group.policy
        lost = group.member_need_bytes()
        traffic = pol.repair_traffic_bytes(lost)
        self._rebuilding = True
        t0 = sim.now
        try:
            if spare is not None:
                # Reserve-before-copy, like migration: the spare extent
                # must fit before any simulated bytes move.
                new_base = self.registry.reserve(w.tenant, spare, lost)
            # One stream per source member (k surviving shards for rs,
            # one per replicated extent for nway): the reads genuinely
            # happen in parallel, and the concurrency is what makes a
            # tight migration throttle observable — later streams queue
            # behind the shared budget cursor (``mig.throttle_waits``).
            nstreams = pol.k if pol.kind == "rs" else pol.m + 1
            base, rem = divmod(traffic, nstreams)
            streams = [
                sim.spawn(
                    self.migrator.bulk_copy(
                        w.tenant, base + (1 if i < rem else 0),
                        label=f"rebuild{idx}.s{i}",
                    ),
                    name=f"{self.name}.rebuild{idx}.s{i}",
                )
                for i in range(nstreams)
                if base + (1 if i < rem else 0) > 0
            ]
            for proc in streams:
                yield proc
            if pol.kind == "rs":
                # Regenerating one shard is a k-column GF(256) solve.
                yield sim.timeout(rs_decode_usec(lost, pol))
            # The fleet may have moved under the copy: re-check edges,
            # then the target and every source, before touching stores.
            self._detect_edges()
            target = spare if spare is not None else old_server
            if not self.servers[target].alive or not self._sources_clean(
                w, idx
            ):
                if spare is not None:
                    self.registry.release(w.tenant, spare, lost)
                self._c_aborts.add()
                return False
            if spare is None:
                new_base = w.client.server_area_bases[old_server]
            self._restore(w, idx, target, new_base)
            w.dirty.discard(idx)
            w.down_at.pop(idx, None)
            if spare is not None:
                # The dead member's extent returns to the books; its
                # address space dies with the daemon (bump allocator).
                self.registry.release(w.tenant, old_server, lost)
                self._c_spare.add()
                w.client.notify_rebuilt(old_server, spare, new_base)
            else:
                w.client.notify_repaired(old_server)
            self._c_rebuilds.add()
            self._c_bytes.add(traffic)
            self._c_lost.add(lost)
            self._t_rebuild.record(sim.now - t0)
            sim.trace.complete(
                self.name, "rebuild", f"{w.tenant}/shard{idx}",
                "repair.rebuild", t0, sim.now,
                tenant=w.tenant, shard=idx, server=target,
                nbytes=lost, moved=traffic,
                spare=spare is not None,
            )
            return True
        finally:
            self._rebuilding = False

    # -- store reconstruction ------------------------------------------------

    def _restore(
        self, w: _Watch, idx: int, target: int, target_base: int
    ) -> None:
        pol = w.group.policy
        if pol.kind == "rs":
            if idx < pol.k:
                self._restore_rs_data(w, idx, target, target_base)
            else:
                self._restore_rs_parity(w, idx, target, target_base)
        else:
            self._restore_nway(w, idx, target, target_base)

    def _peek_member(self, w: _Watch, idx: int, offset: int, nbytes: int):
        server = w.group.servers[idx]
        base = w.client.server_area_bases[server]
        return self.servers[server].ramdisk.peek(base + offset, nbytes)

    def _restore_rs_data(
        self, w: _Watch, idx: int, target: int, target_base: int
    ) -> None:
        """Decode the lost data column out of the surviving parity row
        tokens.  Every clean parity shard is consulted per row: a write
        whose copy to one parity server was dropped mid-crash can leave
        that server's row stale, but some clean parity saw the last
        acknowledged update (the driver never completes a write with
        zero acks)."""
        group = w.group
        pol = group.policy
        share = group.share_bytes
        peeks = [
            self._peek_member(w, j, 0, share)
            for j in range(pol.k, pol.k + pol.m)
            if j not in w.dirty
        ]
        if not peeks:
            raise SimulationError(
                f"{self.name}: no clean parity to rebuild shard {idx}"
            )
        entries = []
        for row in range(share // PAGE_SIZE):
            got = None
            for peek in peeks:
                got = parity_row_entry(peek[row], row, idx)
                if got is not None:
                    break
            entries.append(got)
        self.servers[target].ramdisk.restore(target_base, tuple(entries))

    def _restore_rs_parity(
        self, w: _Watch, idx: int, target: int, target_base: int
    ) -> None:
        """Re-encode parity rows from the k (clean) data shards."""
        group = w.group
        pol = group.policy
        share = group.share_bytes
        peeks = [self._peek_member(w, i, 0, share) for i in range(pol.k)]
        entries = []
        for row in range(share // PAGE_SIZE):
            row_tuple = tuple(peek[row] for peek in peeks)
            if all(e is None for e in row_tuple):
                entries.append(None)  # never-written stripe row
            else:
                entries.append((parity_token(((row, row_tuple),)), 0))
        self.servers[target].ramdisk.restore(target_base, tuple(entries))

    def _restore_nway(
        self, w: _Watch, idx: int, target: int, target_base: int
    ) -> None:
        """Copy each of the member's r extents (its own chunk plus the
        replicas it hosts) from a surviving clean ring copy."""
        group = w.group
        pol = group.policy
        share = group.share_bytes
        g = len(group.servers)
        for j in range(pol.m + 1):
            owner = (idx - j) % g
            src = None
            for j2 in range(pol.m + 1):
                holder = (owner + j2) % g
                if holder != idx and holder not in w.dirty:
                    src = (holder, j2)
                    break
            if src is None:
                raise SimulationError(
                    f"{self.name}: chunk of member {owner} has no clean "
                    f"copy left (nway({pol.m + 1}) beyond tolerance)"
                )
            entries = self._peek_member(w, src[0], src[1] * share, share)
            self.servers[target].ramdisk.restore(
                target_base + j * share, entries
            )
