"""Redundancy policies: how a tenant's remote pages survive server loss.

A policy string parses into a :class:`RedundancyPolicy`:

* ``none``      — no redundancy (the paper's baseline);
* ``nway(r)``   — r-way replication: every chunk lives on r ring
  successors, overhead r.0x, tolerates r-1 failures (``nway(2)`` is the
  paper's NRD/RRMP-style mirroring, generalized);
* ``rs(k,m)``   — Reed-Solomon striping over GF(256): k data shards +
  m parity shards on k+m distinct servers, overhead (k+m)/k, tolerates
  any m failures — the cheaper answer the ROADMAP's erasure-coding item
  asks for.

The placement layer turns a policy into a :class:`ShardGroup` (which
fleet servers hold which shard), admission reserves the group, and the
driver + :class:`~repro.redundancy.repair.RepairManager` consume it on
the data path.  Encode/decode *costs* on the simulated request path are
modelled from the measured GF(256) codec throughput (see
``benchmarks/bench_rs_encode.py``); the real codec lives in
:mod:`repro.redundancy.gf256`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = [
    "RedundancyPolicy",
    "ShardGroup",
    "parse_policy",
    "PARITY_TOKEN_TAG",
    "parity_token",
    "parity_row_entry",
    "rs_encode_usec",
    "rs_decode_usec",
]

#: modelled GF(256) encode/decode throughput on the client CPU, in
#: bytes per microsecond (~1.2 GB/s — conservative against the measured
#: numpy codec, see the ``rs_encode_mb_s`` floor in
#: BENCH_simulator.json).  The repair path re-encodes at the same rate.
GF_THROUGHPUT_BYTES_PER_USEC = 1200.0

#: first element of every parity data-token (see :func:`parity_token`)
PARITY_TOKEN_TAG = "rsP"


@dataclass(frozen=True)
class RedundancyPolicy:
    """One parsed redundancy policy."""

    kind: str  # "none" | "nway" | "rs"
    k: int = 1  # data shards per stripe (nway: ring size is group-wide)
    m: int = 0  # redundancy shards (nway: extra copies = r-1)

    def __post_init__(self) -> None:
        if self.kind not in ("none", "nway", "rs"):
            raise ValueError(f"unknown redundancy kind {self.kind!r}")
        if self.kind == "rs" and (self.k < 2 or self.m < 1):
            raise ValueError(f"rs needs k>=2 and m>=1, got ({self.k},{self.m})")
        if self.kind == "nway" and self.m < 1:
            raise ValueError(f"nway needs r>=2 copies, got r={self.m + 1}")

    @property
    def width(self) -> int:
        """Distinct servers one stripe/replica-set touches."""
        if self.kind == "rs":
            return self.k + self.m
        if self.kind == "nway":
            return self.m + 1
        return 1

    @property
    def fault_tolerance(self) -> int:
        """Simultaneous server losses survived without data loss."""
        return self.m

    @property
    def overhead(self) -> float:
        """Stored bytes per byte of tenant data."""
        if self.kind == "rs":
            return (self.k + self.m) / self.k
        if self.kind == "nway":
            return float(self.m + 1)
        return 1.0

    def repair_traffic_bytes(self, lost_bytes: int) -> int:
        """Modelled fabric bytes to regenerate ``lost_bytes`` of shard.

        n-way repair is a plain re-copy from a surviving replica (1x).
        RS repair uses aggregated partial-sum regeneration: each of the
        surviving shards ships its coded contribution combined in-network
        (INDIGO-style bandwidth-aware recovery), which amortizes to
        (k+m)/k bytes moved per lost byte instead of a naive k+1.
        """
        if self.kind == "rs":
            return -(-lost_bytes * (self.k + self.m) // self.k)
        return lost_bytes

    @property
    def label(self) -> str:
        if self.kind == "rs":
            return f"rs({self.k},{self.m})"
        if self.kind == "nway":
            return f"nway({self.m + 1})"
        return "none"


_POLICY_RE = re.compile(
    r"^\s*(?:(none)|nway\(\s*(\d+)\s*\)|rs\(\s*(\d+)\s*,\s*(\d+)\s*\))\s*$"
)


def parse_policy(spec: str | RedundancyPolicy) -> RedundancyPolicy:
    """Parse ``"none"`` / ``"nway(r)"`` / ``"rs(k,m)"``."""
    if isinstance(spec, RedundancyPolicy):
        return spec
    m = _POLICY_RE.match(spec)
    if m is None:
        raise ValueError(
            f"bad redundancy policy {spec!r} "
            "(want 'none', 'nway(r)' or 'rs(k,m)')"
        )
    if m.group(1):
        return RedundancyPolicy("none")
    if m.group(2):
        r = int(m.group(2))
        if r < 2:
            raise ValueError(f"nway needs r>=2, got {r}")
        return RedundancyPolicy("nway", k=1, m=r - 1)
    return RedundancyPolicy("rs", k=int(m.group(3)), m=int(m.group(4)))


@dataclass
class ShardGroup:
    """One tenant's redundancy group: which fleet server holds which
    shard role, plus the per-shard store size.

    For ``rs(k,m)`` the first k members hold the data shards (device
    bytes ``[i*share, (i+1)*share)`` on member i) and the last m hold
    parity; every member stores exactly ``share_bytes`` and a stripe
    *row* is the same store offset on every member.  For ``nway(r)``
    all members hold data (blocking layout over the ring) and member
    ``(i+j) % g`` stores copy j of member i's chunk at store offset
    ``j * share_bytes``.

    ``servers`` is mutable: background repair may rebuild a lost shard
    onto a spare, swapping the member in place (the shard *role* keeps
    its index).
    """

    policy: RedundancyPolicy
    servers: list[int]
    share_bytes: int
    #: per-member store offset of the group area on that server
    area_bases: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(set(self.servers)) != len(self.servers):
            raise ValueError(f"duplicate servers in group {self.servers}")
        if self.policy.kind == "rs" and len(self.servers) != self.policy.width:
            raise ValueError(
                f"rs({self.policy.k},{self.policy.m}) group needs "
                f"{self.policy.width} servers, got {len(self.servers)}"
            )
        if self.policy.kind == "nway" and len(self.servers) < self.policy.width:
            raise ValueError(
                f"nway({self.policy.m + 1}) ring needs at least "
                f"{self.policy.width} servers, got {len(self.servers)}"
            )
        if not self.area_bases:
            self.area_bases = [0] * len(self.servers)

    @property
    def data_servers(self) -> list[int]:
        if self.policy.kind == "rs":
            return self.servers[: self.policy.k]
        return list(self.servers)

    @property
    def parity_servers(self) -> list[int]:
        if self.policy.kind == "rs":
            return self.servers[self.policy.k :]
        return []

    def shard_index(self, server: int) -> int:
        """Position of a fleet server inside the group."""
        return self.servers.index(server)

    def member_need_bytes(self) -> int:
        """Store bytes each member reserves (rs: one shard; nway: own
        chunk plus r-1 predecessors' replicas)."""
        if self.policy.kind == "nway":
            return self.share_bytes * (self.policy.m + 1)
        return self.share_bytes

    def replace_server(self, old: int, new: int, new_base: int) -> int:
        """Swap a lost member for a rebuilt spare; returns the shard
        index that moved."""
        idx = self.servers.index(old)
        if new in self.servers:
            raise ValueError(f"server {new} is already a group member")
        self.servers[idx] = new
        self.area_bases[idx] = new_base
        return idx


# -- parity data-tokens -------------------------------------------------------
#
# The simulator's RamDisk stores an opaque *token* per page instead of
# bytes; data loss is observable as a token that cannot be produced.  A
# parity shard's token therefore carries, per stripe row it covers, the
# full k-tuple of (token, page_index) entries current on the data
# shards when the parity update was issued — exactly the information
# GF(256) parity carries about its stripe, in token form.  Degraded
# reads and background repair recover a lost shard's entries from any
# surviving parity token (the per-row write gate in the client keeps
# parity updates of one row strictly serialized, so last-write-wins at
# the server is sound).


def parity_token(rows: tuple) -> tuple:
    """Build a parity data-token from ``((row, row_tuple), ...)``."""
    return (PARITY_TOKEN_TAG, rows)


def parity_row_entry(entry: object, row: int, shard: int):
    """Extract shard ``shard``'s (token, idx) for stripe ``row`` from a
    stored parity page entry ``(parity_token, page_idx)``; ``None`` if
    the parity page does not cover that row (never written)."""
    if entry is None:
        return None
    ptok, _pidx = entry
    if not (isinstance(ptok, tuple) and ptok and ptok[0] == PARITY_TOKEN_TAG):
        return None
    for r, row_tuple in ptok[1]:
        if r == row:
            return row_tuple[shard]
    return None


def rs_encode_usec(nbytes: int, policy: RedundancyPolicy) -> float:
    """Modelled client CPU time to compute parity for ``nbytes`` of
    data: m GF multiply-XOR passes over the written extent."""
    if policy.kind != "rs":
        return 0.0
    return policy.m * nbytes / GF_THROUGHPUT_BYTES_PER_USEC


def rs_decode_usec(nbytes: int, policy: RedundancyPolicy) -> float:
    """Modelled client CPU time to reconstruct ``nbytes`` of a lost
    shard from k survivors: one k-term GF matrix-vector pass."""
    if policy.kind != "rs":
        return 0.0
    return policy.k * nbytes / GF_THROUGHPUT_BYTES_PER_USEC
