"""Scenario runner: build the cluster, run the workloads, collect results.

``run_scenario`` is the single entry point the examples, tests and
benchmarks share.  It assembles one compute node plus whatever the
device config asks for (memory servers, an NBD server, a disk), runs
every workload instance as its own process, waits for all of them,
quiesces the VM, checks the ledgers, and returns a
:class:`~repro.results.ScenarioResult`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .config import HPBD, DeviceConfig, LocalDisk, LocalMemory, NBD, ScenarioConfig
from .disk.driver import DiskDevice
from .faults import FaultInjector
from .hpbd.client import HPBDClient
from .hpbd.server import HPBDServer
from .kernel.node import Node
from .nbd.client import NBDClient
from .nbd.server import NBDServer
from .net.link import Fabric
from .results import InstanceResult, ScenarioResult
from .simulator import Simulator, StatsRegistry, all_of
from .units import MiB, bytes_to_pages, pages_to_bytes
from .workloads.base import execute

if TYPE_CHECKING:  # pragma: no cover
    from .obs.metrics import MetricsHub

__all__ = ["run_scenario", "build_scenario"]


class _Scenario:
    """Everything constructed for one run (exposed for white-box tests)."""

    def __init__(self, cfg: ScenarioConfig, trace: bool = False) -> None:
        self.cfg = cfg
        self.sim = Simulator()
        if trace:
            self.sim.enable_tracing()
        self.stats = StatsRegistry()
        self.fabric = Fabric(self.sim, stats=self.stats)
        self.node = Node(
            self.sim,
            self.fabric,
            "compute",
            mem_bytes=cfg.usable_mem_bytes,
            ncpus=cfg.ncpus,
            vm_params=cfg.vm_params,
            stats=self.stats,
        )
        self.metrics: "MetricsHub | None" = None
        if trace:
            from .obs import MetricsHub

            self.metrics = MetricsHub(self.node, stats=self.stats)
        self.hpbd_client: HPBDClient | None = None
        self.hpbd_servers: list[HPBDServer] = []
        self.nbd_client: NBDClient | None = None
        self.nbd_server: NBDServer | None = None
        self.disk: DiskDevice | None = None
        self.fallback_disk: DiskDevice | None = None
        self.queue = None
        self._build_device(cfg.device)
        self.fault_injector: FaultInjector | None = None
        if cfg.faults is not None and cfg.faults.plan is not None:
            self.fault_injector = FaultInjector(
                self.sim,
                cfg.faults.plan,
                stats=self.stats,
                fabric=self.fabric,
                hpbd_servers=self.hpbd_servers,
                hpbd_client=self.hpbd_client,
                nbd_server=self.nbd_server,
            )

    def _build_device(self, dev: DeviceConfig) -> None:
        cfg = self.cfg
        if isinstance(dev, LocalMemory):
            need = sum(w.npages for w in cfg.workloads)
            have = bytes_to_pages(cfg.usable_mem_bytes)
            # The whole working set must stay resident above the high
            # watermark, or kswapd would (pointlessly) run with no swap.
            capacity = int(have * (1.0 - cfg.vm_params.frac_high))
            if need >= capacity:
                raise ValueError(
                    f"local-memory scenario needs {pages_to_bytes(need)} B "
                    f"resident but only {pages_to_bytes(capacity)} B fit "
                    f"above the watermarks"
                )
            return
        if cfg.swap_bytes <= 0:
            raise ValueError(f"{dev.label} scenario needs swap_bytes > 0")
        faults = cfg.faults
        if isinstance(dev, HPBD):
            store = dev.server_store_bytes
            if store is None:
                # An equal share of the swap area, rounded up to MiB
                # (doubled when mirroring — share + a replica area — or
                # when remap mode may land a dead peer's chunk here).
                share = -(-cfg.swap_bytes // dev.nservers)
                store = -(-share // MiB) * MiB
                if dev.mirror or (
                    faults is not None and faults.degraded_mode == "remap"
                ):
                    store *= 2
            for i in range(dev.nservers):
                self.hpbd_servers.append(
                    HPBDServer(
                        self.sim,
                        self.fabric,
                        f"mem{i}",
                        store_bytes=store,
                        ib_params=dev.ib,
                        staging_pool_bytes=dev.staging_pool_bytes,
                        max_outstanding_rdma=dev.max_outstanding_rdma,
                        stats=self.stats,
                    )
                )
            recovery: dict = {}
            if faults is not None:
                if faults.degraded_mode == "disk":
                    self.fallback_disk = DiskDevice(
                        self.sim,
                        name="fallback_hda",
                        params=faults.fallback_disk,
                        swap_partition_bytes=cfg.swap_bytes,
                        stats=self.stats,
                    )
                    recovery["fallback_queue"] = self.fallback_disk.queue
                recovery.update(
                    request_timeout_usec=faults.request_timeout_usec,
                    max_retries=faults.max_retries,
                    retry_backoff_usec=faults.retry_backoff_usec,
                    backoff_mult=faults.backoff_mult,
                    degraded_mode=faults.degraded_mode,
                    ewma_select=faults.ewma_select,
                    hedge_reads=faults.hedge_reads,
                    hedge_k=faults.hedge_k,
                    hedge_min_usec=faults.hedge_min_usec,
                )
            self.hpbd_client = HPBDClient(
                self.sim,
                self.node,
                self.hpbd_servers,
                total_bytes=cfg.swap_bytes,
                ib_params=dev.ib,
                pool_bytes=dev.pool_bytes,
                credits_per_server=dev.credits_per_server,
                stats=self.stats,
                register_on_fly=dev.register_on_fly,
                stripe_bytes=dev.stripe_bytes,
                mirror=dev.mirror,
                **recovery,
            )
            self.queue = self.hpbd_client.queue
        elif isinstance(dev, NBD):
            params = dev.params()
            self.nbd_server = NBDServer(
                self.sim,
                self.fabric,
                "nbdsrv",
                store_bytes=cfg.swap_bytes,
                tcp_params=params,
                stats=self.stats,
            )
            self.nbd_client = NBDClient(
                self.sim,
                self.node,
                self.nbd_server,
                total_bytes=cfg.swap_bytes,
                tcp_params=params,
                stats=self.stats,
                request_timeout_usec=(
                    faults.request_timeout_usec if faults is not None else None
                ),
                max_retries=faults.max_retries if faults is not None else 2,
            )
            self.queue = self.nbd_client.queue
        elif isinstance(dev, LocalDisk):
            self.disk = DiskDevice(
                self.sim,
                name="hda",
                params=dev.params,
                swap_partition_bytes=cfg.swap_bytes,
                stats=self.stats,
            )
            self.queue = self.disk.queue
        else:  # pragma: no cover - DeviceConfig is closed
            raise TypeError(f"unknown device config {dev!r}")

    # -- execution ----------------------------------------------------------

    def run(self) -> ScenarioResult:
        cfg = self.cfg
        sim = self.sim
        results: list[InstanceResult] = []

        def main(sim):
            # Device bring-up (outside the measured window, as in §6.1:
            # the swap device is configured before the runs start).
            if self.hpbd_client is not None:
                yield from self.hpbd_client.connect()
            if self.nbd_client is not None:
                yield from self.nbd_client.connect()
            if self.queue is not None:
                self.node.swapon(self.queue, cfg.swap_bytes)
            if self.fault_injector is not None:
                self.fault_injector.start()
            if self.metrics is not None:
                self._register_watches(self.metrics)
                self.metrics.start()
            t_start = sim.now
            procs = []
            for i, workload in enumerate(cfg.workloads):
                aspace = self.node.vmm.create_address_space(
                    workload.npages, name=f"{workload.name}#{i}"
                )
                procs.append(
                    (
                        workload,
                        aspace,
                        sim.spawn(
                            execute(workload, self.node, aspace),
                            name=f"{workload.name}#{i}",
                        ),
                    )
                )
            elapsed_list = yield all_of(sim, [p for (_w, _a, p) in procs])
            for (workload, aspace, _proc), elapsed in zip(procs, elapsed_list):
                results.append(
                    InstanceResult(
                        workload=workload.name,
                        elapsed_usec=elapsed,
                        major_faults=aspace.major_faults,
                        minor_faults=aspace.minor_faults,
                        stall_usec=aspace.stall_usec,
                    )
                )
            wall = sim.now - t_start
            if self.metrics is not None:
                self.metrics.stop()
            yield from self.node.vmm.quiesce()
            if self.hpbd_client is not None:
                # Semi-sync mirrored writes may still have straggler
                # acks in flight; let them land before the audits.
                yield from self.hpbd_client.drain()
            # Post-run integrity: ledgers must balance.
            self.node.vmm.check_frame_accounting()
            if self.hpbd_client is not None and self.hpbd_client.pool is not None:
                self.hpbd_client.pool.check_invariants()
            # Teardown audits: every quiesced component reports its
            # conservation invariants to sim.monitors.
            if self.queue is not None:
                self.queue.audit_teardown()
            if self.fallback_disk is not None:
                self.fallback_disk.queue.audit_teardown()
            if self.hpbd_client is not None:
                self.hpbd_client.audit_teardown()
            for srv in self.hpbd_servers:
                srv.audit_teardown()
            return wall

        proc = sim.spawn(main(sim), name="scenario")
        wall = sim.run(until=proc)
        return self._collect(results, wall)

    def _register_watches(self, metrics: "MetricsHub") -> None:
        """Utilization/queue-depth gauges sampled each metrics tick."""
        node = self.node
        metrics.watch(
            "cpus", lambda: {"busy": float(node.cpus.in_use)}
        )
        queue = self.queue
        if queue is not None:
            metrics.watch(
                "rq",
                lambda: {
                    "in_flight": float(queue.in_flight),
                    "ready": float(queue.dispatch_depth),
                },
            )
        client = self.hpbd_client
        if client is not None:
            metrics.watch(
                "credits",
                lambda: {
                    "tokens": float(
                        sum(b.tokens for b in client._credits)
                    ),
                    "waiting": float(
                        sum(b.queue_length for b in client._credits)
                    ),
                },
            )
            metrics.watch(
                "pool",
                lambda: {
                    "free_bytes": float(client.pool.free_bytes),
                    "waiting": float(client.pool.waiting),
                }
                if client.pool is not None
                else {},
            )
        for srv in self.hpbd_servers:
            metrics.watch(
                f"{srv.name}.rdma",
                lambda srv=srv: {
                    "slots_in_use": float(srv._rdma_slots.in_use)
                },
            )

    def _collect(
        self, instances: list[InstanceResult], wall: float
    ) -> ScenarioResult:
        stats = self.stats
        label = self.cfg.label

        def counter_total(name: str) -> int:
            c = stats.get(name)
            return int(c.total) if c is not None else 0

        read_sizes = np.array([], dtype=np.float64)
        write_sizes = np.array([], dtype=np.float64)
        trace: list[tuple[float, str, int]] = []
        if self.queue is not None:
            rt = stats.get(f"{self.queue.name}.req_bytes.read")
            wt = stats.get(f"{self.queue.name}.req_bytes.write")
            read_sizes = rt.values().copy() if rt is not None else read_sizes
            write_sizes = wt.values().copy() if wt is not None else write_sizes
            trace = self.queue.request_trace()
        network_bytes: dict[str, int] = {}
        for name in stats.names():
            if name.startswith("fabric.bytes."):
                network_bytes[name.removeprefix("fabric.bytes.")] = int(
                    stats.get(name).total
                )
        blame_usec: dict[str, float] = {}
        if self.sim.trace.enabled:
            from .analysis.critpath import aggregate_blame, request_paths

            blame_usec = aggregate_blame(request_paths(self.sim.trace))
        monitors = self.sim.monitors
        return ScenarioResult(
            label=label,
            instances=instances,
            elapsed_usec=wall,
            swapout_pages=counter_total("compute.vm.swapout_pages"),
            swapin_pages=counter_total("compute.vm.swapin_pages"),
            read_request_bytes=read_sizes,
            write_request_bytes=write_sizes,
            request_trace=trace,
            network_bytes=network_bytes,
            client_copy_usec=(
                self.hpbd_client.copy_usec if self.hpbd_client is not None else 0.0
            ),
            blame_usec=blame_usec,
            invariant_violations=monitors.summary(),
            monitor_watermarks=dict(monitors.watermarks),
            registry=stats,
            trace=self.sim.trace if self.sim.trace.enabled else None,
        )


def build_scenario(cfg: ScenarioConfig, trace: bool = False) -> _Scenario:
    """Construct without running (white-box tests poke at the pieces)."""
    return _Scenario(cfg, trace=trace)


def run_scenario(cfg: ScenarioConfig, trace: bool = False) -> ScenarioResult:
    """Build and run one scenario to completion.

    With ``trace=True`` the run records a full cross-layer span tree
    (``result.trace``) and samples vmstat counters, at some simulation
    overhead; exporting is up to the caller (see :mod:`repro.obs`).

    Also accepts a :class:`~repro.config.ClusterScenarioConfig` —
    dispatching here keeps the sweep engine and every CLI entry point
    working unchanged for multi-tenant runs.
    """
    from .config import ClusterScenarioConfig

    if isinstance(cfg, ClusterScenarioConfig):
        from .cluster.runner import run_cluster_scenario

        return run_cluster_scenario(cfg, trace=trace)
    return _Scenario(cfg, trace=trace).run()
