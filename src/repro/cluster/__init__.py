"""Multi-tenant memory-server cluster: the scale-out layer.

HPBD's memory servers are "daemons allocating memory on behalf of
clients", and §5 notes a server "is able to serve multiple clients
using different swap areas" — but the paper only ever benchmarks one
client.  This package supplies the pieces a shared fleet needs:

* :mod:`.registry`   — fleet capacity book-keeping + heartbeat liveness;
* :mod:`.placement`  — pluggable chunk-map policies (the paper's
  blocking layout, least-loaded bin-packing, consistent-hash sharding);
* :mod:`.admission`  — reserve-on-connect admission control with typed
  NACKs and overcommit;
* :mod:`.qos`        — weighted-fair credit partitioning and service
  scheduling per tenant;
* :mod:`.migration`  — chunk migration between servers over a fluid
  bulk channel (elastic-fleet enabler);
* :mod:`.runner`     — the N-tenants-over-one-fleet scenario runner.
"""

from .admission import AdmissionController, AdmissionNack
from .migration import ChunkMigrator
from .placement import plan_placement
from .qos import WeightedFairScheduler, partition_credits
from .registry import CapacityError, FleetRegistry
from .results import ClusterResult, TenantResult
from .runner import run_cluster_scenario

__all__ = [
    "AdmissionController",
    "AdmissionNack",
    "CapacityError",
    "ChunkMigrator",
    "ClusterResult",
    "FleetRegistry",
    "TenantResult",
    "WeightedFairScheduler",
    "partition_credits",
    "plan_placement",
    "run_cluster_scenario",
]
