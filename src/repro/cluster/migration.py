"""Chunk migration between memory servers over a fluid bulk channel.

The ROADMAP's elastic-fleet work (drain a server before maintenance,
rebalance after admission skew, INDIGO-style page-migration campaigns)
all reduce to the same primitive: move a tenant's chunk from one server
to another without perturbing the request path.  A chunk is megabytes —
thousands of pages — so modelling it page-by-page through the scheduler
is exactly the event-chain shape the fluid fast path collapses:
uncontended, untraced migrations cost O(1) events per chunk, while a
tracer, a fault window, or a competing migration on the same uplink
expands them to per-page fidelity with bit-identical completion times
(see :mod:`repro.simulator.fluid`).

Capacity accounting goes through the :class:`~repro.cluster.registry.
FleetRegistry` ledger: the destination extent is reserved *before* the
copy starts (migration must never oversubscribe a server) and the
source extent is released only after the copy completes (the chunk is
never homeless); both edges land in the registry's conservation
monitors.
"""

from __future__ import annotations

from ..simulator import Process, Simulator, StatsRegistry
from ..simulator.fluid import FluidChannel
from .registry import FleetRegistry

__all__ = ["ChunkMigrator"]


class ChunkMigrator:
    """Moves tenant chunks between servers over one shared bulk channel.

    ``rate_bytes_per_usec`` models the migration uplink (defaults to
    ~800 MB/s, a conservative share of one IB SDR link so migrations do
    not shadow the request path).  Concurrent migrations share the
    channel fairly; each one is a :class:`BulkFlow` under the hood.

    ``throttle_mib_s`` caps the *aggregate* background-copy bandwidth
    below the channel rate: transfers are paced against a shared budget
    cursor, so concurrent copies queue behind one another instead of
    bursting at link speed (``mig.throttle_waits`` counts the stalls).
    Background repair and elastic migration share this knob — recovery
    traffic must never be modelled as free (INDIGO's point).
    """

    def __init__(
        self,
        sim: Simulator,
        registry: FleetRegistry,
        rate_bytes_per_usec: float = 800.0,
        page_bytes: int = 4096,
        name: str = "mig",
        stats: StatsRegistry | None = None,
        throttle_mib_s: float | None = None,
    ) -> None:
        if throttle_mib_s is not None and throttle_mib_s <= 0:
            raise ValueError(f"bad migration throttle {throttle_mib_s}")
        self.sim = sim
        self.registry = registry
        self.name = name
        self.stats = stats if stats is not None else registry.stats
        self.channel = FluidChannel(
            sim,
            rate_bytes_per_usec,
            page_bytes=page_bytes,
            name=f"{name}.chan",
            stats=self.stats,
        )
        #: MiB/s -> bytes/usec (both are 2^20-per-10^6 scaled)
        self.throttle_bytes_per_usec = (
            throttle_mib_s * (1024 * 1024) / 1e6
            if throttle_mib_s is not None
            else None
        )
        #: simulation time up to which the throttle budget is spoken for
        self._throttle_cursor = 0.0
        self._c_migrations = self.stats.counter(f"{name}.migrations")
        self._c_bytes = self.stats.counter(f"{name}.bytes")
        self._c_failed = self.stats.counter(f"{name}.failed")
        self._c_throttle_waits = self.stats.counter(f"{name}.throttle_waits")

    def _paced_transfer(self, nbytes: int, name: str):
        """One bulk copy through the shared channel, paced against the
        throttle budget; generator, returns the bytes moved."""
        sim = self.sim
        rate = self.throttle_bytes_per_usec
        if rate is not None:
            start = self._throttle_cursor
            duration = nbytes / rate
            self._throttle_cursor = max(start, sim.now) + duration
            if start > sim.now:
                # Budget already spoken for by an earlier copy: stall.
                self._c_throttle_waits.add()
                yield sim.timeout(start - sim.now)
        t0 = sim.now
        done = yield self.channel.transfer(nbytes, name=name)
        if rate is not None:
            # The channel may run faster than the throttle; pad the
            # copy out to its paced duration so the modelled bandwidth
            # never exceeds the cap.
            remaining = (t0 + nbytes / rate) - sim.now
            if remaining > 0:
                yield sim.timeout(remaining)
        return done

    def migrate(
        self, tenant: str, src: int, dst: int, nbytes: int
    ) -> Process:
        """Move ``nbytes`` of ``tenant``'s data from server ``src`` to
        ``dst``; returns the driving process (join it with ``yield``).
        The process value is the destination store offset.

        Reserve-before-copy happens *here*, synchronously: a migration
        that cannot fit on the destination raises
        :class:`~repro.cluster.registry.CapacityError` at the call site,
        before any simulated bytes move (mirroring how admission NACKs
        surface).
        """
        if src == dst:
            raise ValueError(f"migration src == dst ({src})")
        try:
            offset = self.registry.reserve(tenant, dst, nbytes)
        except Exception:
            self._c_failed.add()
            raise
        return self.sim.spawn(
            self._run(tenant, src, dst, nbytes, offset),
            name=f"{self.name}.move",
        )

    def bulk_copy(self, tenant: str, nbytes: int, label: str = "copy"):
        """A raw throttled copy with no reservation movement; generator,
        returns the bytes moved.  The repair path uses this — repair
        restores data into space the tenant already holds (or reserves
        explicitly for a spare rebuild), so only the fabric cost and the
        throttle budget apply."""
        done = yield from self._paced_transfer(
            nbytes, name=f"{self.name}.{tenant}.{label}"
        )
        self._c_bytes.add(int(done))
        return done

    def _run(self, tenant: str, src: int, dst: int, nbytes: int, offset: int):
        sim = self.sim
        t0 = sim.now
        done = yield from self._paced_transfer(
            nbytes, name=f"{self.name}.{tenant}"
        )
        self.registry.release(tenant, src, nbytes)
        self._c_migrations.add()
        self._c_bytes.add(int(done))
        trace = sim.trace
        if trace.enabled:
            trace.complete(
                self.name, "cluster", "migrate", "mig.move",
                t0, sim.now,
                tenant=tenant, src=src, dst=dst, nbytes=nbytes,
                dst_offset=offset,
            )
        return offset
