"""Chunk migration between memory servers over a fluid bulk channel.

The ROADMAP's elastic-fleet work (drain a server before maintenance,
rebalance after admission skew, INDIGO-style page-migration campaigns)
all reduce to the same primitive: move a tenant's chunk from one server
to another without perturbing the request path.  A chunk is megabytes —
thousands of pages — so modelling it page-by-page through the scheduler
is exactly the event-chain shape the fluid fast path collapses:
uncontended, untraced migrations cost O(1) events per chunk, while a
tracer, a fault window, or a competing migration on the same uplink
expands them to per-page fidelity with bit-identical completion times
(see :mod:`repro.simulator.fluid`).

Capacity accounting goes through the :class:`~repro.cluster.registry.
FleetRegistry` ledger: the destination extent is reserved *before* the
copy starts (migration must never oversubscribe a server) and the
source extent is released only after the copy completes (the chunk is
never homeless); both edges land in the registry's conservation
monitors.
"""

from __future__ import annotations

from ..simulator import Process, Simulator, StatsRegistry
from ..simulator.fluid import FluidChannel
from .registry import FleetRegistry

__all__ = ["ChunkMigrator"]


class ChunkMigrator:
    """Moves tenant chunks between servers over one shared bulk channel.

    ``rate_bytes_per_usec`` models the migration uplink (defaults to
    ~800 MB/s, a conservative share of one IB SDR link so migrations do
    not shadow the request path).  Concurrent migrations share the
    channel fairly; each one is a :class:`BulkFlow` under the hood.
    """

    def __init__(
        self,
        sim: Simulator,
        registry: FleetRegistry,
        rate_bytes_per_usec: float = 800.0,
        page_bytes: int = 4096,
        name: str = "mig",
        stats: StatsRegistry | None = None,
    ) -> None:
        self.sim = sim
        self.registry = registry
        self.name = name
        self.stats = stats if stats is not None else registry.stats
        self.channel = FluidChannel(
            sim,
            rate_bytes_per_usec,
            page_bytes=page_bytes,
            name=f"{name}.chan",
            stats=self.stats,
        )
        self._c_migrations = self.stats.counter(f"{name}.migrations")
        self._c_bytes = self.stats.counter(f"{name}.bytes")
        self._c_failed = self.stats.counter(f"{name}.failed")

    def migrate(
        self, tenant: str, src: int, dst: int, nbytes: int
    ) -> Process:
        """Move ``nbytes`` of ``tenant``'s data from server ``src`` to
        ``dst``; returns the driving process (join it with ``yield``).
        The process value is the destination store offset.

        Reserve-before-copy happens *here*, synchronously: a migration
        that cannot fit on the destination raises
        :class:`~repro.cluster.registry.CapacityError` at the call site,
        before any simulated bytes move (mirroring how admission NACKs
        surface).
        """
        if src == dst:
            raise ValueError(f"migration src == dst ({src})")
        try:
            offset = self.registry.reserve(tenant, dst, nbytes)
        except Exception:
            self._c_failed.add()
            raise
        return self.sim.spawn(
            self._run(tenant, src, dst, nbytes, offset),
            name=f"{self.name}.move",
        )

    def _run(self, tenant: str, src: int, dst: int, nbytes: int, offset: int):
        sim = self.sim
        t0 = sim.now
        done = yield self.channel.transfer(nbytes, name=f"{self.name}.{tenant}")
        self.registry.release(tenant, src, nbytes)
        self._c_migrations.add()
        self._c_bytes.add(int(done))
        trace = sim.trace
        if trace.enabled:
            trace.complete(
                self.name, "cluster", "migrate", "mig.move",
                t0, sim.now,
                tenant=tenant, src=src, dst=dst, nbytes=nbytes,
                dst_offset=offset,
            )
        return offset
