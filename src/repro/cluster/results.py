"""Cluster run results: per-tenant outcomes + fairness metrics."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..results import ScenarioResult

__all__ = ["ClusterResult", "TenantResult"]


@dataclass
class TenantResult:
    """One tenant node's outcome."""

    name: str
    workload: str
    elapsed_usec: float
    major_faults: int
    minor_faults: int
    stall_usec: float
    weight: float
    swap_bytes: int
    #: bytes the fleet served this tenant (per-tenant server accounting)
    bytes_served: int = 0
    #: admission NACKed — ran on its local disk instead of the fleet
    disk_fallback: bool = False
    #: which policy placed it ("least_loaded" after a remap retry)
    placement: str = "blocking"


@dataclass
class ClusterResult(ScenarioResult):
    """A cluster scenario's outcome.

    Extends :class:`~repro.results.ScenarioResult` (so sweeps, caching
    and reporting work unchanged) with the per-tenant view and the
    fairness metrics the acceptance gates check.
    """

    tenants: list[TenantResult] = field(default_factory=list)
    placement: str = "blocking"
    qos: bool = True
    nservers: int = 0
    admission_nacks: int = 0
    #: redundancy/repair summary (empty when no tenant is redundant):
    #: per-tenant policies, memory overhead, degraded-read and repair
    #: counters — what the durability sweep and the CI gate consume.
    redundancy: dict = field(default_factory=dict)

    def _admitted(self) -> list[TenantResult]:
        return [t for t in self.tenants if not t.disk_fallback]

    @property
    def spread(self) -> float:
        """Max/min per-tenant completion time over fleet-admitted
        tenants — 1.0 is perfectly fair, 2.0 means the slowest tenant
        took twice the fastest's time."""
        admitted = self._admitted()
        if not admitted:
            return 0.0
        lo = min(t.elapsed_usec for t in admitted)
        hi = max(t.elapsed_usec for t in admitted)
        return hi / lo if lo > 0 else 0.0

    @property
    def jain_index(self) -> float:
        """Jain's fairness index over per-tenant weight-normalized
        throughput (1/elapsed/weight): 1.0 = perfectly weighted-fair,
        1/n = one tenant got everything."""
        admitted = self._admitted()
        if not admitted:
            return 0.0
        xs = [
            1.0 / (t.elapsed_usec * t.weight)
            for t in admitted
            if t.elapsed_usec > 0
        ]
        if not xs:
            return 0.0
        return sum(xs) ** 2 / (len(xs) * sum(x * x for x in xs))

    def fairness_report(self) -> dict:
        """The JSON payload the CLI and CI artifact carry."""
        return {
            "placement": self.placement,
            "qos": self.qos,
            "nservers": self.nservers,
            "elapsed_usec": self.elapsed_usec,
            "spread": self.spread,
            "jain_index": self.jain_index,
            "admission_nacks": self.admission_nacks,
            "redundancy": self.redundancy,
            "tenants": [
                {
                    "name": t.name,
                    "workload": t.workload,
                    "elapsed_usec": t.elapsed_usec,
                    "weight": t.weight,
                    "major_faults": t.major_faults,
                    "bytes_served": t.bytes_served,
                    "disk_fallback": t.disk_fallback,
                    "placement": t.placement,
                }
                for t in self.tenants
            ],
        }

    def summary(self) -> str:
        parts = [
            f"{self.label}: {self.elapsed_sec:.2f} s",
            f"{len(self.tenants)} tenants x {self.nservers} servers",
            f"placement={self.placement} qos={'on' if self.qos else 'off'}",
            f"spread={self.spread:.2f} jain={self.jain_index:.3f}",
        ]
        if self.admission_nacks:
            parts.append(f"nacks={self.admission_nacks}")
        return "  ".join(parts)
