"""Per-tenant QoS: weighted-fair credit partitioning and scheduling.

Two mechanisms keep one thrashing tenant from starving the rest:

* **credit partitioning** — each server's credit pool (the §4.2.4
  water-mark) is split across tenants in proportion to weight, bounding
  how many requests any tenant can have outstanding per server;
* **start-time fair queueing** — the server's dispatch order.  Each
  arriving request is stamped with a virtual *start tag*
  ``max(v, finish[tenant])`` and a *finish tag* ``start +
  nbytes / weight``; requests are served in start-tag order and the
  virtual clock advances to the tag served.  A backlogged tenant's tags
  race ahead of its weight share, so lighter tenants overtake it —
  classic SFQ (Goyal et al.), byte-weighted because service cost here
  scales with bytes moved, not request count.

The scheduler is deliberately host-agnostic (``push``/``pop``/
``__len__``) so :class:`repro.hpbd.server.HPBDServer` can pump it
without importing this package.
"""

from __future__ import annotations

import heapq
import itertools

__all__ = ["WeightedFairScheduler", "partition_credits"]


class WeightedFairScheduler:
    """Start-time fair queueing over per-tenant flows."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, str, float, object]] = []
        self._seq = itertools.count()
        self._finish: dict[str, float] = {}
        self._vtime = 0.0
        self.enqueued = 0
        self.dequeued = 0
        #: observability: max simultaneous backlog
        self.max_depth = 0

    def push(self, tenant: str, weight: float, cost: float, item) -> None:
        """Queue ``item`` for ``tenant``; ``cost`` is the service demand
        (bytes, here) charged against the tenant's weight."""
        if weight <= 0:
            raise ValueError(f"bad weight {weight} for tenant {tenant!r}")
        if cost <= 0:
            raise ValueError(f"bad cost {cost}")
        start = max(self._vtime, self._finish.get(tenant, 0.0))
        finish = start + cost / weight
        self._finish[tenant] = finish
        heapq.heappush(
            self._heap, (start, next(self._seq), tenant, finish, item)
        )
        self.enqueued += 1
        if len(self._heap) > self.max_depth:
            self.max_depth = len(self._heap)

    def pop(self):
        """Next ``(tenant, item)`` in virtual-time order, or ``None``."""
        if not self._heap:
            return None
        start, _seq, tenant, _finish, item = heapq.heappop(self._heap)
        if start > self._vtime:
            self._vtime = start
        self.dequeued += 1
        return tenant, item

    def __len__(self) -> int:
        return len(self._heap)


def partition_credits(pool: int, weights: dict[str, float]) -> dict[str, int]:
    """Split a server's credit pool across tenants by weight.

    Largest-remainder apportionment with a floor of one credit per
    tenant (a tenant with zero credits could never make progress); the
    result always sums to ``pool``.
    """
    if pool < len(weights):
        raise ValueError(
            f"pool of {pool} cannot give {len(weights)} tenants one each"
        )
    if not weights:
        return {}
    for tenant, w in weights.items():
        if w <= 0:
            raise ValueError(f"bad weight {w} for tenant {tenant!r}")
    total_w = sum(weights.values())
    ideal = {t: pool * w / total_w for t, w in weights.items()}
    out = {t: max(1, int(share)) for t, share in ideal.items()}
    # Largest remainder first for the leftovers; clamp overshoot from
    # the one-credit floor by trimming the largest holdings.
    leftover = pool - sum(out.values())
    by_remainder = sorted(
        weights, key=lambda t: (ideal[t] - int(ideal[t]), ideal[t]),
        reverse=True,
    )
    i = 0
    while leftover > 0:
        out[by_remainder[i % len(by_remainder)]] += 1
        leftover -= 1
        i += 1
    while leftover < 0:
        biggest = max(out, key=lambda t: (out[t], ideal[t]))
        if out[biggest] <= 1:  # pragma: no cover - pool >= len guards this
            break
        out[biggest] -= 1
        leftover += 1
    return out
