"""Cluster scenario runner: N tenant nodes over one shared fleet.

The cluster analogue of :mod:`repro.runner`: build the server fleet
once, admit every tenant through placement + admission control, give
each tenant its own full compute node (VM, CPUs, HPBD driver tagged
with its tenant identity), run all workloads concurrently over the
shared fabric, and collect a :class:`ClusterResult` with per-tenant
completion times and fairness metrics.
"""

from __future__ import annotations

import numpy as np

from ..config import ClusterScenarioConfig, TenantSpec
from ..disk.driver import DiskDevice
from ..disk.model import ST340014A
from ..faults import FaultInjector
from ..hpbd.client import HPBDClient
from ..hpbd.server import HPBDServer
from ..hpbd.striping import ChunkMapDistribution
from ..kernel.node import Node
from ..net.link import Fabric
from ..obs.health import HealthHub
from ..obs.metrics import MetricsHub
from ..results import InstanceResult
from ..simulator import Simulator, StatsRegistry, all_of
from ..units import MiB, PAGE_SIZE
from ..workloads.base import execute
from ..redundancy.repair import RepairManager
from .admission import AdmissionController, AdmissionNack
from .migration import ChunkMigrator
from .qos import WeightedFairScheduler, partition_credits
from .registry import FleetRegistry
from .results import ClusterResult, TenantResult

__all__ = ["run_cluster_scenario", "build_cluster_scenario"]


def _default_capacity(cfg: ClusterScenarioConfig) -> int:
    """Advertised per-server capacity when the config leaves it out:
    an even split of total demand — scaled by each tenant's redundancy
    overhead (mirror 2x, nway(r) rx, rs(k,m) (k+m)/k) — rounded up to
    MiB, plus a MiB of slack for allocator rounding.

    Redundant groups concentrate on k+m members rather than spreading
    fleet-wide, so the even split is a floor; explicit capacity is the
    knob for tight-packing experiments."""
    demand = 0.0
    for t in cfg.tenants:
        overhead = 2.0 if cfg.mirror else t.redundancy_policy.overhead
        demand += t.swap_bytes * overhead
    pol_max = max(
        (t.redundancy_policy for t in cfg.tenants),
        key=lambda p: p.width if p.kind == "rs" else 0,
    )
    if pol_max.kind == "rs":
        # An rs group packs each member's whole share onto k+m servers;
        # every member must fit the largest single share.
        biggest_share = max(
            t.swap_bytes // t.redundancy_policy.k
            for t in cfg.tenants
            if t.redundancy_policy.kind == "rs"
        )
        demand = max(demand, float(biggest_share * cfg.nservers))
    share = -(-int(demand) // cfg.nservers)
    return -(-share // MiB) * MiB + MiB


class _Tenant:
    """Everything built for one tenant node."""

    def __init__(self, spec: TenantSpec) -> None:
        self.spec = spec
        self.node: Node | None = None
        self.client: HPBDClient | None = None
        self.disk: DiskDevice | None = None
        self.fallback_disk: DiskDevice | None = None
        self.queue = None
        self.admission = None
        self.disk_fallback = False
        self.metrics: MetricsHub | None = None


class _ClusterScenario:
    """One cluster run's full object graph (exposed for white-box tests)."""

    def __init__(self, cfg: ClusterScenarioConfig, trace: bool = False) -> None:
        if cfg.faults is not None and cfg.faults.degraded_mode == "remap":
            raise ValueError(
                "cluster scenarios do not support degraded_mode='remap' "
                "(chunk-map layouts have no successor-chunk convention); "
                "use 'disk' or 'none'"
            )
        self.cfg = cfg
        self.sim = Simulator()
        if trace:
            self.sim.enable_tracing()
        self.stats = StatsRegistry()
        self.fabric = Fabric(self.sim, stats=self.stats)
        capacity = (
            cfg.server_capacity_bytes
            if cfg.server_capacity_bytes is not None
            else _default_capacity(cfg)
        )
        limit = int(capacity * cfg.overcommit)
        store = -(-limit // MiB) * MiB
        resident = None
        if cfg.overcommit > 1.0:
            resident = capacity - capacity % PAGE_SIZE
        self.servers: list[HPBDServer] = [
            HPBDServer(
                self.sim,
                self.fabric,
                f"mem{i}",
                store_bytes=store,
                ib_params=cfg.ib,
                staging_pool_bytes=cfg.staging_pool_bytes,
                max_outstanding_rdma=cfg.max_outstanding_rdma,
                stats=self.stats,
                resident_bytes=resident,
                scheduler=WeightedFairScheduler() if cfg.qos else None,
            )
            for i in range(cfg.nservers)
        ]
        self.registry = FleetRegistry(
            self.sim,
            self.servers,
            capacity_bytes=capacity,
            overcommit=cfg.overcommit,
            heartbeat_interval_usec=cfg.heartbeat_interval_usec,
            stats=self.stats,
        )
        self.admission = AdmissionController(
            self.registry, policy=cfg.placement, stats=self.stats
        )
        self.health: HealthHub | None = None
        if cfg.health is not None:
            self.health = HealthHub(
                self.sim,
                [srv.name for srv in self.servers],
                [t.name for t in cfg.tenants],
                cfg=cfg.health,
                stats=self.stats,
            )
            # Heartbeat liveness edges feed the same health model the
            # data-path hooks do — crash, flap, degrade, and slow all
            # land in one per-server status.
            self.registry.health = self.health
        if cfg.qos:
            credits = partition_credits(
                cfg.credit_pool, {t.name: t.weight for t in cfg.tenants}
            )
        else:
            credits = {t.name: cfg.credits_per_server for t in cfg.tenants}
        self.tenants: list[_Tenant] = []
        for spec in cfg.tenants:
            self.tenants.append(self._build_tenant(spec, credits[spec.name]))
        self.migrator: ChunkMigrator | None = None
        self.repair: RepairManager | None = None
        redundant = [
            t
            for t in self.tenants
            if t.admission is not None and t.admission.group is not None
        ]
        if redundant and cfg.repair:
            self.migrator = ChunkMigrator(
                self.sim,
                self.registry,
                stats=self.stats,
                throttle_mib_s=cfg.migration_throttle_mib_s,
            )
            self.repair = RepairManager(
                self.sim,
                self.registry,
                self.migrator,
                self.servers,
                interval_usec=cfg.repair_interval_usec,
                spare_after_usec=cfg.repair_spare_after_usec,
                stats=self.stats,
            )
            for t in redundant:
                self.repair.watch(t.spec.name, t.client, t.admission.group)
        self.fault_injector: FaultInjector | None = None
        if cfg.faults is not None and cfg.faults.plan is not None:
            self.fault_injector = FaultInjector(
                self.sim,
                cfg.faults.plan,
                stats=self.stats,
                fabric=self.fabric,
                hpbd_servers=self.servers,
            )

    def _build_tenant(self, spec: TenantSpec, credits: int) -> _Tenant:
        cfg = self.cfg
        tenant = _Tenant(spec)
        tenant.node = Node(
            self.sim,
            self.fabric,
            spec.name,
            mem_bytes=spec.mem_bytes - cfg.mem_reserved_bytes,
            ncpus=spec.ncpus,
            vm_params=cfg.vm_params,
            stats=self.stats,
        )
        try:
            tenant.admission = self.admission.admit(
                spec.name,
                spec.swap_bytes,
                mirror=cfg.mirror,
                redundancy=(
                    spec.redundancy if spec.redundancy != "none" else None
                ),
            )
        except AdmissionNack:
            if cfg.admission_fallback != "disk":
                raise
            # NACKed tenants keep running — on their own local disk,
            # the same degradation the per-request recovery ladder ends
            # in (PR 4's disk fallback, applied at admission time).
            tenant.disk_fallback = True
            tenant.disk = DiskDevice(
                self.sim,
                name=f"{spec.name}-hda",
                params=(
                    cfg.faults.fallback_disk
                    if cfg.faults is not None
                    else ST340014A
                ),
                swap_partition_bytes=spec.swap_bytes,
                stats=self.stats,
            )
            tenant.queue = tenant.disk.queue
            return tenant
        recovery: dict = {}
        faults = cfg.faults
        if faults is not None:
            if faults.degraded_mode == "disk":
                tenant.fallback_disk = DiskDevice(
                    self.sim,
                    name=f"{spec.name}-fallback",
                    params=faults.fallback_disk,
                    swap_partition_bytes=spec.swap_bytes,
                    stats=self.stats,
                )
                recovery["fallback_queue"] = tenant.fallback_disk.queue
            recovery.update(
                request_timeout_usec=faults.request_timeout_usec,
                max_retries=faults.max_retries,
                retry_backoff_usec=faults.retry_backoff_usec,
                backoff_mult=faults.backoff_mult,
                degraded_mode=faults.degraded_mode,
                ewma_select=faults.ewma_select,
                hedge_reads=faults.hedge_reads,
                hedge_k=faults.hedge_k,
                hedge_min_usec=faults.hedge_min_usec,
            )
        tenant.client = HPBDClient(
            self.sim,
            tenant.node,
            self.servers,
            total_bytes=spec.swap_bytes,
            ib_params=cfg.ib,
            pool_bytes=cfg.pool_bytes,
            credits_per_server=credits,
            name=f"{spec.name}-hpbd",
            stats=self.stats,
            server_area_bases=tenant.admission.area_bases,
            tenant=spec.name,
            qos_weight=spec.weight,
            # Mirrored tenants use the driver's default blocking layout
            # (the admission grant carries no chunk map); redundant
            # tenants route by the group's data map + parity extents.
            distribution=(
                None
                if cfg.mirror
                else ChunkMapDistribution(
                    spec.swap_bytes,
                    cfg.nservers,
                    tenant.admission.chunks,
                    tenant.admission.parity_chunks or None,
                )
            ),
            mirror=cfg.mirror,
            redundancy=tenant.admission.group,
            health=self.health,
            **recovery,
        )
        tenant.queue = tenant.client.queue
        return tenant

    def _register_tenant_metrics(self) -> None:
        """Per-tenant MetricsHub + utilization gauges (traced runs only,
        matching the single-node runner): tenant-prefixed names keep the
        shared registry collision-free; fleet-level server gauges ride
        on the first tenant's hub."""
        for tenant in self.tenants:
            spec = tenant.spec
            metrics = MetricsHub(
                tenant.node,
                stats=self.stats,
                prefix=f"obs.vmstat.{spec.name}",
            )
            tenant.metrics = metrics
            node = tenant.node
            metrics.watch(
                f"{spec.name}.cpus",
                lambda node=node: {"busy": float(node.cpus.in_use)},
            )
            queue = tenant.queue
            metrics.watch(
                f"{spec.name}.rq",
                lambda queue=queue: {
                    "in_flight": float(queue.in_flight),
                    "ready": float(queue.dispatch_depth),
                },
            )
            client = tenant.client
            if client is not None:
                metrics.watch(
                    f"{spec.name}.credits",
                    lambda client=client: {
                        "tokens": float(
                            sum(b.tokens for b in client._credits)
                        ),
                        "waiting": float(
                            sum(b.queue_length for b in client._credits)
                        ),
                    },
                )
                metrics.watch(
                    f"{spec.name}.pool",
                    lambda client=client: {
                        "free_bytes": float(client.pool.free_bytes),
                        "waiting": float(client.pool.waiting),
                    }
                    if client.pool is not None
                    else {},
                )
        first = self.tenants[0].metrics
        if first is not None:
            for srv in self.servers:
                first.watch(
                    f"{srv.name}.rdma",
                    lambda srv=srv: {
                        "slots_in_use": float(srv._rdma_slots.in_use)
                    },
                )

    # -- execution ----------------------------------------------------------

    def run(self) -> ClusterResult:
        cfg = self.cfg
        sim = self.sim
        instances: list[InstanceResult] = []
        tenant_elapsed: dict[str, float] = {}
        tenant_faults: dict[str, tuple[int, int, float]] = {}

        def tenant_main(tenant: _Tenant):
            spec = tenant.spec
            aspace = tenant.node.vmm.create_address_space(
                spec.workload.npages, name=f"{spec.name}.ws"
            )
            elapsed = yield from execute(
                spec.workload, tenant.node, aspace
            )
            tenant_elapsed[spec.name] = elapsed
            tenant_faults[spec.name] = (
                aspace.major_faults, aspace.minor_faults, aspace.stall_usec
            )
            return elapsed

        def main(sim):
            # Fleet + tenant bring-up, outside the measured window.
            for tenant in self.tenants:
                if tenant.client is not None:
                    yield from tenant.client.connect()
                tenant.node.swapon(tenant.queue, tenant.spec.swap_bytes)
            self.registry.start_heartbeat()
            if self.health is not None:
                self.health.start()
            if sim.trace.enabled:
                self._register_tenant_metrics()
                for tenant in self.tenants:
                    tenant.metrics.start()
            if self.fault_injector is not None:
                self.fault_injector.start()
            if self.repair is not None:
                self.repair.start()
            t_start = sim.now
            procs = [
                sim.spawn(tenant_main(tenant), name=tenant.spec.name)
                for tenant in self.tenants
            ]
            yield all_of(sim, procs)
            wall = sim.now - t_start
            for tenant in self.tenants:
                if tenant.metrics is not None:
                    tenant.metrics.stop()
            if self.repair is not None:
                # Finish (or give up on) outstanding rebuilds before the
                # drains: repair's catch-up posts ride the data path.
                yield from self.repair.drain()
                self.repair.stop()
            for tenant in self.tenants:
                yield from tenant.node.vmm.quiesce()
                if tenant.client is not None:
                    # Semi-sync mirrored writes may still have straggler
                    # acks in flight; let them land before the audits.
                    yield from tenant.client.drain()
                tenant.node.vmm.check_frame_accounting()
                tenant.queue.audit_teardown()
                if tenant.fallback_disk is not None:
                    tenant.fallback_disk.queue.audit_teardown()
                if tenant.client is not None:
                    tenant.client.pool.check_invariants()
                    tenant.client.audit_teardown()
            for srv in self.servers:
                srv.audit_teardown()
            self.registry.audit_teardown()
            return wall

        proc = sim.spawn(main(sim), name="cluster")
        wall = sim.run(until=proc)
        for tenant in self.tenants:
            spec = tenant.spec
            major, minor, stall = tenant_faults[spec.name]
            instances.append(
                InstanceResult(
                    workload=spec.workload.name,
                    elapsed_usec=tenant_elapsed[spec.name],
                    major_faults=major,
                    minor_faults=minor,
                    stall_usec=stall,
                )
            )
        return self._collect(instances, tenant_elapsed, tenant_faults, wall)

    def _collect(
        self,
        instances: list[InstanceResult],
        tenant_elapsed: dict[str, float],
        tenant_faults: dict[str, tuple[int, int, float]],
        wall: float,
    ) -> ClusterResult:
        cfg = self.cfg
        stats = self.stats

        def counter_total(name: str) -> int:
            c = stats.get(name)
            return int(c.total) if c is not None else 0

        swapout = sum(
            counter_total(f"{t.spec.name}.vm.swapout_pages")
            for t in self.tenants
        )
        swapin = sum(
            counter_total(f"{t.spec.name}.vm.swapin_pages")
            for t in self.tenants
        )
        reads, writes = [], []
        request_trace: list[tuple[float, str, int]] = []
        for tenant in self.tenants:
            rt = stats.get(f"{tenant.queue.name}.req_bytes.read")
            wt = stats.get(f"{tenant.queue.name}.req_bytes.write")
            if rt is not None:
                reads.append(rt.values())
            if wt is not None:
                writes.append(wt.values())
            request_trace.extend(tenant.queue.request_trace())
        request_trace.sort(key=lambda item: item[0])
        network_bytes: dict[str, int] = {}
        for name in stats.names():
            if name.startswith("fabric.bytes."):
                network_bytes[name.removeprefix("fabric.bytes.")] = int(
                    stats.get(name).total
                )
        blame_usec: dict[str, float] = {}
        if self.sim.trace.enabled:
            from ..analysis.critpath import aggregate_blame, request_paths

            blame_usec = aggregate_blame(request_paths(self.sim.trace))
        redundancy = self._redundancy_report(counter_total)
        tenant_results = []
        for tenant in self.tenants:
            spec = tenant.spec
            major, minor, stall = tenant_faults[spec.name]
            tenant_results.append(
                TenantResult(
                    name=spec.name,
                    workload=spec.workload.name,
                    elapsed_usec=tenant_elapsed[spec.name],
                    major_faults=major,
                    minor_faults=minor,
                    stall_usec=stall,
                    weight=spec.weight,
                    swap_bytes=spec.swap_bytes,
                    bytes_served=sum(
                        srv.tenant_bytes.get(spec.name, 0)
                        for srv in self.servers
                    ),
                    disk_fallback=tenant.disk_fallback,
                    placement=(
                        tenant.admission.policy
                        if tenant.admission is not None
                        else "disk"
                    ),
                )
            )
        monitors = self.sim.monitors
        return ClusterResult(
            label=cfg.label,
            instances=instances,
            elapsed_usec=wall,
            swapout_pages=swapout,
            swapin_pages=swapin,
            read_request_bytes=(
                np.concatenate(reads)
                if reads
                else np.array([], dtype=np.float64)
            ),
            write_request_bytes=(
                np.concatenate(writes)
                if writes
                else np.array([], dtype=np.float64)
            ),
            request_trace=request_trace,
            network_bytes=network_bytes,
            client_copy_usec=sum(
                t.client.copy_usec
                for t in self.tenants
                if t.client is not None
            ),
            blame_usec=blame_usec,
            invariant_violations=monitors.summary(),
            monitor_watermarks=dict(monitors.watermarks),
            registry=stats,
            trace=self.sim.trace if self.sim.trace.enabled else None,
            health=self.health.report() if self.health is not None else {},
            tenants=tenant_results,
            placement=cfg.placement,
            qos=cfg.qos,
            nservers=cfg.nservers,
            admission_nacks=counter_total("cluster.admission_nacks"),
            redundancy=redundancy,
        )

    def _redundancy_report(self, counter_total) -> dict:
        """Durability summary: policies, memory overhead vs demand, the
        degraded-read/reconstruct counters and the repair ledger."""
        redundant = [
            t
            for t in self.tenants
            if t.admission is not None and t.admission.group is not None
        ]
        if not redundant:
            return {}
        stats = self.stats

        def counter_count(name: str) -> int:
            c = stats.get(name)
            return int(c.count) if c is not None else 0

        demand = sum(t.spec.swap_bytes for t in redundant)
        reserved = sum(sum(t.admission.share_bytes) for t in redundant)
        degraded = sum(
            counter_count(f"{t.spec.name}-hpbd.degraded_reads")
            for t in redundant
        )
        reconstructs = sum(
            counter_count(f"{t.spec.name}-hpbd.reconstructs")
            for t in redundant
        )
        write_failovers = sum(
            counter_count(f"{t.spec.name}-hpbd.write_failovers")
            for t in redundant
        )
        # nway reads don't reconstruct — they fail over to a ring
        # replica; that's its "degraded read" equivalent.
        read_failovers = sum(
            counter_count(f"{t.spec.name}-hpbd.failovers")
            for t in redundant
        )
        report = {
            "policies": {
                t.spec.name: t.admission.group.policy.label
                for t in redundant
            },
            "demand_bytes": demand,
            "reserved_bytes": reserved,
            "overhead": reserved / demand if demand else 0.0,
            "degraded_reads": degraded,
            "reconstructs": reconstructs,
            "read_failovers": read_failovers,
            "write_failovers": write_failovers,
        }
        if self.repair is not None:
            report["repair"] = {
                "rebuilds": counter_count("repair.rebuilds"),
                "spare_rebuilds": counter_count("repair.spare_rebuilds"),
                "aborts": counter_count("repair.aborts"),
                "bytes_moved": counter_total("repair.bytes_moved"),
                "lost_bytes": counter_total("repair.lost_bytes"),
                "pending": self.repair.pending,
                "throttle_waits": counter_count("mig.throttle_waits"),
            }
        return report


def build_cluster_scenario(
    cfg: ClusterScenarioConfig, trace: bool = False
) -> _ClusterScenario:
    """Construct without running (white-box tests poke at the pieces)."""
    return _ClusterScenario(cfg, trace=trace)


def run_cluster_scenario(
    cfg: ClusterScenarioConfig, trace: bool = False
) -> ClusterResult:
    """Build and run one cluster scenario to completion."""
    return _ClusterScenario(cfg, trace=trace).run()
