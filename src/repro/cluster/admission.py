"""Admission control: reserve-on-connect with typed NACKs.

A tenant's whole swap area is reserved against advertised fleet
capacity *before* its driver connects — the cluster-level analogue of
the server's staging-pool NACK: shed load at the door, never wedge
inside.  On a placement failure the controller re-plans once with
least-loaded bin-packing (the remap analogue of PR 4's client-side
recovery); if that fails too, the tenant gets a typed
:class:`AdmissionNack` and the runner falls back to its local disk or
raises, per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hpbd.striping import BlockingDistribution, Chunk
from ..simulator import SimulationError, StatsRegistry
from .placement import plan_placement
from .registry import CapacityError, FleetRegistry

__all__ = ["Admission", "AdmissionController", "AdmissionNack"]


class AdmissionNack(SimulationError):
    """Typed rejection: the fleet cannot host this tenant's area."""

    def __init__(self, tenant: str, reason: str) -> None:
        super().__init__(f"tenant {tenant} not admitted: {reason}")
        self.tenant = tenant
        self.reason = reason


@dataclass
class Admission:
    """A granted reservation: everything the driver needs to connect."""

    tenant: str
    chunks: list[Chunk]
    #: store offset of this tenant's extent on each server (0 if the
    #: placement left that server unused)
    area_bases: list[int]
    #: bytes reserved per server (diagnostics / release accounting)
    share_bytes: list[int] = field(default_factory=list)
    #: the policy that actually produced the map ("least_loaded" after
    #: a remap retry may differ from the configured one)
    policy: str = "blocking"


class AdmissionController:
    """Reserve-on-connect gatekeeper in front of the registry."""

    def __init__(
        self,
        registry: FleetRegistry,
        policy: str = "blocking",
        stats: StatsRegistry | None = None,
    ) -> None:
        self.registry = registry
        self.policy = policy
        self.stats = stats if stats is not None else registry.stats
        self._c_admitted = self.stats.counter("cluster.admitted")
        self._c_remapped = self.stats.counter("cluster.admission_remaps")
        self._c_nacked = self.stats.counter("cluster.admission_nacks")

    def admit(
        self, tenant: str, total_bytes: int, mirror: bool = False
    ) -> Admission:
        """Plan and reserve ``total_bytes`` for ``tenant``.

        Raises :class:`AdmissionNack` when no placement fits.
        """
        if mirror:
            return self._admit_mirrored(tenant, total_bytes)
        registry = self.registry
        policy = self.policy
        try:
            chunks = plan_placement(policy, tenant, total_bytes, registry)
        except CapacityError:
            # Remap retry: bin-pack onto whatever capacity is left.
            policy = "least_loaded"
            self._c_remapped.add()
            try:
                chunks = plan_placement(
                    policy, tenant, total_bytes, registry
                )
            except CapacityError as err:
                self._c_nacked.add()
                raise AdmissionNack(tenant, str(err)) from err
        nservers = len(registry.servers)
        shares = [0] * nservers
        for c in chunks:
            shares[c.server] += c.nbytes
        bases = [0] * nservers
        for server, share in enumerate(shares):
            if share:
                bases[server] = registry.reserve(tenant, server, share)
        self._c_admitted.add()
        return Admission(
            tenant=tenant,
            chunks=chunks,
            area_bases=bases,
            share_bytes=shares,
            policy=policy,
        )

    def _admit_mirrored(self, tenant: str, total_bytes: int) -> Admission:
        """Mirrored tenants use the paper's blocking layout over the
        *whole* fleet — the driver addresses the replica of server i's
        chunk on server i+1 (mod n) behind that server's own share, so
        every server must be alive and each reserves its own share plus
        its predecessor's replica area.  ``chunks`` stays empty: the
        driver's default :class:`BlockingDistribution` already encodes
        the map."""
        registry = self.registry
        n = len(registry.servers)
        if n < 2:
            self._c_nacked.add()
            raise AdmissionNack(tenant, "mirroring needs at least two servers")
        if not all(registry.alive):
            self._c_nacked.add()
            raise AdmissionNack(
                tenant, "mirrored placement needs every server alive"
            )
        try:
            dist = BlockingDistribution(total_bytes, n)
        except ValueError as err:
            self._c_nacked.add()
            raise AdmissionNack(tenant, str(err)) from err
        shares = [dist.share_of(i) for i in range(n)]
        need = [shares[i] + shares[(i - 1) % n] for i in range(n)]
        short = [i for i in range(n) if need[i] > registry.free_bytes(i)]
        if short:
            self._c_nacked.add()
            raise AdmissionNack(
                tenant,
                f"mirrored shares do not fit servers {short}",
            )
        bases = [registry.reserve(tenant, i, need[i]) for i in range(n)]
        self._c_admitted.add()
        return Admission(
            tenant=tenant,
            chunks=[],
            area_bases=bases,
            share_bytes=need,
            policy="mirror",
        )

    def evict(self, admission: Admission) -> None:
        """Return an admitted tenant's reservation to the books."""
        for server, share in enumerate(admission.share_bytes):
            if share:
                self.registry.release(admission.tenant, server, share)
