"""Admission control: reserve-on-connect with typed NACKs.

A tenant's whole swap area is reserved against advertised fleet
capacity *before* its driver connects — the cluster-level analogue of
the server's staging-pool NACK: shed load at the door, never wedge
inside.  On a placement failure the controller re-plans once with
least-loaded bin-packing (the remap analogue of PR 4's client-side
recovery); if that fails too, the tenant gets a typed
:class:`AdmissionNack` and the runner falls back to its local disk or
raises, per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hpbd.striping import Chunk
from ..redundancy.policy import RedundancyPolicy, ShardGroup, parse_policy
from ..simulator import SimulationError, StatsRegistry
from .placement import plan_group, plan_placement
from .registry import CapacityError, FleetRegistry

__all__ = ["Admission", "AdmissionController", "AdmissionNack"]


class AdmissionNack(SimulationError):
    """Typed rejection: the fleet cannot host this tenant's area."""

    def __init__(self, tenant: str, reason: str) -> None:
        super().__init__(f"tenant {tenant} not admitted: {reason}")
        self.tenant = tenant
        self.reason = reason


@dataclass
class Admission:
    """A granted reservation: everything the driver needs to connect."""

    tenant: str
    chunks: list[Chunk]
    #: store offset of this tenant's extent on each server (0 if the
    #: placement left that server unused)
    area_bases: list[int]
    #: bytes reserved per server (diagnostics / release accounting)
    share_bytes: list[int] = field(default_factory=list)
    #: the policy that actually produced the map ("least_loaded" after
    #: a remap retry may differ from the configured one)
    policy: str = "blocking"
    #: redundancy copies' store extents (rs parity shards / nway
    #: replicas); empty for unprotected tenants
    parity_chunks: list[Chunk] = field(default_factory=list)
    #: the shard-role-to-server map for a redundant tenant
    group: ShardGroup | None = None


class AdmissionController:
    """Reserve-on-connect gatekeeper in front of the registry."""

    def __init__(
        self,
        registry: FleetRegistry,
        policy: str = "blocking",
        stats: StatsRegistry | None = None,
    ) -> None:
        self.registry = registry
        self.policy = policy
        self.stats = stats if stats is not None else registry.stats
        self._c_admitted = self.stats.counter("cluster.admitted")
        self._c_remapped = self.stats.counter("cluster.admission_remaps")
        self._c_nacked = self.stats.counter("cluster.admission_nacks")

    def admit(
        self,
        tenant: str,
        total_bytes: int,
        mirror: bool = False,
        redundancy: str | RedundancyPolicy | None = None,
    ) -> Admission:
        """Plan and reserve ``total_bytes`` for ``tenant``.

        ``redundancy`` selects policy-driven group admission (``nway(r)``
        replica rings or ``rs(k,m)`` stripe groups); ``mirror`` is the
        legacy 2-way ring, admitted through the same group path.
        Raises :class:`AdmissionNack` when no placement fits.
        """
        if mirror and redundancy is not None:
            raise ValueError("pass mirror or redundancy, not both")
        if mirror:
            return self._admit_mirrored(tenant, total_bytes)
        if redundancy is not None:
            policy = parse_policy(redundancy)
            if policy.kind != "none":
                return self._admit_group(tenant, total_bytes, policy)
        registry = self.registry
        policy = self.policy
        try:
            chunks = plan_placement(policy, tenant, total_bytes, registry)
        except CapacityError:
            # Remap retry: bin-pack onto whatever capacity is left.
            policy = "least_loaded"
            self._c_remapped.add()
            try:
                chunks = plan_placement(
                    policy, tenant, total_bytes, registry
                )
            except CapacityError as err:
                self._c_nacked.add()
                raise AdmissionNack(tenant, str(err)) from err
        nservers = len(registry.servers)
        shares = [0] * nservers
        for c in chunks:
            shares[c.server] += c.nbytes
        bases = [0] * nservers
        for server, share in enumerate(shares):
            if share:
                bases[server] = registry.reserve(tenant, server, share)
        self._c_admitted.add()
        return Admission(
            tenant=tenant,
            chunks=chunks,
            area_bases=bases,
            share_bytes=shares,
            policy=policy,
        )

    def _admit_mirrored(self, tenant: str, total_bytes: int) -> Admission:
        """The legacy mirror path: a 2-way replica ring over the whole
        fleet, admitted through the generalized group machinery.  The
        layout is bit-identical to the original ad-hoc pair scheme (the
        replica of server i's chunk on server i+1 behind its own share),
        but ``chunks`` stays empty and the policy label stays "mirror":
        the driver's default :class:`~repro.hpbd.striping.
        BlockingDistribution` already encodes the map."""
        adm = self._admit_group(
            tenant, total_bytes, RedundancyPolicy("nway", k=1, m=1)
        )
        return Admission(
            tenant=tenant,
            chunks=[],
            area_bases=adm.area_bases,
            share_bytes=adm.share_bytes,
            policy="mirror",
        )

    def _admit_group(
        self, tenant: str, total_bytes: int, policy: RedundancyPolicy
    ) -> Admission:
        """Policy-driven group admission: plan the replica ring or
        stripe group, then reserve each member's shard area (rs: one
        shard; nway: own chunk plus its predecessors' replica areas,
        all behind one contiguous base)."""
        registry = self.registry
        try:
            data_chunks, parity_chunks, group = plan_group(
                policy, tenant, total_bytes, registry
            )
        except (CapacityError, ValueError) as err:
            self._c_nacked.add()
            raise AdmissionNack(tenant, str(err)) from err
        n = len(registry.servers)
        shares = [0] * n
        need = group.member_need_bytes()
        for server in group.servers:
            shares[server] = need
        short = [
            s for s in group.servers if need > registry.free_bytes(s)
        ]
        if short:
            self._c_nacked.add()
            raise AdmissionNack(
                tenant,
                f"{policy.label} shares of {need} B do not fit "
                f"servers {short}",
            )
        bases = [0] * n
        for server in group.servers:
            bases[server] = registry.reserve(tenant, server, need)
        group.area_bases = [bases[s] for s in group.servers]
        self._c_admitted.add()
        return Admission(
            tenant=tenant,
            chunks=data_chunks,
            area_bases=bases,
            share_bytes=shares,
            policy=policy.label,
            parity_chunks=parity_chunks,
            group=group,
        )

    def evict(self, admission: Admission) -> None:
        """Return an admitted tenant's reservation to the books."""
        for server, share in enumerate(admission.share_bytes):
            if share:
                self.registry.release(admission.tenant, server, share)
