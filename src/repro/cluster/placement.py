"""Placement policies: where a tenant's swap area lands on the fleet.

A policy turns (tenant, total_bytes, fleet free-capacity view) into a
device-ordered chunk map that :class:`repro.hpbd.striping.
ChunkMapDistribution` consumes.  Chunk ``server_offset``\\s are compact
per server — the admission layer reserves one contiguous extent per
(tenant, server) sized to that server's share, and the server relocates
it by the registered area base — so a policy only decides *shares* and
*interleaving*, never absolute store addresses.

Policies:

* ``blocking``     — the paper's §4.2.5 layout: equal contiguous chunks
  over the alive servers, in index order;
* ``least_loaded`` — greedy bin-packing of fixed granules onto the
  server with the most free capacity (levels a heterogeneously loaded
  fleet);
* ``hash``         — consistent-hash sharding of granules by
  ``crc32(tenant:granule)`` (placement stable under tenant churn).
"""

from __future__ import annotations

import zlib

from ..hpbd.striping import Chunk, group_chunk_maps
from ..redundancy.policy import RedundancyPolicy, ShardGroup
from ..units import MiB, PAGE_SIZE
from .registry import CapacityError, FleetRegistry

__all__ = ["plan_placement", "plan_group", "DEFAULT_GRANULE_BYTES"]

#: granule for the interleaving policies; falls back to a page when the
#: area is not MiB-aligned.
DEFAULT_GRANULE_BYTES = MiB


def _granule(total_bytes: int, granule_bytes: int | None) -> int:
    g = DEFAULT_GRANULE_BYTES if granule_bytes is None else granule_bytes
    if g <= 0 or g % PAGE_SIZE:
        raise ValueError(f"bad granule {g}")
    if total_bytes % g:
        g = PAGE_SIZE
    if total_bytes % g:
        raise ValueError(
            f"area of {total_bytes} B is not page-aligned"
        )
    return g


def _coalesce(assignment: list[tuple[int, int]]) -> list[Chunk]:
    """Turn (server, nbytes) runs in device order into chunks with
    compact per-server offsets."""
    chunks: list[Chunk] = []
    next_offset: dict[int, int] = {}
    pos = 0
    for server, nbytes in assignment:
        soff = next_offset.get(server, 0)
        if (
            chunks
            and chunks[-1].server == server
            and chunks[-1].server_offset + chunks[-1].nbytes == soff
        ):
            last = chunks[-1]
            chunks[-1] = Chunk(
                last.start, last.nbytes + nbytes, server, last.server_offset
            )
        else:
            chunks.append(Chunk(pos, nbytes, server, soff))
        next_offset[server] = soff + nbytes
        pos += nbytes
    return chunks


def _alive_with_room(registry: FleetRegistry) -> list[int]:
    alive = [
        i
        for i in range(len(registry.servers))
        if registry.alive[i] and registry.free_bytes(i) > 0
    ]
    # Quarantine is advisory: avoid fail-slow servers while a healthy
    # candidate remains, but a limping server still beats a NACK.
    healthy = [i for i in alive if not registry.quarantined[i]]
    return healthy or alive


def _blocking(
    tenant: str, total_bytes: int, registry: FleetRegistry
) -> list[Chunk]:
    servers = _alive_with_room(registry)
    if not servers:
        raise CapacityError("no alive server with free capacity")
    n = len(servers)
    base = total_bytes // n
    base -= base % PAGE_SIZE
    assignment: list[tuple[int, int]] = []
    placed = 0
    for k, server in enumerate(servers):
        nbytes = total_bytes - placed if k == n - 1 else base
        if nbytes <= 0:
            continue
        if nbytes > registry.free_bytes(server):
            raise CapacityError(
                f"server {server}: blocking share of {nbytes} B does not "
                f"fit ({registry.free_bytes(server)} B free)"
            )
        assignment.append((server, nbytes))
        placed += nbytes
    return _coalesce(assignment)


def _least_loaded(
    tenant: str,
    total_bytes: int,
    registry: FleetRegistry,
    granule_bytes: int | None,
) -> list[Chunk]:
    servers = _alive_with_room(registry)
    if not servers:
        raise CapacityError("no alive server with free capacity")
    g = _granule(total_bytes, granule_bytes)
    free = {i: registry.free_bytes(i) for i in servers}
    assignment: list[tuple[int, int]] = []
    for _ in range(total_bytes // g):
        # Most free capacity first; index order breaks ties so the map
        # is deterministic.
        best = max(servers, key=lambda i: (free[i], -i))
        if free[best] < g:
            raise CapacityError(
                f"fleet out of capacity placing {total_bytes} B "
                f"for {tenant} (granule {g})"
            )
        assignment.append((best, g))
        free[best] -= g
    return _coalesce(assignment)


def _hash(
    tenant: str,
    total_bytes: int,
    registry: FleetRegistry,
    granule_bytes: int | None,
) -> list[Chunk]:
    servers = _alive_with_room(registry)
    if not servers:
        raise CapacityError("no alive server with free capacity")
    g = _granule(total_bytes, granule_bytes)
    free = {i: registry.free_bytes(i) for i in servers}
    assignment: list[tuple[int, int]] = []
    for gi in range(total_bytes // g):
        key = zlib.crc32(f"{tenant}:{gi}".encode())
        server = servers[key % len(servers)]
        if free[server] < g:
            raise CapacityError(
                f"server {server}: hash shard for {tenant} does not fit"
            )
        assignment.append((server, g))
        free[server] -= g
    return _coalesce(assignment)


def plan_group(
    policy: RedundancyPolicy,
    tenant: str,
    total_bytes: int,
    registry: FleetRegistry,
) -> tuple[list[Chunk], list[Chunk], ShardGroup]:
    """Plan a redundancy group: which servers hold which shard role.

    Returns ``(data_chunks, parity_chunks, group)`` — the data chunks
    cover the device exactly (what :class:`~repro.hpbd.striping.
    ChunkMapDistribution` routes requests by), the parity chunks are the
    redundancy copies' store extents, and the group records the
    role-to-server map the driver and the repair manager share.

    Pure planning, like :func:`plan_placement`: nothing is reserved.
    ``rs(k,m)`` picks the first k+m alive servers with room (healthy
    before quarantined, index order — deterministic); ``nway(r)``
    replicates over the whole alive fleet as a ring, generalizing the
    mirror layout (copy j of server i's chunk on server i+j at store
    offset ``j * share``).
    """
    if total_bytes <= 0 or total_bytes % PAGE_SIZE:
        raise ValueError(f"bad area size {total_bytes}")
    if policy.kind == "rs":
        width = policy.width
        if total_bytes % policy.k:
            raise CapacityError(
                f"area of {total_bytes} B does not stripe over "
                f"k={policy.k} data shards"
            )
        share = total_bytes // policy.k
        if share % PAGE_SIZE:
            raise CapacityError(
                f"rs({policy.k},{policy.m}) shard of {share} B is not "
                f"page-aligned"
            )
        candidates = [
            i for i in _alive_with_room(registry)
            if registry.free_bytes(i) >= share
        ]
        if len(candidates) < width:
            # Quarantined-but-alive servers still beat a NACK.
            candidates = [
                i
                for i in range(len(registry.servers))
                if registry.alive[i] and registry.free_bytes(i) >= share
            ]
        if len(candidates) < width:
            raise CapacityError(
                f"rs({policy.k},{policy.m}) group needs {width} servers "
                f"with {share} B free; only {len(candidates)} qualify"
            )
        members = candidates[:width]
        group = ShardGroup(policy=policy, servers=members, share_bytes=share)
        data_chunks, parity_chunks = group_chunk_maps(group, total_bytes)
        return data_chunks, parity_chunks, group
    if policy.kind == "nway":
        n = len(registry.servers)
        r = policy.m + 1
        if n < r:
            raise CapacityError(
                f"nway({r}) ring needs at least {r} servers, fleet has {n}"
            )
        if not all(registry.alive):
            raise CapacityError("nway placement needs every server alive")
        if total_bytes % n:
            raise CapacityError(
                f"area of {total_bytes} B does not divide over the "
                f"{n}-server ring"
            )
        share = total_bytes // n
        if share % PAGE_SIZE:
            raise CapacityError(
                f"nway({r}) chunk of {share} B is not page-aligned"
            )
        need = share * r
        short = [i for i in range(n) if registry.free_bytes(i) < need]
        if short:
            raise CapacityError(
                f"nway({r}) shares of {need} B do not fit servers {short}"
            )
        ring = list(range(n))
        group = ShardGroup(policy=policy, servers=ring, share_bytes=share)
        data_chunks, parity_chunks = group_chunk_maps(group, total_bytes)
        return data_chunks, parity_chunks, group
    raise ValueError(f"plan_group got non-redundant policy {policy.label}")


def plan_placement(
    policy: str,
    tenant: str,
    total_bytes: int,
    registry: FleetRegistry,
    granule_bytes: int | None = None,
) -> list[Chunk]:
    """Plan a tenant's chunk map under ``policy``.

    Pure planning — nothing is reserved; the admission layer turns the
    plan into registry reservations (and may re-plan on failure).
    Raises :class:`CapacityError` when the plan cannot fit the fleet's
    current free capacity.
    """
    if total_bytes <= 0 or total_bytes % PAGE_SIZE:
        raise ValueError(f"bad area size {total_bytes}")
    if policy == "blocking":
        return _blocking(tenant, total_bytes, registry)
    if policy == "least_loaded":
        return _least_loaded(tenant, total_bytes, registry, granule_bytes)
    if policy == "hash":
        return _hash(tenant, total_bytes, registry, granule_bytes)
    raise ValueError(f"unknown placement policy {policy!r}")
