"""Fleet registry: advertised capacity, reservations, and liveness.

Each server advertises ``capacity_bytes`` of RAM; admission may reserve
up to ``capacity * overcommit`` (the excess lives behind the RamDisk
residency cap and spills to the server's local disk).  Reservations use
a bump allocator per server — tenants reserve on connect and hold their
area for the life of the run, so there is no free-list to manage; a
released extent only returns bytes to the accounting, not address
space.

Liveness piggybacks on the fault-injection hooks: a heartbeat process
polls each daemon's ``alive`` flag (which :mod:`repro.faults` flips on
``ServerCrash``) and keeps the registry's view — and its capacity
accounting — honest.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hpbd.server import HPBDServer
from ..simulator import SimulationError, Simulator, StatsRegistry

__all__ = ["CapacityError", "FleetRegistry", "Reservation"]


class CapacityError(SimulationError):
    """A reservation that does not fit the server's advertised limit."""


@dataclass(frozen=True)
class Reservation:
    """One tenant's extent on one server's store."""

    tenant: str
    server: int
    offset: int  # bytes into the server's store
    nbytes: int


class FleetRegistry:
    """Capacity + liveness book-keeping for one server fleet."""

    def __init__(
        self,
        sim: Simulator,
        servers: list[HPBDServer],
        capacity_bytes: int,
        overcommit: float = 1.0,
        heartbeat_interval_usec: float = 1_000.0,
        stats: StatsRegistry | None = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"bad capacity {capacity_bytes}")
        if overcommit < 1.0:
            raise ValueError(f"overcommit must be >= 1, got {overcommit}")
        self.sim = sim
        self.servers = servers
        self.capacity_bytes = capacity_bytes
        self.limit_bytes = int(capacity_bytes * overcommit)
        self.heartbeat_interval_usec = heartbeat_interval_usec
        self.stats = stats if stats is not None else StatsRegistry()
        n = len(servers)
        self.reserved = [0] * n
        self._cursor = [0] * n
        self.alive = [True] * n
        #: fail-slow quarantine verdicts mirrored from the health hub on
        #: each heartbeat; placement avoids quarantined servers while a
        #: non-quarantined candidate remains.
        self.quarantined = [False] * n
        self.last_heartbeat = [0.0] * n
        self.reservations: list[Reservation] = []
        #: bytes reserved per tenant across the whole fleet
        self.by_tenant: dict[str, int] = {}
        self._c_reserved = self.stats.counter("cluster.reserved_bytes")
        self._c_released = self.stats.counter("cluster.released_bytes")
        self._c_down = self.stats.counter("cluster.server_down")
        self._c_up = self.stats.counter("cluster.server_up")
        self._c_quarantines = self.stats.counter("cluster.quarantines")
        self._c_quarantine_lifts = self.stats.counter(
            "cluster.quarantine_lifts"
        )
        self._heartbeat_proc = None
        #: optional fleet health model (repro.obs.health.HealthHub);
        #: liveness edges are forwarded so crash/flap and fail-slow
        #: verdicts share one per-server status.
        self.health = None

    # -- capacity ------------------------------------------------------------

    def free_bytes(self, server: int) -> int:
        """Unreserved bytes below the (overcommitted) admission limit."""
        return self.limit_bytes - self.reserved[server]

    def reserve(self, tenant: str, server: int, nbytes: int) -> int:
        """Reserve ``nbytes`` on ``server`` for ``tenant``; returns the
        store offset of the new extent."""
        if nbytes <= 0:
            raise ValueError(f"bad reservation size {nbytes}")
        if not (0 <= server < len(self.servers)):
            raise ValueError(f"no server {server}")
        if not self.alive[server]:
            raise CapacityError(
                f"server {server} is down (heartbeat lost)"
            )
        if nbytes > self.free_bytes(server):
            raise CapacityError(
                f"server {server}: {nbytes} B does not fit "
                f"({self.free_bytes(server)} B free of {self.limit_bytes})"
            )
        offset = self._cursor[server]
        self._cursor[server] += nbytes
        self.reserved[server] += nbytes
        self.by_tenant[tenant] = self.by_tenant.get(tenant, 0) + nbytes
        self.reservations.append(Reservation(tenant, server, offset, nbytes))
        self._c_reserved.add(nbytes)
        self.sim.monitors.check(
            self.reserved[server] <= self.limit_bytes,
            "cluster.capacity_conserved", f"server{server}",
            "reserved bytes exceed the admission limit",
            reserved=self.reserved[server], limit=self.limit_bytes,
        )
        self.sim.monitors.watermark(
            f"cluster.reserved.server{server}", float(self.reserved[server])
        )
        return offset

    def release(self, tenant: str, server: int, nbytes: int) -> None:
        """Return ``nbytes`` of a tenant's reservation to the books.

        Address space is not recycled (bump allocator); only the
        capacity accounting moves.
        """
        if nbytes <= 0:
            raise ValueError(f"bad release size {nbytes}")
        have = self.by_tenant.get(tenant, 0)
        self.sim.monitors.check(
            nbytes <= have and nbytes <= self.reserved[server],
            "cluster.capacity_conserved", f"server{server}",
            "release exceeds what the tenant reserved",
            tenant=tenant, release=nbytes, held=have,
        )
        self.reserved[server] -= nbytes
        self.by_tenant[tenant] = have - nbytes
        self._c_released.add(nbytes)

    # -- liveness ------------------------------------------------------------

    def start_heartbeat(self) -> None:
        """Spawn the liveness poller (idempotent)."""
        if self._heartbeat_proc is None:
            self._heartbeat_proc = self.sim.spawn(
                self._heartbeat(), name="cluster.heartbeat"
            )

    def _heartbeat(self):
        sim = self.sim
        while True:
            yield sim.timeout(self.heartbeat_interval_usec)
            self.poll()

    def poll(self) -> None:
        """One heartbeat sweep: liveness edges plus the health hub's
        fail-slow quarantine verdicts (also callable from tests)."""
        sim = self.sim
        for i, srv in enumerate(self.servers):
            self.last_heartbeat[i] = sim.now
            if self.alive[i] and not srv.alive:
                self.alive[i] = False
                self._c_down.add()
                if self.health is not None:
                    self.health.set_server_alive(i, False)
                sim.trace.instant(
                    "cluster", "registry", "server_down", server=i,
                )
            elif not self.alive[i] and srv.alive:
                self.alive[i] = True
                self._c_up.add()
                if self.health is not None:
                    self.health.set_server_alive(i, True)
                sim.trace.instant(
                    "cluster", "registry", "server_up", server=i,
                )
            slow = (
                self.health is not None
                and self.alive[i]
                and self.health.server_is_slow(i)
            )
            if slow and not self.quarantined[i]:
                self.quarantined[i] = True
                self._c_quarantines.add()
                sim.trace.instant(
                    "cluster", "registry", "quarantine", server=i,
                )
            elif not slow and self.quarantined[i]:
                self.quarantined[i] = False
                self._c_quarantine_lifts.add()
                sim.trace.instant(
                    "cluster", "registry", "quarantine_lift", server=i,
                )

    @property
    def alive_count(self) -> int:
        return sum(self.alive)

    # -- teardown audit ------------------------------------------------------

    def audit_teardown(self) -> None:
        """Capacity-conservation invariants for the whole fleet."""
        monitors = self.sim.monitors
        for i in range(len(self.servers)):
            held = sum(
                r.nbytes for r in self.reservations if r.server == i
            )
            # ``release`` moves accounting without deleting records, so
            # the ledger check is reserved <= sum(extents) <= limit.
            monitors.check(
                0 <= self.reserved[i] <= held <= self.limit_bytes
                or (held == 0 and self.reserved[i] == 0),
                "cluster.capacity_conserved", f"server{i}",
                "reservation ledger does not balance at teardown",
                reserved=self.reserved[i], extents=held,
                limit=self.limit_bytes,
            )
        total_by_tenant = sum(self.by_tenant.values())
        total_reserved = sum(self.reserved)
        monitors.check(
            total_by_tenant == total_reserved,
            "cluster.capacity_conserved", "fleet",
            "per-tenant and per-server reservation totals disagree",
            by_tenant=total_by_tenant, by_server=total_reserved,
        )
