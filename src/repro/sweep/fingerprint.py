"""Deterministic fingerprints for sweep cache keys.

A cached :class:`~repro.results.ScenarioResult` may be reused only when
*nothing that can influence the simulation* has changed.  Two hashes
capture that:

* :func:`config_fingerprint` — a canonical, structural hash of a
  :class:`~repro.config.ScenarioConfig`, covering every field reachable
  from it (device parameters, VM parameters, workload op streams, numpy
  page arrays, ...).  Constructing the same config twice — even in
  different processes — yields the same hex digest.
* :func:`code_fingerprint` — a hash over the source text of every
  ``repro`` module, so any edit to the simulator, drivers or workloads
  invalidates the whole cache.  Computed once per process.

The encoder is intentionally conservative: every node is framed with a
type tag and a length, so ``("a", "b")`` and ``("ab",)`` cannot collide,
and an object kind it does not understand raises instead of silently
hashing ``repr`` noise.
"""

from __future__ import annotations

import dataclasses
import hashlib
import struct
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["config_fingerprint", "code_fingerprint", "sweep_key"]


def _encode(h: "hashlib._Hash", obj: Any) -> None:
    if obj is None:
        h.update(b"N")
    elif obj is True:
        h.update(b"T")
    elif obj is False:
        h.update(b"f")
    elif isinstance(obj, int):
        data = str(obj).encode()
        h.update(b"I" + struct.pack("<I", len(data)) + data)
    elif isinstance(obj, float):
        h.update(b"F" + struct.pack("<d", obj))
    elif isinstance(obj, str):
        data = obj.encode()
        h.update(b"S" + struct.pack("<I", len(data)) + data)
    elif isinstance(obj, bytes):
        h.update(b"Y" + struct.pack("<I", len(obj)) + obj)
    elif isinstance(obj, (list, tuple)):
        h.update(b"L" + struct.pack("<I", len(obj)))
        for item in obj:
            _encode(h, item)
    elif isinstance(obj, dict):
        h.update(b"D" + struct.pack("<I", len(obj)))
        for key in sorted(obj, key=str):
            _encode(h, key)
            _encode(h, obj[key])
    elif isinstance(obj, np.ndarray):
        h.update(b"A")
        _encode(h, obj.dtype.str)
        _encode(h, list(obj.shape))
        h.update(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, np.generic):
        _encode(h, obj.item())
    elif dataclasses.is_dataclass(obj):
        h.update(b"C")
        _encode(h, type(obj).__qualname__)
        for field in sorted(dataclasses.fields(obj), key=lambda f: f.name):
            _encode(h, field.name)
            _encode(h, getattr(obj, field.name))
    elif hasattr(obj, "__dict__") or hasattr(type(obj), "__slots__"):
        # Workloads and other plain objects: class identity + every
        # instance attribute (private trace buffers included — they ARE
        # the workload).
        h.update(b"O")
        _encode(h, type(obj).__qualname__)
        attrs = dict(getattr(obj, "__dict__", {}))
        for klass in type(obj).__mro__:
            for slot in getattr(klass, "__slots__", ()):
                if hasattr(obj, slot):
                    attrs[slot] = getattr(obj, slot)
        _encode(h, attrs)
    else:
        raise TypeError(
            f"cannot fingerprint {type(obj).__qualname__!r} deterministically"
        )


def config_fingerprint(cfg: Any) -> str:
    """Canonical sha256 hex digest of a scenario configuration."""
    h = hashlib.sha256()
    _encode(h, cfg)
    return h.hexdigest()


_CODE_FINGERPRINT: str | None = None


def code_fingerprint() -> str:
    """sha256 over the source of every module in the ``repro`` package.

    Any code change — simulator, kernel models, drivers, workloads —
    changes this digest and therefore invalidates every cache entry.
    Memoized per process (the tree is a few hundred KiB).
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        package_root = Path(__file__).resolve().parent.parent
        h = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            rel = path.relative_to(package_root).as_posix()
            data = path.read_bytes()
            h.update(rel.encode() + b"\0")
            h.update(struct.pack("<I", len(data)) + data)
        _CODE_FINGERPRINT = h.hexdigest()
    return _CODE_FINGERPRINT


def sweep_key(cfg: Any) -> str:
    """The cache key for one sweep point: config hash x code hash."""
    h = hashlib.sha256()
    h.update(config_fingerprint(cfg).encode())
    h.update(code_fingerprint().encode())
    return h.hexdigest()
