"""On-disk result cache for sweep points.

One pickle file per point, sharded by key prefix::

    <root>/ab/abcdef....pkl

Keys come from :func:`repro.sweep.fingerprint.sweep_key`, which covers
both the scenario configuration and the package source, so a stale
entry can only mean "same code, same config" — safe to reuse.  Writes
are atomic (tmp file + rename) so a crashed run never leaves a
half-written entry; unreadable entries are treated as misses and
removed.
"""

from __future__ import annotations

import os
import pickle
import warnings
from pathlib import Path
from typing import Any

__all__ = ["ResultCache", "default_cache_dir"]

_ENV_DIR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``.repro-cache`` in the CWD."""
    return Path(os.environ.get(_ENV_DIR, ".repro-cache"))


class ResultCache:
    """Content-addressed store of pickled :class:`ScenarioResult`\\ s."""

    def __init__(self, root: "Path | str | None" = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        #: corrupt/unreadable entries dropped on the read path
        self.evictions = 0
        #: fresh entries written this run
        self.puts = 0
        #: set on the first failed write (e.g. ``$REPRO_CACHE_DIR``
        #: pointing somewhere unwritable): the sweep keeps running
        #: uncached instead of crashing.
        self.disabled = False

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Any | None:
        """The cached result for ``key``, or None on a miss."""
        if self.disabled:
            self.misses += 1
            return None
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                result = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Corrupt / truncated / version-skewed entry: drop and miss.
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            self.evictions += 1
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: Any) -> None:
        if self.disabled:
            return
        path = self._path(key)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
            self.puts += 1
        except OSError as exc:
            # An unwritable cache root must not kill the sweep: results
            # still come back, just uncached.
            self.disabled = True
            warnings.warn(
                f"result cache at {self.root} is unwritable ({exc}); "
                f"caching disabled for this run",
                RuntimeWarning,
                stacklevel=2,
            )

    def summary(self) -> str:
        """One-line hit/miss/evict accounting (``repro sweep`` prints
        this at exit)."""
        line = (
            f"{self.hits} hits, {self.misses} misses, "
            f"{self.puts} writes, {self.evictions} evictions "
            f"({self.root})"
        )
        if self.disabled:
            line += " [disabled: unwritable]"
        return line

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        n = 0
        if self.root.exists():
            for path in self.root.glob("*/*.pkl"):
                path.unlink(missing_ok=True)
                n += 1
        return n
