"""Parallel scenario-execution engine with result caching.

Every paper figure is a *sweep*: a grid of independent
:func:`~repro.runner.run_scenario` calls (device x workload x scale x
server-count).  The engine fans the grid out over a
``ProcessPoolExecutor`` — simulations are pure CPU-bound functions of
their config, so process-level parallelism is the right grain for a
GIL-bound DES — and memoizes each point in an on-disk
:class:`~repro.sweep.cache.ResultCache` keyed by the configuration and
the package source hash.  Re-running a figure after an edit re-simulates
only the points the edit could affect (all of them on a code change,
none on a pure re-run).

Simulations are deterministic, so serial, parallel and cached execution
all yield bit-identical :class:`~repro.results.ScenarioResult` counters.
"""

from __future__ import annotations

import os
import time
import warnings
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass

from ..config import ScenarioConfig
from ..results import ScenarioResult
from .cache import ResultCache
from .fingerprint import sweep_key

__all__ = ["SweepPoint", "SweepReport", "run_sweep", "resolve_workers"]

_ENV_WORKERS = "REPRO_SWEEP_WORKERS"


@dataclass(frozen=True)
class SweepPoint:
    """One cell of a sweep grid: a name plus the config to simulate."""

    name: str
    cfg: ScenarioConfig


@dataclass
class SweepReport:
    """What one sweep did: the results plus cache/parallelism accounting."""

    points: list[SweepPoint]
    results: list[ScenarioResult]
    simulated: int  # points actually run this call
    cached: int  # points served from the cache
    wall_sec: float  # host wall-clock for the whole sweep
    workers: int  # process count used (1 = in-process serial)

    @property
    def by_name(self) -> dict[str, ScenarioResult]:
        return {p.name: r for p, r in zip(self.points, self.results)}


def resolve_workers(workers: "int | str | None") -> int:
    """Normalize a worker request to a process count (>= 1).

    ``None`` consults ``$REPRO_SWEEP_WORKERS`` (default 1 = serial);
    ``"auto"`` or ``0`` means one worker per CPU.  Garbage in the
    environment variable must not kill a sweep that never asked for
    parallelism, so env-derived values fall back to serial with a
    warning; an explicit bad argument still raises.
    """
    from_env = workers is None
    if workers is None:
        workers = os.environ.get(_ENV_WORKERS, "1")
    if workers in ("auto", 0):
        return os.cpu_count() or 1
    try:
        n = int(workers)
    except (TypeError, ValueError):
        n = -1
    if n < 1:
        if from_env:
            warnings.warn(
                f"invalid {_ENV_WORKERS}={workers!r}; falling back to "
                f"serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
            return 1
        raise ValueError(f"workers must be >= 1, 0 or 'auto', got {workers!r}")
    return n


def _simulate_config(cfg: ScenarioConfig, trace: bool = False) -> ScenarioResult:
    """Top-level so it pickles into pool workers."""
    from ..runner import run_scenario

    return run_scenario(cfg, trace=trace)


def run_sweep(
    points: Sequence[SweepPoint],
    *,
    workers: "int | str | None" = None,
    cache: "ResultCache | str | os.PathLike | bool | None" = None,
    force: bool = False,
    trace: bool = False,
    progress: "Callable[[str, str], None] | None" = None,
    campaign=None,
) -> SweepReport:
    """Run every point, in parallel where possible, reusing cached results.

    * ``workers`` — process count (see :func:`resolve_workers`); 1 runs
      in-process with no executor overhead.
    * ``cache`` — ``None``/``False`` disables caching; ``True`` uses the
      default directory; a path or a :class:`ResultCache` selects one.
    * ``force`` — ignore cached entries (still writes fresh ones).
    * ``trace`` — run every simulated point with tracing enabled, so
      results carry per-request blame aggregates (``blame_usec``) and
      invariant-monitor reports.  Traced points cache under a distinct
      key: a traced request is never served a blame-less untraced entry
      (the live span recorder itself still never crosses the cache).
    * ``progress`` — optional ``fn(point_name, "cached"|"simulated")``
      called as each point completes.
    * ``campaign`` — optional :class:`~repro.obs.campaign.CampaignStore`
      (or a JSONL path): every completed point — cached hits included,
      they are equally valid runs — is summarized into a
      :class:`~repro.obs.campaign.RunRecord` and appended.

    Points whose configs hash identically are simulated once and share
    the result.  Results come back in input order.
    """
    points = list(points)
    t0 = time.perf_counter()

    store: ResultCache | None
    if cache is None or cache is False:
        store = None
    elif cache is True:
        store = ResultCache()
    elif isinstance(cache, ResultCache):
        store = cache
    else:
        store = ResultCache(cache)

    results: list[ScenarioResult | None] = [None] * len(points)
    keys: list[str | None] = [None] * len(points)
    # Misses, deduplicated by key: owner index -> follower indices.
    owners: dict[str, int] = {}
    misses: list[int] = []
    followers: dict[int, list[int]] = {}
    for i, point in enumerate(points):
        key = None
        if store is not None:
            key = sweep_key(point.cfg)
            if trace:
                key = "traced-" + key
        keys[i] = key
        if store is not None and not force:
            hit = store.get(key)
            if hit is not None:
                results[i] = hit
                if progress is not None:
                    progress(point.name, "cached")
                continue
        if key is not None and key in owners:
            followers.setdefault(owners[key], []).append(i)
            continue
        if key is not None:
            owners[key] = i
        misses.append(i)

    nworkers = resolve_workers(workers)
    if misses:
        if nworkers > 1 and len(misses) > 1:
            with ProcessPoolExecutor(max_workers=nworkers) as pool:
                futures = {
                    pool.submit(_simulate_config, points[i].cfg, trace): i
                    for i in misses
                }
                for future in as_completed(futures):
                    i = futures[future]
                    results[i] = future.result()
                    if progress is not None:
                        progress(points[i].name, "simulated")
        else:
            nworkers = 1
            for i in misses:
                results[i] = _simulate_config(points[i].cfg, trace)
                if progress is not None:
                    progress(points[i].name, "simulated")
        for i in misses:
            if store is not None:
                store.put(keys[i], results[i])
            for j in followers.get(i, ()):
                results[j] = results[i]
                if progress is not None:
                    progress(points[j].name, "cached")
    else:
        nworkers = 1

    if campaign is not None:
        from ..obs.campaign import (
            CampaignStore,
            git_provenance,
            record_from_result,
        )

        if not isinstance(campaign, CampaignStore):
            campaign = CampaignStore(campaign)
        provenance = git_provenance()
        for point, result in zip(points, results):
            campaign.append(
                record_from_result(
                    point.name, point.cfg, result, provenance=provenance
                )
            )

    return SweepReport(
        points=points,
        results=results,  # type: ignore[arg-type] — all filled above
        simulated=len(misses),
        cached=len(points) - len(misses),
        wall_sec=time.perf_counter() - t0,
        workers=nworkers,
    )
