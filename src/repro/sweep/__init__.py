"""Parallel sweep engine with on-disk result caching.

Public surface::

    from repro.sweep import SweepPoint, run_sweep

    points = [SweepPoint("hpbd", cfg_hpbd), SweepPoint("disk", cfg_disk)]
    report = run_sweep(points, workers="auto", cache=True)
    report.results      # ScenarioResults, input order
    report.simulated    # points actually run
    report.cached       # points served from disk

See ``docs/PERFORMANCE.md`` for cache keying and invalidation rules.
"""

from .cache import ResultCache, default_cache_dir
from .engine import SweepPoint, SweepReport, resolve_workers, run_sweep
from .fingerprint import code_fingerprint, config_fingerprint, sweep_key

__all__ = [
    "SweepPoint",
    "SweepReport",
    "run_sweep",
    "resolve_workers",
    "ResultCache",
    "default_cache_dir",
    "config_fingerprint",
    "code_fingerprint",
    "sweep_key",
]
