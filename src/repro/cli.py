"""Command-line interface: run paper experiments from the shell.

::

    python -m repro list
    python -m repro run fig05 --scale 8
    python -m repro run fig10 --scale 16 --json out.json
    python -m repro run all
    python -m repro table1

Each experiment prints the same paper-vs-measured table its benchmark
prints; ``--json`` additionally dumps the raw numbers.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from collections.abc import Callable, Sequence

from . import experiments
from .analysis import (
    cluster_requests,
    comparison_table,
    format_table,
    render_table1,
    write_json_report,
)
from .results import ScenarioResult
from .units import KiB

__all__ = ["main", "EXPERIMENTS"]


def _scaled(results: list[ScenarioResult], scale: int) -> list[ScenarioResult]:
    return [
        dataclasses.replace(r, elapsed_usec=r.elapsed_usec * scale)
        for r in results
    ]


def _run_fig01(scale: int) -> dict:
    data = experiments.fig01_latency()
    rows = [
        [int(s), data["memcpy"][i], data["rdma_write"][i],
         data["ipoib"][i], data["gige"][i]]
        for i, s in enumerate(data["sizes"])
    ]
    print("Fig. 1 — one-way latency (µs) vs size (B)")
    print(format_table(["size", "memcpy", "rdma_write", "ipoib", "gige"], rows))
    return {k: list(map(float, v)) for k, v in data.items()}


def _run_fig03(scale: int) -> dict:
    data = experiments.fig03_registration()
    print("Fig. 3 — registration vs memcpy cost (µs)")
    print(format_table(
        ["size", "registration", "memcpy"],
        [[int(s), data["registration"][i], data["memcpy"][i]]
         for i, s in enumerate(data["sizes"])],
    ))
    return {k: list(map(float, v)) for k, v in data.items()}


def _run_fig05(scale: int) -> dict:
    results = experiments.fig05_testswap(scale)
    print(f"Fig. 5 — testswap (scale=1/{scale}; seconds shown x{scale})")
    print(comparison_table(_scaled(results, scale), paper=experiments.PAPER_FIG5))
    return {r.label: r.elapsed_sec * scale for r in results}


def _run_fig06(scale: int) -> dict:
    result = experiments.fig06_reqsize_run(scale)
    clusters = cluster_requests(result.request_trace, op="write")
    print(f"Fig. 6 — request clusters (testswap over HPBD, scale=1/{scale})")
    print(format_table(
        ["cluster", "requests", "avg size (KiB)"],
        [[c.index, c.count, c.mean_bytes / KiB]
         for c in clusters[:: max(1, len(clusters) // 20)]],
    ))
    return {
        "mean_write_request_kib": result.mean_write_request / KiB,
        "clusters": len(clusters),
    }


def _run_fig07(scale: int) -> dict:
    results = experiments.fig07_quicksort(scale)
    print(f"Fig. 7 — quick sort (scale=1/{scale}; seconds shown x{scale})")
    print(comparison_table(_scaled(results, scale), paper=experiments.PAPER_FIG7))
    return {r.label: r.elapsed_sec * scale for r in results}


def _run_fig08(scale: int) -> dict:
    s = max(1, scale // 2)
    results = experiments.fig08_barnes(s)
    print(f"Fig. 8 — Barnes (scale=1/{s}; seconds shown x{s})")
    print(comparison_table(_scaled(results, s)))
    return {r.label: r.elapsed_sec * s for r in results}


def _run_fig09(scale: int) -> dict:
    cells = experiments.fig09_concurrent(scale)
    print(f"Fig. 9 — two concurrent quick sorts (scale=1/{scale})")
    print(format_table(
        ["device", "memory", "vs local"],
        [[c.label, c.memory, c.slowdown] for c in cells],
    ))
    return {f"{c.label}@{c.memory}": c.slowdown for c in cells}


def _run_fig10(scale: int) -> dict:
    results = experiments.fig10_servers(scale)
    base = results[0][1]
    print(f"Fig. 10 — quick sort vs #servers (scale=1/{scale})")
    print(format_table(
        ["servers", f"time (s, x{scale})", "vs 1 server"],
        [[n, r.elapsed_sec * scale, r.slowdown_vs(base)] for n, r in results],
    ))
    return {str(n): r.elapsed_sec * scale for n, r in results}


def _run_table1(scale: int) -> dict:
    print(render_table1())
    return {"systems": 10}


EXPERIMENTS: dict[str, tuple[Callable[[int], dict], str]] = {
    "table1": (_run_table1, "related-work taxonomy"),
    "fig01": (_run_fig01, "latency vs size microbenchmark"),
    "fig03": (_run_fig03, "registration vs memcpy cost"),
    "fig05": (_run_fig05, "testswap across devices"),
    "fig06": (_run_fig06, "testswap request-size clusters"),
    "fig07": (_run_fig07, "quick sort across devices"),
    "fig08": (_run_fig08, "Barnes across devices"),
    "fig09": (_run_fig09, "two concurrent quick sorts"),
    "fig10": (_run_fig10, "quick sort vs number of servers"),
}


def _write_csv(name: str, scale: int, outdir: str) -> None:
    """Write the plot-ready CSV for one experiment, if it has one."""
    from pathlib import Path

    from .analysis.export import (
        clusters_to_csv,
        results_to_csv,
        series_to_csv,
    )

    path = Path(outdir) / f"{name}.csv"
    path.parent.mkdir(parents=True, exist_ok=True)
    if name == "fig01":
        path.write_text(series_to_csv(experiments.fig01_latency()))
    elif name == "fig03":
        path.write_text(series_to_csv(experiments.fig03_registration()))
    elif name == "fig05":
        path.write_text(results_to_csv(experiments.fig05_testswap(scale)))
    elif name == "fig06":
        run = experiments.fig06_reqsize_run(scale)
        path.write_text(clusters_to_csv(run.request_trace))
    elif name == "fig07":
        path.write_text(results_to_csv(experiments.fig07_quicksort(scale)))
    elif name == "fig08":
        path.write_text(
            results_to_csv(experiments.fig08_barnes(max(1, scale // 2)))
        )
    else:
        return
    print(f"wrote {path}")


_TRACE_DEVICES = ("hpbd", "nbd-ipoib", "nbd-gige", "disk")
_TRACE_WORKLOADS = ("quicksort", "testswap")


def _run_trace(args) -> int:
    """``repro trace``: one traced run + baseline, breakdown, exports."""
    from .analysis.breakdown import (
        format_breakdown,
        measured_breakdown,
        measured_network_fraction,
        wire_crosscheck,
    )
    from .config import HPBD, LocalDisk, LocalMemory, NBD
    from .experiments import _scenario
    from .net.fabrics import IB_DEFAULT
    from .obs import spans_to_csv, write_chrome_trace
    from .runner import run_scenario
    from .units import GiB, MiB
    from .workloads import QuicksortWorkload, TestswapWorkload

    device = {
        "hpbd": HPBD(),
        "nbd-ipoib": NBD("ipoib"),
        "nbd-gige": NBD("gige"),
        "disk": LocalDisk(),
    }[args.device]
    scale = args.scale

    def workload():
        if args.workload == "quicksort":
            return QuicksortWorkload(nelems=256 * 1024 * 1024 // scale)
        return TestswapWorkload(size_bytes=GiB // scale)

    print(f"tracing {args.workload} over {args.device} (scale=1/{scale})...")
    result = run_scenario(
        _scenario([workload()], device, scale, 512 * MiB, GiB), trace=True
    )
    base = run_scenario(
        _scenario([workload()], LocalMemory(), scale, 2 * GiB, GiB)
    )
    rows = measured_breakdown(result, base)
    print(f"{result.summary()}   ({len(result.trace)} trace events)")
    print()
    print("Measured §6.2 decomposition (aggregate span time, share of "
          "swap overhead):")
    print(format_breakdown(rows))
    frac = measured_network_fraction(result, base)
    print(f"network share of overhead (measured): {frac:.1%}")
    if args.device == "hpbd":
        measured, modeled, err = wire_crosscheck(
            result, IB_DEFAULT.rdma_write_cost
        )
        print(
            f"wire cross-check vs Amdahl cost model: measured "
            f"{measured / 1e3:.1f} ms, modeled {modeled / 1e3:.1f} ms "
            f"(rel. err {err:.1%})"
        )
    write_chrome_trace(result.trace, args.output)
    print(f"wrote {args.output}  (load in Perfetto / chrome://tracing)")
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(spans_to_csv(result.trace))
        print(f"wrote {args.csv}")
    return 0


def _run_critpath(args) -> int:
    """``repro critpath``: per-request blame + invariant audit.

    Exit status is nonzero when the trace has orphan request-path spans
    or any invariant monitor recorded a violation — CI runs this as the
    traced smoke job.
    """
    from .analysis.critpath import (
        aggregate_blame,
        blame_split,
        format_critpath,
        orphan_spans,
        request_paths,
        slowest,
    )
    from .config import HPBD, LocalDisk, NBD
    from .experiments import _scenario
    from .obs import write_chrome_trace
    from .runner import run_scenario
    from .units import GiB, MiB
    from .workloads import QuicksortWorkload, TestswapWorkload

    device = {
        "hpbd": HPBD(),
        "nbd-ipoib": NBD("ipoib"),
        "nbd-gige": NBD("gige"),
        "disk": LocalDisk(),
    }[args.device]
    scale = args.scale
    if args.workload == "quicksort":
        workload = QuicksortWorkload(nelems=256 * 1024 * 1024 // scale)
    else:
        workload = TestswapWorkload(size_bytes=GiB // scale)

    print(
        f"critical-path analysis: {args.workload} over {args.device} "
        f"(scale=1/{scale})..."
    )
    result = run_scenario(
        _scenario([workload], device, scale, 512 * MiB, GiB), trace=True
    )
    paths = request_paths(result.trace)
    orphans = orphan_spans(result.trace)
    violations = result.invariant_violations
    print(format_critpath(paths, top=args.top))
    if result.monitor_watermarks:
        print("watermarks:")
        for key in sorted(result.monitor_watermarks):
            print(f"  {key} = {result.monitor_watermarks[key]:g}")
    status = 0
    if orphans:
        cats = sorted({s.cat for s in orphans})
        print(
            f"ERROR: {len(orphans)} request-path spans without req_id "
            f"(cats: {', '.join(cats)})",
            file=sys.stderr,
        )
        status = 1
    if violations:
        print(
            f"ERROR: {len(violations)} invariant violations:", file=sys.stderr
        )
        for v in violations[:20]:
            print(
                f"  t={v['t_usec']:.1f} {v['monitor']} "
                f"[{v['component']}]: {v['message']}",
                file=sys.stderr,
            )
        status = 1
    if not orphans and not violations:
        print("invariant monitors: clean (0 violations, 0 orphan spans)")
    if args.output:
        write_chrome_trace(result.trace, args.output)
        print(f"wrote {args.output}  (load in Perfetto / chrome://tracing)")
    if args.json:
        agg = aggregate_blame(paths)
        payload = {
            "device": args.device,
            "workload": args.workload,
            "scale": scale,
            "requests": len(paths),
            "blame_usec": agg,
            **blame_split(agg),
            "orphan_spans": len(orphans),
            "violations": violations,
            "watermarks": result.monitor_watermarks,
            "slowest": [
                {
                    "req_id": p.req_id,
                    "op": p.op,
                    "nbytes": p.nbytes,
                    "e2e_usec": p.e2e,
                    "queue_wait_usec": p.queue_wait,
                    "blame_usec": p.blame,
                }
                for p in slowest(paths, args.top)
            ],
        }
        write_json_report(args.json, payload)
        print(f"wrote {args.json}")
    return status


_FAULT_MODES = ("remap", "disk", "mirror")
_PLACEMENT_POLICIES = ("blocking", "least_loaded", "hash")

#: the HPBD client's recovery counters ``repro faults`` reports.
_RECOVERY_COUNTERS = (
    "retries", "timeouts", "failovers", "write_failovers",
    "remaps", "disk_fallbacks", "stale_replies", "servers_dead",
)


def _run_faults(args) -> int:
    """``repro faults``: crash a memory server mid-run, audit recovery.

    Runs one traced testswap scenario with a scheduled ``ServerCrash``
    and the recovery machinery for the chosen mode, then reports the
    recovery counters, the fault/retry blame shares, and the invariant
    monitors.  Exit status is nonzero on any invariant violation, or —
    under ``--expect-recovery`` — when the run recovered without
    actually exercising the machinery (no failover/remap/fallback or no
    timeout), or — under ``--replay-check`` — when a second run of the
    same seed diverges.
    """
    from .analysis.critpath import aggregate_blame, blame_split, request_paths
    from .config import FaultConfig, HPBD
    from .experiments import _scenario
    from .faults import FaultPlan, ServerCrash
    from .obs import write_chrome_trace
    from .runner import run_scenario
    from .units import GiB, MiB
    from .workloads import TestswapWorkload

    scale = args.scale
    if args.crash_at is None:
        # Mid-run for a testswap at this scale (~8.4e6/scale us total),
        # so the crash lands inside active swap traffic.
        args.crash_at = 4_200_000.0 / scale

    def run_once() -> ScenarioResult:
        if args.mode == "mirror":
            device = HPBD(nservers=2, mirror=True)
            crash = ServerCrash(at=args.crash_at, server=0)
            fcfg = FaultConfig(
                plan=FaultPlan(events=(crash,), seed=args.seed),
                request_timeout_usec=args.timeout,
            )
        else:
            device = HPBD(nservers=4)
            crash = ServerCrash(at=args.crash_at, server=1)
            fcfg = FaultConfig(
                plan=FaultPlan(events=(crash,), seed=args.seed),
                request_timeout_usec=args.timeout,
                degraded_mode=args.mode,
            )
        cfg = _scenario(
            [TestswapWorkload(size_bytes=GiB // scale)],
            device, scale, 512 * MiB, GiB,
        )
        cfg.faults = fcfg
        cfg.seed = args.seed
        return run_scenario(cfg, trace=True)

    def recovery_counters(result: ScenarioResult) -> dict[str, int]:
        out = {}
        for key in _RECOVERY_COUNTERS:
            c = result.registry.get(f"hpbd0.{key}")
            out[key] = int(c.total) if c is not None else 0
        for name in sorted(result.registry.names()):
            if name.startswith("fault."):
                out[name] = int(result.registry.get(name).total)
        return out

    print(
        f"fault run: testswap over hpbd, mode={args.mode}, crash at "
        f"t={args.crash_at:g} us (scale=1/{scale}, seed={args.seed})..."
    )
    result = run_once()
    ctrs = recovery_counters(result)
    paths = request_paths(result.trace)
    agg = aggregate_blame(paths)
    violations = result.invariant_violations
    print(result.summary())
    print()
    print("recovery / fault counters:")
    for key, value in ctrs.items():
        if value:
            print(f"  {key:<24s} {value}")
    total = sum(agg.values())
    if total > 0:
        print("blame shares:")
        for label in ("fault", "retry"):
            print(f"  {label:<8s} {agg.get(label, 0.0) / total:6.2%}")
    status = 0
    if violations:
        print(
            f"ERROR: {len(violations)} invariant violations:", file=sys.stderr
        )
        for v in violations[:20]:
            print(
                f"  t={v['t_usec']:.1f} {v['monitor']} "
                f"[{v['component']}]: {v['message']}",
                file=sys.stderr,
            )
        status = 1
    else:
        print("invariant monitors: clean (0 violations)")
    if args.expect_recovery:
        recovered = (
            ctrs["failovers"] + ctrs["write_failovers"]
            + ctrs["remaps"] + ctrs["disk_fallbacks"]
        )
        detected = ctrs["retries"] + ctrs["timeouts"]
        if recovered == 0 or detected == 0:
            print(
                f"ERROR: expected recovery activity, got {detected} "
                f"timeouts/retries and {recovered} "
                f"failovers/remaps/fallbacks",
                file=sys.stderr,
            )
            status = 1
    if args.replay_check:
        second = run_once()
        ctrs2 = recovery_counters(second)
        agg2 = aggregate_blame(request_paths(second.trace))
        if ctrs2 != ctrs or agg2 != agg:
            print(
                "ERROR: replay diverged for the same seed "
                f"(counters equal: {ctrs2 == ctrs}, "
                f"blame equal: {agg2 == agg})",
                file=sys.stderr,
            )
            status = 1
        else:
            print("replay check: second run identical (counters + blame)")
    if args.output:
        write_chrome_trace(result.trace, args.output)
        print(f"wrote {args.output}  (load in Perfetto / chrome://tracing)")
    if args.json:
        payload = {
            "mode": args.mode,
            "scale": scale,
            "seed": args.seed,
            "crash_at_usec": args.crash_at,
            "timeout_usec": args.timeout,
            "elapsed_usec": result.elapsed_usec,
            "counters": ctrs,
            "blame_usec": agg,
            **blame_split(agg),
            "violations": violations,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")
    return status


def _redundancy_default_crashes(pol, ncrashes: int):
    """Crash schedule aimed at the quicksort read frontier (see
    :func:`~repro.experiments.cluster_redundancy_config`): each outage
    lands on the shard being swept at that moment, so the degraded
    path is provably exercised, not just the rebuild."""
    if pol.kind == "nway":
        picks = ((90_000.0, 2), (200_000.0, 4))
    elif pol.k == 2:  # two wide data shards: the frontier crosses late
        picks = ((140_000.0, 1), (60_000.0, 0))
    else:
        picks = ((120_000.0, 2), (200_000.0, 3))
    return picks[:ncrashes]


def _run_redundancy(args) -> int:
    """``repro redundancy``: crash erasure-coded members mid-run, audit
    degraded reads and background repair.

    Runs one quicksort tenant whose swap area is protected by
    ``--policy``, with ``--crashes`` mid-run server crashes (wipe +
    40 ms outage + restart).  Exit status is nonzero on any invariant
    violation, or — under ``--expect-recovery`` — when the run did not
    actually exercise the machinery: every lost member rebuilt and
    nothing left pending, degraded service observed while members were
    down (rs reads reconstruct; nway reads fail over), repair traffic
    within 10% of lost x (k+m)/k, memory overhead within 0.05 of the
    policy's nominal, and the throttle contended — or, under
    ``--replay-check``, when a second run of the same seed diverges.
    """
    from .experiments import cluster_redundancy_config
    from .redundancy.policy import parse_policy
    from .runner import run_scenario
    from .units import fmt_bytes

    try:
        pol = parse_policy(args.policy)
    except ValueError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 2
    if pol.kind == "none":
        print("ERROR: pick a redundant policy (nway(r) or rs(k,m))",
              file=sys.stderr)
        return 2
    if args.crashes > pol.m:
        # Staggered outages heal in between, but keep the gate honest:
        # the schedule never exceeds the policy's concurrent tolerance,
        # so > m crashes only make sense with a wider policy.
        print(
            f"ERROR: {pol.label} tolerates {pol.m} concurrent "
            f"failures; --crashes {args.crashes} exceeds that",
            file=sys.stderr,
        )
        return 2
    crashes = _redundancy_default_crashes(pol, args.crashes)

    def run_once():
        cfg = cluster_redundancy_config(
            redundancy=args.policy,
            nservers=args.nservers,
            crashes=crashes,
            throttle_mib_s=args.throttle_mib_s,
        )
        cfg.seed = args.seed
        return run_scenario(cfg)

    when = ", ".join(f"mem{s}@{at / 1000:g}ms" for at, s in crashes)
    print(
        f"redundancy run: quicksort over {args.policy}, "
        f"{args.nservers} servers, crashes [{when}], "
        f"throttle {args.throttle_mib_s:g} MiB/s (seed={args.seed})..."
    )
    result = run_once()
    report = result.redundancy
    repair = report.get("repair", {})
    print(result.summary())
    print()
    print(f"policy {pol.label}: demand {fmt_bytes(report['demand_bytes'])}, "
          f"reserved {fmt_bytes(report['reserved_bytes'])} "
          f"(overhead {report['overhead']:.2f}x, nominal {pol.overhead:.2f}x)")
    print(f"degraded service: {report['degraded_reads']} degraded reads, "
          f"{report['reconstructs']} reconstructs, "
          f"{report['read_failovers']} read failovers, "
          f"{report['write_failovers']} write failovers")
    print(f"repair: {repair.get('rebuilds', 0)} rebuilds "
          f"({repair.get('spare_rebuilds', 0)} onto spares, "
          f"{repair.get('aborts', 0)} aborted), "
          f"{fmt_bytes(repair.get('bytes_moved', 0))} moved for "
          f"{fmt_bytes(repair.get('lost_bytes', 0))} lost, "
          f"{repair.get('pending', 0)} pending, "
          f"{repair.get('throttle_waits', 0)} throttle waits")
    status = 0
    violations = list(result.invariant_violations)
    if violations:
        print(
            f"ERROR: {len(violations)} invariant violations:",
            file=sys.stderr,
        )
        for v in violations[:20]:
            print(
                f"  t={v['t_usec']:.1f} {v['monitor']} "
                f"[{v['component']}]: {v['message']}",
                file=sys.stderr,
            )
        status = 1
    else:
        print("invariant monitors: clean (0 violations)")
    if args.expect_recovery:
        problems = []
        if repair.get("rebuilds", 0) < len(crashes):
            problems.append(
                f"{repair.get('rebuilds', 0)} rebuilds for "
                f"{len(crashes)} crashes"
            )
        if repair.get("pending", 0):
            problems.append(f"{repair['pending']} members still pending")
        degraded = (
            report["read_failovers"]
            if pol.kind == "nway"
            else report["degraded_reads"]
        )
        if degraded == 0:
            problems.append("no degraded service observed during outages")
        lost = repair.get("lost_bytes", 0)
        moved = repair.get("bytes_moved", 0)
        expect = pol.repair_traffic_bytes(lost)
        if lost and abs(moved - expect) > 0.10 * expect:
            problems.append(
                f"repair moved {moved} B, expected ~{expect} B "
                f"(lost x {(pol.k + pol.m)}/{pol.k})"
            )
        if report["overhead"] > pol.overhead + 0.05:
            problems.append(
                f"overhead {report['overhead']:.3f}x exceeds "
                f"{pol.overhead + 0.05:.2f}x"
            )
        if not repair.get("throttle_waits", 0):
            problems.append("migration throttle never contended")
        if problems:
            for p in problems:
                print(f"ERROR: expected recovery: {p}", file=sys.stderr)
            status = 1
        else:
            print("recovery gate: rebuilt, degraded service observed, "
                  "traffic and overhead within bounds")
    if args.replay_check:
        second = run_once()
        if second.fairness_report() != result.fairness_report():
            print(
                "ERROR: replay diverged for the same seed",
                file=sys.stderr,
            )
            status = 1
        else:
            print("replay check: second run identical (full report)")
    if args.json:
        payload = {
            "policy": pol.label,
            "nservers": args.nservers,
            "seed": args.seed,
            "crashes": [
                {"at_usec": at, "server": s} for at, s in crashes
            ],
            "throttle_mib_s": args.throttle_mib_s,
            "elapsed_usec": result.elapsed_usec,
            "report": report,
            "violations": violations,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")
    return status


def _run_cluster(args) -> int:
    """``repro cluster``: multi-tenant fairness scenario + report.

    Runs the three-tenant weighted-fair scenario (and, unless
    ``--skip-baseline``, the QoS-off unfair baseline) and prints the
    per-tenant fairness report.  Exit status is nonzero on any
    invariant violation, when the fair run's completion-time spread
    exceeds ``--max-spread``, when the baseline's spread falls below
    ``--min-baseline-spread`` (the contrast the QoS machinery must
    create), or — under ``--replay-check`` — when a second run of the
    same seed diverges.
    """
    from .experiments import cluster_fair_config, cluster_unfair_config
    from .runner import run_scenario
    from .units import fmt_bytes

    scale = args.scale

    def run_fair():
        cfg = cluster_fair_config(
            scale, nservers=args.nservers, placement=args.placement
        )
        cfg.seed = args.seed
        return run_scenario(cfg, trace=True)

    def run_unfair():
        cfg = cluster_unfair_config(scale, nservers=args.nservers)
        cfg.seed = args.seed
        return run_scenario(cfg, trace=True)

    def show(result, title: str) -> None:
        print(f"{title}: {result.summary()}")
        rows = [
            [
                t.name,
                t.workload,
                f"{t.elapsed_usec * scale / 1e6:.2f}",
                t.major_faults,
                fmt_bytes(t.bytes_served),
                t.placement if not t.disk_fallback else "disk-fallback",
            ]
            for t in result.tenants
        ]
        print(format_table(
            ["tenant", "workload", f"time (s, x{scale})", "majors",
             "served", "placement"],
            rows,
        ))

    print(
        f"cluster run: 3 tenants x {args.nservers} servers, "
        f"placement={args.placement} (scale=1/{scale}, seed={args.seed})..."
    )
    fair = run_fair()
    show(fair, "fair (qos on)")
    status = 0
    violations = list(fair.invariant_violations)
    if fair.spread > args.max_spread:
        print(
            f"ERROR: fair spread {fair.spread:.2f} exceeds "
            f"--max-spread {args.max_spread:.2f}",
            file=sys.stderr,
        )
        status = 1
    unfair = None
    if not args.skip_baseline:
        print()
        unfair = run_unfair()
        show(unfair, "baseline (qos off, one thrashing tenant)")
        violations += unfair.invariant_violations
        if unfair.spread < args.min_baseline_spread:
            print(
                f"ERROR: baseline spread {unfair.spread:.2f} below "
                f"--min-baseline-spread {args.min_baseline_spread:.2f}",
                file=sys.stderr,
            )
            status = 1
    if violations:
        print(
            f"ERROR: {len(violations)} invariant violations:",
            file=sys.stderr,
        )
        for v in violations[:20]:
            print(
                f"  t={v['t_usec']:.1f} {v['monitor']} "
                f"[{v['component']}]: {v['message']}",
                file=sys.stderr,
            )
        status = 1
    else:
        print("invariant monitors: clean (0 violations)")
    if args.replay_check:
        second = run_fair()
        if second.fairness_report() != fair.fairness_report():
            print(
                "ERROR: replay diverged for the same seed "
                "(fairness reports differ)",
                file=sys.stderr,
            )
            status = 1
        else:
            print("replay check: second fair run identical")
    if args.json:
        payload = {
            "scale": scale,
            "seed": args.seed,
            "fair": fair.fairness_report(),
            "violations": violations,
            "status": status,
        }
        if unfair is not None:
            payload["unfair_baseline"] = unfair.fairness_report()
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")
    return status


def _plan_degraded_servers(faults) -> list[str]:
    """Server names a fault plan degrades without killing: the
    ``LinkDegrade`` targets plus ``ServerSlow``'s indices mapped to the
    runner's ``mem{i}`` naming.  Event order, no duplicates."""
    from .faults import LinkDegrade, ServerSlow

    names: list[str] = []
    if faults is None or faults.plan is None:
        return names
    for ev in faults.plan.events:
        if isinstance(ev, LinkDegrade):
            name = ev.node
        elif isinstance(ev, ServerSlow):
            name = f"mem{ev.server}"
        else:
            continue
        if name not in names:
            names.append(name)
    return names


def _run_health_mitigate(args) -> int:
    """``repro health --mitigate``: the limping-server acceptance run.

    Runs the mirrored three-tenant fleet three ways — healthy baseline,
    unmitigated fail-slow cliff, and fail-slow with EWMA replica
    selection + hedged reads + quarantine armed — and gates on the
    worst tenant p99: the unmitigated run must breach the ratio (the
    fault bites) and the mitigated run must stay under it (the
    countermeasures earn their keep).  The mitigated run is traced so
    the critical-path blame must show hedge-win time; ``--replay-check``
    reruns it and fails on a byte-different health report.
    """
    from .analysis.critpath import aggregate_blame, request_paths
    from .experiments import cluster_failslow_mitigated_config
    from .obs import write_chrome_trace
    from .runner import run_scenario

    scale = args.scale

    def make_cfg(slow: bool, mitigate: bool):
        cfg = cluster_failslow_mitigated_config(
            scale,
            nservers=args.nservers,
            service_mult=args.service_mult,
            extra_rtt_usec=args.extra_rtt_usec,
            slow=slow,
            mitigate=mitigate,
        )
        cfg.seed = args.seed
        return cfg

    def worst_p99(result) -> float:
        return max(
            t["p99_usec"] or 0.0
            for t in result.health["tenants"].values()
        )

    print(
        f"mitigation run: 3 mirrored tenants x {args.nservers} servers "
        f"(scale=1/{scale}, seed={args.seed}, gate {args.p99_ratio}x)..."
    )
    runs = {}
    for name, slow, mitigate, traced in (
        ("healthy", False, True, False),
        ("unmitigated", True, False, False),
        ("mitigated", True, True, True),
    ):
        runs[name] = run_scenario(
            make_cfg(slow, mitigate), trace=traced or bool(args.output)
        )
    status = 0
    for name, result in runs.items():
        violations = result.invariant_violations
        if violations:
            print(
                f"ERROR: {name}: {len(violations)} invariant violations",
                file=sys.stderr,
            )
            status = 1
    healthy = worst_p99(runs["healthy"])
    unmitigated = worst_p99(runs["unmitigated"])
    mitigated = worst_p99(runs["mitigated"])
    print()
    print(format_table(
        ["run", "worst tenant p99 (us)", "vs healthy"],
        [
            [name, round(p99, 1), f"{p99 / healthy:.2f}x"]
            for name, p99 in (
                ("healthy", healthy),
                ("unmitigated", unmitigated),
                ("mitigated", mitigated),
            )
        ],
    ))
    stats = runs["mitigated"].registry

    def counter_total(name: str) -> int:
        c = stats.get(name)
        return int(c.total) if c is not None else 0

    tenant_names = [t.name for t in runs["mitigated"].tenants]
    counters = {
        key: sum(
            counter_total(f"{name}-hpbd.{key}") for name in tenant_names
        )
        for key in (
            "hedges", "hedge_wins", "steered_reads", "semisync_writes",
            "quarantines", "quarantine_lifts",
        )
    }
    counters["server_slowdowns"] = counter_total("fault.server_slowdowns")
    print()
    print("mitigated-run counters:")
    for key, value in counters.items():
        print(f"  {key:<18s} {value}")
    blame = aggregate_blame(request_paths(runs["mitigated"].trace))
    hedge_win_usec = blame.get("hedge_win", 0.0)
    print(
        f"critpath blame: hedge_win={hedge_win_usec:.1f} us, "
        f"hedge_waste={blame.get('hedge_waste', 0.0):.1f} us, "
        f"server_slow={blame.get('server_slow', 0.0):.1f} us"
    )
    if unmitigated < args.p99_ratio * healthy:
        print(
            f"ERROR: unmitigated run did not breach the gate "
            f"({unmitigated:.1f} < {args.p99_ratio}x {healthy:.1f}) — "
            f"the injected fault is too mild to prove mitigation",
            file=sys.stderr,
        )
        status = 1
    if mitigated >= args.p99_ratio * healthy:
        print(
            f"ERROR: mitigated p99 {mitigated:.1f} us >= "
            f"{args.p99_ratio}x healthy {healthy:.1f} us",
            file=sys.stderr,
        )
        status = 1
    if counters["hedges"] == 0 or counters["hedge_wins"] == 0:
        print(
            "ERROR: mitigated run fired no winning hedges",
            file=sys.stderr,
        )
        status = 1
    if hedge_win_usec <= 0.0:
        print(
            "ERROR: critical-path blame shows no hedge-win time",
            file=sys.stderr,
        )
        status = 1
    if status == 0:
        print(
            f"mitigation gate: mitigated {mitigated / healthy:.2f}x vs "
            f"unmitigated {unmitigated / healthy:.2f}x healthy "
            f"(threshold {args.p99_ratio}x)"
        )
    if args.replay_check:
        second = run_scenario(make_cfg(True, True), trace=True)
        a = json.dumps(runs["mitigated"].health, sort_keys=True)
        b = json.dumps(second.health, sort_keys=True)
        if a != b:
            print(
                "ERROR: replay diverged for the same seed "
                "(mitigated health reports differ)",
                file=sys.stderr,
            )
            status = 1
        else:
            print(
                "replay check: second mitigated run's health report "
                "byte-identical"
            )
    if args.output:
        write_chrome_trace(runs["mitigated"].trace, args.output)
        print(f"wrote {args.output}  (load in Perfetto / chrome://tracing)")
    if args.json:
        payload = {
            "scenario": "cluster-failslow-mitigated",
            "scale": scale,
            "seed": args.seed,
            "nservers": args.nservers,
            "p99_ratio_gate": args.p99_ratio,
            "p99_usec": {
                "healthy": healthy,
                "unmitigated": unmitigated,
                "mitigated": mitigated,
            },
            "counters": counters,
            "blame_usec": blame,
            "health": runs["mitigated"].health,
            "status": status,
        }
        write_json_report(args.json, payload)
        print(f"wrote {args.json}")
    return status


def _run_health(args) -> int:
    """``repro health``: per-run fleet health report (SLOs + fail-slow).

    Runs the seeded three-tenant cluster with one fail-slow server (a
    mid-run ``LinkDegrade`` on mem1) — or, under ``--healthy``, the
    fault-free fair scenario — with the always-on SLO engine and
    anomaly detector, then prints the per-server / per-tenant health
    report.  Exit status is nonzero on invariant violations or when
    the health gate fails: by default any fail-slow flag or SLO breach
    fails the gate; under ``--expect-breach`` the gate inverts and
    fails unless the detector flagged exactly the degraded server and
    at least one latency SLO breach was recorded.  ``--replay-check``
    fails when a second run of the same seed yields a byte-different
    report.
    """
    from .experiments import cluster_failslow_config, cluster_fair_config
    from .obs import write_chrome_trace
    from .runner import run_scenario

    if args.mitigate:
        return _run_health_mitigate(args)

    scale = args.scale

    def make_cfg():
        if args.healthy:
            cfg = cluster_fair_config(scale, nservers=args.nservers)
        else:
            cfg = cluster_failslow_config(
                scale,
                nservers=args.nservers,
                latency_mult=args.latency_mult,
            )
        cfg.seed = args.seed
        return cfg

    # The server(s) the configured fault plan actually degrades — the
    # --expect-breach gate checks the detector flagged exactly these.
    degraded = _plan_degraded_servers(make_cfg().faults)

    def run_once():
        return run_scenario(make_cfg(), trace=bool(args.output))

    scenario = "cluster-fair" if args.healthy else "cluster-failslow"
    print(
        f"health run: {scenario}, 3 tenants x {args.nservers} servers "
        f"(scale=1/{scale}, seed={args.seed})..."
    )
    result = run_once()
    report = result.health
    if not report:
        print("ERROR: run produced no health report", file=sys.stderr)
        return 1
    print(result.summary())
    print()
    print("servers:")
    print(format_table(
        ["server", "status", "flagged", "samples", "ewma (us)",
         "p99 (us)", "peak score"],
        [
            [name, s["status"], "yes" if s["flagged"] else "no",
             s["samples"], s["ewma_usec"] or 0.0, s["p99_usec"] or 0.0,
             s["peak_score"]]
            for name, s in report["servers"].items()
        ],
    ))
    print()
    print("tenants:")
    print(format_table(
        ["tenant", "requests", "fails", "avail", "p50 (us)", "p99 (us)",
         "peak burn", "breaches", "slo met"],
        [
            [name, t["requests"], t["failed_attempts"],
             t["availability"] if t["availability"] is not None else "-",
             t["p50_usec"] or 0.0, t["p99_usec"] or 0.0,
             t["peak_burn_rate"], t["breaches"],
             "yes" if t["slo_met"] else "no"]
            for name, t in report["tenants"].items()
        ],
    ))
    timeline = report["breach_timeline"]
    if timeline:
        print()
        print(f"breach timeline ({len(timeline)} edges, "
              f"{len(report['burn_timeline'])} burn samples):")
        for b in timeline[:args.top]:
            print(
                f"  t={b['t_usec']:>12.1f}  {b['tenant']:<8s} "
                f"{b['slo']:<12s} {b['edge']:<5s} "
                f"observed={b['observed']:.1f} burn={b['burn_rate']:.2f}"
            )
        if len(timeline) > args.top:
            print(f"  ... {len(timeline) - args.top} more")
    status = 0
    violations = result.invariant_violations
    if violations:
        print(
            f"ERROR: {len(violations)} invariant violations:",
            file=sys.stderr,
        )
        for v in violations[:20]:
            print(
                f"  t={v['t_usec']:.1f} {v['monitor']} "
                f"[{v['component']}]: {v['message']}",
                file=sys.stderr,
            )
        status = 1
    else:
        print("invariant monitors: clean (0 violations)")
    flagged = report["flagged_servers"]
    lat_breaches = [
        b for b in timeline
        if b["slo"] == "latency_p99" and b["edge"] == "start"
    ]
    if args.expect_breach:
        if sorted(flagged) != sorted(degraded):
            print(
                f"ERROR: expected fail-slow flag on exactly "
                f"{degraded}, detector flagged {flagged}",
                file=sys.stderr,
            )
            status = 1
        if not lat_breaches:
            print(
                "ERROR: expected at least one latency_p99 SLO breach, "
                "got none",
                file=sys.stderr,
            )
            status = 1
        if status == 0:
            print(
                f"expected breach confirmed: flagged {flagged}, "
                f"{len(lat_breaches)} latency breach(es), "
                f"victims: {', '.join(report['breached_tenants'])}"
            )
    elif flagged or report["breached_tenants"]:
        print(
            f"ERROR: health gate failed — flagged servers {flagged}, "
            f"breached tenants {report['breached_tenants']}",
            file=sys.stderr,
        )
        status = 1
    else:
        print("health gate: all SLOs met, no fail-slow flags")
    if args.replay_check:
        second = run_once()
        a = json.dumps(report, sort_keys=True)
        b = json.dumps(second.health, sort_keys=True)
        if a != b:
            print(
                "ERROR: replay diverged for the same seed "
                "(health reports differ)",
                file=sys.stderr,
            )
            status = 1
        else:
            print("replay check: second run's health report byte-identical")
    if args.output:
        write_chrome_trace(result.trace, args.output)
        print(f"wrote {args.output}  (load in Perfetto / chrome://tracing)")
    if args.json:
        payload = {
            "scenario": scenario,
            "scale": scale,
            "seed": args.seed,
            "nservers": args.nservers,
            "elapsed_usec": result.elapsed_usec,
            "health": report,
            "violations": violations,
            "status": status,
        }
        write_json_report(args.json, payload)
        print(f"wrote {args.json}")
    return status


def _run_sweep_cmd(args) -> int:
    """``repro sweep``: run figure grids through the parallel engine."""
    from .analysis.critpath import blame_split
    from .experiments import SWEEPS
    from .sweep import ResultCache, default_cache_dir, run_sweep
    from .units import SEC

    names = list(SWEEPS) if args.experiment == "all" else [args.experiment]
    store = None
    if not args.no_cache:
        store = ResultCache(args.cache or default_cache_dir())
    cache = store if store is not None else False
    payload: dict[str, dict] = {}
    status = 0
    for name in names:
        builder, desc = SWEEPS[name]
        points = builder(args.scale)
        report = run_sweep(
            points,
            workers=args.workers,
            cache=cache,
            force=args.force,
            trace=args.trace,
            campaign=args.campaign,
            progress=(
                None if args.quiet
                else lambda pname, how: print(f"  {pname}: {how}")
            ),
        )
        print(
            f"{name} — {desc}: {len(points)} points, "
            f"{report.simulated} simulated, {report.cached} cached, "
            f"{report.wall_sec:.2f} s wall (workers={report.workers})"
        )
        rows = [
            [p.name, r.elapsed_usec * args.scale / SEC,
             r.swapout_pages, r.swapin_pages]
            for p, r in zip(report.points, report.results)
        ]
        print(format_table(
            ["point", f"time (s, x{args.scale})", "out (pages)", "in (pages)"],
            rows,
        ))
        print()
        payload[name] = {
            "points": {p.name: r.elapsed_sec * args.scale
                       for p, r in zip(report.points, report.results)},
            "simulated": report.simulated,
            "cached": report.cached,
            "wall_sec": report.wall_sec,
            "workers": report.workers,
        }
        if args.trace:
            payload[name]["blame"] = {
                p.name: {
                    "blame_usec": r.blame_usec,
                    **blame_split(r.blame_usec),
                    "violations": len(r.invariant_violations),
                }
                for p, r in zip(report.points, report.results)
            }
        # Cluster points carry a fleet health report; aggregate the
        # verdicts so a grid's fail-slow flags and SLO breaches land
        # in one payload (cached results may predate the field).
        health = {
            p.name: {
                "flagged_servers": h["flagged_servers"],
                "breached_tenants": h["breached_tenants"],
                "breach_events": len(h["breach_timeline"]),
            }
            for p, r in zip(report.points, report.results)
            if (h := getattr(r, "health", {}))
        }
        if health:
            payload[name]["health"] = health
    if store is not None:
        print(f"cache: {store.summary()}")
    if args.campaign:
        print(f"appended run records to {args.campaign}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"scale": args.scale, "sweeps": payload}, fh, indent=2)
        print(f"wrote {args.json}")
    return status


def _run_bench(args) -> int:
    """``repro bench``: measure the simulator itself, write JSON."""
    from .bench import run_bench, write_bench_json

    profiler = None
    if args.profile or args.profile_out:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    payload = run_bench(
        nevents=args.events,
        rounds=args.rounds,
        sweep_scale=args.sweep_scale,
        workers=args.workers if args.workers else "auto",
        skip_sweep=args.skip_sweep,
    )
    if profiler is not None:
        import pstats

        profiler.disable()
        if args.profile_out:
            profiler.dump_stats(args.profile_out)
            print(f"wrote profile to {args.profile_out} "
                  "(inspect with python -m pstats)")
        if args.profile:
            stats = pstats.Stats(profiler, stream=sys.stdout)
            stats.strip_dirs().sort_stats("cumulative").print_stats(25)
    loop = payload["event_loop"]
    print(
        f"event loop: timeout churn {loop['timeout_events_per_sec']:,.0f} ev/s, "
        f"relay resume {loop['relay_events_per_sec']:,.0f} ev/s"
    )
    obs = payload["obs_overhead"]
    print(
        f"disabled-trace overhead: {obs['overhead_frac']:+.2%} "
        f"({obs['guarded_events_per_sec']:,.0f} ev/s guarded vs "
        f"{obs['bare_events_per_sec']:,.0f} bare)"
    )
    fb = payload["fluid_bulk"]
    print(
        f"fluid bulk fast path: {fb['event_reduction']:,.0f}x fewer events "
        f"({fb['fluid_events']:,} vs {fb['discrete_events']:,} discrete), "
        f"{fb['wall_speedup']:,.1f}x wall speedup, results "
        f"{'identical' if fb['identical_results'] else 'DIVERGED'}"
    )
    if not fb["identical_results"]:
        print("ERROR: fluid fast path diverged from discrete stepping",
              file=sys.stderr)
        return 1
    rs = payload.get("rs_encode")
    if rs is not None:
        print(
            f"rs({rs['k']},{rs['m']}) GF(256) codec: encode "
            f"{rs['encode_mb_s']:,.0f} MB/s, reconstruct "
            f"{rs['reconstruct_mb_s']:,.0f} MB/s, roundtrip "
            f"{'ok' if rs['roundtrip_ok'] else 'CORRUPT'}"
        )
        if not rs["roundtrip_ok"]:
            print("ERROR: RS reconstruct did not round-trip",
                  file=sys.stderr)
            return 1
    else:
        print("rs encode: skipped (numpy unavailable)")
    if "sweep" in payload:
        sw = payload["sweep"]
        print(
            f"fig07 sweep ({sw['points']} points, scale=1/{sw['scale']}): "
            f"serial {sw['serial_sec']:.2f} s, parallel "
            f"{sw['parallel_sec']:.2f} s (x{sw['parallel_workers']}), "
            f"cached re-run {sw['cached_rerun_sec']:.3f} s "
            f"({sw['cached_points_resimulated']} re-simulated)"
        )
        if sw.get("parallel_note"):
            print(f"  note: {sw['parallel_note']}")
        if sw["cached_points_resimulated"] != 0:
            print("ERROR: cached re-run re-simulated points", file=sys.stderr)
            return 1
    if "blame" in payload:
        bl = payload["blame"]
        print(
            f"blame split ({bl['point']}): queueing "
            f"{bl['queueing_frac']:.1%}, wire {bl['wire_frac']:.1%} "
            f"({bl['invariant_violations']} invariant violations)"
        )
        if bl["invariant_violations"] != 0:
            print("ERROR: traced run recorded invariant violations",
                  file=sys.stderr)
            return 1
    if "cluster_fairness" in payload:
        cf = payload["cluster_fairness"]
        print(
            f"cluster fairness ({cf['tenants']} tenants x "
            f"{cf['nservers']} servers, scale=1/{cf['scale']}): "
            f"{cf['events_per_sec']:,.0f} ev/s, "
            f"spread {cf['spread']:.2f}, jain {cf['jain_index']:.3f}"
        )
    if "health_overhead" in payload:
        ho = payload["health_overhead"]
        print(
            f"always-on health overhead: {ho['overhead_frac']:+.2%} "
            f"({ho['health_wall_sec']:.2f} s with SLO engine vs "
            f"{ho['baseline_wall_sec']:.2f} s monitors-only)"
        )
    write_bench_json(args.json, payload)
    print(f"wrote {args.json}")
    floor = args.min_events_per_sec
    if floor and loop["timeout_events_per_sec"] < floor:
        print(
            f"ERROR: timeout churn {loop['timeout_events_per_sec']:,.0f} ev/s "
            f"below floor {floor:,.0f}",
            file=sys.stderr,
        )
        return 1
    rs_floor = args.min_rs_encode_mb_s
    if rs_floor and rs is not None and rs["encode_mb_s"] < rs_floor:
        print(
            f"ERROR: rs encode {rs['encode_mb_s']:,.0f} MB/s below "
            f"floor {rs_floor:,.0f}",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_campaign_cmd(args) -> int:
    """``repro campaign``: replicate a sweep grid across seeds into a
    JSONL campaign store, then print the cross-seed aggregates."""
    from .analysis.campaign import aggregate
    from .experiments import SWEEPS
    from .obs.campaign import run_campaign
    from .sweep import ResultCache, default_cache_dir

    builder, desc = SWEEPS[args.experiment]
    points = builder(args.scale)
    if args.filter:
        points = [p for p in points if args.filter in p.name]
    if args.limit:
        points = points[: args.limit]
    if not points:
        print("no points match the filter", file=sys.stderr)
        return 2
    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    store = None
    if not args.no_cache:
        store = ResultCache(args.cache or default_cache_dir())
    report = run_campaign(
        points,
        seeds,
        args.store,
        workers=args.workers,
        cache=store if store is not None else False,
        force=args.force,
        progress=(
            None if args.quiet
            else lambda pname, how: print(f"  {pname}: {how}")
        ),
    )
    print(
        f"{args.experiment} — {desc}: {len(points)} points x "
        f"{len(seeds)} seeds, {report.simulated} simulated, "
        f"{report.cached} cached, {report.wall_sec:.2f} s wall"
    )
    if store is not None:
        print(f"cache: {store.summary()}")
    summary = aggregate(
        report.store.load(), ci_level=args.ci_level, method=args.method
    )
    rows = []
    for point in summary.points:
        stats = summary.get(point, "elapsed_usec")
        if stats is None:
            continue
        rows.append([
            point, stats.n, stats.mean,
            f"±{stats.halfwidth:.4g}",
        ])
    print(format_table(
        ["point", "seeds", "mean elapsed (us)",
         f"{int(summary.ci_level * 100)}% CI"],
        rows,
    ))
    print(f"appended {len(report.records)} records to {report.store.path}")
    return 0


def _load_campaign(path: str):
    from .obs.campaign import CampaignStore

    records = CampaignStore(path).load()
    if not records:
        raise SystemExit(f"campaign store {path} is empty or missing")
    return records


def _run_compare_cmd(args) -> int:
    """``repro compare``: regression-gate one campaign against another
    (or against the bench file's campaign floors); nonzero on
    regression."""
    from .analysis.campaign import aggregate
    from .analysis.compare import (
        check_floors,
        compare_summaries,
        format_compare,
    )

    status = 0
    payload: dict = {}
    test_records = _load_campaign(args.test if args.test else args.base)
    if args.test:
        base_records = _load_campaign(args.base)
        base = aggregate(
            base_records, ci_level=args.ci_level, method=args.method
        )
        test = aggregate(
            test_records, ci_level=args.ci_level, method=args.method
        )
        report = compare_summaries(base, test, threshold=args.threshold)
        print(format_compare(report, all_rows=args.all))
        if report.missing_points:
            print(
                f"note: {len(report.missing_points)} points present on "
                f"only one side: {', '.join(report.missing_points)}"
            )
        print(
            f"{len(report.regressions)} regressions, "
            f"{len(report.improvements)} improvements, "
            f"{len(report.shifts)} shifts "
            f"(threshold {args.threshold:.0%}, "
            f"{int(args.ci_level * 100)}% CI)"
        )
        payload["compare"] = report.to_dict()
        if not report.ok:
            status = 1
    if args.bench:
        with open(args.bench) as fh:
            floors = json.load(fh).get("campaign_floors", [])
        violations = check_floors(test_records, floors)
        if violations:
            for v in violations:
                print(
                    f"FLOOR VIOLATION: {v.point} seed {v.seed} "
                    f"{v.metric}={v.value:g} breaks {v.bound} "
                    f"bound {v.limit:g}",
                    file=sys.stderr,
                )
            status = 1
        else:
            print(
                f"{len(floors)} bench floors checked against "
                f"{len(test_records)} records: all clear"
            )
        payload["floors"] = {
            "checked": len(floors),
            "violations": [v.to_dict() for v in violations],
        }
    if args.json:
        write_json_report(args.json, payload)
        print(f"wrote {args.json}")
    return status


def _report_campaign(args) -> int:
    """``repro report --campaign``: render the HTML dashboard."""
    from .analysis.campaign import aggregate
    from .analysis.compare import compare_summaries
    from .analysis.htmlreport import render_campaign_html

    records = _load_campaign(args.campaign)
    summary = aggregate(records)
    compare_report = None
    if args.against:
        base = aggregate(_load_campaign(args.against))
        compare_report = compare_summaries(base, summary)
    html = render_campaign_html(
        summary,
        records,
        compare_report=compare_report,
        title=f"Campaign report — {args.campaign}",
    )
    output = args.output
    if output == "REPORT.md":  # the markdown-mode default doesn't fit
        output = "report.html"
    if args.replay_check:
        again = render_campaign_html(
            summary,
            records,
            compare_report=compare_report,
            title=f"Campaign report — {args.campaign}",
        )
        if again != html:
            print(
                "ERROR: replay check failed — two renders of the same "
                "campaign store differ",
                file=sys.stderr,
            )
            return 1
        print("replay check passed: render is byte-identical")
    with open(output, "w") as fh:
        fh.write(html)
    print(f"wrote {output}")
    return 0


def _report(scale: int, output: str) -> int:
    """Run every experiment, capturing the printed tables into markdown."""
    import contextlib
    import io

    sections: list[str] = [
        "# HPBD reproduction report",
        "",
        f"Generated by `repro report --scale {scale}` "
        f"(sizes divided by {scale}; run times shown scaled back).",
        "",
    ]
    for name, (fn, desc) in EXPERIMENTS.items():
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            fn(scale)
        sections.append(f"## {name} — {desc}")
        sections.append("")
        sections.append("```")
        sections.append(buf.getvalue().rstrip())
        sections.append("```")
        sections.append("")
        print(f"{name} done")
    with open(output, "w") as fh:
        fh.write("\n".join(sections))
    print(f"wrote {output}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HPBD (Cluster 2005) reproduction: run paper experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    sub.add_parser("table1", help="print the related-work taxonomy")
    rep = sub.add_parser(
        "report", help="run every experiment and write a markdown report"
    )
    rep.add_argument("--scale", type=int, default=8)
    rep.add_argument("-o", "--output", default="REPORT.md")
    rep.add_argument(
        "--campaign", metavar="JSONL", default=None,
        help="render an HTML dashboard from this campaign store instead "
        "of running the experiments (output defaults to report.html)",
    )
    rep.add_argument(
        "--against", metavar="JSONL", default=None,
        help="with --campaign: include a diff table vs this baseline store",
    )
    rep.add_argument(
        "--replay-check", action="store_true",
        help="with --campaign: render twice and fail unless byte-identical",
    )
    tr = sub.add_parser(
        "trace",
        help="run one traced scenario; print the measured §6.2 breakdown "
        "and write a Chrome/Perfetto trace",
    )
    tr.add_argument("--device", choices=_TRACE_DEVICES, default="hpbd")
    tr.add_argument("--workload", choices=_TRACE_WORKLOADS, default="quicksort")
    tr.add_argument(
        "--scale", type=int, default=32,
        help="size divisor; 1 = full paper sizes (default: 32)",
    )
    tr.add_argument(
        "-o", "--output", default="trace.json",
        help="Chrome trace-event JSON path (default: trace.json)",
    )
    tr.add_argument("--csv", metavar="PATH", help="also dump flat span CSV")
    cp = sub.add_parser(
        "critpath",
        help="run one traced scenario; print per-request critical-path "
        "blame, audit invariants (nonzero exit on violations/orphans)",
    )
    cp.add_argument("--device", choices=_TRACE_DEVICES, default="hpbd")
    cp.add_argument("--workload", choices=_TRACE_WORKLOADS, default="quicksort")
    cp.add_argument(
        "--scale", type=int, default=32,
        help="size divisor; 1 = full paper sizes (default: 32)",
    )
    cp.add_argument(
        "--top", type=int, default=10,
        help="slowest requests to show (default: 10)",
    )
    cp.add_argument(
        "-o", "--output", metavar="PATH",
        help="also write the Chrome trace-event JSON",
    )
    cp.add_argument(
        "--json", metavar="PATH", help="dump the blame report as JSON"
    )
    fa = sub.add_parser(
        "faults",
        help="crash a memory server mid-run; audit the recovery "
        "machinery and invariant monitors (nonzero exit on violations)",
    )
    fa.add_argument(
        "--mode", choices=_FAULT_MODES, default="remap",
        help="recovery mode absorbing the crash (default: remap)",
    )
    fa.add_argument(
        "--scale", type=int, default=32,
        help="size divisor; 1 = full paper sizes (default: 32)",
    )
    fa.add_argument(
        "--crash-at", type=float, default=None,
        help="crash time in simulated us (default: mid-run for --scale)",
    )
    fa.add_argument(
        "--timeout", type=float, default=2_000.0,
        help="per-request timeout in us (default: 2000)",
    )
    fa.add_argument("--seed", type=int, default=1)
    fa.add_argument(
        "--expect-recovery", action="store_true",
        help="fail unless the run actually timed out and failed over",
    )
    fa.add_argument(
        "--replay-check", action="store_true",
        help="run twice; fail if counters or blame diverge",
    )
    fa.add_argument(
        "-o", "--output", metavar="PATH",
        help="also write the Chrome trace-event JSON",
    )
    fa.add_argument(
        "--json", metavar="PATH", help="dump the fault report as JSON"
    )
    rd = sub.add_parser(
        "redundancy",
        help="crash erasure-coded members mid-run; audit degraded "
        "reads and background repair (nonzero exit on violations or "
        "failed recovery gates)",
    )
    rd.add_argument(
        "--policy", default="rs(4,2)",
        help="redundancy policy: nway(r) or rs(k,m) (default: rs(4,2))",
    )
    rd.add_argument(
        "--crashes", type=int, default=1,
        help="staggered mid-run server crashes, at most the policy's "
        "tolerance m (default: 1)",
    )
    rd.add_argument(
        "--nservers", type=int, default=8,
        help="memory servers in the fleet (default: 8)",
    )
    rd.add_argument(
        "--throttle-mib-s", type=float, default=400.0,
        help="repair/migration bandwidth cap in MiB/s (default: 400)",
    )
    rd.add_argument("--seed", type=int, default=42)
    rd.add_argument(
        "--expect-recovery", action="store_true",
        help="fail unless every lost member rebuilt, degraded service "
        "was observed, and repair traffic/overhead are within bounds",
    )
    rd.add_argument(
        "--replay-check", action="store_true",
        help="run twice; fail if the reports diverge",
    )
    rd.add_argument(
        "--json", metavar="PATH",
        help="dump the redundancy report as JSON",
    )
    cl = sub.add_parser(
        "cluster",
        help="run the multi-tenant fairness scenario (+ QoS-off "
        "baseline); print per-tenant report (nonzero exit on "
        "violations or fairness-gate failures)",
    )
    cl.add_argument(
        "--scale", type=int, default=64,
        help="size divisor; 1 = full paper sizes (default: 64)",
    )
    cl.add_argument(
        "--nservers", type=int, default=2,
        help="memory servers in the fleet (default: 2)",
    )
    cl.add_argument(
        "--placement", choices=_PLACEMENT_POLICIES, default="blocking",
        help="placement policy for the fair run (default: blocking)",
    )
    cl.add_argument("--seed", type=int, default=42)
    cl.add_argument(
        "--max-spread", type=float, default=1.10,
        help="fail if the fair run's completion-time spread exceeds "
        "this (default: 1.10)",
    )
    cl.add_argument(
        "--min-baseline-spread", type=float, default=2.0,
        help="fail if the QoS-off baseline's spread is below this "
        "(default: 2.0)",
    )
    cl.add_argument(
        "--skip-baseline", action="store_true",
        help="fair run only; skip the unfair baseline",
    )
    cl.add_argument(
        "--replay-check", action="store_true",
        help="run the fair scenario twice; fail if reports diverge",
    )
    cl.add_argument(
        "--json", metavar="PATH", help="dump the fairness report as JSON"
    )
    he = sub.add_parser(
        "health",
        help="run the fail-slow cluster scenario; print the fleet "
        "health report (SLO attainment, breach timeline, anomaly "
        "verdicts; nonzero exit on failed health gates)",
    )
    he.add_argument(
        "--scale", type=int, default=64,
        help="size divisor; 1 = full paper sizes (default: 64)",
    )
    he.add_argument(
        "--nservers", type=int, default=3,
        help="memory servers in the fleet (default: 3)",
    )
    he.add_argument("--seed", type=int, default=42)
    he.add_argument(
        "--latency-mult", type=float, default=20.0,
        help="LinkDegrade latency multiplier on the limping server "
        "(default: 20)",
    )
    he.add_argument(
        "--healthy", action="store_true",
        help="run the fault-free fair scenario instead (gate passes "
        "only when nothing is flagged or breached)",
    )
    he.add_argument(
        "--expect-breach", action="store_true",
        help="invert the gate: fail unless the detector flagged "
        "exactly the degraded server and a latency SLO breach occurred",
    )
    he.add_argument(
        "--mitigate", action="store_true",
        help="limping-server acceptance: run the mirrored fleet "
        "healthy, fail-slow unmitigated, and fail-slow with hedged "
        "reads + EWMA selection + quarantine; gate on worst tenant "
        "p99 vs the healthy baseline",
    )
    he.add_argument(
        "--p99-ratio", type=float, default=2.0,
        help="--mitigate gate: mitigated worst p99 must stay under "
        "this multiple of healthy (and unmitigated must exceed it; "
        "default: 2.0)",
    )
    he.add_argument(
        "--service-mult", type=float, default=16.0,
        help="--mitigate: fail-slow memcpy service-time multiplier "
        "(default: 16)",
    )
    he.add_argument(
        "--extra-rtt-usec", type=float, default=400.0,
        help="--mitigate: fail-slow per-op stall in usec (default: 400)",
    )
    he.add_argument(
        "--replay-check", action="store_true",
        help="run twice; fail if the health reports are not "
        "byte-identical",
    )
    he.add_argument(
        "--top", type=int, default=10,
        help="breach-timeline edges to print (default: 10)",
    )
    he.add_argument(
        "-o", "--output", metavar="PATH",
        help="also write the Chrome trace-event JSON (runs traced)",
    )
    he.add_argument(
        "--json", metavar="PATH", help="dump the health report as JSON"
    )
    sw = sub.add_parser(
        "sweep",
        help="run a figure's scenario grid through the parallel sweep "
        "engine with result caching",
    )
    from .experiments import SWEEPS as _SWEEPS

    sw.add_argument("experiment", choices=[*_SWEEPS, "all"])
    sw.add_argument(
        "--scale", type=int, default=8,
        help="size divisor; 1 = full paper sizes (default: 8)",
    )
    sw.add_argument(
        "--workers", default=None,
        help="process count, 'auto' = one per CPU (default: "
        "$REPRO_SWEEP_WORKERS or serial)",
    )
    sw.add_argument(
        "--cache", metavar="DIR", default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    sw.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    sw.add_argument(
        "--force", action="store_true",
        help="re-simulate every point (still refreshes the cache)",
    )
    sw.add_argument("--quiet", action="store_true", help="no per-point lines")
    sw.add_argument(
        "--trace", action="store_true",
        help="trace every point; results carry per-request blame "
        "aggregates (queueing-vs-wire split in the JSON payload)",
    )
    sw.add_argument("--json", metavar="PATH", help="dump raw numbers as JSON")
    sw.add_argument(
        "--campaign", metavar="JSONL", default=None,
        help="append a RunRecord per point to this campaign store",
    )
    ca = sub.add_parser(
        "campaign",
        help="replicate a sweep grid across seeds into a JSONL campaign "
        "store and print cross-seed aggregates",
    )
    ca.add_argument("experiment", choices=list(_SWEEPS))
    ca.add_argument(
        "--seeds", default="1,2,3",
        help="comma-separated campaign seeds (default: 1,2,3)",
    )
    ca.add_argument(
        "--scale", type=int, default=8,
        help="size divisor; 1 = full paper sizes (default: 8)",
    )
    ca.add_argument(
        "--store", metavar="JSONL", default="campaign.jsonl",
        help="campaign store to append to (default: campaign.jsonl)",
    )
    ca.add_argument(
        "--filter", default=None,
        help="only run points whose name contains this substring",
    )
    ca.add_argument(
        "--limit", type=int, default=None,
        help="cap the number of points after filtering",
    )
    ca.add_argument(
        "--workers", default=None,
        help="process count, 'auto' = one per CPU (default: "
        "$REPRO_SWEEP_WORKERS or serial)",
    )
    ca.add_argument(
        "--cache", metavar="DIR", default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    ca.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    ca.add_argument(
        "--force", action="store_true",
        help="re-simulate every replica (still refreshes the cache)",
    )
    ca.add_argument("--quiet", action="store_true", help="no per-point lines")
    ca.add_argument(
        "--ci-level", type=float, default=0.95,
        help="confidence level for the printed aggregates (default: 0.95)",
    )
    ca.add_argument(
        "--method", choices=["t", "bootstrap"], default="t",
        help="confidence-interval method (default: t)",
    )
    co = sub.add_parser(
        "compare",
        help="regression-gate one campaign store against another and/or "
        "against the bench file's campaign floors (exit 1 on regression)",
    )
    co.add_argument("base", help="baseline campaign JSONL (or sole store "
                    "when only checking --bench floors)")
    co.add_argument(
        "test", nargs="?", default=None,
        help="candidate campaign JSONL to compare against base",
    )
    co.add_argument(
        "--bench", metavar="JSON", default=None,
        help="also check records against this bench file's campaign_floors",
    )
    co.add_argument(
        "--threshold", type=float, default=0.05,
        help="relative-change significance threshold (default: 0.05)",
    )
    co.add_argument(
        "--ci-level", type=float, default=0.95,
        help="confidence level for the interval test (default: 0.95)",
    )
    co.add_argument(
        "--method", choices=["t", "bootstrap"], default="t",
        help="confidence-interval method (default: t)",
    )
    co.add_argument(
        "--all", action="store_true",
        help="print every aligned metric, not just significant ones",
    )
    co.add_argument("--json", metavar="PATH", help="dump the verdict as JSON")
    be = sub.add_parser(
        "bench",
        help="measure host-side simulator performance and write "
        "BENCH_simulator.json",
    )
    be.add_argument(
        "--json", metavar="PATH", default="BENCH_simulator.json",
        help="output path (default: BENCH_simulator.json)",
    )
    be.add_argument("--events", type=int, default=100_000)
    be.add_argument("--rounds", type=int, default=3)
    be.add_argument(
        "--sweep-scale", type=int, default=64,
        help="scale divisor for the fig07 sweep benchmark (default: 64)",
    )
    be.add_argument(
        "--workers", default=None,
        help="process count for the parallel sweep leg (default: auto)",
    )
    be.add_argument(
        "--skip-sweep", action="store_true",
        help="event-loop microbenchmarks only",
    )
    be.add_argument(
        "--min-events-per-sec", type=float, default=0.0,
        help="fail (exit 1) if timeout churn drops below this floor",
    )
    be.add_argument(
        "--min-rs-encode-mb-s", type=float, default=0.0,
        help="fail (exit 1) if GF(256) RS encode throughput drops "
        "below this floor (skipped when numpy is absent)",
    )
    be.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the top 25 functions by "
        "cumulative time",
    )
    be.add_argument(
        "--profile-out", metavar="FILE", default=None,
        help="dump raw cProfile stats to FILE (pstats format; implies "
        "profiling even without --profile)",
    )
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    run.add_argument(
        "--scale", type=int, default=8,
        help="size divisor; 1 = full paper sizes (default: 8)",
    )
    run.add_argument("--json", metavar="PATH", help="dump raw numbers as JSON")
    run.add_argument(
        "--csv", metavar="DIR",
        help="also write plot-ready CSV files into DIR (fig01/03/05/06/07/08)",
    )
    args = parser.parse_args(argv)

    if args.command == "list":
        print(format_table(
            ["experiment", "description"],
            [[name, desc] for name, (_fn, desc) in EXPERIMENTS.items()],
        ))
        return 0
    if args.command == "table1":
        print(render_table1())
        return 0
    if args.command == "report":
        if args.campaign:
            return _report_campaign(args)
        if args.scale < 1:
            parser.error("--scale must be >= 1")
        return _report(args.scale, args.output)
    if args.command == "trace":
        if args.scale < 1:
            parser.error("--scale must be >= 1")
        return _run_trace(args)
    if args.command == "critpath":
        if args.scale < 1:
            parser.error("--scale must be >= 1")
        return _run_critpath(args)
    if args.command == "faults":
        if args.scale < 1:
            parser.error("--scale must be >= 1")
        return _run_faults(args)
    if args.command == "redundancy":
        return _run_redundancy(args)
    if args.command == "cluster":
        if args.scale < 1:
            parser.error("--scale must be >= 1")
        return _run_cluster(args)
    if args.command == "health":
        if args.scale < 1:
            parser.error("--scale must be >= 1")
        return _run_health(args)
    if args.command == "sweep":
        if args.scale < 1:
            parser.error("--scale must be >= 1")
        return _run_sweep_cmd(args)
    if args.command == "campaign":
        if args.scale < 1:
            parser.error("--scale must be >= 1")
        return _run_campaign_cmd(args)
    if args.command == "compare":
        return _run_compare_cmd(args)
    if args.command == "bench":
        return _run_bench(args)

    if args.scale < 1:
        parser.error("--scale must be >= 1")
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    payload: dict[str, dict] = {}
    for name in names:
        fn, _desc = EXPERIMENTS[name]
        payload[name] = fn(args.scale)
        if args.csv:
            _write_csv(name, args.scale, args.csv)
        print()
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"scale": args.scale, "results": payload}, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
