"""Longitudinal run-series store: the campaign layer.

Every observability layer below this one (tracing, critpath blame,
fleet health) reports on exactly one run and then forgets it.  A
*campaign* is the longitudinal view the ROADMAP's capacity-planning
claims need: the same sweep grid replicated across seeds (and commits),
each run summarized into a compact :class:`RunRecord` and appended to
an on-disk JSONL store.  The analysis side
(:mod:`repro.analysis.campaign`, :mod:`repro.analysis.compare`) merges
sketches across seeds, attaches confidence intervals, and diffs
campaigns across configs and commits.

Design notes:

* Records are *summaries*, not results: scalar counters, blame shares,
  health verdicts, and serialized :class:`~repro.obs.sketch.QuantileSketch`
  snapshots of the latency/RTT distributions.  A record is a few KiB
  regardless of run length — the store scales to thousands of runs.
* The store is append-only JSONL with one ``os.write`` per record
  (O_APPEND), so concurrent sweep processes can share a store without
  interleaving partial lines; a torn final line from a crashed run is
  skipped (with a warning) on load.
* Every line is self-describing (``schema`` field), so the reader can
  refuse records written by an incompatible future format.
* Workload randomness is pre-generated at construction time, so seed
  replication goes through :func:`reseed_config`, which rebuilds the
  workload objects (see :meth:`repro.workloads.base.Workload.reseed`).
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..sweep.fingerprint import config_fingerprint
from .sketch import QuantileSketch

__all__ = [
    "SCHEMA",
    "RunRecord",
    "CampaignStore",
    "record_from_result",
    "reseed_config",
    "git_provenance",
    "run_campaign",
    "CampaignReport",
]

#: schema tag carried by every record; the loader accepts exactly this
SCHEMA = "repro-campaign/1"

#: registry Tally/sketch name suffixes serialized into each record as
#: quantile sketches: per-queue block-layer request latency and
#: per-driver request round-trip time
SKETCH_SUFFIXES = (".req_latency_usec", ".request_usec")

#: relative error of the serialized sketches (matches obs.health)
SKETCH_REL_ERR = 0.01

#: burn-timeline entries kept per record (deterministic stride
#: downsampling beyond this keeps records bounded)
MAX_BURN_ENTRIES = 512


def git_provenance(cwd: "str | os.PathLike | None" = None):
    """``(commit, dirty)`` of the working tree, or ``(None, None)``
    outside a git checkout (or without a git binary)."""
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        if commit.returncode != 0:
            return None, None
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        dirty = bool(status.stdout.strip()) if status.returncode == 0 else None
        return commit.stdout.strip(), dirty
    except (OSError, subprocess.SubprocessError):
        return None, None


@dataclass
class RunRecord:
    """One run's summary, as stored in the campaign JSONL.

    ``point`` is the seed-independent group key (the sweep point name);
    ``config_key`` is the structural config fingerprint (seed included),
    so identical reruns of the same point+seed are recognizable.
    """

    point: str
    seed: int
    config_key: str
    label: str
    scheduler: str
    git_commit: "str | None" = None
    git_dirty: "bool | None" = None
    elapsed_usec: float = 0.0
    #: scalar metrics: key counters plus derived fairness/health scalars
    metrics: dict[str, float] = field(default_factory=dict)
    #: per-request blame aggregate (µs per class; traced runs only)
    blame_usec: dict[str, float] = field(default_factory=dict)
    #: invariant-monitor violation count
    violations: int = 0
    #: compact health verdicts + burn timeline (cluster runs)
    health: dict = field(default_factory=dict)
    #: serialized QuantileSketch per latency/RTT distribution
    sketches: dict[str, dict] = field(default_factory=dict)
    schema: str = SCHEMA

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, state: dict) -> "RunRecord":
        if state.get("schema") != SCHEMA:
            raise ValueError(
                f"unsupported campaign record schema "
                f"{state.get('schema')!r} (expected {SCHEMA!r})"
            )
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in state.items() if k in names})

    def sketch(self, name: str) -> QuantileSketch:
        """Deserialize one of the record's distribution sketches."""
        return QuantileSketch.from_dict(self.sketches[name])


def _compact_health(health: dict) -> dict:
    """The record-sized view of a HealthHub report: verdicts, per-tenant
    SLO scalars, and the (downsampled) burn timeline the dashboard's
    SLO-burn charts read."""
    if not health:
        return {}
    burn = health.get("burn_timeline", [])
    if len(burn) > MAX_BURN_ENTRIES:
        stride = -(-len(burn) // MAX_BURN_ENTRIES)
        burn = burn[::stride]
    return {
        "flagged_servers": list(health.get("flagged_servers", [])),
        "breached_tenants": list(health.get("breached_tenants", [])),
        "breaches": len(health.get("breach_timeline", [])),
        "tenants": {
            name: {
                "availability": t.get("availability"),
                "p50_usec": t.get("p50_usec"),
                "p99_usec": t.get("p99_usec"),
                "peak_burn_rate": t.get("peak_burn_rate"),
                "slo_met": t.get("slo_met"),
            }
            for name, t in sorted(health.get("tenants", {}).items())
        },
        "burn_timeline": burn,
    }


def record_from_result(
    point_name: str,
    cfg: Any,
    result: Any,
    *,
    provenance: "tuple[str | None, bool | None] | None" = None,
    sketch_suffixes: "tuple[str, ...]" = SKETCH_SUFFIXES,
) -> RunRecord:
    """Summarize one finished run into a :class:`RunRecord`.

    The seed is read off the config (``reseed_config`` stamps it), the
    latency/RTT distributions are rebuilt as bounded sketches from the
    run's exact registry tallies, and everything else is plain scalars.
    """
    if provenance is None:
        provenance = git_provenance()
    commit, dirty = provenance

    metrics: dict[str, float] = {
        "elapsed_usec": float(result.elapsed_usec),
        "swapout_pages": float(result.swapout_pages),
        "swapin_pages": float(result.swapin_pages),
        "client_copy_usec": float(result.client_copy_usec),
        "violations": float(len(result.invariant_violations)),
    }
    for tag, nbytes in sorted(result.network_bytes.items()):
        metrics[f"net.{tag}_bytes"] = float(nbytes)
    # Cluster results add the fairness scalars the QoS gates read.
    for attr in ("spread", "jain_index", "admission_nacks"):
        value = getattr(result, attr, None)
        if value is not None:
            metrics[attr] = float(value)
    health = getattr(result, "health", {}) or {}
    for name, tenant in sorted(health.get("tenants", {}).items()):
        avail = tenant.get("availability")
        if avail is not None:
            metrics[f"tenant.{name}.availability"] = float(avail)
        p99 = tenant.get("p99_usec")
        if p99 is not None:
            metrics[f"tenant.{name}.p99_usec"] = float(p99)

    sketches: dict[str, dict] = {}
    registry = getattr(result, "registry", None)
    if registry is not None:
        for name in registry.names():
            if not name.endswith(sketch_suffixes):
                continue
            item = registry.get(name)
            if isinstance(item, QuantileSketch):
                if item.count:
                    sketches[name] = item.to_dict()
                continue
            values = getattr(item, "values", None)
            if values is None or not getattr(item, "count", 0):
                continue
            sketch = QuantileSketch(name, rel_err=SKETCH_REL_ERR)
            sketch.record_many(values())
            sketches[name] = sketch.to_dict()

    return RunRecord(
        point=point_name,
        seed=int(getattr(cfg, "seed", 0)),
        config_key=config_fingerprint(cfg),
        label=str(result.label),
        scheduler=os.environ.get("REPRO_SCHEDULER", "wheel"),
        git_commit=commit,
        git_dirty=dirty,
        elapsed_usec=float(result.elapsed_usec),
        metrics=metrics,
        blame_usec={k: float(v) for k, v in sorted(result.blame_usec.items())},
        violations=len(result.invariant_violations),
        health=_compact_health(health),
        sketches=sketches,
    )


class CampaignStore:
    """Append-only JSONL store of :class:`RunRecord` lines.

    Appends are a single ``os.write`` on an ``O_APPEND`` descriptor —
    atomic at the line level on POSIX, so concurrent writers never
    interleave partial records.  ``load`` tolerates exactly one torn
    line at the end of the file (a crashed writer) and refuses records
    from an unknown schema.
    """

    def __init__(self, path: "str | os.PathLike") -> None:
        self.path = Path(path)

    def append(self, record: RunRecord) -> None:
        line = json.dumps(record.to_dict(), sort_keys=True, allow_nan=False)
        data = (line + "\n").encode()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, data)
        finally:
            os.close(fd)

    def load(self) -> list[RunRecord]:
        """Every record in append order (torn final line skipped)."""
        if not self.path.exists():
            return []
        records: list[RunRecord] = []
        with open(self.path, encoding="utf-8") as fh:
            lines = fh.read().split("\n")
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                state = json.loads(line)
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    warnings.warn(
                        f"campaign store {self.path}: skipping torn "
                        f"final line (crashed writer?)",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    continue
                raise ValueError(
                    f"campaign store {self.path}: corrupt record at "
                    f"line {i + 1}"
                ) from None
            records.append(RunRecord.from_dict(state))
        return records

    def __len__(self) -> int:
        return len(self.load())


def _mix_seed(base_seed: int, campaign_seed: int) -> int:
    """Derive a workload seed that preserves within-scenario structure:
    identical base seeds (the fairness scenarios' *identical tenants*)
    stay identical, distinct ones stay distinct."""
    return (base_seed * 1_000_003 + campaign_seed) % (1 << 31)


def reseed_config(cfg: Any, seed: int) -> Any:
    """A copy of ``cfg`` replicated under ``seed``.

    Rebuilds every randomized workload through
    :meth:`~repro.workloads.base.Workload.reseed` (op traces are
    pre-generated at construction, so mutating ``.seed`` in place would
    silently change nothing) and stamps ``cfg.seed`` so the resulting
    run's :class:`RunRecord` carries the campaign seed.
    """
    from ..config import ClusterScenarioConfig, ScenarioConfig

    if isinstance(cfg, ClusterScenarioConfig):
        tenants = [
            dataclasses.replace(
                spec,
                workload=spec.workload.reseed(
                    _mix_seed(getattr(spec.workload, "seed", 0), seed)
                ),
            )
            for spec in cfg.tenants
        ]
        return dataclasses.replace(cfg, tenants=tenants, seed=seed)
    if isinstance(cfg, ScenarioConfig):
        workloads = [
            w.reseed(_mix_seed(getattr(w, "seed", 0), seed))
            for w in cfg.workloads
        ]
        return dataclasses.replace(cfg, workloads=workloads, seed=seed)
    raise TypeError(f"cannot reseed config of type {type(cfg).__name__}")


@dataclass
class CampaignReport:
    """What one campaign invocation did."""

    store: CampaignStore
    seeds: list[int]
    points: list[str]
    records: list[RunRecord]
    simulated: int
    cached: int
    wall_sec: float


def run_campaign(
    points,
    seeds,
    store: "CampaignStore | str | os.PathLike",
    *,
    workers: "int | str | None" = None,
    cache=None,
    force: bool = False,
    progress=None,
) -> CampaignReport:
    """Replicate a sweep grid across seeds, appending one
    :class:`RunRecord` per (point, seed) to ``store``.

    Each seed's grid goes through :func:`repro.sweep.run_sweep` (so
    caching and parallel fan-out apply per replica); records are built
    once here and appended directly, with git provenance resolved a
    single time for the whole campaign.
    """
    from ..sweep.engine import SweepPoint, run_sweep

    if not isinstance(store, CampaignStore):
        store = CampaignStore(store)
    points = list(points)
    seeds = [int(s) for s in seeds]
    if not seeds:
        raise ValueError("campaign needs at least one seed")
    provenance = git_provenance()
    records: list[RunRecord] = []
    simulated = cached = 0
    wall = 0.0
    for seed in seeds:
        replica = [
            SweepPoint(p.name, reseed_config(p.cfg, seed)) for p in points
        ]
        report = run_sweep(
            replica,
            workers=workers,
            cache=cache,
            force=force,
            progress=progress,
        )
        simulated += report.simulated
        cached += report.cached
        wall += report.wall_sec
        for point, result in zip(report.points, report.results):
            record = record_from_result(
                point.name, point.cfg, result, provenance=provenance
            )
            store.append(record)
            records.append(record)
    return CampaignReport(
        store=store,
        seeds=seeds,
        points=[p.name for p in points],
        records=records,
        simulated=simulated,
        cached=cached,
        wall_sec=wall,
    )
