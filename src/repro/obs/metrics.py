"""Periodic metrics sampling: `/proc/vmstat` as a time series.

The :class:`MetricsHub` runs as a simulation process that samples
:func:`repro.kernel.vmstat.vmstat` on a fixed simulated-time interval
and records each field into :class:`~repro.simulator.stats.TimeSeries`
collectors (metric names follow the ``obs.vmstat.<field>`` convention —
see ``docs/OBSERVABILITY.md``).  When the node's simulator has tracing
enabled, every sample also lands in the trace as Chrome counter events,
so Perfetto plots memory pressure right under the request spans.

Beyond vmstat, arbitrary gauges can be attached with :meth:`watch`:
the runner registers utilization/queue-depth samplers (request queue
depth, flow-control credits, pool occupancy, RDMA slots, CPU busyness)
so every traced run exports those timelines alongside the spans.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

from ..simulator import StatsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..kernel.node import Node
    from ..simulator.stats import TimeSeries

__all__ = ["MetricsHub"]

#: VMStat fields sampled into time series, in metric-name order.
VMSTAT_FIELDS = (
    "free_bytes",
    "resident_bytes",
    "writeback_bytes",
    "swapin_flight_bytes",
    "pgfault_minor",
    "pgfault_major",
    "pswpin_pages",
    "pswpout_pages",
)


class MetricsHub:
    """Samples a node's VM state every ``interval_usec`` of simulated time.

    Construct, then :meth:`start` once the node exists; the sampler is a
    lazy background process, so an idle simulation is never kept alive
    by it (``Simulator.run(until=...)`` semantics are unaffected).
    """

    def __init__(
        self,
        node: "Node",
        interval_usec: float = 1000.0,
        stats: StatsRegistry | None = None,
        prefix: str = "obs.vmstat",
    ) -> None:
        if interval_usec <= 0:
            raise ValueError(f"interval must be positive, got {interval_usec}")
        self.node = node
        self.sim = node.sim
        self.interval_usec = interval_usec
        self.stats = stats if stats is not None else node.stats
        self.prefix = prefix
        self.samples = 0
        self._running = False
        self._series = {
            field: self.stats.timeseries(f"{prefix}.{field}")
            for field in VMSTAT_FIELDS
        }
        #: name -> sampler() -> {series: value} gauges (see watch())
        self._watches: dict[str, Callable[[], dict[str, float]]] = {}
        self._watch_series: dict[tuple[str, str], "TimeSeries"] = {}

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.spawn(self._sampler(), name=f"{self.prefix}.sampler")

    def stop(self) -> None:
        """Stop after the next tick (no mid-interval cancellation needed)."""
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    # -- gauges ----------------------------------------------------------

    def watch(
        self, name: str, sampler: Callable[[], dict[str, float]]
    ) -> None:
        """Attach a gauge sampled on every tick.

        ``sampler`` returns ``{series: value}``; each series lands in a
        ``obs.util.<name>.<series>`` :class:`TimeSeries` and (when
        tracing) a co-plotted Chrome counter track named ``name``.
        """
        if name in self._watches:
            raise ValueError(f"watch {name!r} already registered")
        self._watches[name] = sampler

    def _sample_watches(self, now: float) -> None:
        trace = self.sim.trace
        for name, sampler in self._watches.items():
            values = sampler()
            if not values:
                continue
            for series, value in values.items():
                key = (name, series)
                ts = self._watch_series.get(key)
                if ts is None:
                    ts = self._watch_series[key] = self.stats.timeseries(
                        f"obs.util.{name}.{series}"
                    )
                ts.record(now, float(value))
            if trace.enabled:
                trace.counter(
                    self.node.name, name,
                    **{k: float(v) for k, v in values.items()},
                )

    # -- sampling --------------------------------------------------------

    def sample(self) -> None:
        """Take one sample immediately (also usable without start())."""
        from ..kernel.vmstat import vmstat  # late: avoids an import cycle

        stat = vmstat(self.node)
        now = self.sim.now
        for field, series in self._series.items():
            series.record(now, float(getattr(stat, field)))
        self._sample_watches(now)
        self.samples += 1
        trace = self.sim.trace
        if trace.enabled:
            trace.counter(
                self.node.name,
                "vmstat.memory_bytes",
                free=float(stat.free_bytes),
                resident=float(stat.resident_bytes),
                writeback=float(stat.writeback_bytes),
                swapin_flight=float(stat.swapin_flight_bytes),
            )
            trace.counter(
                self.node.name,
                "vmstat.pages",
                pswpin=float(stat.pswpin_pages),
                pswpout=float(stat.pswpout_pages),
            )

    def _sampler(self):
        while self._running:
            self.sample()
            yield self.sim.timeout(self.interval_usec)

    def series(self, field: str):
        """The recorded :class:`TimeSeries` for one VMStat field."""
        return self._series[field]
